//! Security integration tests spanning `oram-protocol` and
//! `oram-workloads`.
//!
//! The paper's security argument (Sec. IV-B1) is that the shadow-block
//! controller's externally visible behaviour — which buckets are read and
//! written, in which order — is *identical* to the baseline's for the same
//! request sequence, because duplication only changes what is written
//! inside ciphertext-indistinguishable blocks. These tests check exactly
//! that, plus the Sec. III distinguisher showing why naive reordering (no
//! duplication) would have been insecure.

use oram_cpu::RefStream;
use oram_protocol::{
    BlockAddr, DupPolicy, OramConfig, OramController, Request, ServedFrom, TraceEvent,
};
use oram_workloads::synthetic::{Cycle, Scan};

fn traced_config(policy: DupPolicy) -> OramConfig {
    OramConfig::small_test().with_dup_policy(policy).with_trace()
}

/// Runs a request sequence and returns the externally visible trace.
fn run_trace(policy: DupPolicy, requests: &[Request]) -> Vec<TraceEvent> {
    let mut ctl = OramController::new(traced_config(policy)).unwrap();
    for r in requests {
        ctl.access(*r);
    }
    ctl.trace().to_vec()
}

fn mixed_requests(n: u64, ws: u64) -> Vec<Request> {
    let mut x = 0x0DD5_EED5u64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = BlockAddr::new(x % ws);
            if i % 4 == 0 {
                Request::write(addr, i)
            } else {
                Request::read(addr)
            }
        })
        .collect()
}

/// Distinct single-touch addresses: no request can be a stash hit, so the
/// path-access schedule is identical across policies and the bus traces
/// must match bit for bit (the paper's Sec. IV-B1 argument: duplication
/// only changes block contents, which are ciphertext-indistinguishable).
#[test]
fn every_policy_produces_an_identical_bus_trace() {
    let requests: Vec<Request> = (0..800u64)
        .map(|i| {
            if i % 4 == 0 {
                Request::write(BlockAddr::new(i), i)
            } else {
                Request::read(BlockAddr::new(i))
            }
        })
        .collect();
    let baseline = run_trace(DupPolicy::Off, &requests);
    assert!(!baseline.is_empty());
    for policy in [
        DupPolicy::RdOnly,
        DupPolicy::HdOnly,
        DupPolicy::Static { partition_level: 3 },
        DupPolicy::Dynamic { counter_bits: 3 },
    ] {
        let trace = run_trace(policy, &requests);
        assert_eq!(
            trace, baseline,
            "policy {policy:?} changed the externally visible access pattern"
        );
    }
}

#[test]
fn dummy_requests_are_also_trace_identical() {
    // Interleave real (single-touch) and dummy accesses the way timing
    // protection does.
    let run = |policy: DupPolicy| {
        let mut ctl = OramController::new(traced_config(policy)).unwrap();
        for i in 0..600u64 {
            if i % 3 == 0 {
                ctl.dummy_access();
            } else {
                ctl.access(Request::read(BlockAddr::new(1000 + i)));
            }
        }
        ctl.trace().to_vec()
    };
    assert_eq!(run(DupPolicy::Off), run(DupPolicy::Dynamic { counter_bits: 3 }));
}

/// With data reuse, stash-hit rates legitimately differ across policies
/// (that is the performance benefit; its visibility is the timing channel
/// that constant-rate protection closes). The access-pattern property that
/// must still hold: every path read targets a *uniformly random* leaf,
/// under every policy.
#[test]
fn leaf_choices_stay_uniform_with_reuse() {
    for policy in [DupPolicy::Off, DupPolicy::Dynamic { counter_bits: 3 }] {
        let mut ctl = OramController::new(traced_config(policy)).unwrap();
        for r in mixed_requests(4000, 90) {
            ctl.access(r);
        }
        let levels = ctl.config().levels;
        let leaf_count = 1u64 << levels;
        // Histogram the leaf-level buckets of read-only path reads.
        let leaves: Vec<u64> = ctl
            .trace()
            .iter()
            .filter(|e| !e.is_write && e.bucket.level() == levels)
            .map(|e| e.bucket.raw() - leaf_count)
            .collect();
        assert!(leaves.len() > 500, "need a meaningful sample");
        let mut hist = vec![0u64; leaf_count as usize];
        for l in &leaves {
            hist[*l as usize] += 1;
        }
        // Loose uniformity check: no leaf may absorb more than 8x its
        // expected share (catches any data-dependent path bias).
        let expected = leaves.len() as f64 / leaf_count as f64;
        let max = *hist.iter().max().unwrap() as f64;
        assert!(
            max < 8.0 * expected + 8.0,
            "{policy:?}: leaf histogram too skewed (max {max}, expected {expected:.1})"
        );
    }
}

#[test]
fn trace_shape_is_request_count_dependent_only() {
    // Two different address sequences of the same length must produce
    // traces with the same *shape*: same number of events, same
    // read/write pattern (the leaf choices differ — they are random — but
    // nothing about which addresses were requested may show).
    let a = run_trace(DupPolicy::Dynamic { counter_bits: 3 }, &mixed_requests(800, 64));
    let mut seq = Vec::new();
    for i in 0..800u64 {
        // A completely different program: a pure sequential scan.
        seq.push(Request::read(BlockAddr::new(i % 200)));
    }
    let b = run_trace(DupPolicy::Dynamic { counter_bits: 3 }, &seq);
    // Compare only the stash-miss-driven portions: both workloads must
    // generate path-shaped traffic; equal request counts with differing
    // stash-hit rates change the number of path accesses, which is the
    // *length* leakage ORAM accepts. What must match is the pattern class:
    // every read burst touches exactly L+1 buckets root-to-leaf.
    let levels = OramConfig::small_test().levels as usize + 1;
    for trace in [&a, &b] {
        let reads: Vec<_> = trace.iter().filter(|e| !e.is_write).collect();
        assert_eq!(reads.len() % levels, 0, "reads come in whole paths");
    }
}

#[test]
fn paths_in_trace_are_root_to_leaf() {
    let trace = run_trace(DupPolicy::RdOnly, &mixed_requests(200, 40));
    let levels = OramConfig::small_test().levels;
    // Split consecutive read runs into path-sized groups and check each is
    // a root-to-leaf chain.
    let mut i = 0;
    while i < trace.len() {
        if trace[i].is_write {
            i += 1;
            continue;
        }
        let path: Vec<_> = trace[i..i + levels as usize + 1].to_vec();
        assert!(path.iter().all(|e| !e.is_write), "path reads are contiguous");
        for (lvl, e) in path.iter().enumerate() {
            assert_eq!(e.bucket.level() as usize, lvl, "root-to-leaf order");
        }
        for w in path.windows(2) {
            assert_eq!(w[1].bucket.parent(), Some(w[0].bucket));
        }
        i += levels as usize + 1;
    }
}

/// The paper's Sec. III distinguisher: if the intended block were always
/// accessed *first* (naive reordering), cyclic access sequences would hit
/// recently-written paths far more often than scans — the RRWP-k
/// statistic separates them. With shadow blocks the request-visible
/// pattern stays the uniform baseline pattern, so the statistic cannot
/// separate the sequences.
#[test]
fn rrwp_distinguisher_fails_against_shadow_blocks() {
    let k = 16usize;

    // Observable under the shadow design: the leaf (path) of each path
    // read. We reconstruct "which path was read" from the trace by taking
    // the leaf-level bucket of each read path.
    let leaf_sequence = |requests: &[Request]| -> Vec<u64> {
        let mut ctl =
            OramController::new(traced_config(DupPolicy::Dynamic { counter_bits: 3 })).unwrap();
        for r in requests {
            ctl.access(*r);
        }
        let levels = ctl.config().levels as usize;
        ctl.trace()
            .iter()
            .filter(|e| !e.is_write && e.bucket.level() as usize == levels)
            .map(|e| e.bucket.raw())
            .collect()
    };

    // RRWP-k rate: how often a read path equals one of the k previous
    // *written* paths — approximated here by the previous k read paths
    // (evictions follow reads deterministically).
    let rrwp_rate = |leaves: &[u64]| -> f64 {
        let mut hits = 0usize;
        for (i, l) in leaves.iter().enumerate() {
            let lo = i.saturating_sub(k);
            if leaves[lo..i].contains(l) {
                hits += 1;
            }
        }
        hits as f64 / leaves.len().max(1) as f64
    };

    // Sequence 1: scan over many distinct addresses.
    let mut scan = Scan::new(600, 0);
    let mut scan_reqs = Vec::new();
    while let Some(r) = scan.next_ref() {
        scan_reqs.push(Request::read(BlockAddr::new(r.block_addr)));
    }
    // Sequence 2: tight cycle over 12 addresses, same length.
    let mut cyc = Cycle::new(12, 600, 0);
    let mut cyc_reqs = Vec::new();
    while let Some(r) = cyc.next_ref() {
        cyc_reqs.push(Request::read(BlockAddr::new(r.block_addr)));
    }

    let scan_rate = rrwp_rate(&leaf_sequence(&scan_reqs));
    let cyc_rate = rrwp_rate(&leaf_sequence(&cyc_reqs));

    // Both rates must look like the uniform-random baseline: paths are
    // fresh random labels every access, so neither sequence should show a
    // significantly elevated recent-path rate. Allow generous noise.
    let uniform = k as f64 / OramConfig::small_test().levels as f64 / 16.0; // loose bound helper
    let _ = uniform;
    assert!(
        (scan_rate - cyc_rate).abs() < 0.05,
        "RRWP-{k} separates the sequences: scan {scan_rate:.3} vs cyclic {cyc_rate:.3}"
    );
}

#[test]
fn shadow_serving_never_returns_stale_data_under_adversarial_reuse() {
    // Pathological pattern: write, re-read through different paths,
    // overwrite while shadows of the old version are still in the tree.
    let mut ctl = OramController::new(
        OramConfig::small_test().with_dup_policy(DupPolicy::RdOnly),
    )
    .unwrap();
    let hot = BlockAddr::new(5);
    let mut expected = 0u64;
    let mut x = 77u64;
    for round in 0..400u64 {
        // Touch noise addresses so evictions create shadows of `hot`.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ctl.access(Request::read(BlockAddr::new(100 + x % 60)));
        if round % 7 == 0 {
            expected = round;
            ctl.access(Request::write(hot, expected));
        }
        let r = ctl.access(Request::read(hot));
        assert_eq!(r.value, expected, "round {round}: stale shadow escaped");
        // Early serving through shadows must never change the value.
        if let ServedFrom::Dram { via_shadow: true, .. } = r.served {
            assert_eq!(r.value, expected);
        }
    }
}

//! Cross-crate consistency: the full system (workload generator → cache
//! hierarchy → ORAM controller) must be a faithful memory, for every
//! duplication policy, including property-based exploration of the
//! protocol state space.

use std::collections::HashMap;

use oram_protocol::{BlockAddr, DupPolicy, OramConfig, OramController, Request};
use proptest::prelude::*;

fn policies() -> Vec<DupPolicy> {
    vec![
        DupPolicy::Off,
        DupPolicy::RdOnly,
        DupPolicy::HdOnly,
        DupPolicy::Static { partition_level: 2 },
        DupPolicy::Static { partition_level: 5 },
        DupPolicy::Dynamic { counter_bits: 1 },
        DupPolicy::Dynamic { counter_bits: 3 },
    ]
}

#[test]
fn long_mixed_run_matches_reference_memory() {
    for policy in policies() {
        let cfg = OramConfig::small_test().with_dup_policy(policy);
        let mut ctl = OramController::new(cfg).unwrap();
        let mut reference: HashMap<BlockAddr, u64> = HashMap::new();
        let mut x = 0xFEED_5EEDu64;
        for step in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = BlockAddr::new(x % 200);
            if x.is_multiple_of(3) {
                ctl.access(Request::write(addr, step));
                reference.insert(addr, step);
            } else {
                let got = ctl.access(Request::read(addr)).value;
                let want = reference.get(&addr).copied().unwrap_or(0);
                assert_eq!(got, want, "{policy:?} step {step} {addr}");
            }
        }
        ctl.check_invariants().unwrap();
    }
}

#[test]
fn interleaved_dummies_do_not_corrupt_state() {
    for policy in [DupPolicy::Off, DupPolicy::Dynamic { counter_bits: 3 }] {
        let cfg = OramConfig::small_test().with_dup_policy(policy);
        let mut ctl = OramController::new(cfg).unwrap();
        let mut reference: HashMap<BlockAddr, u64> = HashMap::new();
        for step in 0..2000u64 {
            match step % 5 {
                0 => {
                    ctl.dummy_access();
                }
                1 => {
                    let addr = BlockAddr::new(step % 80);
                    ctl.access(Request::write(addr, step));
                    reference.insert(addr, step);
                }
                _ => {
                    let addr = BlockAddr::new((step * 7) % 80);
                    let got = ctl.access(Request::read(addr)).value;
                    let want = reference.get(&addr).copied().unwrap_or(0);
                    assert_eq!(got, want, "{policy:?} step {step}");
                }
            }
        }
        ctl.check_invariants().unwrap();
    }
}

#[test]
fn prefilled_image_reads_back_under_every_policy() {
    for policy in policies() {
        let cfg = OramConfig::small_test().with_dup_policy(policy);
        let mut ctl = OramController::new(cfg).unwrap();
        ctl.prefill((0..300u64).map(|i| (BlockAddr::new(i), i ^ 0xABCD)));
        // Churn for a while, then verify the untouched blocks.
        for i in 0..1000u64 {
            ctl.access(Request::read(BlockAddr::new(i % 150)));
        }
        for i in (150..300u64).step_by(13) {
            let got = ctl.access(Request::read(BlockAddr::new(i))).value;
            assert_eq!(got, i ^ 0xABCD, "{policy:?} block {i}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random operation sequences against a reference model, with random
    /// policies and tree geometries.
    #[test]
    fn random_sequences_match_reference(
        seed in 0u64..1_000_000,
        levels in 5u32..9,
        policy_ix in 0usize..7,
        ops in prop::collection::vec((0u64..120, 0u64..3, any::<u64>()), 50..400),
    ) {
        let policy = policies()[policy_ix];
        let mut cfg = OramConfig::small_test()
            .with_dup_policy(policy)
            .with_seed(seed)
            .with_levels(levels);
        cfg.stash_capacity = (cfg.z * (levels as usize + 1)).max(64) + 48;
        let mut ctl = OramController::new(cfg).unwrap();
        let mut reference: HashMap<BlockAddr, u64> = HashMap::new();
        for (raw_addr, kind, val) in ops {
            let addr = BlockAddr::new(raw_addr);
            match kind {
                0 => {
                    ctl.access(Request::write(addr, val));
                    reference.insert(addr, val);
                }
                1 => {
                    let got = ctl.access(Request::read(addr)).value;
                    let want = reference.get(&addr).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "{:?} {:?}", policy, addr);
                }
                _ => {
                    ctl.dummy_access();
                }
            }
        }
        ctl.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Stash occupancy (live blocks) stays bounded well below capacity for
    /// sustained random workloads — the Rule-3 claim that duplication does
    /// not change stash-overflow behaviour.
    #[test]
    fn stash_live_occupancy_stays_bounded(
        seed in 0u64..100_000,
        dup in prop::bool::ANY,
    ) {
        let policy = if dup { DupPolicy::Dynamic { counter_bits: 3 } } else { DupPolicy::Off };
        let cfg = OramConfig::small_test().with_dup_policy(policy).with_seed(seed);
        let cap = cfg.stash_capacity;
        let mut ctl = OramController::new(cfg).unwrap();
        let mut x = seed | 1;
        for _ in 0..1500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ctl.access(Request::read(BlockAddr::new(x % 180)));
        }
        let max_live = ctl.stash_stats().max_live;
        prop_assert!(
            max_live < cap,
            "live stash occupancy {} reached capacity {}",
            max_live,
            cap
        );
    }
}

//! Cross-crate consistency: the full system (workload generator → cache
//! hierarchy → ORAM controller) must be a faithful memory, for every
//! duplication policy, including randomized exploration of the protocol
//! state space (deterministically seeded, so failures reproduce exactly).

use std::collections::HashMap;

use oram_protocol::{BlockAddr, DupPolicy, OramConfig, OramController, Request};
use oram_util::Rng64;

fn policies() -> Vec<DupPolicy> {
    vec![
        DupPolicy::Off,
        DupPolicy::RdOnly,
        DupPolicy::HdOnly,
        DupPolicy::Static { partition_level: 2 },
        DupPolicy::Static { partition_level: 5 },
        DupPolicy::Dynamic { counter_bits: 1 },
        DupPolicy::Dynamic { counter_bits: 3 },
    ]
}

#[test]
fn long_mixed_run_matches_reference_memory() {
    for policy in policies() {
        let cfg = OramConfig::small_test().with_dup_policy(policy);
        let mut ctl = OramController::new(cfg).unwrap();
        let mut reference: HashMap<BlockAddr, u64> = HashMap::new();
        let mut x = 0xFEED_5EEDu64;
        for step in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = BlockAddr::new(x % 200);
            if x.is_multiple_of(3) {
                ctl.access(Request::write(addr, step));
                reference.insert(addr, step);
            } else {
                let got = ctl.access(Request::read(addr)).value;
                let want = reference.get(&addr).copied().unwrap_or(0);
                assert_eq!(got, want, "{policy:?} step {step} {addr}");
            }
        }
        ctl.check_invariants().unwrap();
    }
}

#[test]
fn interleaved_dummies_do_not_corrupt_state() {
    for policy in [DupPolicy::Off, DupPolicy::Dynamic { counter_bits: 3 }] {
        let cfg = OramConfig::small_test().with_dup_policy(policy);
        let mut ctl = OramController::new(cfg).unwrap();
        let mut reference: HashMap<BlockAddr, u64> = HashMap::new();
        for step in 0..2000u64 {
            match step % 5 {
                0 => {
                    ctl.dummy_access();
                }
                1 => {
                    let addr = BlockAddr::new(step % 80);
                    ctl.access(Request::write(addr, step));
                    reference.insert(addr, step);
                }
                _ => {
                    let addr = BlockAddr::new((step * 7) % 80);
                    let got = ctl.access(Request::read(addr)).value;
                    let want = reference.get(&addr).copied().unwrap_or(0);
                    assert_eq!(got, want, "{policy:?} step {step}");
                }
            }
        }
        ctl.check_invariants().unwrap();
    }
}

#[test]
fn prefilled_image_reads_back_under_every_policy() {
    for policy in policies() {
        let cfg = OramConfig::small_test().with_dup_policy(policy);
        let mut ctl = OramController::new(cfg).unwrap();
        ctl.prefill((0..300u64).map(|i| (BlockAddr::new(i), i ^ 0xABCD)));
        // Churn for a while, then verify the untouched blocks.
        for i in 0..1000u64 {
            ctl.access(Request::read(BlockAddr::new(i % 150)));
        }
        for i in (150..300u64).step_by(13) {
            let got = ctl.access(Request::read(BlockAddr::new(i))).value;
            assert_eq!(got, i ^ 0xABCD, "{policy:?} block {i}");
        }
    }
}

/// Random operation sequences against a reference model, with random
/// policies and tree geometries.
#[test]
fn random_sequences_match_reference() {
    let mut rng = Rng64::seed_from_u64(0xC0FF_EE00);
    for _case in 0..24 {
        let seed = rng.below(1_000_000);
        let levels = rng.range_inclusive(5, 8) as u32;
        let policy = policies()[rng.below(7) as usize];
        let n_ops = rng.range_inclusive(50, 399);
        let mut cfg = OramConfig::small_test()
            .with_dup_policy(policy)
            .with_seed(seed)
            .with_levels(levels);
        cfg.stash_capacity = (cfg.z * (levels as usize + 1)).max(64) + 48;
        let mut ctl = OramController::new(cfg).unwrap();
        let mut reference: HashMap<BlockAddr, u64> = HashMap::new();
        for _ in 0..n_ops {
            let addr = BlockAddr::new(rng.below(120));
            match rng.below(3) {
                0 => {
                    let val = rng.next_u64();
                    ctl.access(Request::write(addr, val));
                    reference.insert(addr, val);
                }
                1 => {
                    let got = ctl.access(Request::read(addr)).value;
                    let want = reference.get(&addr).copied().unwrap_or(0);
                    assert_eq!(got, want, "{policy:?} {addr:?}");
                }
                _ => {
                    ctl.dummy_access();
                }
            }
        }
        ctl.check_invariants().unwrap();
    }
}

/// Stash occupancy (live blocks) stays bounded well below capacity for
/// sustained random workloads — the Rule-3 claim that duplication does
/// not change stash-overflow behaviour.
#[test]
fn stash_live_occupancy_stays_bounded() {
    let mut rng = Rng64::seed_from_u64(0xBADC_AB1E);
    for case in 0..16 {
        let seed = rng.below(100_000);
        let dup = case % 2 == 0;
        let policy = if dup { DupPolicy::Dynamic { counter_bits: 3 } } else { DupPolicy::Off };
        let cfg = OramConfig::small_test().with_dup_policy(policy).with_seed(seed);
        let cap = cfg.stash_capacity;
        let mut ctl = OramController::new(cfg).unwrap();
        let mut x = seed | 1;
        for _ in 0..1500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ctl.access(Request::read(BlockAddr::new(x % 180)));
        }
        let max_live = ctl.stash_stats().max_live;
        assert!(
            max_live < cap,
            "live stash occupancy {max_live} reached capacity {cap}"
        );
    }
}

//! Full-system integration: workloads through caches through ORAM through
//! DRAM, checking the qualitative results the paper reports.

use oram_protocol::DupPolicy;
use oram_sim::{gmean, run_workload, RunOptions, SystemConfig};
use oram_workloads::spec;

fn opts() -> RunOptions {
    RunOptions { misses: 1200, warmup_misses: 300, seed: 11, fill_target: 0.35, o3: None }
}

fn cfg(policy: DupPolicy, timing: bool) -> SystemConfig {
    let mut c = SystemConfig::scaled_default();
    c.oram.levels = 12;
    c.oram.dup_policy = policy;
    if timing {
        c.timing_protection = Some(800);
    }
    c
}

#[test]
fn oram_is_substantially_slower_than_insecure() {
    // The paper's premise: Tiny ORAM costs 2-8x over an insecure system,
    // worst for the memory-intensive workloads.
    let mcf = run_workload(&spec::profile("mcf"), &cfg(DupPolicy::Off, false), &opts());
    let namd = run_workload(&spec::profile("namd"), &cfg(DupPolicy::Off, false), &opts());
    assert!(mcf.slowdown() > 3.0, "mcf slowdown {}", mcf.slowdown());
    assert!(namd.slowdown() > 1.0, "namd slowdown {}", namd.slowdown());
    assert!(
        mcf.slowdown() > namd.slowdown(),
        "memory-intensive workloads suffer more"
    );
}

#[test]
fn shadow_block_speeds_up_the_gmean() {
    let mut base = Vec::new();
    let mut shadow = Vec::new();
    for wl in ["hmmer", "h264ref", "sjeng", "namd"] {
        let t = run_workload(&spec::profile(wl), &cfg(DupPolicy::Off, true), &opts());
        let s = run_workload(
            &spec::profile(wl),
            &cfg(DupPolicy::Dynamic { counter_bits: 3 }, true),
            &opts(),
        );
        base.push(t.oram.total_cycles as f64);
        shadow.push(s.oram.total_cycles as f64);
    }
    let speedups: Vec<f64> = base.iter().zip(&shadow).map(|(b, s)| b / s).collect();
    let g = gmean(&speedups);
    assert!(g > 1.01, "gmean speedup {g} too small: {speedups:?}");
}

#[test]
fn rd_dup_cuts_interval_hd_dup_cuts_data_requests() {
    // Fig 8's split: RD-Dup mainly reduces DRI, HD-Dup mainly reduces the
    // number of data requests (via on-chip hits).
    let wl = spec::profile("h264ref");
    let tiny = run_workload(&wl, &cfg(DupPolicy::Off, false), &opts());
    let rd = run_workload(&wl, &cfg(DupPolicy::RdOnly, false), &opts());
    let hd = run_workload(&wl, &cfg(DupPolicy::HdOnly, false), &opts());

    // RD-Dup advances the serving position of DRAM accesses (the DRI cut
    // follows from that at scale; position is the robust per-run metric).
    assert!(rd.oram.oram.shadow_advanced > 0, "RD-Dup advanced accesses");
    assert!(
        rd.oram.oram.mean_served_position() < tiny.oram.oram.mean_served_position(),
        "RD-Dup should lower the mean serving position: {:.1} vs {:.1}",
        rd.oram.oram.mean_served_position(),
        tiny.oram.oram.mean_served_position()
    );
    assert!(
        hd.oram.data_requests < tiny.oram.data_requests,
        "HD-Dup should reduce data requests: {} vs {}",
        hd.oram.data_requests,
        tiny.oram.data_requests
    );
}

#[test]
fn treetop_caching_composes_with_shadow_block() {
    let wl = spec::profile("hmmer");
    let dyn3 = DupPolicy::Dynamic { counter_bits: 3 };
    let plain = run_workload(&wl, &cfg(dyn3, true), &opts());
    let mut with_tt = cfg(dyn3, true);
    with_tt.oram.treetop_levels = 3;
    let tt = run_workload(&wl, &with_tt, &opts());
    assert!(
        tt.oram.total_cycles <= plain.oram.total_cycles,
        "treetop must not hurt: {} vs {}",
        tt.oram.total_cycles,
        plain.oram.total_cycles
    );
    // Treetop's robust effect: the top levels never touch DRAM, so the
    // DRAM traffic per access shrinks.
    assert!(
        tt.oram.dram.reads < plain.oram.dram.reads,
        "treetop should cut DRAM reads: {} vs {}",
        tt.oram.dram.reads,
        plain.oram.dram.reads
    );
}

#[test]
fn shadow_block_beats_xor_compression() {
    // Fig 17: shadow block outperforms XOR compression on average.
    let mut sb_speedups = Vec::new();
    let mut xor_speedups = Vec::new();
    for wl in ["hmmer", "namd", "sjeng"] {
        let tiny = run_workload(&spec::profile(wl), &cfg(DupPolicy::Off, true), &opts());
        let sb = run_workload(
            &spec::profile(wl),
            &cfg(DupPolicy::Dynamic { counter_bits: 3 }, true),
            &opts(),
        );
        let mut xc = cfg(DupPolicy::Off, true);
        xc.xor_compression = true;
        let xor = run_workload(&spec::profile(wl), &xc, &opts());
        let base = tiny.oram.total_cycles as f64;
        sb_speedups.push(base / sb.oram.total_cycles as f64);
        xor_speedups.push(base / xor.oram.total_cycles as f64);
    }
    assert!(
        gmean(&sb_speedups) > gmean(&xor_speedups) * 0.98,
        "shadow {sb_speedups:?} should not lose to XOR {xor_speedups:?}"
    );
}

#[test]
fn energy_tracks_requests_and_time() {
    let wl = spec::profile("h264ref");
    let tiny = run_workload(&wl, &cfg(DupPolicy::Off, false), &opts());
    let dy = run_workload(&wl, &cfg(DupPolicy::Dynamic { counter_bits: 3 }, false), &opts());
    assert!(tiny.energy_norm() > 1.5, "ORAM energy tax exists");
    assert!(
        dy.oram.energy_mj <= tiny.oram.energy_mj * 1.02,
        "duplication must not cost extra energy: {} vs {}",
        dy.oram.energy_mj,
        tiny.oram.energy_mj
    );
}

#[test]
fn identical_seeds_are_fully_reproducible() {
    let wl = spec::profile("gcc");
    let a = run_workload(&wl, &cfg(DupPolicy::Dynamic { counter_bits: 3 }, true), &opts());
    let b = run_workload(&wl, &cfg(DupPolicy::Dynamic { counter_bits: 3 }, true), &opts());
    assert_eq!(a.oram.total_cycles, b.oram.total_cycles);
    assert_eq!(a.insecure.total_cycles, b.insecure.total_cycles);
}

//! Trace-distinguishing experiments: the adversary's side of the
//! obliviousness game, played against the real controller.
//!
//! Three experiment families, in increasing strength of the claim:
//!
//! * **Cross-policy identity** ([`cross_policy_traces_identical`]) — the
//!   paper's Sec. IV-B argument. On a fresh (single-touch) request
//!   stream every duplication policy must produce a trace *byte-identical*
//!   to the Tiny ORAM baseline: duplication only changes ciphertext
//!   contents, never the address/direction sequence.
//! * **Relabeling identity** ([`relabeled_traces_identical`],
//!   [`timing_protected_relabeled_identical`]) — renaming the secret
//!   addresses of a workload must leave the trace byte-identical, because
//!   nothing observable may depend on *which* addresses are accessed.
//! * **Distributional distinguisher** ([`distribution_distinguisher`]) —
//!   for arbitrary pairs of secret patterns the traces need only be
//!   equal in distribution; a two-sample test over the observed leaf
//!   sequences must fail to tell them apart.
//!
//! ### The relabeling offset
//!
//! Byte-identity under relabeling is only promised when the renaming is
//! *structure-preserving* for the controller's public, address-indexed
//! resources: the Hot Address Cache (set-indexed by `addr mod sets`) and
//! the PLB (page-indexed by `addr / page_addrs`). A renaming that
//! changes set indices or page boundaries changes which metadata entries
//! collide — publicly visible state, not a secret. [`relabel_offset`]
//! returns the smallest address shift that preserves both; arbitrary
//! renamings get the distributional guarantee instead.

use oram_protocol::{
    BlockAddr, DupPolicy, OramConfig, OramController, Op, Request,
};
use oram_sim::{Engine, SystemConfig};
use oram_util::BusEvent;

use crate::invariants::{check_trace, TraceSpec};
use crate::recorder::Recorder;
use crate::stats::{bin_counts, chi_square_two_sample, GofTest};

/// The six externally distinguishable configurations the audit sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyUnderTest {
    /// Tiny ORAM baseline (dummy slots stay dummy).
    Baseline,
    /// Pure Rear Data Duplication.
    RdDup,
    /// Pure Hot Data Duplication.
    HdDup,
    /// Dynamic partitioning (3-bit DRI counter, the paper's optimum).
    Dynamic,
    /// Baseline protocol under the XOR bus-compression model. The
    /// controller-level trace is the baseline's by construction; the
    /// engine-level experiments exercise the compressed bus.
    Xor,
    /// Baseline protocol with two treetop levels cached on chip.
    Treetop,
}

impl PolicyUnderTest {
    /// Every policy, in sweep order.
    pub const ALL: [PolicyUnderTest; 6] = [
        PolicyUnderTest::Baseline,
        PolicyUnderTest::RdDup,
        PolicyUnderTest::HdDup,
        PolicyUnderTest::Dynamic,
        PolicyUnderTest::Xor,
        PolicyUnderTest::Treetop,
    ];

    /// Human-readable name for report lines.
    pub fn name(self) -> &'static str {
        match self {
            PolicyUnderTest::Baseline => "baseline",
            PolicyUnderTest::RdDup => "rd-dup",
            PolicyUnderTest::HdDup => "hd-dup",
            PolicyUnderTest::Dynamic => "dynamic",
            PolicyUnderTest::Xor => "xor",
            PolicyUnderTest::Treetop => "treetop",
        }
    }

    /// The controller configuration this policy runs with.
    pub fn oram_config(self, base: OramConfig) -> OramConfig {
        match self {
            PolicyUnderTest::Baseline | PolicyUnderTest::Xor => {
                base.with_dup_policy(DupPolicy::Off)
            }
            PolicyUnderTest::RdDup => base.with_dup_policy(DupPolicy::RdOnly),
            PolicyUnderTest::HdDup => base.with_dup_policy(DupPolicy::HdOnly),
            PolicyUnderTest::Dynamic => {
                base.with_dup_policy(DupPolicy::Dynamic { counter_bits: 3 })
            }
            PolicyUnderTest::Treetop => {
                let tt = base.treetop_levels.max(2).min(base.levels);
                base.with_dup_policy(DupPolicy::Off).with_treetop(tt)
            }
        }
    }

    /// The system configuration this policy runs with (engine-level
    /// experiments; XOR compression lives here, not in the controller).
    pub fn system_config(self, base: SystemConfig) -> SystemConfig {
        let oram = self.oram_config(base.oram);
        let sys = base.with_oram(oram);
        match self {
            PolicyUnderTest::Xor => sys.with_xor_compression(),
            _ => sys,
        }
    }
}

/// The smallest address shift that preserves the Hot Address Cache set
/// index and PLB page alignment of every address (see the module docs on
/// why relabeling must be structure-preserving for byte-identity).
pub fn relabel_offset(cfg: &OramConfig) -> u64 {
    let sets = cfg.hot_cache_sets.max(1) as u64;
    let page = cfg.plb_page_addrs.max(1);
    // Both are powers of two in every shipped configuration; lcm via the
    // larger works then, and the product is a safe fallback otherwise.
    let candidate = sets.max(page);
    if candidate.is_multiple_of(sets) && candidate.is_multiple_of(page) {
        candidate * 16
    } else {
        sets * page * 16
    }
}

/// Runs `reqs` through a fresh controller with an attached recorder and
/// returns the captured trace plus the controller for post-mortems.
///
/// # Errors
///
/// Propagates configuration rejection from [`OramController::new`].
pub fn record_trace(
    cfg: OramConfig,
    reqs: &[Request],
) -> Result<(Vec<BusEvent>, OramController), String> {
    let rec = Recorder::unbounded();
    let mut ctl = OramController::new(cfg)?;
    ctl.set_observer(Some(rec.observer()));
    for &req in reqs {
        ctl.access(req);
    }
    ctl.set_observer(None);
    Ok((rec.snapshot(), ctl))
}

/// A single-touch read stream: `n` distinct addresses starting at
/// `base`, each accessed exactly once (no stash reuse, so every request
/// reaches the bus under every policy).
pub fn fresh_stream(n: u64, base: u64) -> Vec<Request> {
    (0..n).map(|i| Request::read(BlockAddr::new(base + i))).collect()
}

/// A round-robin read/write stream over a working set of `set` addresses
/// starting at `base` (every third request writes), exercising stash
/// hits, version bumps, and remaps.
pub fn reuse_stream(n: u64, set: u64, base: u64) -> Vec<Request> {
    assert!(set > 0);
    (0..n)
        .map(|i| {
            let addr = BlockAddr::new(base + i % set);
            if i % 3 == 2 {
                Request::write(addr, i)
            } else {
                Request::read(addr)
            }
        })
        .collect()
}

/// Shifts every address of `pattern` by `offset`, preserving operations
/// and payloads.
fn relabel(pattern: &[Request], offset: u64) -> Vec<Request> {
    pattern
        .iter()
        .map(|r| {
            let addr = BlockAddr::new(r.addr.raw() + offset);
            match r.op {
                Op::Read => Request::read(addr),
                Op::Write => Request::write(addr, r.data),
            }
        })
        .collect()
}

/// Index and values of the first difference between two traces, for
/// error messages.
fn first_diff(a: &[BusEvent], b: &[BusEvent]) -> String {
    if a.len() != b.len() {
        return format!("lengths differ: {} vs {}", a.len(), b.len());
    }
    match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(i) => format!("first difference at event {i}: {:?} vs {:?}", a[i], b[i]),
        None => "traces are identical".into(),
    }
}

/// Drops DRAM-invisible bucket events (tree levels below `treetop`) from
/// a trace, so a treetop-caching trace can be compared against a
/// full-depth baseline.
pub fn filter_treetop(events: &[BusEvent], treetop: u32) -> Vec<BusEvent> {
    events
        .iter()
        .copied()
        .filter(|e| match e {
            BusEvent::Bucket { bucket, .. } => {
                let level = 63 - bucket.leading_zeros().min(63);
                level >= treetop
            }
            _ => true,
        })
        .collect()
}

/// Verifies the paper's core security claim: on a fresh request stream,
/// every duplication policy produces a bus trace byte-identical to the
/// baseline's (and treetop caching produces exactly the baseline trace
/// with its on-chip levels removed).
///
/// # Errors
///
/// Names the first policy whose trace diverges, with the position and
/// values of the first differing event.
pub fn cross_policy_traces_identical(base: OramConfig, n: u64) -> Result<(), String> {
    let reqs = fresh_stream(n, 0);
    let baseline_cfg = PolicyUnderTest::Baseline.oram_config(base);
    let (baseline, _) = record_trace(baseline_cfg, &reqs)?;
    check_trace(&TraceSpec::from_oram(&baseline_cfg), &baseline)
        .map_err(|e| format!("baseline trace invalid: {e}"))?;

    for policy in [
        PolicyUnderTest::RdDup,
        PolicyUnderTest::HdDup,
        PolicyUnderTest::Dynamic,
        PolicyUnderTest::Xor,
    ] {
        let (trace, _) = record_trace(policy.oram_config(base), &reqs)?;
        if trace != baseline {
            return Err(format!(
                "policy {} diverges from baseline: {}",
                policy.name(),
                first_diff(&trace, &baseline)
            ));
        }
    }

    let tt_cfg = PolicyUnderTest::Treetop.oram_config(base);
    let (tt_trace, _) = record_trace(tt_cfg, &reqs)?;
    let expected = filter_treetop(&baseline, tt_cfg.treetop_levels);
    if tt_trace != expected {
        return Err(format!(
            "treetop trace is not the filtered baseline: {}",
            first_diff(&tt_trace, &expected)
        ));
    }
    Ok(())
}

/// Verifies relabeling identity at the controller level: running
/// `pattern` and its address-shifted twin through identically configured
/// controllers must produce byte-identical traces.
///
/// `offset` must be structure-preserving; pass [`relabel_offset`].
///
/// # Errors
///
/// Reports the first differing event.
pub fn relabeled_traces_identical(
    cfg: OramConfig,
    pattern: &[Request],
    offset: u64,
) -> Result<(), String> {
    let (a, _) = record_trace(cfg, pattern)?;
    let (b, _) = record_trace(cfg, &relabel(pattern, offset))?;
    if a != b {
        return Err(format!("relabeled trace diverges: {}", first_diff(&a, &b)));
    }
    check_trace(&TraceSpec::from_oram(&cfg), &a)
        .map_err(|e| format!("trace invalid: {e}"))?;
    Ok(())
}

/// Runs the distributional distinguisher: records the traces of two
/// different secret patterns under the same configuration and returns
/// the two-sample test over their observed leaf sequences. A `pass`
/// means the adversary failed to distinguish them.
///
/// # Errors
///
/// Propagates structural violations in either trace — a distribution
/// comparison over malformed traces would be meaningless.
pub fn distribution_distinguisher(
    cfg: OramConfig,
    pattern_a: &[Request],
    pattern_b: &[Request],
) -> Result<GofTest, String> {
    let spec = TraceSpec::from_oram(&cfg);
    let (ta, _) = record_trace(cfg, pattern_a)?;
    let (tb, _) = record_trace(cfg, pattern_b)?;
    let la = check_trace(&spec, &ta)?.leaves;
    let lb = check_trace(&spec, &tb)?.leaves;
    let domain = 1u64 << cfg.levels;
    let samples = la.len().min(lb.len());
    // Keep the expected count per bin ≥ ~8 so the chi-square
    // approximation holds on short fuzz runs.
    let bins = (samples / 8).next_power_of_two().clamp(4, 64);
    Ok(chi_square_two_sample(
        &bin_counts(&la, domain, bins),
        &bin_counts(&lb, domain, bins),
    ))
}

/// End-to-end relabeling identity under timing protection: two engines
/// with dummy injection at `period` CPU cycles replay a miss stream and
/// its relabeled twin; the full bus traces — controller framing *and*
/// device-level DRAM block requests — must be byte-identical.
///
/// # Errors
///
/// Reports configuration rejection, trace divergence, or a structural
/// violation in the (valid) trace.
pub fn timing_protected_relabeled_identical(
    base: SystemConfig,
    policy: PolicyUnderTest,
    misses: &[oram_cpu::MissRecord],
    period: u64,
) -> Result<(), String> {
    let cfg = policy.system_config(base).with_timing_protection(period);
    let offset = relabel_offset(&cfg.oram);

    let run = |shift: u64| -> Result<Vec<BusEvent>, String> {
        let rec = Recorder::unbounded();
        let mut engine = Engine::new(cfg.clone())?;
        engine.attach_bus_observer(rec.observer());
        let shifted: Vec<oram_cpu::MissRecord> = misses
            .iter()
            .map(|m| oram_cpu::MissRecord { block_addr: m.block_addr + shift, ..*m })
            .collect();
        engine.run(&mut oram_cpu::ReplayMisses::new(shifted));
        engine.detach_bus_observer();
        Ok(rec.snapshot())
    };

    let a = run(0)?;
    let b = run(offset)?;
    if a != b {
        return Err(format!(
            "timing-protected relabeled trace diverges ({}): {}",
            policy.name(),
            first_diff(&a, &b)
        ));
    }
    check_trace(&TraceSpec::from_oram(&cfg.oram), &a)
        .map_err(|e| format!("timing-protected trace invalid: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_cover_all_six_and_configs_validate() {
        let base = OramConfig::small_test();
        for p in PolicyUnderTest::ALL {
            p.oram_config(base).validate().unwrap();
            assert!(!p.name().is_empty());
        }
        assert_eq!(PolicyUnderTest::ALL.len(), 6);
    }

    #[test]
    fn cross_policy_identity_on_default_test_config() {
        cross_policy_traces_identical(OramConfig::small_test(), 256).unwrap();
    }

    #[test]
    fn relabeling_is_invisible_for_every_policy() {
        let base = OramConfig::small_test();
        let pattern = reuse_stream(400, 48, 1);
        for p in PolicyUnderTest::ALL {
            let cfg = p.oram_config(base);
            relabeled_traces_identical(cfg, &pattern, relabel_offset(&cfg))
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        }
    }

    #[test]
    fn non_preserving_relabeling_may_diverge_but_stays_valid() {
        // A shift that breaks hot-cache set alignment is allowed to change
        // the trace (publicly indexed metadata collides differently), but
        // whatever trace comes out must still satisfy every invariant.
        let cfg = PolicyUnderTest::HdDup.oram_config(OramConfig::small_test());
        let pattern = reuse_stream(400, 48, 1);
        let (t, _) = record_trace(cfg, &relabel(&pattern, 3)).unwrap();
        check_trace(&TraceSpec::from_oram(&cfg), &t).unwrap();
    }

    #[test]
    fn different_patterns_are_indistinguishable_in_distribution() {
        let cfg = OramConfig::small_test();
        let hot = reuse_stream(900, 8, 1); // pathological locality
        let wide = reuse_stream(900, 96, 500); // wide scan
        let test = distribution_distinguisher(cfg, &hot, &wide).unwrap();
        assert!(test.pass, "{test:?}");
    }
}

//! # oram-audit
//!
//! Bus-trace capture and obliviousness verification for the Shadow Block
//! reproduction.
//!
//! The paper's security argument (Sec. IV-B) is that RD-Dup/HD-Dup
//! duplication only changes *ciphertext contents*: the DRAM-visible
//! address and direction trace is the Tiny ORAM baseline's. Nothing in a
//! performance-focused codebase keeps that true by construction, so this
//! crate mechanically verifies it, in four layers:
//!
//! 1. **Capture** — [`Recorder`], a ring-buffer [`oram_util::BusObserver`]
//!    that both the controller and the DRAM model accept. Detached, the
//!    hook is one branch on `None`; the protocol zero-alloc bench gate
//!    still passes with the hooks compiled in.
//! 2. **Structural invariants** — [`check_trace`] replays a captured
//!    trace against the protocol grammar: every access reads exactly the
//!    declared path buckets root→leaf in layout order, eviction writes
//!    rewrite exactly the buckets read, evictions follow the
//!    reverse-lexicographic order at the configured cadence, and
//!    device-level DRAM requests expand each bucket to the same `z`
//!    physical blocks every time. The [`posmap`] module supplies the
//!    matching grammar for the recursive position map's own traffic
//!    ([`check_posmap_trace`]) plus the flat-identity diff over the
//!    data subsequence ([`recursive_flat_data_identity`]).
//! 3. **Statistical tests** — hand-rolled [`chi_square_uniform`] /
//!    [`ks_uniform`] over the observed leaf distribution, and the
//!    [`distinguisher`] harness: two different secret access patterns
//!    must produce traces equal in distribution, and address-relabeled
//!    patterns must produce *byte-identical* traces (also end-to-end
//!    under timing protection).
//! 4. **Fuzz driver** — [`run_audit`] sweeps random configurations ×
//!    synthetic workloads × all six policies (Baseline/RD/HD/Dynamic/
//!    XOR/Treetop) under the auditor, and drives the multi-client
//!    service front-end (MSHR coalescing + batch scheduling) through
//!    [`check_service_trace`] across every scheduler policy, including
//!    a client-mix distinguisher; `repro audit [--quick]` surfaces it
//!    on the command line and in CI.
//!
//! The companion tests in `tests/mutants.rs` inject deliberate protocol
//! faults (a skipped bucket rewrite, a biased remap) behind the
//! `mutants` cargo feature and prove each layer actually catches its
//! class of regression.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distinguisher;
pub mod fuzz;
pub mod invariants;
pub mod posmap;
pub mod recorder;
pub mod stats;

pub use distinguisher::{
    cross_policy_traces_identical, distribution_distinguisher, filter_treetop, fresh_stream,
    record_trace, relabel_offset, relabeled_traces_identical, reuse_stream,
    timing_protected_relabeled_identical, PolicyUnderTest,
};
pub use fuzz::{check_service_trace, run_audit, AuditFailure, AuditOptions, AuditReport};
pub use invariants::{check_trace, TraceSpec, TraceSummary};
pub use posmap::{
    check_posmap_trace, recursive_flat_data_identity, strip_posmap_events, PosmapSummary,
};
pub use recorder::{Recorder, TraceBuffer};
pub use stats::{bin_counts, chi_square_two_sample, chi_square_uniform, ks_uniform, GofTest};

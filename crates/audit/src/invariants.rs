//! Structural invariant checking: replaying a captured bus trace against
//! the protocol grammar.
//!
//! Everything verified here is *publicly* derivable — the checker never
//! consults a secret. That is the point: if the checker can predict the
//! trace's structure from the configuration alone, the structure leaks
//! nothing about the access pattern.

use std::collections::{HashMap, VecDeque};

use oram_protocol::{EvictionOrder, OramConfig};
use oram_util::{BusEvent, BusPhase};

/// The publicly known parameters a trace is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Tree depth `L` (leaf level index).
    pub levels: u32,
    /// Block slots per bucket.
    pub z: usize,
    /// On-chip treetop levels (excluded from the bus).
    pub treetop_levels: u32,
    /// Eviction rate `A`: one eviction per `A − 1` path reads.
    pub eviction_rate: u32,
}

impl TraceSpec {
    /// The spec corresponding to a controller configuration.
    pub fn from_oram(cfg: &OramConfig) -> Self {
        TraceSpec {
            levels: cfg.levels,
            z: cfg.z,
            treetop_levels: cfg.treetop_levels,
            eviction_rate: cfg.eviction_rate,
        }
    }

    /// DRAM-visible buckets in every phase.
    fn buckets_per_phase(&self) -> usize {
        (self.levels + 1 - self.treetop_levels) as usize
    }
}

/// What a structurally valid trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Path-touching accesses (stash hits never reach the bus).
    pub accesses: u64,
    /// Read-only path reads.
    pub path_reads: u64,
    /// Evictions (read + write path pairs).
    pub evictions: u64,
    /// Device-level DRAM block requests seen (0 for controller-only
    /// traces).
    pub dram_blocks: u64,
    /// The observed leaf of every read-only path read, in order — the
    /// raw material for the statistical layer.
    pub leaves: Vec<u64>,
}

fn level_of(bucket: u64) -> u32 {
    63 - (bucket.leading_zeros().min(63))
}

/// Checks a captured trace against every structural invariant of the
/// protocol, returning a summary of what it contained.
///
/// The trace must start at controller creation (the eviction-order and
/// cadence checks replay the schedule from its origin) and must be
/// complete — ring-truncated traces are for failure reporting, not
/// checking.
///
/// Verified invariants:
/// * event grammar: phases nest inside accesses, buckets inside phases;
/// * phase sequence per access: a read-only read, optionally followed by
///   exactly one eviction read + eviction write pair;
/// * every phase touches exactly `L + 1 − treetop` buckets, root-side
///   first, each the tree child of its predecessor, ending at a leaf —
///   and therefore the request count per access is a constant of the
///   configuration, identical across all policies;
/// * read/write direction matches the phase kind;
/// * the eviction write rewrites exactly the buckets the eviction read
///   loaded;
/// * evictions follow the reverse-lexicographic leaf order, one per
///   `A − 1` path reads, never early and never late;
/// * device-level DRAM requests (when captured) expand each bucket into
///   exactly `z` block requests with the matching direction, and every
///   bucket maps to the same physical block addresses every time it is
///   touched.
///
/// # Errors
///
/// Returns a description of the first violation, with enough context to
/// locate it in the trace.
pub fn check_trace(spec: &TraceSpec, events: &[BusEvent]) -> Result<TraceSummary, String> {
    let want_buckets = spec.buckets_per_phase();
    let leaf_count = 1u64 << spec.levels;
    let leaf_base = 1u64 << spec.levels;

    let mut summary = TraceSummary::default();
    let mut in_access = false;
    let mut phases_this_access = 0usize;
    let mut cur_phase: Option<BusPhase> = None;
    let mut cur_buckets: Vec<u64> = Vec::new();
    let mut last_evict_read: Vec<u64> = Vec::new();
    let mut ro_since_evict = 0u64;
    let mut evict_order = EvictionOrder::new(spec.levels);

    // Device-level bookkeeping: buckets awaiting their z block requests,
    // and the canonical bucket → physical-address mapping.
    let mut pending: VecDeque<(u64, bool)> = VecDeque::new();
    let mut consumed_of_front = 0usize;
    let mut front_addrs: Vec<u64> = Vec::new();
    let mut bucket_map: HashMap<u64, Vec<u64>> = HashMap::new();

    for (ix, &event) in events.iter().enumerate() {
        let err = |msg: String| -> Result<TraceSummary, String> {
            Err(format!("event {ix}: {msg}"))
        };
        match event {
            BusEvent::AccessStart => {
                if in_access {
                    return err("nested AccessStart".into());
                }
                in_access = true;
                phases_this_access = 0;
            }
            BusEvent::PhaseStart(kind) => {
                if !in_access || cur_phase.is_some() {
                    return err(format!("{kind:?} phase outside access framing"));
                }
                let expected = match phases_this_access {
                    0 => BusPhase::ReadOnly,
                    1 => BusPhase::EvictionRead,
                    2 => BusPhase::EvictionWrite,
                    n => return err(format!("access has more than {n} phases")),
                };
                if kind != expected {
                    return err(format!(
                        "phase {phases_this_access} of access is {kind:?}, expected {expected:?}"
                    ));
                }
                cur_phase = Some(kind);
                cur_buckets.clear();
            }
            BusEvent::Bucket { bucket, write } => {
                let Some(kind) = cur_phase else {
                    return err(format!("bucket {bucket} outside any phase"));
                };
                let want_write = kind == BusPhase::EvictionWrite;
                if write != want_write {
                    return err(format!(
                        "bucket {bucket} direction write={write} in {kind:?} phase"
                    ));
                }
                if bucket == 0 {
                    return err("bucket id 0 (heap indices start at 1)".into());
                }
                match cur_buckets.last() {
                    None => {
                        if level_of(bucket) != spec.treetop_levels {
                            return err(format!(
                                "phase starts at bucket {bucket} (level {}), expected the \
                                 first DRAM level {}",
                                level_of(bucket),
                                spec.treetop_levels
                            ));
                        }
                    }
                    Some(&prev) => {
                        if bucket / 2 != prev {
                            return err(format!(
                                "bucket {bucket} is not a tree child of {prev}: the path \
                                 must be issued root→leaf in layout order"
                            ));
                        }
                    }
                }
                cur_buckets.push(bucket);
                pending.push_back((bucket, want_write));
            }
            BusEvent::PhaseEnd(kind) => {
                if cur_phase != Some(kind) {
                    return err(format!("unbalanced PhaseEnd({kind:?})"));
                }
                if cur_buckets.len() != want_buckets {
                    return err(format!(
                        "{kind:?} phase touched {} buckets, expected {want_buckets}: the \
                         request count per access must be constant",
                        cur_buckets.len()
                    ));
                }
                let leaf = cur_buckets.last().expect("non-empty phase") - leaf_base;
                if leaf >= leaf_count {
                    return err(format!("path ends at non-leaf bucket (leaf {leaf})"));
                }
                match kind {
                    BusPhase::ReadOnly => {
                        summary.path_reads += 1;
                        ro_since_evict += 1;
                        summary.leaves.push(leaf);
                    }
                    BusPhase::EvictionRead => {
                        let expected = evict_order.next_leaf().raw();
                        if leaf != expected {
                            return err(format!(
                                "eviction read of leaf {leaf}, expected reverse-lexicographic \
                                 leaf {expected}"
                            ));
                        }
                        last_evict_read.clear();
                        last_evict_read.extend_from_slice(&cur_buckets);
                    }
                    BusPhase::EvictionWrite => {
                        if cur_buckets != last_evict_read {
                            return err(format!(
                                "eviction write path {cur_buckets:?} differs from the path \
                                 read {last_evict_read:?}"
                            ));
                        }
                    }
                }
                cur_phase = None;
                phases_this_access += 1;
            }
            BusEvent::AccessEnd => {
                if !in_access || cur_phase.is_some() {
                    return err("unbalanced AccessEnd".into());
                }
                match phases_this_access {
                    1 => {
                        if ro_since_evict >= u64::from(spec.eviction_rate - 1) {
                            return err(format!(
                                "eviction overdue: {ro_since_evict} path reads since the \
                                 last eviction (rate A = {})",
                                spec.eviction_rate
                            ));
                        }
                    }
                    3 => {
                        if ro_since_evict != u64::from(spec.eviction_rate - 1) {
                            return err(format!(
                                "eviction after {ro_since_evict} path reads, expected every \
                                 {} (rate A = {})",
                                spec.eviction_rate - 1,
                                spec.eviction_rate
                            ));
                        }
                        ro_since_evict = 0;
                        summary.evictions += 1;
                    }
                    n => return err(format!("access ended with {n} phases, expected 1 or 3")),
                }
                in_access = false;
                summary.accesses += 1;
            }
            BusEvent::PosmapBucket { .. } => {
                // Posmap-ORAM traffic has its own grammar (recursion-chain
                // paths, not data-tree paths) and is checked by the
                // dedicated posmap audit; the data-path checker skips it.
            }
            BusEvent::DramBlock { addr, write } => {
                // Device requests trail their bucket events (the engine
                // issues DRAM batches after the controller reports the
                // access), consumed here in FIFO order, z per bucket.
                summary.dram_blocks += 1;
                let Some(&(bucket, bucket_write)) = pending.front() else {
                    return err(format!("DRAM block {addr:#x} with no bucket awaiting it"));
                };
                if write != bucket_write {
                    return err(format!(
                        "DRAM block {addr:#x} direction write={write} under bucket {bucket} \
                         (write={bucket_write})"
                    ));
                }
                front_addrs.push(addr);
                consumed_of_front += 1;
                if consumed_of_front == spec.z {
                    match bucket_map.get(&bucket) {
                        None => {
                            bucket_map.insert(bucket, front_addrs.clone());
                        }
                        Some(known) if *known != front_addrs => {
                            return err(format!(
                                "bucket {bucket} mapped to {front_addrs:?}, previously \
                                 {known:?}: the layout must be a fixed public function"
                            ));
                        }
                        Some(_) => {}
                    }
                    pending.pop_front();
                    consumed_of_front = 0;
                    front_addrs.clear();
                }
            }
        }
    }

    if in_access || cur_phase.is_some() {
        return Err("trace ends inside an access".into());
    }
    if summary.dram_blocks > 0 && (!pending.is_empty() || consumed_of_front != 0) {
        return Err(format!(
            "trace ends with {} buckets still awaiting DRAM block requests",
            pending.len()
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use oram_protocol::{BlockAddr, OramController, Request};

    fn spec() -> (TraceSpec, OramConfig) {
        let cfg = OramConfig::small_test();
        (TraceSpec::from_oram(&cfg), cfg)
    }

    fn record(cfg: OramConfig, n: u64) -> Vec<BusEvent> {
        let rec = Recorder::unbounded();
        let mut ctl = OramController::new(cfg).unwrap();
        ctl.set_observer(Some(rec.observer()));
        for i in 0..n {
            ctl.access(Request::read(BlockAddr::new(i % 50)));
        }
        rec.snapshot()
    }

    #[test]
    fn honest_controller_trace_passes() {
        let (spec, cfg) = spec();
        let events = record(cfg, 300);
        let s = check_trace(&spec, &events).unwrap();
        assert!(s.accesses > 0);
        assert_eq!(s.path_reads, s.leaves.len() as u64);
        assert_eq!(s.evictions, s.path_reads / u64::from(spec.eviction_rate - 1));
        assert_eq!(s.dram_blocks, 0);
    }

    #[test]
    fn treetop_trace_passes_with_short_paths() {
        let (_, cfg) = spec();
        let cfg = cfg.with_treetop(3);
        let events = record(cfg, 200);
        let s = check_trace(&TraceSpec::from_oram(&cfg), &events).unwrap();
        assert!(s.path_reads > 0);
    }

    #[test]
    fn corrupted_traces_are_rejected() {
        let (spec, cfg) = spec();
        let events = record(cfg, 120);
        // Dropping any single structural event must break the grammar.
        for victim in [3usize, 10, 25] {
            let mut broken = events.clone();
            broken.remove(victim);
            assert!(check_trace(&spec, &broken).is_err(), "dropped event {victim}");
        }
        // Reordering two bucket events breaks layout order.
        let first_bucket = events
            .iter()
            .position(|e| matches!(e, BusEvent::Bucket { .. }))
            .unwrap();
        let mut swapped = events.clone();
        swapped.swap(first_bucket, first_bucket + 1);
        assert!(check_trace(&spec, &swapped).is_err());
        // A wrong-direction bucket is caught.
        let mut flipped = events;
        if let BusEvent::Bucket { bucket, .. } = flipped[first_bucket] {
            flipped[first_bucket] = BusEvent::Bucket { bucket, write: true };
        }
        assert!(check_trace(&spec, &flipped).is_err());
    }

    #[test]
    fn wrong_spec_is_rejected() {
        let (spec, cfg) = spec();
        let events = record(cfg, 60);
        let mut wrong = spec;
        wrong.eviction_rate += 1;
        assert!(check_trace(&wrong, &events).is_err(), "cadence mismatch");
        let mut wrong = spec;
        wrong.treetop_levels = 2;
        assert!(check_trace(&wrong, &events).is_err(), "path length mismatch");
    }
}

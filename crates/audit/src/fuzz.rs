//! The audit driver: a deterministic, seeded sweep of configurations ×
//! workloads × policies through every verification layer.
//!
//! [`run_audit`] is what `repro audit [--quick]` and the CI gate run.
//! Everything is derived from [`AuditOptions::seed`], so a failing case
//! reproduces exactly from its report line.

use oram_cpu::{MissRecord, ReplayMisses};
use oram_obsv::{
    render_prometheus, render_slo_json, FlightConfig, IncidentMeta, LiveConfig, LivePlane,
};
use oram_protocol::{OramConfig, PosMapSelect, Request};
use oram_service::{AddressMix, SchedPolicy, ServiceConfig, ServiceResult, ServiceSim};
use oram_sim::{
    DiskBackend, DiskConfig, Engine, ShardRequest, ShardedOram, StorageBackend, SystemConfig,
    WanBackend, WanConfig,
};
use oram_util::{BusEvent, LiveObserver, Rng64};

use crate::distinguisher::{
    cross_policy_traces_identical, distribution_distinguisher, fresh_stream, record_trace,
    relabel_offset, relabeled_traces_identical, reuse_stream,
    timing_protected_relabeled_identical, PolicyUnderTest,
};
use crate::invariants::{check_trace, TraceSpec};
use crate::posmap::{check_posmap_trace, recursive_flat_data_identity, strip_posmap_events};
use crate::recorder::Recorder;
use crate::stats::{bin_counts, chi_square_two_sample, chi_square_uniform, ks_uniform};

/// Tuning knobs of one audit run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOptions {
    /// Master seed; every configuration, workload, and RNG below derives
    /// from it.
    pub seed: u64,
    /// Number of randomized configuration cases.
    pub cases: u32,
    /// Accesses per experiment (before stash filtering).
    pub accesses: u64,
}

impl AuditOptions {
    /// The CI gate: small enough to finish in tens of seconds.
    pub fn quick() -> Self {
        AuditOptions { seed: 0x5EED_A0D1, cases: 6, accesses: 1200 }
    }

    /// The thorough sweep `repro audit` runs by default.
    pub fn full() -> Self {
        AuditOptions { seed: 0x5EED_A0D1, cases: 24, accesses: 4000 }
    }

    /// Builder-style: replaces the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One failed check, with enough context to reproduce and debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFailure {
    /// Which check failed (includes the policy/config/seed).
    pub case: String,
    /// What went wrong.
    pub error: String,
    /// The tail of the offending bus trace (empty when the failing check
    /// does not expose a trace).
    pub window: String,
}

/// The outcome of [`run_audit`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Total checks executed.
    pub checks: u64,
    /// One human-readable line per passed check group.
    pub lines: Vec<String>,
    /// Every failed check.
    pub failures: Vec<AuditFailure>,
}

impl AuditReport {
    /// `true` when every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report (the CLI prints this; CI archives it on
    /// failure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str("ok   ");
            out.push_str(line);
            out.push('\n');
        }
        for f in &self.failures {
            out.push_str("FAIL ");
            out.push_str(&f.case);
            out.push_str(": ");
            out.push_str(&f.error);
            out.push('\n');
            if !f.window.is_empty() {
                out.push_str("     trace tail:\n");
                for l in f.window.lines() {
                    out.push_str("       ");
                    out.push_str(l);
                    out.push('\n');
                }
            }
        }
        out.push_str(&format!(
            "oram-audit: {} checks, {} failures — {}\n",
            self.checks,
            self.failures.len(),
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    fn ok(&mut self, line: String) {
        self.checks += 1;
        self.lines.push(line);
    }

    fn fail(&mut self, case: String, error: String, window: String) {
        self.checks += 1;
        self.failures.push(AuditFailure { case, error, window });
    }

    fn check(&mut self, case: String, result: Result<(), String>, window: impl FnOnce() -> String) {
        match result {
            Ok(()) => self.ok(case),
            Err(e) => self.fail(case, e, window()),
        }
    }
}

/// Formats the last events of a trace for failure reports.
fn window_of(events: &[BusEvent]) -> String {
    let tail = events.len().saturating_sub(64);
    events[tail..]
        .iter()
        .enumerate()
        .map(|(i, e)| format!("{:>7}: {e:?}", tail + i))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Leaf-uniformity checks sized to the sample: chi-square always (with
/// adaptive binning), KS when the leaf domain is small enough to walk.
fn leaf_uniformity(leaves: &[u64], levels: u32) -> Result<(), String> {
    if leaves.len() < 128 {
        return Err(format!("only {} bus-visible path reads: sample too small", leaves.len()));
    }
    let domain = 1u64 << levels;
    let bins = (leaves.len() as u64 / 16).next_power_of_two().min(64).clamp(4, domain);
    let chi = chi_square_uniform(&bin_counts(leaves, domain, bins as usize));
    if !chi.pass {
        return Err(format!(
            "leaf distribution rejected by {} ({:.2} > {:.2})",
            chi.name, chi.statistic, chi.critical
        ));
    }
    if domain <= 4096 {
        let ks = ks_uniform(leaves, domain);
        if !ks.pass {
            return Err(format!(
                "leaf distribution rejected by {} ({:.4} > {:.4})",
                ks.name, ks.statistic, ks.critical
            ));
        }
    }
    Ok(())
}

/// Audits a service-issued bus trace: structural invariants always, and
/// leaf uniformity whenever the trace carries enough bus-visible path
/// reads for the tests to have power (128; below that the statistical
/// layer is skipped, not failed — short `--quick` runs stay meaningful).
///
/// This is the check suite `repro serve` runs on its own trace and the
/// service section of [`run_audit`] runs per scheduler policy. The
/// coalescing front-end merges requests *before* the ORAM issue point,
/// so a service-issued trace must satisfy exactly the same grammar and
/// leaf statistics as a directly driven controller.
///
/// # Errors
///
/// Returns the structural violation or the failed statistical test.
pub fn check_service_trace(
    cfg: &OramConfig,
    events: &[BusEvent],
) -> Result<crate::invariants::TraceSummary, String> {
    let summary = check_trace(&TraceSpec::from_oram(cfg), events)?;
    if summary.leaves.len() >= 128 {
        leaf_uniformity(&summary.leaves, cfg.levels)?;
    }
    Ok(summary)
}

/// Runs a full trace audit of one (config, workload) pair: structural
/// check, leaf uniformity, and the stash bound.
fn audit_one(
    report: &mut AuditReport,
    case: String,
    cfg: OramConfig,
    reqs: &[Request],
) {
    let (events, ctl) = match record_trace(cfg, reqs) {
        Ok(r) => r,
        Err(e) => {
            report.fail(case, format!("controller rejected config: {e}"), String::new());
            return;
        }
    };
    let summary = match check_trace(&TraceSpec::from_oram(&cfg), &events) {
        Ok(s) => s,
        Err(e) => {
            report.fail(case, e, window_of(&events));
            return;
        }
    };
    let max_live = ctl.stash_stats().max_live;
    if max_live > cfg.stash_capacity {
        report.fail(
            case,
            format!("stash peaked at {max_live} blocks, capacity {}", cfg.stash_capacity),
            window_of(&events),
        );
        return;
    }
    match leaf_uniformity(&summary.leaves, cfg.levels) {
        Ok(()) => report.ok(format!(
            "{case}: {} accesses, {} evictions, stash peak {max_live}",
            summary.accesses, summary.evictions
        )),
        Err(e) => report.fail(case, e, window_of(&events)),
    }
}

/// A deterministic synthetic workload over a bounded working set.
fn workload(kind: u32, n: u64, working_set: u64, rng: &mut Rng64) -> Vec<Request> {
    use oram_protocol::BlockAddr;
    let ws = working_set.max(4);
    (0..n)
        .map(|i| {
            let addr = match kind % 3 {
                0 => rng.below(ws),                                     // uniform
                1 if rng.below(10) < 9 => rng.below((ws / 8).max(1)),   // hot set
                1 => rng.below(ws),                                     // cold tail
                _ => i % ws,                                            // sequential
            };
            let addr = BlockAddr::new(addr + 1);
            if i % 5 == 4 {
                Request::write(addr, i)
            } else {
                Request::read(addr)
            }
        })
        .collect()
}

fn workload_name(kind: u32) -> &'static str {
    match kind % 3 {
        0 => "uniform",
        1 => "hot-cold",
        _ => "sequential",
    }
}

/// A miss stream for engine-level experiments: blocking reads with
/// deterministic pseudo-random gaps (long enough that timing protection
/// injects dummies).
fn miss_stream(n: u64, working_set: u64, rng: &mut Rng64) -> Vec<MissRecord> {
    (0..n)
        .map(|i| MissRecord {
            block_addr: rng.below(working_set) + 1,
            is_write: i % 7 == 6,
            gap_cycles: 40 + rng.below(2200),
            blocking: true,
        })
        .collect()
}

/// Drives a [`ServiceSim`] over a fresh engine with a recorder attached
/// and returns the captured bus trace plus the bookkeeping the service
/// checks need: the validated result, the engine-level stash peak, and
/// the ORAM configuration the trace must be checked against.
fn service_trace(
    sys: &SystemConfig,
    cfg: ServiceConfig,
) -> Result<(Vec<BusEvent>, ServiceResult, u64, OramConfig), String> {
    let rec = Recorder::unbounded();
    let mut engine =
        Engine::new(sys.clone()).map_err(|e| format!("engine rejected config: {e}"))?;
    engine.prefill_working_set(cfg.address_span());
    engine.attach_bus_observer(rec.observer());
    let mut sim = ServiceSim::new(cfg, engine)?;
    sim.run();
    let (res, mut engine) = sim.finish();
    engine.detach_bus_observer();
    res.validate()?;
    let stash_max = engine.stash_occupancy().max() as u64;
    Ok((rec.snapshot(), res, stash_max, engine.config().oram))
}

/// Drives one batch of workload through a fresh sharded backend with a
/// recorder on every shard. Returns each shard's `(config, trace)` pair,
/// the dispatch counts, and the completion sequence: the shard index of
/// every request, ordered by the backend cycle its access finished (ties
/// broken by shard index, so the sequence is deterministic).
#[allow(clippy::type_complexity)]
fn sharded_run(
    sys: &SystemConfig,
    shards: usize,
    working_set: u64,
    reqs: &[ShardRequest],
) -> Result<(Vec<(OramConfig, Vec<BusEvent>)>, Vec<u64>, Vec<u64>), String> {
    let mut backend = ShardedOram::new(sys.clone(), shards, 2)?;
    backend.prefill_working_set(working_set);
    let recs: Vec<Recorder> = (0..shards).map(|_| Recorder::unbounded()).collect();
    for (i, rec) in recs.iter().enumerate() {
        backend.engine_mut(i).attach_bus_observer(rec.observer());
    }
    let mut outs = Vec::new();
    let mut completions: Vec<(u64, u64)> = Vec::with_capacity(reqs.len());
    for chunk in reqs.chunks(32) {
        backend.serve_batch(chunk, &mut outs);
        for (r, o) in chunk.iter().zip(&outs) {
            completions.push((o.end, backend.shard_of(r.addr) as u64));
        }
    }
    let mut traces = Vec::with_capacity(shards);
    for (i, rec) in recs.iter().enumerate() {
        let engine = backend.engine_mut(i);
        engine.detach_bus_observer();
        traces.push((engine.config().oram, rec.snapshot()));
    }
    completions.sort_unstable();
    let sequence = completions.into_iter().map(|(_, shard)| shard).collect();
    Ok((traces, backend.dispatch_counts().to_vec(), sequence))
}

/// Replays `misses` through a fresh engine with a recorder attached and
/// returns the captured bus trace plus the ORAM configuration it must be
/// checked against. Shared by the storage-backend invariance section:
/// the same function drives every backend, so any trace difference is
/// the backend's.
fn backend_trace<B: StorageBackend>(
    mut engine: Engine<B>,
    working_set: u64,
    misses: &[MissRecord],
) -> (Vec<BusEvent>, OramConfig) {
    let rec = Recorder::unbounded();
    engine.prefill_working_set(working_set);
    engine.attach_bus_observer(rec.observer());
    engine.run(&mut ReplayMisses::new(misses.to_vec()));
    engine.detach_bus_observer();
    (rec.snapshot(), engine.config().oram)
}

/// A random but always-valid controller configuration.
fn random_config(rng: &mut Rng64) -> OramConfig {
    let mut cfg = OramConfig::small_test();
    cfg.levels = 5 + rng.below(5) as u32; // 5..=9
    cfg.z = 2 + rng.below(4) as usize; // 2..=5
    cfg.eviction_rate = 3 + rng.below(3) as u32; // 3..=5
    cfg.treetop_levels = rng.below(3) as u32; // 0..=2
    cfg.stash_capacity = cfg.z * (cfg.levels as usize + 1) + 64;
    cfg.hot_cache_sets = 8 << rng.below(2); // 8 or 16
    cfg.hot_cache_ways = 1 + rng.below(2) as usize;
    cfg.plb_page_addrs = 8 << rng.below(2);
    cfg.seed = rng.next_u64();
    cfg
}

/// Executes the whole audit: the default-config six-policy suite, the
/// byte-identity experiments, randomized configuration cases, the
/// engine-level (DRAM + timing protection) checks, the service
/// front-end sweep (every scheduler policy plus a client-mix
/// distinguisher over coalesced, batch-scheduled traffic), and the
/// recursive-posmap section (posmap-traffic grammar, flat data
/// identity, and relabeling invariance of the combined stream).
pub fn run_audit(opts: &AuditOptions) -> AuditReport {
    let mut report = AuditReport::default();
    let mut rng = Rng64::seed_from_u64(opts.seed);

    // ---- 1. Default configuration, all six policies. -------------------
    let default_oram = SystemConfig::scaled_default().oram;
    for policy in PolicyUnderTest::ALL {
        let cfg = policy.oram_config(default_oram).with_seed(opts.seed ^ 0xC0FF_EE00);
        let reqs = reuse_stream(opts.accesses, 256, 1);
        audit_one(
            &mut report,
            format!("default/{} (seed {:#x})", policy.name(), opts.seed),
            cfg,
            &reqs,
        );
    }

    // ---- 2. Byte-identity experiments. ---------------------------------
    let small = OramConfig::small_test().with_seed(opts.seed ^ 0x1D);
    let fresh_n = opts.accesses.min(250);
    report.check(
        format!("cross-policy identity ({fresh_n} fresh accesses)"),
        cross_policy_traces_identical(small, fresh_n),
        String::new,
    );

    let pattern = reuse_stream(opts.accesses.min(800), 48, 1);
    for policy in PolicyUnderTest::ALL {
        let cfg = policy.oram_config(small);
        report.check(
            format!("relabeling identity/{}", policy.name()),
            relabeled_traces_identical(cfg, &pattern, relabel_offset(&cfg)),
            String::new,
        );
    }

    // ---- 3. Randomized configuration cases. ----------------------------
    for case in 0..opts.cases {
        let cfg = random_config(&mut rng);
        if let Err(e) = cfg.validate() {
            report.fail(
                format!("case {case}: random config"),
                format!("generator produced an invalid config: {e}"),
                String::new(),
            );
            continue;
        }
        let policy = PolicyUnderTest::ALL[case as usize % PolicyUnderTest::ALL.len()];
        let cfg = policy.oram_config(cfg);
        let ws = (1u64 << cfg.levels) / 2;
        let kind = case;
        let reqs = workload(kind, opts.accesses, ws, &mut rng);
        audit_one(
            &mut report,
            format!(
                "case {case}: {} L={} z={} A={} tt={} {} (seed {:#x})",
                policy.name(),
                cfg.levels,
                cfg.z,
                cfg.eviction_rate,
                cfg.treetop_levels,
                workload_name(kind),
                cfg.seed,
            ),
            cfg,
            &reqs,
        );

        // Distributional distinguisher: the same configuration must hide
        // a locality change from kind to kind+1.
        if case % 2 == 0 {
            let a = workload(kind, opts.accesses, ws, &mut rng);
            let b = workload(kind + 1, opts.accesses, ws, &mut rng);
            let case_name = format!(
                "case {case}: distinguisher {} vs {}",
                workload_name(kind),
                workload_name(kind + 1)
            );
            match distribution_distinguisher(cfg, &a, &b) {
                Ok(t) if t.pass => report.ok(format!(
                    "{case_name} ({} {:.2} <= {:.2})",
                    t.name, t.statistic, t.critical
                )),
                Ok(t) => report.fail(
                    case_name,
                    format!(
                        "workloads distinguishable: {} {:.2} > {:.2}",
                        t.name, t.statistic, t.critical
                    ),
                    String::new(),
                ),
                Err(e) => report.fail(case_name, e, String::new()),
            }
        }
    }

    // ---- 4. Engine level: DRAM expansion + timing protection. ----------
    let sys = SystemConfig::small_test();
    let misses = miss_stream(opts.accesses.min(400), 64, &mut rng);
    for policy in PolicyUnderTest::ALL {
        report.check(
            format!("timing-protected relabeling identity/{}", policy.name()),
            timing_protected_relabeled_identical(sys.clone(), policy, &misses, 800),
            String::new,
        );
    }

    let rec = Recorder::unbounded();
    let case = "engine/dram-expansion".to_string();
    match Engine::new(sys) {
        Ok(mut engine) => {
            engine.attach_bus_observer(rec.observer());
            engine.run(&mut ReplayMisses::new(misses));
            engine.detach_bus_observer();
            let events = rec.snapshot();
            let spec = TraceSpec::from_oram(&engine.config().oram);
            match check_trace(&spec, &events) {
                Ok(s) if s.dram_blocks > 0 => {
                    let hist = engine.stash_occupancy();
                    report.ok(format!(
                        "{case}: {} DRAM blocks over {} accesses, stash max {} p99.9 {}",
                        s.dram_blocks,
                        s.accesses,
                        hist.max(),
                        hist.p999()
                    ));
                }
                Ok(_) => report.fail(
                    case,
                    "engine run produced no DRAM block events".into(),
                    window_of(&events),
                ),
                Err(e) => report.fail(case, e, window_of(&events)),
            }
        }
        Err(e) => report.fail(case, format!("engine rejected config: {e}"), String::new()),
    }

    // ---- 5. Service front-end: scheduler sweep + client-mix hiding. ----
    let sys = SystemConfig::small_test();
    let per_client = (opts.accesses / 8).clamp(150, 600);
    let svc_seed = opts.seed ^ 0x5E57_1CE0;
    for policy in SchedPolicy::ALL {
        let case = format!("service/{} (seed {svc_seed:#x})", policy.name());
        let mut cfg = ServiceConfig::symmetric_open(4, per_client, 300.0, 256, svc_seed);
        cfg.scheduler = policy;
        match service_trace(&sys, cfg) {
            Ok((events, res, stash_max, oram)) => {
                if stash_max > oram.stash_capacity as u64 {
                    report.fail(
                        case,
                        format!(
                            "stash peaked at {stash_max} blocks, capacity {}",
                            oram.stash_capacity
                        ),
                        window_of(&events),
                    );
                    continue;
                }
                match check_service_trace(&oram, &events) {
                    Ok(s) => report.ok(format!(
                        "{case}: {} bus accesses for {} completed ({} coalesced, {} rejected), stash peak {stash_max}",
                        s.accesses,
                        res.completed(),
                        res.coalesced(),
                        res.rejected()
                    )),
                    Err(e) => report.fail(case, e, window_of(&events)),
                }
            }
            Err(e) => report.fail(case, e, String::new()),
        }
    }

    // Client-mix distinguisher: a skewed tenant mix must not shift the
    // bus-visible leaf distribution relative to a uniform one, even
    // through coalescing and batch scheduling.
    {
        let case = "service/mix-distinguisher zipfian vs uniform".to_string();
        let mix_leaves = |mix: AddressMix, seed: u64| -> Result<Vec<u64>, String> {
            let mut cfg = ServiceConfig::symmetric_open(4, per_client, 300.0, 256, seed);
            for client in &mut cfg.clients {
                client.addresses = mix;
            }
            let (events, _res, _stash, oram) = service_trace(&sys, cfg)?;
            Ok(check_trace(&TraceSpec::from_oram(&oram), &events)?.leaves)
        };
        let a = mix_leaves(AddressMix::Zipfian { domain: 256, theta: 0.99 }, svc_seed ^ 0xA);
        let b = mix_leaves(AddressMix::Uniform { domain: 256 }, svc_seed ^ 0xB);
        match (a, b) {
            (Ok(a), Ok(b)) if a.len() >= 128 && b.len() >= 128 => {
                let domain = 1u64 << sys.oram.levels;
                let t =
                    chi_square_two_sample(&bin_counts(&a, domain, 32), &bin_counts(&b, domain, 32));
                if t.pass {
                    report
                        .ok(format!("{case} ({} {:.2} <= {:.2})", t.name, t.statistic, t.critical));
                } else {
                    report.fail(
                        case,
                        format!(
                            "client mixes distinguishable: {} {:.2} > {:.2}",
                            t.name, t.statistic, t.critical
                        ),
                        String::new(),
                    );
                }
            }
            (Ok(a), Ok(b)) => report.fail(
                case,
                format!("bus samples too small: {} vs {} path reads", a.len(), b.len()),
                String::new(),
            ),
            (Err(e), _) | (_, Err(e)) => report.fail(case, e, String::new()),
        }
    }

    // ---- 6. Sharded backend: per-shard traces + cross-shard hiding. ----
    //
    // The shard map (`addr mod M`) is public-by-design; what must not
    // leak is anything beyond it. Three layers: every shard's bus trace
    // must independently satisfy the full ORAM grammar and leaf
    // statistics; a uniform address mix must spread across shards
    // uniformly; and the interleaving/timing of shard completions must
    // depend only on the dispatch counts, not on *which* addresses map
    // where — checked by permuting the shard-local halves of every
    // address (dispatch profile preserved exactly) and comparing the
    // (completion-window × shard) distributions of the two runs.
    {
        let sys = SystemConfig::small_test();
        let shards = 4usize;
        let ws = 256u64;
        let shard_seed = opts.seed ^ 0x51AB_D0CE;
        let mut wrng = Rng64::seed_from_u64(shard_seed);
        let reqs_a: Vec<ShardRequest> = (0..opts.accesses)
            .map(|i| ShardRequest {
                addr: wrng.below(ws),
                write: i % 5 == 4,
                arrival: i * 60,
            })
            .collect();
        // Same multiset of `addr mod M` (so identical dispatch), every
        // shard-local address permuted.
        let local_span = ws / shards as u64;
        let reqs_b: Vec<ShardRequest> = reqs_a
            .iter()
            .map(|r| {
                let permuted = (r.addr / shards as u64).wrapping_mul(13).wrapping_add(7)
                    % local_span;
                ShardRequest { addr: permuted * shards as u64 + r.addr % shards as u64, ..*r }
            })
            .collect();

        let run_a = sharded_run(&sys, shards, ws, &reqs_a);
        let run_b = sharded_run(&sys, shards, ws, &reqs_b);
        match (run_a, run_b) {
            (Ok((traces, dispatch_a, seq_a)), Ok((_, dispatch_b, seq_b))) => {
                for (i, (cfg, events)) in traces.iter().enumerate() {
                    let case = format!("sharded/shard {i}/{shards} trace (seed {shard_seed:#x})");
                    match check_service_trace(cfg, events) {
                        Ok(s) if s.accesses > 0 => report.ok(format!(
                            "{case}: {} accesses, {} evictions",
                            s.accesses, s.evictions
                        )),
                        Ok(_) => report.fail(
                            case,
                            "shard saw no traffic under a uniform mix".into(),
                            String::new(),
                        ),
                        Err(e) => report.fail(case, e, window_of(events)),
                    }
                }

                let case = format!(
                    "sharded/dispatch uniformity ({} uniform requests over {shards} shards)",
                    opts.accesses
                );
                let t = chi_square_uniform(&dispatch_a);
                if t.pass {
                    report
                        .ok(format!("{case} ({} {:.2} <= {:.2})", t.name, t.statistic, t.critical));
                } else {
                    report.fail(
                        case,
                        format!(
                            "uniform mix loads shards unevenly: {} {:.2} > {:.2} ({dispatch_a:?})",
                            t.name, t.statistic, t.critical
                        ),
                        String::new(),
                    );
                }

                let case = "sharded/completion-interleaving distinguisher".to_string();
                if dispatch_a != dispatch_b {
                    report.fail(
                        case,
                        format!(
                            "local permutation changed the dispatch profile: {dispatch_a:?} vs {dispatch_b:?}"
                        ),
                        String::new(),
                    );
                } else {
                    let windows = 8u64;
                    let domain = windows * shards as u64;
                    let encode = |seq: &[u64]| -> Vec<u64> {
                        seq.iter()
                            .enumerate()
                            .map(|(rank, &s)| {
                                (rank as u64 * windows / seq.len() as u64) * shards as u64 + s
                            })
                            .collect()
                    };
                    let t = chi_square_two_sample(
                        &bin_counts(&encode(&seq_a), domain, domain as usize),
                        &bin_counts(&encode(&seq_b), domain, domain as usize),
                    );
                    if t.pass {
                        report.ok(format!(
                            "{case} ({} {:.2} <= {:.2})",
                            t.name, t.statistic, t.critical
                        ));
                    } else {
                        report.fail(
                            case,
                            format!(
                                "shard completion timing leaks the address mix: {} {:.2} > {:.2}",
                                t.name, t.statistic, t.critical
                            ),
                            String::new(),
                        );
                    }
                }
            }
            (Err(e), _) | (_, Err(e)) => {
                report.fail("sharded/backend run".into(), e, String::new());
            }
        }
    }

    // ---- 7. Storage backends: the event stream is backend-invariant. ---
    //
    // Obliviousness lives in the *sequence* of bus events, not in their
    // timing. For a fixed (seed, policy, miss stream) the DRAM timing
    // model, the persistent on-disk store, and the simulated WAN must
    // emit byte-identical event streams — the backend decides *when* a
    // bucket transfer finishes, never *which* buckets move — and each
    // stream must independently pass the structural grammar and leaf
    // statistics.
    {
        let sys = SystemConfig::small_test();
        let backend_seed = opts.seed ^ 0xBAC7_E27D;
        let mut brng = Rng64::seed_from_u64(backend_seed);
        let ws = 64u64;
        let misses = miss_stream(opts.accesses.min(400), ws, &mut brng);

        let dram = Engine::new(sys.clone())
            .map(|e| backend_trace(e, ws, &misses))
            .map_err(|e| format!("dram engine rejected config: {e}"));
        let wan = WanBackend::new(WanConfig::default_wan())
            .and_then(|b| Engine::with_backend(sys.clone(), b))
            .map(|e| backend_trace(e, ws, &misses))
            .map_err(|e| format!("wan engine rejected config: {e}"));
        let disk_dir = std::env::temp_dir()
            .join(format!("oram_audit_disk_{}_{:x}", std::process::id(), opts.seed));
        let _ = std::fs::remove_dir_all(&disk_dir);
        let bucket_count = (1u64 << (sys.oram.levels + 1)) - 1;
        let disk = DiskBackend::new(DiskConfig::new(disk_dir.clone(), sys.oram.z, bucket_count))
            .and_then(|b| Engine::with_backend(sys.clone(), b))
            .map(|e| backend_trace(e, ws, &misses))
            .map_err(|e| format!("disk engine rejected config: {e}"));
        let _ = std::fs::remove_dir_all(&disk_dir);

        match (dram, disk, wan) {
            (Ok(dram), Ok(disk), Ok(wan)) => {
                for (name, (events, oram)) in
                    [("dram", &dram), ("disk", &disk), ("wan", &wan)]
                {
                    let case = format!("backend/{name} trace (seed {backend_seed:#x})");
                    match check_service_trace(oram, events) {
                        Ok(s) if s.accesses > 0 => report.ok(format!(
                            "{case}: {} accesses, {} evictions, {} DRAM blocks",
                            s.accesses, s.evictions, s.dram_blocks
                        )),
                        Ok(_) => report.fail(
                            case,
                            "backend run produced no accesses".into(),
                            String::new(),
                        ),
                        Err(e) => report.fail(case, e, window_of(events)),
                    }
                }

                let case = format!(
                    "backend/event-stream invariance ({} events, seed {backend_seed:#x})",
                    dram.0.len()
                );
                if dram.0 == disk.0 && dram.0 == wan.0 {
                    report.ok(format!("{case}: dram == disk == wan"));
                } else {
                    let diverged = if dram.0 == disk.0 { "wan" } else { "disk" };
                    report.fail(
                        case,
                        format!("the {diverged} backend changed the bus event stream"),
                        window_of(&dram.0),
                    );
                }
            }
            (dram, disk, wan) => {
                for r in [dram, disk, wan] {
                    if let Err(e) = r {
                        report.fail("backend/run".into(), e, String::new());
                    }
                }
            }
        }
    }

    // ---- 8. Observability plane: the metric/alert stream is ------------
    //      relabeling-invariant.
    //
    // The live plane watches everything the serve path exposes: engine
    // telemetry (phase cycles, stash occupancy, Eq. 1 residuals) plus
    // per-completion observations (latency, serve class). If the
    // exported Prometheus text, the SLO JSON, the structured alert
    // stream, or the flight recorder's incident bundle differed between
    // an address pattern and its structure-preserving relabeled twin,
    // the observability surface would leak address bits that the
    // audited bus trace does not. Both runs must render byte-identical
    // output across every policy — including the full forensic bundle,
    // which carries every captured span field.
    {
        let obsv_seed = opts.seed ^ 0x0B5E_07AD;
        let mut orng = Rng64::seed_from_u64(obsv_seed);
        let misses = miss_stream(opts.accesses.min(400), 64, &mut orng);
        for policy in PolicyUnderTest::ALL {
            let cfg = policy.system_config(SystemConfig::small_test());
            let offset = relabel_offset(&cfg.oram);
            let case = format!(
                "obsv/relabeled metric stream/{} (seed {obsv_seed:#x})",
                policy.name()
            );

            // Replays the miss stream shifted by `shift` with the plane
            // fed from both sides — engine telemetry sink and the
            // per-completion observer — exactly as `repro serve` wires
            // it, then renders every export surface.
            let run = |shift: u64| -> Result<(String, String, String, String), String> {
                let plane = LivePlane::shared(LiveConfig::for_serve(
                    1,
                    1,
                    400,
                    cfg.oram.stash_capacity as u32,
                ));
                plane.lock().expect("plane lock").attach_flight(FlightConfig::default());
                let mut engine = Engine::new(cfg.clone())
                    .map_err(|e| format!("engine rejected config: {e}"))?;
                engine.attach_telemetry(LivePlane::as_sink(&plane), 2_000);
                let mut now = 0u64;
                for m in &misses {
                    now = now.saturating_add(m.gap_cycles);
                    let out = engine.serve_request(m.block_addr + shift, m.is_write, now);
                    {
                        let mut p = plane.lock().expect("plane lock");
                        p.request_complete(
                            out.data_ready,
                            0,
                            0,
                            out.served,
                            out.data_ready - now,
                            false,
                        );
                    }
                    now = out.data_ready;
                }
                engine.detach_telemetry();
                let mut p = plane.lock().expect("plane lock");
                p.flush();
                p.validate_conservation()?;
                // The forensic surface: freeze the flight recorder and
                // render the full incident bundle. Its seven files
                // (spans with every attribution field, Chrome trace,
                // metrics, alerts, windows, service events) are one
                // concatenated byte string for the comparison.
                p.force_incident();
                let bundle = p.render_incident(&IncidentMeta::default())?;
                let bundle_bytes = bundle
                    .files()
                    .iter()
                    .map(|(name, text)| format!("== {name}\n{text}"))
                    .collect::<String>();
                Ok((
                    render_prometheus(&p),
                    render_slo_json(&p),
                    format!("{:?}", p.events()),
                    bundle_bytes,
                ))
            };

            match (run(0), run(offset)) {
                (Ok((prom_a, slo_a, ev_a, bun_a)), Ok((prom_b, slo_b, ev_b, bun_b))) => {
                    if prom_a != prom_b {
                        let diff = prom_a
                            .lines()
                            .zip(prom_b.lines())
                            .find(|(a, b)| a != b)
                            .map(|(a, b)| format!("`{a}` vs `{b}`"))
                            .unwrap_or_else(|| "length mismatch".into());
                        report.fail(
                            case,
                            format!("Prometheus exposition diverges under relabeling: {diff}"),
                            String::new(),
                        );
                    } else if slo_a != slo_b {
                        report.fail(
                            case,
                            "SLO JSON diverges under relabeling".into(),
                            String::new(),
                        );
                    } else if ev_a != ev_b {
                        report.fail(
                            case,
                            "structured alert stream diverges under relabeling".into(),
                            String::new(),
                        );
                    } else if bun_a != bun_b {
                        let diff = bun_a
                            .lines()
                            .zip(bun_b.lines())
                            .find(|(a, b)| a != b)
                            .map(|(a, b)| format!("`{a}` vs `{b}`"))
                            .unwrap_or_else(|| "length mismatch".into());
                        report.fail(
                            case,
                            format!("incident bundle diverges under relabeling: {diff}"),
                            String::new(),
                        );
                    } else {
                        report.ok(format!(
                            "{case}: {} metric bytes, {} SLO bytes, {} bundle bytes identical \
                             under +{offset} shift",
                            prom_a.len(),
                            slo_a.len(),
                            bun_a.len()
                        ));
                    }
                }
                (Err(e), _) | (_, Err(e)) => report.fail(case, e, String::new()),
            }
        }
    }

    // ---- 9. Recursive position map: the posmap's own traffic. ----------
    //
    // In `--posmap recursive` mode the position map itself generates
    // bus traffic (recursion-chain paths framed as `PosmapBucket`
    // events). Three layers, per policy: the posmap traffic must
    // satisfy its own structural grammar (root-anchored parent chains
    // of fixed per-level depth, eviction writes rewriting their reads)
    // while the stripped data subsequence still passes the data
    // grammar; the stripped trace must be *byte-identical* to a
    // flat-posmap run of the same requests (recursion adds posmap
    // traffic, it never changes what the data tree does); and the
    // combined stream must be byte-invariant under address relabeling —
    // PLB conflicts, level-ORAM paths and the walk interleaving must
    // not leak address bits.
    {
        let pm_seed = opts.seed ^ 0x90A5_AB70;
        // L = 10 at 16 addrs/page → 512 level-1 posmap blocks = 4 KiB,
        // over a 1 KiB budget → exactly one off-chip recursion level.
        let base = OramConfig {
            levels: 10,
            stash_capacity: 140,
            posmap: PosMapSelect::Recursive { onchip_kb: 1 },
            ..OramConfig::small_test()
        };
        let n = opts.accesses.min(600);
        let pattern = fresh_stream(n, 1);
        // Shifting every address by a multiple of `page_addrs × sets`
        // shifts level-1 posmap blocks by a multiple of the PLB set
        // count, so the direct-mapped conflict pattern is preserved
        // exactly (deeper chains would need an extra ×32 per level;
        // this config pins the chain to one level).
        let pm_offset = base.plb_page_addrs * base.plb_entries as u64;

        for policy in PolicyUnderTest::ALL {
            let cfg = policy.oram_config(base).with_seed(pm_seed);
            let case = format!("posmap/structure/{} (seed {pm_seed:#x})", policy.name());
            match record_trace(cfg, &pattern) {
                Ok((events, _)) => match check_posmap_trace(&events) {
                    Ok(s) if s.chains > 0 && s.eviction_writes > 0 => {
                        let data = strip_posmap_events(&events);
                        match check_trace(&TraceSpec::from_oram(&cfg), &data) {
                            Ok(_) => report.ok(format!(
                                "{case}: {} posmap events in {} chains ({} eviction writes)",
                                s.events, s.chains, s.eviction_writes
                            )),
                            Err(e) => report.fail(case, e, window_of(&data)),
                        }
                    }
                    Ok(s) => report.fail(
                        case,
                        format!(
                            "posmap traffic too thin to audit: {} chains, {} eviction writes",
                            s.chains, s.eviction_writes
                        ),
                        String::new(),
                    ),
                    Err(e) => report.fail(case, e, window_of(&events)),
                },
                Err(e) => {
                    report.fail(case, format!("controller rejected config: {e}"), String::new());
                }
            }

            let cfg = policy.oram_config(base).with_seed(pm_seed ^ 0xF1A7);
            report.check(
                format!("posmap/flat data identity/{}", policy.name()),
                recursive_flat_data_identity(cfg, &pattern).map(|_| ()),
                String::new,
            );

            let cfg = policy.oram_config(base).with_seed(pm_seed ^ 0x2E1A);
            report.check(
                format!("posmap/relabeling identity/{}", policy.name()),
                relabeled_traces_identical(cfg, &pattern, pm_offset),
                String::new,
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_audit_passes_clean() {
        let mut opts = AuditOptions::quick();
        // Keep the unit-test footprint below the CLI's.
        opts.cases = 2;
        opts.accesses = 600;
        let report = run_audit(&opts);
        assert!(report.passed(), "{}", report.render());
        assert!(report.checks >= 20);
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn options_presets_are_ordered() {
        assert!(AuditOptions::quick().cases < AuditOptions::full().cases);
        assert!(AuditOptions::quick().accesses < AuditOptions::full().accesses);
        assert_eq!(AuditOptions::quick().with_seed(9).seed, 9);
    }
}

//! Trace capture: a ring-buffer [`BusObserver`] and its shareable handle.

use std::sync::{Arc, Mutex};

use oram_util::{BusEvent, BusObserver, SharedObserver};

/// The event store behind a [`Recorder`]: either unbounded (verification
/// runs that inspect the whole trace) or a fixed-capacity ring that
/// keeps the most recent events (long fuzz runs, where only the window
/// around a failure matters).
#[derive(Debug)]
pub struct TraceBuffer {
    events: Vec<BusEvent>,
    capacity: Option<usize>,
    /// Ring start once `events` is full (oldest retained event).
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    fn unbounded() -> Self {
        TraceBuffer { events: Vec::new(), capacity: None, head: 0, dropped: 0 }
    }

    fn ring(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        TraceBuffer {
            events: Vec::with_capacity(capacity),
            capacity: Some(capacity),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, event: BusEvent) {
        match self.capacity {
            Some(cap) if self.events.len() == cap => {
                self.events[self.head] = event;
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
            }
            _ => self.events.push(event),
        }
    }

    fn snapshot(&self) -> Vec<BusEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

impl BusObserver for TraceBuffer {
    fn on_event(&mut self, event: BusEvent) {
        self.push(event);
    }
}

/// A clonable handle to a shared [`TraceBuffer`].
///
/// [`Recorder::observer`] yields the [`SharedObserver`] to attach to a
/// controller, a DRAM system, or both at once (one interleaved trace);
/// the handle keeps access to the recorded events.
///
/// ```
/// use oram_audit::Recorder;
/// use oram_protocol::{OramConfig, OramController, Request, BlockAddr};
///
/// let rec = Recorder::unbounded();
/// let mut ctl = OramController::new(OramConfig::small_test()).unwrap();
/// ctl.set_observer(Some(rec.observer()));
/// ctl.access(Request::read(BlockAddr::new(1)));
/// assert!(!rec.snapshot().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<TraceBuffer>>,
}

impl Recorder {
    /// A recorder that keeps every event.
    pub fn unbounded() -> Self {
        Recorder { inner: Arc::new(Mutex::new(TraceBuffer::unbounded())) }
    }

    /// A recorder that keeps only the `capacity` most recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring(capacity: usize) -> Self {
        Recorder { inner: Arc::new(Mutex::new(TraceBuffer::ring(capacity))) }
    }

    /// The observer handle to attach (shares this recorder's buffer).
    pub fn observer(&self) -> SharedObserver {
        self.inner.clone()
    }

    /// The recorded events, oldest first.
    pub fn snapshot(&self) -> Vec<BusEvent> {
        self.inner.lock().expect("recorder poisoned").snapshot()
    }

    /// Discards all recorded events (capacity mode is kept).
    pub fn clear(&self) {
        let mut buf = self.inner.lock().expect("recorder poisoned");
        buf.events.clear();
        buf.head = 0;
        buf.dropped = 0;
    }

    /// Events overwritten by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder poisoned").dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder poisoned").events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> BusEvent {
        BusEvent::Bucket { bucket: n, write: false }
    }

    #[test]
    fn unbounded_keeps_everything_in_order() {
        let rec = Recorder::unbounded();
        {
            let obs = rec.observer();
            let mut o = obs.lock().unwrap();
            for i in 1..=5 {
                o.on_event(ev(i));
            }
        }
        assert_eq!(rec.snapshot(), (1..=5).map(ev).collect::<Vec<_>>());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let rec = Recorder::ring(3);
        let obs = rec.observer();
        for i in 1..=7 {
            obs.lock().unwrap().on_event(ev(i));
        }
        assert_eq!(rec.snapshot(), vec![ev(5), ev(6), ev(7)]);
        assert_eq!(rec.dropped(), 4);
        rec.clear();
        assert!(rec.is_empty());
        obs.lock().unwrap().on_event(ev(9));
        assert_eq!(rec.snapshot(), vec![ev(9)]);
    }

    #[test]
    fn one_recorder_interleaves_two_sources() {
        // The same handle attached twice (controller + DRAM in real use)
        // produces one ordered stream.
        let rec = Recorder::unbounded();
        let a = rec.observer();
        let b = rec.observer();
        a.lock().unwrap().on_event(ev(1));
        b.lock().unwrap().on_event(BusEvent::DramBlock { addr: 2, write: true });
        a.lock().unwrap().on_event(ev(3));
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.snapshot()[1], BusEvent::DramBlock { addr: 2, write: true });
    }
}

//! Hand-rolled goodness-of-fit tests over observed leaf distributions.
//!
//! The repo carries no external crates, so the critical values are
//! computed from the Wilson–Hilferty chi-square approximation and the
//! asymptotic Kolmogorov distribution. All tests run at significance
//! `α = 0.001`: strict enough that an honest uniform remapper passes
//! fuzz sweeps reliably, loose enough that even a mildly biased remap
//! fails within a few thousand samples.

/// Normal upper quantile `z` for `α = 0.001`.
const Z_ALPHA: f64 = 3.0902;
/// Kolmogorov–Smirnov coefficient `c(α)` for `α = 0.001`.
const KS_C_ALPHA: f64 = 1.9495;

/// Outcome of one goodness-of-fit test.
#[derive(Debug, Clone, PartialEq)]
pub struct GofTest {
    /// Which test ran (for report lines).
    pub name: &'static str,
    /// The computed statistic (chi-square value or KS `D`).
    pub statistic: f64,
    /// The `α = 0.001` critical value it was compared against.
    pub critical: f64,
    /// `true` when the sample is consistent with the null hypothesis.
    pub pass: bool,
}

impl GofTest {
    fn conclude(name: &'static str, statistic: f64, critical: f64) -> Self {
        GofTest { name, statistic, critical, pass: statistic <= critical }
    }
}

/// Wilson–Hilferty approximation of the upper-`α` chi-square quantile
/// with `df` degrees of freedom (exact enough for df ≥ 3, which every
/// caller here guarantees).
fn chi_square_critical(df: f64) -> f64 {
    let t = 1.0 - 2.0 / (9.0 * df) + Z_ALPHA * (2.0 / (9.0 * df)).sqrt();
    df * t * t * t
}

/// Pearson chi-square test of `counts` against the uniform distribution.
///
/// Bins with too few expected observations inflate the statistic, so
/// callers should aggregate with [`bin_counts`] first; this function
/// assumes the binning is already sane (`counts.len() ≥ 4`, expected
/// per-bin count ≥ 5 for the approximation to hold).
pub fn chi_square_uniform(counts: &[u64]) -> GofTest {
    assert!(counts.len() >= 4, "need at least 4 bins");
    let total: u64 = counts.iter().sum();
    let expected = total as f64 / counts.len() as f64;
    let statistic: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    GofTest::conclude("chi-square uniform", statistic, chi_square_critical(counts.len() as f64 - 1.0))
}

/// Two-sample chi-square homogeneity test: were `a` and `b` drawn from
/// the same distribution? This is the distributional distinguisher — `a`
/// and `b` are per-bin leaf counts from two different secret access
/// patterns, and a pass means the traces are indistinguishable at this
/// sample size.
pub fn chi_square_two_sample(a: &[u64], b: &[u64]) -> GofTest {
    assert_eq!(a.len(), b.len(), "samples must share the binning");
    assert!(a.len() >= 4, "need at least 4 bins");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    let (na, nb) = (na as f64, nb as f64);
    let mut statistic = 0.0;
    for (&ca, &cb) in a.iter().zip(b) {
        let pooled = (ca + cb) as f64;
        if pooled == 0.0 {
            continue;
        }
        let ea = pooled * na / (na + nb);
        let eb = pooled * nb / (na + nb);
        let da = ca as f64 - ea;
        let db = cb as f64 - eb;
        statistic += da * da / ea + db * db / eb;
    }
    GofTest::conclude("chi-square two-sample", statistic, chi_square_critical(a.len() as f64 - 1.0))
}

/// One-sample Kolmogorov–Smirnov test of `values` against the discrete
/// uniform distribution on `0..domain`.
///
/// Complements the chi-square test: KS is sensitive to smooth CDF-level
/// drifts (e.g. a remap that halves every label) that coarse binning can
/// wash out.
pub fn ks_uniform(values: &[u64], domain: u64) -> GofTest {
    assert!(domain > 0 && !values.is_empty());
    let n = values.len() as f64;
    let mut counts = vec![0u64; domain as usize];
    for &v in values {
        counts[v as usize] += 1;
    }
    let mut cum = 0u64;
    let mut d_max = 0.0f64;
    for (v, &c) in counts.iter().enumerate() {
        // Compare the empirical CDF against the uniform CDF at both edges
        // of the step.
        let uniform_lo = v as f64 / domain as f64;
        let uniform_hi = (v as f64 + 1.0) / domain as f64;
        let ecdf_lo = cum as f64 / n;
        cum += c;
        let ecdf_hi = cum as f64 / n;
        d_max = d_max.max((ecdf_lo - uniform_lo).abs()).max((ecdf_hi - uniform_hi).abs());
    }
    GofTest::conclude("ks uniform", d_max, KS_C_ALPHA / n.sqrt())
}

/// Aggregates raw values from `0..domain` into at most `max_bins`
/// equal-width bins (a power of two dividing `domain`), so the
/// chi-square expected-count assumption holds on small samples over
/// large leaf domains.
pub fn bin_counts(values: &[u64], domain: u64, max_bins: usize) -> Vec<u64> {
    assert!(domain.is_power_of_two(), "leaf domains are powers of two");
    let mut bins = max_bins.next_power_of_two();
    if bins > max_bins {
        bins /= 2;
    }
    let bins = (bins as u64).min(domain);
    let width = domain / bins;
    let mut counts = vec![0u64; bins as usize];
    for &v in values {
        assert!(v < domain, "value {v} outside domain {domain}");
        counts[(v / width) as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_util::Rng64;

    #[test]
    fn critical_values_match_tables() {
        // Reference values for chi2(0.999, df): df=15 → 37.70, df=63 → 103.4.
        assert!((chi_square_critical(15.0) - 37.70).abs() < 0.3);
        assert!((chi_square_critical(63.0) - 103.4).abs() < 0.8);
    }

    #[test]
    fn uniform_sample_passes_all_tests() {
        let mut rng = Rng64::seed_from_u64(42);
        let domain = 256u64;
        let values: Vec<u64> = (0..8000).map(|_| rng.below(domain)).collect();
        let chi = chi_square_uniform(&bin_counts(&values, domain, 64));
        assert!(chi.pass, "{chi:?}");
        let ks = ks_uniform(&values, domain);
        assert!(ks.pass, "{ks:?}");
    }

    #[test]
    fn biased_sample_fails_both_tests() {
        let mut rng = Rng64::seed_from_u64(7);
        let domain = 256u64;
        // Everything lands in the lower half: a remap bug this gross must
        // be unmissable.
        let values: Vec<u64> = (0..4000).map(|_| rng.below(domain / 2)).collect();
        assert!(!chi_square_uniform(&bin_counts(&values, domain, 64)).pass);
        assert!(!ks_uniform(&values, domain).pass);
    }

    #[test]
    fn two_sample_distinguishes_different_distributions() {
        let mut rng = Rng64::seed_from_u64(3);
        let domain = 128u64;
        let a: Vec<u64> = (0..6000).map(|_| rng.below(domain)).collect();
        let b: Vec<u64> = (0..6000).map(|_| rng.below(domain)).collect();
        let same = chi_square_two_sample(&bin_counts(&a, domain, 32), &bin_counts(&b, domain, 32));
        assert!(same.pass, "{same:?}");

        let skew: Vec<u64> = (0..6000).map(|_| rng.below(domain) / 2).collect();
        let diff = chi_square_two_sample(&bin_counts(&a, domain, 32), &bin_counts(&skew, domain, 32));
        assert!(!diff.pass, "{diff:?}");
    }

    #[test]
    fn bin_counts_respects_domain_and_cap() {
        let values = vec![0, 1, 63, 64, 127];
        let counts = bin_counts(&values, 128, 4);
        assert_eq!(counts, vec![2, 1, 1, 1]);
        // Caps at the domain when the domain is small.
        assert_eq!(bin_counts(&[0, 1], 2, 64).len(), 2);
    }
}

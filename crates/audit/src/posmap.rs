//! Structural obliviousness checks for the recursive position map's own
//! bus traffic.
//!
//! The data-path grammar in [`crate::invariants`] deliberately skips
//! [`BusEvent::PosmapBucket`] events: posmap-ORAM paths live in their
//! own trees (one per recursion level) and follow their own geometry.
//! This module supplies the matching checker. The grammar an oblivious
//! recursion must satisfy, with no configuration input — the trace is
//! self-describing:
//!
//! 1. **Root-anchored parent chains.** Every posmap level is built with
//!    `treetop_levels = 0`, so each path phase touches buckets root→leaf
//!    in heap order: the first bucket of a chain is the root (raw id 1)
//!    and every subsequent bucket is a child of its predecessor.
//! 2. **Uniform direction and level per chain.** A chain never mixes
//!    read and write bursts or hops between recursion levels.
//! 3. **Fixed depth per level.** All chains of one recursion level have
//!    the same length (the level tree's full path); a short path would
//!    leak how deep the walk had to go within a level.
//! 4. **Eviction writes rewrite their reads.** Every write chain must
//!    rewrite exactly the bucket sequence of the read chain immediately
//!    before it at the same level — the posmap-level analogue of the
//!    data grammar's eviction-rewrite invariant.
//!
//! [`strip_posmap_events`] is the companion filter: the data-ORAM
//! subsequence of a recursive-mode trace, which must be byte-identical
//! to a flat-posmap run of the same request stream (checked by
//! [`recursive_flat_data_identity`] and by the serve-path validator).

use oram_protocol::{OramConfig, PosMapSelect, Request};
use oram_util::BusEvent;

use crate::distinguisher::record_trace;

/// Aggregates of one checked posmap trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PosmapSummary {
    /// `PosmapBucket` events consumed.
    pub events: u64,
    /// Root→leaf chains (path phases) parsed.
    pub chains: u64,
    /// Eviction-write chains, each verified to rewrite its read.
    pub eviction_writes: u64,
    /// Deepest recursion level seen (0 when the trace has no posmap
    /// traffic — flat mode, or a chain that fits on chip).
    pub max_level: u16,
}

/// Returns the data-ORAM subsequence of a combined bus trace: every
/// event except `PosmapBucket`. In `--posmap recursive` mode this is
/// what the data-path checkers (and the flat-identity diffs) consume.
pub fn strip_posmap_events(events: &[BusEvent]) -> Vec<BusEvent> {
    events
        .iter()
        .filter(|e| !matches!(e, BusEvent::PosmapBucket { .. }))
        .copied()
        .collect()
}

/// One parsed chain, kept only as long as the next chain needs it for
/// the eviction-rewrite check.
struct Chain {
    level: u16,
    write: bool,
    buckets: Vec<u64>,
}

/// Replays the `PosmapBucket` subsequence of `events` against the
/// posmap grammar (module docs). Non-posmap events are ignored, so the
/// combined trace can be passed directly.
///
/// # Errors
///
/// Returns the first structural violation with its event index.
pub fn check_posmap_trace(events: &[BusEvent]) -> Result<PosmapSummary, String> {
    let mut summary = PosmapSummary::default();
    // Expected chain length per recursion level, learned from the first
    // chain of each level (index 0 unused; levels are 1-based).
    let mut depth_of: Vec<Option<usize>> = Vec::new();
    let mut cur: Option<Chain> = None;
    let mut prev: Option<Chain> = None;

    let close = |chain: Chain,
                     prev: &mut Option<Chain>,
                     depth_of: &mut Vec<Option<usize>>,
                     summary: &mut PosmapSummary,
                     idx: usize|
     -> Result<(), String> {
        let l = chain.level as usize;
        if depth_of.len() <= l {
            depth_of.resize(l + 1, None);
        }
        match depth_of[l] {
            None => depth_of[l] = Some(chain.buckets.len()),
            Some(d) if d == chain.buckets.len() => {}
            Some(d) => {
                return Err(format!(
                    "event {idx}: level {} chain of {} buckets, level paths are {d} deep",
                    chain.level,
                    chain.buckets.len()
                ));
            }
        }
        if chain.write {
            let ok = prev
                .as_ref()
                .is_some_and(|p| !p.write && p.level == chain.level && p.buckets == chain.buckets);
            if !ok {
                return Err(format!(
                    "event {idx}: level {} eviction write does not rewrite the path just read",
                    chain.level
                ));
            }
            summary.eviction_writes += 1;
        }
        summary.chains += 1;
        summary.max_level = summary.max_level.max(chain.level);
        *prev = Some(chain);
        Ok(())
    };

    for (idx, event) in events.iter().enumerate() {
        let BusEvent::PosmapBucket { bucket, level, write } = *event else {
            continue;
        };
        summary.events += 1;
        if level == 0 {
            return Err(format!("event {idx}: posmap level 0 does not exist (levels are 1-based)"));
        }
        if bucket == 1 {
            // Root: starts a new chain.
            if let Some(done) = cur.take() {
                close(done, &mut prev, &mut depth_of, &mut summary, idx)?;
            }
            cur = Some(Chain { level, write, buckets: vec![1] });
            continue;
        }
        let Some(chain) = cur.as_mut() else {
            return Err(format!(
                "event {idx}: bucket {bucket} outside any chain (chains start at the root)"
            ));
        };
        if chain.level != level || chain.write != write {
            return Err(format!(
                "event {idx}: bucket {bucket} switches to level {level} write={write} \
                 mid-chain (chain is level {} write={})",
                chain.level, chain.write
            ));
        }
        let parent = *chain.buckets.last().expect("chains are never empty");
        if bucket / 2 != parent {
            return Err(format!(
                "event {idx}: bucket {bucket} is not a child of {parent} — path not a \
                 root→leaf parent chain"
            ));
        }
        chain.buckets.push(bucket);
    }
    if let Some(done) = cur.take() {
        let idx = events.len();
        close(done, &mut prev, &mut depth_of, &mut summary, idx)?;
    }
    Ok(summary)
}

/// Records the same request stream under `cfg` with its recursive
/// posmap and under the flat equivalent, and requires the recursive
/// trace minus its `PosmapBucket` events to be byte-identical to the
/// flat trace: the recursion must add posmap traffic and change
/// *nothing* about the data-ORAM access pattern.
///
/// # Errors
///
/// Returns the divergence (or a configuration rejection); also fails if
/// `cfg` is not recursive or the recursive run produced no posmap
/// traffic (a vacuous identity).
pub fn recursive_flat_data_identity(cfg: OramConfig, reqs: &[Request]) -> Result<u64, String> {
    if !matches!(cfg.posmap, PosMapSelect::Recursive { .. }) {
        return Err("config is not in recursive posmap mode".into());
    }
    let (rec_events, _) = record_trace(cfg, reqs)?;
    let flat_cfg = cfg.with_posmap(PosMapSelect::Flat);
    let (flat_events, _) = record_trace(flat_cfg, reqs)?;
    let posmap_events =
        rec_events.len() as u64 - strip_posmap_events(&rec_events).len() as u64;
    if posmap_events == 0 {
        return Err("recursive run produced no posmap traffic: identity is vacuous".into());
    }
    let data = strip_posmap_events(&rec_events);
    if data.len() != flat_events.len() {
        return Err(format!(
            "data subsequence has {} events, flat trace has {}",
            data.len(),
            flat_events.len()
        ));
    }
    if let Some(i) = (0..data.len()).find(|&i| data[i] != flat_events[i]) {
        return Err(format!(
            "data traces diverge at event {i}: {:?} vs {:?}",
            data[i], flat_events[i]
        ));
    }
    Ok(posmap_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinguisher::fresh_stream;

    fn ev(bucket: u64, level: u16, write: bool) -> BusEvent {
        BusEvent::PosmapBucket { bucket, level, write }
    }

    fn recursive_cfg() -> OramConfig {
        // L = 10, page 16 → 512 level-1 posmap blocks = 4 KiB, over a
        // 1 KiB budget → exactly one off-chip recursion level.
        OramConfig {
            levels: 10,
            stash_capacity: 140,
            posmap: PosMapSelect::Recursive { onchip_kb: 1 },
            ..OramConfig::small_test()
        }
    }

    #[test]
    fn empty_and_dataless_traces_pass_vacuously() {
        assert_eq!(check_posmap_trace(&[]).unwrap(), PosmapSummary::default());
        let data_only = [BusEvent::DramBlock { addr: 7, write: false }];
        let s = check_posmap_trace(&data_only).unwrap();
        assert_eq!(s.events, 0);
        assert_eq!(strip_posmap_events(&data_only), data_only);
    }

    #[test]
    fn well_formed_chains_parse() {
        // Read path 1→2→5, eviction read 1→3→6, eviction write rewrites it.
        let trace = [
            ev(1, 1, false),
            ev(2, 1, false),
            ev(5, 1, false),
            ev(1, 1, false),
            ev(3, 1, false),
            ev(6, 1, false),
            ev(1, 1, true),
            ev(3, 1, true),
            ev(6, 1, true),
        ];
        let s = check_posmap_trace(&trace).unwrap();
        assert_eq!(s.chains, 3);
        assert_eq!(s.eviction_writes, 1);
        assert_eq!(s.max_level, 1);
        assert_eq!(s.events, 9);
    }

    #[test]
    fn violations_are_caught() {
        // Not a child of its predecessor.
        let broken = [ev(1, 1, false), ev(2, 1, false), ev(6, 1, false)];
        assert!(check_posmap_trace(&broken).unwrap_err().contains("not a child"));
        // Chain starting off-root.
        assert!(check_posmap_trace(&[ev(2, 1, false)])
            .unwrap_err()
            .contains("outside any chain"));
        // Write chain that rewrites a different path than it read.
        let skewed = [
            ev(1, 1, false),
            ev(3, 1, false),
            ev(1, 1, true),
            ev(2, 1, true),
        ];
        assert!(check_posmap_trace(&skewed).unwrap_err().contains("does not rewrite"));
        // Depth change within a level.
        let ragged = [ev(1, 1, false), ev(2, 1, false), ev(1, 1, false)];
        assert!(check_posmap_trace(&ragged).unwrap_err().contains("deep"));
        // Level switch mid-chain.
        let hop = [ev(1, 1, false), ev(2, 2, false)];
        assert!(check_posmap_trace(&hop).unwrap_err().contains("mid-chain"));
    }

    #[test]
    fn live_recursive_trace_satisfies_the_grammar() {
        let cfg = recursive_cfg();
        let reqs = fresh_stream(600, 1);
        let (events, _) = record_trace(cfg, &reqs).expect("controller accepts config");
        let s = check_posmap_trace(&events).expect("live trace is structurally oblivious");
        assert!(s.chains > 0, "cold PLB misses must walk the chain");
        assert_eq!(s.max_level, 1);
        assert!(s.eviction_writes > 0, "level ORAMs evict at the configured cadence");
    }

    #[test]
    fn recursive_data_subsequence_matches_flat() {
        let n = recursive_flat_data_identity(recursive_cfg(), &fresh_stream(600, 1))
            .expect("data traces identical");
        assert!(n > 0);
    }

    #[test]
    fn flat_config_is_rejected_as_vacuous() {
        let err = recursive_flat_data_identity(OramConfig::small_test(), &fresh_stream(16, 1))
            .unwrap_err();
        assert!(err.contains("not in recursive"));
    }
}

//! Proof that the auditor catches real protocol faults.
//!
//! The `mutants` cargo feature (enabled here through the dev-dependency)
//! compiles two deliberate bugs into the controller:
//!
//! * `SkipLeafRewrite` — the eviction write "optimizes away" the leaf
//!   bucket, the classic skipped-dummy-fill bug. The structural layer
//!   must reject the trace.
//! * `BiasedRemap` — remapping draws leaves from the lower half of the
//!   tree only. The trace stays structurally perfect, so only the
//!   statistical layer can catch it.
//! * `ShardSkew` — the sharded backend's address→shard mapping collapses
//!   onto the lower half of the shards (the "sharding function lost a
//!   bit" bug). Every shard trace stays valid; only the cross-shard
//!   dispatch-distribution check can catch it.
//!
//! Each test runs its positive control (the same audit with
//! `Mutant::None`) first, so a pass means the check is discriminating,
//! not merely strict.

use oram_audit::{check_trace, Recorder, TraceSpec};
use oram_audit::stats::{bin_counts, chi_square_uniform, ks_uniform};
use oram_protocol::{BlockAddr, Mutant, OramConfig, OramController, Request};
use oram_sim::{ShardMutant, ShardRequest, ShardedOram, SystemConfig};

fn traced_run(cfg: OramConfig, mutant: Mutant, accesses: u64) -> Vec<oram_protocol::BusEvent> {
    let rec = Recorder::unbounded();
    let mut ctl = OramController::new(cfg).unwrap();
    ctl.set_mutant(mutant);
    ctl.set_observer(Some(rec.observer()));
    for i in 0..accesses {
        let addr = BlockAddr::new(1 + i % 64);
        if i % 3 == 2 {
            ctl.access(Request::write(addr, i));
        } else {
            ctl.access(Request::read(addr));
        }
    }
    rec.snapshot()
}

#[test]
fn skipped_leaf_rewrite_is_caught_by_the_structural_layer() {
    let cfg = OramConfig::small_test();
    let spec = TraceSpec::from_oram(&cfg);

    // Positive control: the honest controller passes.
    check_trace(&spec, &traced_run(cfg, Mutant::None, 300)).unwrap();

    // The mutant ships one bucket short in every eviction write.
    let err = check_trace(&spec, &traced_run(cfg, Mutant::SkipLeafRewrite, 300))
        .expect_err("skipped leaf rewrite must be rejected");
    assert!(
        err.contains("buckets") || err.contains("constant"),
        "unexpected rejection reason: {err}"
    );
}

#[test]
fn biased_remap_is_caught_by_the_statistical_layer() {
    let cfg = OramConfig::small_test();
    let spec = TraceSpec::from_oram(&cfg);
    let domain = 1u64 << cfg.levels;

    // Positive control: honest leaves look uniform.
    let honest = check_trace(&spec, &traced_run(cfg, Mutant::None, 3000))
        .unwrap()
        .leaves;
    assert!(honest.len() > 500, "want a real sample, got {}", honest.len());
    assert!(chi_square_uniform(&bin_counts(&honest, domain, 32)).pass);
    assert!(ks_uniform(&honest, domain).pass);

    // The biased remapper produces a structurally flawless trace...
    let biased = check_trace(&spec, &traced_run(cfg, Mutant::BiasedRemap, 3000))
        .expect("biased remap keeps the trace structurally valid")
        .leaves;
    // ...that both statistical tests reject.
    let chi = chi_square_uniform(&bin_counts(&biased, domain, 32));
    assert!(!chi.pass, "chi-square missed the biased remap: {chi:?}");
    let ks = ks_uniform(&biased, domain);
    assert!(!ks.pass, "KS missed the biased remap: {ks:?}");
}

/// Dispatch counts of a 4-shard backend fed a uniform address mix.
fn sharded_dispatch(mutant: ShardMutant, requests: u64) -> Vec<u64> {
    let mut backend = ShardedOram::new(SystemConfig::small_test(), 4, 1).unwrap();
    backend.set_mutant(mutant);
    backend.prefill_working_set(256);
    let reqs: Vec<ShardRequest> = (0..requests)
        .map(|i| ShardRequest {
            addr: (i * 131) % 256,
            write: i % 5 == 4,
            arrival: i * 60,
        })
        .collect();
    let mut outs = Vec::new();
    for chunk in reqs.chunks(32) {
        backend.serve_batch(chunk, &mut outs);
    }
    backend.dispatch_counts().to_vec()
}

#[test]
fn shard_skew_is_caught_by_the_dispatch_distribution() {
    // Positive control: the honest `addr mod M` mapping spreads a
    // uniform mix evenly across the shards.
    let honest = sharded_dispatch(ShardMutant::None, 2000);
    assert_eq!(honest.iter().sum::<u64>(), 2000);
    let t = chi_square_uniform(&honest);
    assert!(t.pass, "honest dispatch flagged as skewed: {t:?} ({honest:?})");

    // The mutant starves the upper half of the shards. Each shard's own
    // trace is still a flawless ORAM trace — only the cross-shard load
    // distribution exposes the bug.
    let skewed = sharded_dispatch(ShardMutant::ShardSkew, 2000);
    assert_eq!(skewed.iter().sum::<u64>(), 2000);
    assert_eq!(&skewed[2..], &[0, 0], "skew maps everything onto shards 0..2");
    let t = chi_square_uniform(&skewed);
    assert!(!t.pass, "chi-square missed the shard skew: {t:?} ({skewed:?})");
}

//! Integration tests for the service front-end, centered on the
//! obliviousness-critical coalescing invariant: a coalesced burst of
//! same-address reads issues exactly one ORAM access, every waiter
//! observes the same completion, and the bus trace is byte-identical to
//! the trace of a single uncoalesced request.

use std::sync::{Arc, Mutex};

use oram_service::{
    AddressMix, ArrivalModel, ClientSpec, SchedPolicy, ServiceConfig, ServiceSim,
};
use oram_sim::{Engine, SystemConfig};
use oram_util::{BusEvent, BusObserver, MetricId, SharedTelemetry, TelemetrySink};

/// Minimal trace collector (the audit crate has a full recorder, but it
/// depends on this crate's consumers; a local collector keeps the
/// dependency graph acyclic).
#[derive(Debug, Default)]
struct TraceLog {
    events: Vec<BusEvent>,
}

impl BusObserver for TraceLog {
    fn on_event(&mut self, event: BusEvent) {
        self.events.push(event);
    }
}

/// Counter-only telemetry sink for the service metrics.
#[derive(Debug, Default)]
struct Counters {
    admitted: u64,
    coalesced: u64,
    rejected: u64,
}

impl TelemetrySink for Counters {
    fn count(&mut self, id: MetricId, delta: u64) {
        match id {
            MetricId::ServiceAdmitted => self.admitted += delta,
            MetricId::ServiceCoalesced => self.coalesced += delta,
            MetricId::ServiceRejected => self.rejected += delta,
            _ => {}
        }
    }
    fn sample(&mut self, _id: MetricId, _value: u64) {}
    fn span(&mut self, _span: &oram_util::AccessSpan) {}
    fn window(&mut self, _w: &oram_util::WindowSample) {}
}

fn engine() -> Engine {
    let mut e = Engine::new(SystemConfig::small_test()).expect("valid config");
    e.prefill_working_set(256);
    e
}

/// An injection-driven config: `clients` streams that generate nothing
/// on their own.
fn inject_cfg(clients: usize, coalescing: bool) -> ServiceConfig {
    ServiceConfig {
        clients: vec![
            ClientSpec {
                arrivals: ArrivalModel::Open { mean_gap_cycles: 1_000.0 },
                addresses: AddressMix::Uniform { domain: 256 },
                write_frac: 0.0,
                requests: 0,
            };
            clients
        ],
        queue_capacity: 8,
        batch_size: 8,
        scheduler: SchedPolicy::Fcfs,
        coalescing,
        seed: 42,
    }
}

#[test]
fn coalesced_burst_issues_exactly_one_access() {
    let trace = Arc::new(Mutex::new(TraceLog::default()));
    let counters = Arc::new(Mutex::new(Counters::default()));
    let mut eng = engine();
    eng.attach_bus_observer(trace.clone());
    let mut sim = ServiceSim::new(inject_cfg(4, true), eng).expect("valid config");
    sim.attach_telemetry(counters.clone() as SharedTelemetry);

    // Four clients request the same block in the same cycle.
    for c in 0..4 {
        assert!(sim.inject(c, 17, false));
    }
    sim.run();
    let (res, _) = sim.finish();
    res.validate().expect("conservation");

    // Exactly one ORAM access for the whole burst.
    assert_eq!(res.issued(), 1, "burst must coalesce into one access");
    assert_eq!(res.coalesced(), 3);
    assert_eq!(res.completed(), 4);
    assert_eq!(res.stats.misses_consumed, 1);
    let starts = trace
        .lock()
        .unwrap()
        .events
        .iter()
        .filter(|e| **e == BusEvent::AccessStart)
        .count();
    assert_eq!(starts, 1, "the bus must see exactly one access");

    // Every waiter observed the same completion: all four latencies are
    // equal (identical arrival cycle, one shared data_ready).
    let lats: Vec<u64> =
        res.clients.iter().flat_map(|c| c.latencies.iter().copied()).collect();
    assert_eq!(lats.len(), 4);
    assert!(lats.windows(2).all(|w| w[0] == w[1]), "waiters diverged: {lats:?}");

    // The service counters saw the same story.
    let c = counters.lock().unwrap();
    assert_eq!((c.admitted, c.coalesced, c.rejected), (4, 3, 0));
}

#[test]
fn coalesced_trace_is_byte_identical_to_single_access() {
    // Run A: a 4-wide coalesced burst of reads of block 17.
    let trace_a = Arc::new(Mutex::new(TraceLog::default()));
    let mut eng = engine();
    eng.attach_bus_observer(trace_a.clone());
    let mut sim = ServiceSim::new(inject_cfg(4, true), eng).expect("valid config");
    for c in 0..4 {
        assert!(sim.inject(c, 17, false));
    }
    sim.run();
    let (res_a, _) = sim.finish();
    assert_eq!(res_a.issued(), 1);

    // Run B: one single request for the same block on a fresh engine.
    let trace_b = Arc::new(Mutex::new(TraceLog::default()));
    let mut eng = engine();
    eng.attach_bus_observer(trace_b.clone());
    let out = eng.serve_request(17, false, 0);
    assert!(out.end > 0);

    let a = &trace_a.lock().unwrap().events;
    let b = &trace_b.lock().unwrap().events;
    assert!(!a.is_empty());
    assert_eq!(a, b, "coalescing must not change the bus-visible trace");
}

#[test]
fn uncoalesced_burst_issues_one_access_each() {
    let mut sim = ServiceSim::new(inject_cfg(4, false), engine()).expect("valid config");
    for c in 0..4 {
        assert!(sim.inject(c, 17, false));
    }
    sim.run();
    let (res, _) = sim.finish();
    res.validate().expect("conservation");
    assert_eq!(res.issued(), 4);
    assert_eq!(res.coalesced(), 0);
}

#[test]
fn mixed_addresses_coalesce_only_within_groups() {
    let mut sim = ServiceSim::new(inject_cfg(4, true), engine()).expect("valid config");
    // Two groups of two: blocks 5 and 9.
    assert!(sim.inject(0, 5, false));
    assert!(sim.inject(1, 9, false));
    assert!(sim.inject(2, 5, false));
    assert!(sim.inject(3, 9, false));
    sim.run();
    let (res, _) = sim.finish();
    res.validate().expect("conservation");
    assert_eq!(res.issued(), 2, "one access per distinct block");
    assert_eq!(res.coalesced(), 2);
}

#[test]
fn generated_workload_is_deterministic_across_reconstruction() {
    let run = || {
        let mut cfg = ServiceConfig::symmetric_open(4, 50, 1_500.0, 256, 0xFEED);
        cfg.scheduler = SchedPolicy::OldestFirst;
        let mut sim = ServiceSim::new(cfg, engine()).expect("valid config");
        sim.run();
        let (res, _) = sim.finish();
        res.validate().expect("conservation");
        res
    };
    assert_eq!(run(), run(), "same seed must reproduce bit-identical results");
}

#[test]
fn rejected_requests_are_counted_by_telemetry() {
    let counters = Arc::new(Mutex::new(Counters::default()));
    let mut cfg = inject_cfg(1, false);
    cfg.queue_capacity = 2;
    let mut sim = ServiceSim::new(cfg, engine()).expect("valid config");
    sim.attach_telemetry(counters.clone() as SharedTelemetry);
    assert!(sim.inject(0, 1, false));
    assert!(sim.inject(0, 2, false));
    assert!(!sim.inject(0, 3, false));
    sim.run();
    let (res, _) = sim.finish();
    res.validate().expect("conservation");
    let c = counters.lock().unwrap();
    assert_eq!((c.admitted, c.rejected), (2, 1));
}

//! The service front-end simulator: client streams feeding bounded
//! queues, a batch scheduler draining them into the ORAM engine, and
//! MSHR-style coalescing of same-address reads before the issue point.
//!
//! Two back-ends share one scheduling front-end:
//!
//! * [`ServiceSim`] drives a single [`Engine`], issuing scheduled
//!   requests one at a time — the reference path.
//! * [`ShardedServiceSim`] drives a [`ShardedOram`]: each scheduling
//!   round collects up to `batch_size` coalesced group leaders and
//!   dispatches them as one batch, which the backend partitions across
//!   its shards and serves concurrently.
//!
//! ## Obliviousness note
//!
//! Coalescing merges requests strictly *before* the ORAM issue point:
//! a coalesced group results in exactly one ordinary ORAM access, whose
//! bus trace is byte-identical to the access a single request would
//! have produced. The adversary on the memory bus sees only the
//! (unchanged) access stream — never which requests were merged — so
//! the service layer adds no leakage beyond what the engine already
//! emits. The integration tests pin this down with a trace-equality
//! check, and `oram-audit` fuzzes service-driven traces with the same
//! structural and distribution distinguishers as CPU-driven ones.
//! Sharding adds one public quantity — which shard serves a request is
//! `addr mod M` — and `oram-audit`'s cross-shard distinguisher checks
//! nothing beyond that leaks.
//!
//! ## Determinism
//!
//! Every decision derives from the master seed and the backend clock:
//! per-client generators are seeded by client index, admission
//! processes arrivals in global time order (ties by client id), and the
//! scheduler is a pure function of queue state. Two runs with the same
//! configuration produce bit-identical results; for the sharded
//! back-end that holds at any worker thread count, because batches
//! partition to shards in input order before any shard runs.

use std::collections::VecDeque;

use oram_sim::{
    DramBackend, Engine, ServeOutcome, ShardRequest, ShardedOram, SimStats, StorageBackend,
};
use oram_util::{MetricId, Rng64, ServeClass, SharedLive, SharedTelemetry};
use oram_workloads::{PoissonProcess, ZipfianSampler};

use crate::config::{AddressMix, ArrivalModel, ClientSpec, SchedPolicy, ServiceConfig};

/// Arrival-time sentinel: no further request pending from this client
/// (stream exhausted, or closed loop awaiting its completion).
const NEVER: u64 = u64::MAX;

/// One queued request as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedRequest {
    /// Global admission sequence number (FCFS order).
    seq: u64,
    /// Block address.
    addr: u64,
    /// Write request (writes never coalesce).
    write: bool,
    /// CPU cycle the request arrived at the service layer.
    arrival: u64,
}

/// Dense index for per-class serve counters (mirrors [`ServeClass`]).
fn class_index(c: ServeClass) -> usize {
    match c {
        ServeClass::Stash => 0,
        ServeClass::Treetop => 1,
        ServeClass::DramReal => 2,
        ServeClass::DramShadow => 3,
        ServeClass::Fresh => 4,
        ServeClass::Dummy => 5,
    }
}

/// Names matching the [`ClientResult::served`] index, for reports.
pub const SERVE_CLASS_NAMES: [&str; 6] =
    ["stash", "treetop", "dram_real", "dram_shadow", "fresh", "dummy"];

/// Live state of one client stream.
#[derive(Debug)]
struct ClientState {
    spec: ClientSpec,
    /// Interarrival / think-time generator.
    gaps: PoissonProcess,
    /// Zipfian sampler when the mix needs one.
    zipf: Option<ZipfianSampler>,
    /// Uniform/hot draws and the write coin.
    rng: Rng64,
    /// Cycle of the next generated arrival; [`NEVER`] when exhausted or
    /// (closed loop) awaiting completion.
    next_arrival: u64,
    queue: VecDeque<QueuedRequest>,
    // ---- accounting ----
    generated: u64,
    admitted: u64,
    rejected: u64,
    coalesced: u64,
    completed: u64,
    /// ORAM accesses this client issued as a group leader.
    issued: u64,
    served: [u64; 6],
    /// Completion-order per-request latency (`data_ready − arrival`).
    latencies: Vec<u64>,
    /// Completion-order per-request queue wait (`issue − arrival`).
    wait_sum: u64,
    wait_max: u64,
}

impl ClientState {
    fn new(spec: ClientSpec, master_seed: u64, index: usize, start_cycle: u64) -> Self {
        // SplitMix-style per-client stream separation: one multiply is
        // enough because Rng64's seeding finalizes with SplitMix64.
        let base = master_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mean = match spec.arrivals {
            ArrivalModel::Open { mean_gap_cycles } => mean_gap_cycles,
            ArrivalModel::Closed { think_cycles } => think_cycles,
        };
        let mut gaps = PoissonProcess::new(base, mean);
        let zipf = match spec.addresses {
            AddressMix::Zipfian { domain, theta }
            | AddressMix::ZipfianShifted { domain, theta, .. } => {
                Some(ZipfianSampler::new(domain, theta, base ^ 0xA11CE))
            }
            _ => None,
        };
        // Later arrivals chain off the previous one, so only the first
        // needs the phase offset (soak phases resume mid-clock).
        let next_arrival =
            if spec.requests == 0 { NEVER } else { start_cycle + gaps.next_gap() };
        ClientState {
            gaps,
            zipf,
            rng: Rng64::seed_from_u64(base ^ 0xC0FFEE),
            next_arrival,
            queue: VecDeque::with_capacity(64),
            generated: 0,
            admitted: 0,
            rejected: 0,
            coalesced: 0,
            completed: 0,
            issued: 0,
            served: [0; 6],
            latencies: Vec::with_capacity(spec.requests as usize),
            wait_sum: 0,
            wait_max: 0,
            spec,
        }
    }

    /// Draws the next address from this client's mix.
    fn draw_addr(&mut self) -> u64 {
        match self.spec.addresses {
            AddressMix::Uniform { domain } => self.rng.below(domain),
            AddressMix::Zipfian { .. } => self.zipf.as_mut().expect("zipf sampler").sample(),
            AddressMix::ZipfianShifted { domain, offset, .. } => {
                (self.zipf.as_mut().expect("zipf sampler").sample() + offset) % domain
            }
            AddressMix::Hot { domain, hot_blocks, hot_frac } => {
                if hot_blocks == domain || self.rng.gen_bool(hot_frac) {
                    self.rng.below(hot_blocks)
                } else {
                    hot_blocks + self.rng.below(domain - hot_blocks)
                }
            }
        }
    }

    /// Draws the write coin.
    fn draw_write(&mut self) -> bool {
        self.rng.gen_bool(self.spec.write_frac)
    }
}

/// Final per-client accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResult {
    /// Requests the stream generated (admitted + rejected).
    pub generated: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused by admission control (queue full at arrival).
    pub rejected: u64,
    /// Requests completed by riding a coalesced group (no own access).
    pub coalesced: u64,
    /// Requests completed (equals `admitted` after a drained run).
    pub completed: u64,
    /// ORAM accesses issued with this client as group leader.
    pub issued: u64,
    /// Completions per serve class, indexed like [`SERVE_CLASS_NAMES`].
    pub served: [u64; 6],
    /// Per-request latency (`data_ready − arrival`) in completion order.
    pub latencies: Vec<u64>,
    /// Sum of per-request queue waits (`issue − arrival`).
    pub wait_sum: u64,
    /// Largest single queue wait.
    pub wait_max: u64,
}

/// Result of a drained service run: engine statistics plus per-client
/// service accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResult {
    /// Engine statistics over the whole run (Eq. 1 accounting closed).
    /// For a resumed phase these are *cumulative* across every phase
    /// that shared the engine — see [`ServiceResult::prior_issued`].
    pub stats: SimStats,
    /// Per-client accounting, index = client id.
    pub clients: Vec<ClientResult>,
    /// Accesses the shared engine had already consumed when this phase
    /// began (0 for a fresh run). Validation charges the engine's
    /// cumulative counter against `issued + prior_issued`.
    pub prior_issued: u64,
}

impl ServiceResult {
    /// Total completions across clients.
    pub fn completed(&self) -> u64 {
        self.clients.iter().map(|c| c.completed).sum()
    }

    /// Total ORAM accesses issued (group leaders).
    pub fn issued(&self) -> u64 {
        self.clients.iter().map(|c| c.issued).sum()
    }

    /// Total requests that coalesced onto another access.
    pub fn coalesced(&self) -> u64 {
        self.clients.iter().map(|c| c.coalesced).sum()
    }

    /// Total admission-control rejections.
    pub fn rejected(&self) -> u64 {
        self.clients.iter().map(|c| c.rejected).sum()
    }

    /// Cross-checks the service-layer conservation laws against the
    /// engine's own counters — every generated request must be accounted
    /// for exactly once, and every engine access must have a leader.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.clients.iter().enumerate() {
            if c.generated != c.admitted + c.rejected {
                return Err(format!(
                    "client {i}: generated {} != admitted {} + rejected {}",
                    c.generated, c.admitted, c.rejected
                ));
            }
            if c.completed != c.admitted {
                return Err(format!(
                    "client {i}: completed {} != admitted {} (requests lost in queue)",
                    c.completed, c.admitted
                ));
            }
            if c.completed != c.issued + c.coalesced {
                return Err(format!(
                    "client {i}: completed {} != issued {} + coalesced {}",
                    c.completed, c.issued, c.coalesced
                ));
            }
            if c.latencies.len() as u64 != c.completed {
                return Err(format!(
                    "client {i}: {} latency samples for {} completions",
                    c.latencies.len(),
                    c.completed
                ));
            }
            let classed: u64 = c.served.iter().sum();
            if classed != c.completed {
                return Err(format!(
                    "client {i}: served-class sum {classed} != completed {}",
                    c.completed
                ));
            }
            if c.served[class_index(ServeClass::Dummy)] != 0 {
                return Err(format!("client {i}: a real request was served as a dummy"));
            }
        }
        let issued = self.issued() + self.prior_issued;
        if self.stats.misses_consumed != issued {
            return Err(format!(
                "engine consumed {} requests but service issued {issued} \
                 (including {} from earlier phases)",
                self.stats.misses_consumed, self.prior_issued
            ));
        }
        Ok(())
    }
}

/// The backend-independent scheduling front-end: client streams,
/// admission control, scheduler policy and completion accounting.
/// [`ServiceSim`] and [`ShardedServiceSim`] differ only in how selected
/// group leaders reach an engine.
#[derive(Debug)]
struct Frontend {
    cfg: ServiceConfig,
    clients: Vec<ClientState>,
    next_seq: u64,
    /// Round-robin rotation cursor.
    rr_cursor: usize,
    /// Optional sink for the service-layer counters (admitted /
    /// coalesced / rejected).
    telemetry: Option<SharedTelemetry>,
    /// Optional live observer for per-request completion/rejection
    /// events (the `oram-obsv` plane). One branch on `None` when
    /// detached, exactly like `telemetry`.
    live: Option<SharedLive>,
}

impl Frontend {
    fn new(cfg: ServiceConfig) -> Result<Self, String> {
        Frontend::new_at(cfg, 0)
    }

    /// Builds the front-end with every client's *first* arrival offset
    /// by `start_cycle` — the resume point for phase-chained soak runs
    /// whose engine clock is already deep into a previous phase.
    fn new_at(cfg: ServiceConfig, start_cycle: u64) -> Result<Self, String> {
        cfg.validate()?;
        let mut clients: Vec<ClientState> = cfg
            .clients
            .iter()
            .enumerate()
            .map(|(i, spec)| ClientState::new(*spec, cfg.seed, i, start_cycle))
            .collect();
        for c in &mut clients {
            // VecDeque grows to a power of two; reserving the bound up
            // front keeps the admission path allocation-free.
            c.queue.reserve(cfg.queue_capacity + 1);
        }
        Ok(Frontend { clients, next_seq: 0, rr_cursor: 0, telemetry: None, live: None, cfg })
    }

    /// Upper bound on coalesce-group waiters in flight at once.
    fn waiter_capacity(&self) -> usize {
        self.clients.len() * self.cfg.queue_capacity
    }

    fn count(&self, id: MetricId) {
        if let Some(t) = &self.telemetry {
            t.lock().expect("telemetry lock").count(id, 1);
        }
    }

    fn observe_rejected(&self, now: u64, tenant: usize) {
        if let Some(l) = &self.live {
            l.lock().expect("live observer lock").request_rejected(now, tenant as u32);
        }
    }

    fn observe_admitted(&self, now: u64, tenant: usize) {
        if let Some(l) = &self.live {
            l.lock().expect("live observer lock").request_admitted(now, tenant as u32);
        }
    }

    /// Injects one request into a client's queue at cycle `now`, subject
    /// to normal admission control; `false` means rejected (queue full).
    fn inject(&mut self, now: u64, client: usize, addr: u64, write: bool) -> bool {
        let seq = self.next_seq;
        let telemetry_on = self.telemetry.is_some();
        let cap = self.cfg.queue_capacity;
        let c = &mut self.clients[client];
        c.generated += 1;
        if c.queue.len() >= cap {
            c.rejected += 1;
            if telemetry_on {
                self.count(MetricId::ServiceRejected);
            }
            self.observe_rejected(now, client);
            return false;
        }
        c.queue.push_back(QueuedRequest { seq, addr, write, arrival: now });
        c.admitted += 1;
        self.next_seq += 1;
        if telemetry_on {
            self.count(MetricId::ServiceAdmitted);
        }
        self.observe_admitted(now, client);
        true
    }

    /// Admits every pending arrival with time ≤ `horizon`, in global
    /// time order (ties by client id).
    fn admit_until(&mut self, horizon: u64) {
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (i, c) in self.clients.iter().enumerate() {
                if c.next_arrival <= horizon {
                    match best {
                        Some((t, _)) if t <= c.next_arrival => {}
                        _ => best = Some((c.next_arrival, i)),
                    }
                }
            }
            let Some((_, i)) = best else { return };
            self.admit_one(i);
        }
    }

    /// Admits (or rejects) client `i`'s pending arrival and schedules
    /// the stream's next one.
    fn admit_one(&mut self, i: usize) {
        let cap = self.cfg.queue_capacity;
        let seq = self.next_seq;
        let c = &mut self.clients[i];
        let arrival = c.next_arrival;
        let addr = c.draw_addr();
        let write = c.draw_write();
        c.generated += 1;

        let admitted = if c.queue.len() >= cap {
            c.rejected += 1;
            false
        } else {
            c.queue.push_back(QueuedRequest { seq, addr, write, arrival });
            c.admitted += 1;
            true
        };

        // Schedule the stream's next arrival. Closed loops wait for the
        // completion of the request just queued — unless it was
        // rejected, which cannot happen when capacity ≥ 1 (a closed
        // client has at most one request in flight); a rejected closed
        // request would otherwise deadlock the stream, so treat the
        // rejection itself as an instant (failed) completion.
        c.next_arrival = if c.generated >= c.spec.requests {
            NEVER
        } else {
            match c.spec.arrivals {
                ArrivalModel::Open { .. } => arrival + c.gaps.next_gap(),
                ArrivalModel::Closed { .. } => {
                    if admitted {
                        NEVER
                    } else {
                        arrival + c.gaps.next_gap()
                    }
                }
            }
        };

        if admitted {
            self.next_seq += 1;
            self.count(MetricId::ServiceAdmitted);
            self.observe_admitted(arrival, i);
        } else {
            self.count(MetricId::ServiceRejected);
            self.observe_rejected(arrival, i);
        }
    }

    /// Picks the client whose queue head the policy issues next, or
    /// `None` if every queue is empty.
    fn select_client(&mut self) -> Option<usize> {
        let n = self.clients.len();
        match self.cfg.scheduler {
            SchedPolicy::Fcfs => {
                let mut best: Option<(u64, usize)> = None;
                for (i, c) in self.clients.iter().enumerate() {
                    if let Some(head) = c.queue.front() {
                        if best.is_none_or(|(s, _)| head.seq < s) {
                            best = Some((head.seq, i));
                        }
                    }
                }
                best.map(|(_, i)| i)
            }
            SchedPolicy::RoundRobin => {
                for off in 0..n {
                    let i = (self.rr_cursor + off) % n;
                    if !self.clients[i].queue.is_empty() {
                        self.rr_cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            SchedPolicy::OldestFirst => {
                // Min arrival; ties prefer the deeper backlog, then the
                // lower client id.
                let mut best: Option<(u64, usize, usize)> = None;
                for (i, c) in self.clients.iter().enumerate() {
                    if let Some(head) = c.queue.front() {
                        let key = (head.arrival, c.queue.len(), i);
                        let better = match best {
                            None => true,
                            Some((a, d, _)) => {
                                head.arrival < a || (head.arrival == a && c.queue.len() > d)
                            }
                        };
                        if better {
                            best = Some((key.0, key.1, key.2));
                        }
                    }
                }
                best.map(|(_, _, i)| i)
            }
        }
    }

    /// Pops the selected client's queue head and records its queue wait
    /// against issue time `now`.
    fn pop_leader(&mut self, ci: usize, now: u64) -> QueuedRequest {
        let req = self.clients[ci].queue.pop_front().expect("selected head");
        let wait = now.max(req.arrival) - req.arrival;
        let c = &mut self.clients[ci];
        c.wait_sum += wait;
        c.wait_max = c.wait_max.max(wait);
        req
    }

    /// Records one completed request on its client. `shard` is the
    /// public `addr mod M` routing slot (0 on single-engine back-ends).
    fn complete(
        &mut self,
        client: usize,
        req: &QueuedRequest,
        out: &ServeOutcome,
        leader: bool,
        shard: u32,
    ) {
        let latency = out.data_ready.saturating_sub(req.arrival);
        let c = &mut self.clients[client];
        c.completed += 1;
        c.served[class_index(out.served)] += 1;
        c.latencies.push(latency);
        if leader {
            c.issued += 1;
        } else {
            c.coalesced += 1;
        }
        // Closed loop: completion re-arms the stream's next arrival.
        if matches!(c.spec.arrivals, ArrivalModel::Closed { .. })
            && c.generated < c.spec.requests
        {
            c.next_arrival = out.data_ready + c.gaps.next_gap();
        }
        if !leader {
            self.count(MetricId::ServiceCoalesced);
        }
        if let Some(l) = &self.live {
            l.lock().expect("live observer lock").request_complete(
                out.data_ready,
                client as u32,
                shard,
                out.served,
                latency,
                !leader,
            );
        }
    }

    /// `true` when every queue is empty (streams may still generate).
    fn queues_empty(&self) -> bool {
        self.clients.iter().all(|c| c.queue.is_empty())
    }

    /// The earliest pending arrival across streams ([`NEVER`] if none).
    fn next_pending_arrival(&self) -> u64 {
        self.clients.iter().map(|c| c.next_arrival).min().unwrap_or(NEVER)
    }

    /// `true` when nothing is queued and no stream will generate again.
    fn drained(&self) -> bool {
        self.clients.iter().all(|c| c.queue.is_empty() && c.next_arrival == NEVER)
    }

    /// Folds the client states into their final accounting.
    fn into_results(self) -> Vec<ClientResult> {
        self.clients
            .into_iter()
            .map(|c| ClientResult {
                generated: c.generated,
                admitted: c.admitted,
                rejected: c.rejected,
                coalesced: c.coalesced,
                completed: c.completed,
                issued: c.issued,
                served: c.served,
                latencies: c.latencies,
                wait_sum: c.wait_sum,
                wait_max: c.wait_max,
            })
            .collect()
    }
}

/// The service front-end driving one [`Engine`].
///
/// Construction wires the client streams; [`ServiceSim::step`] runs one
/// scheduling round (admission plus one issue batch); [`ServiceSim::finish`]
/// closes the engine accounting and returns the [`ServiceResult`].
#[derive(Debug)]
pub struct ServiceSim<B: StorageBackend = DramBackend> {
    front: Frontend,
    engine: Engine<B>,
    /// Coalesce-sweep scratch: `(client, request)` waiters removed from
    /// their queues, completed with the leader's outcome. Preallocated;
    /// the steady-state issue path never allocates.
    waiter_buf: Vec<(u32, QueuedRequest)>,
    /// Accesses the engine had consumed before this phase began.
    prior_issued: u64,
}

impl<B: StorageBackend> ServiceSim<B> {
    /// Builds a front-end over a ready engine (prefill the working set
    /// and attach observers/telemetry to the engine *before* handing it
    /// in; the service never reconfigures it).
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error.
    pub fn new(cfg: ServiceConfig, engine: Engine<B>) -> Result<Self, String> {
        let front = Frontend::new(cfg)?;
        let waiter_cap = front.waiter_capacity();
        Ok(ServiceSim {
            front,
            engine,
            waiter_buf: Vec::with_capacity(waiter_cap),
            prior_issued: 0,
        })
    }

    /// Builds a front-end over an engine whose clock is already running
    /// — typically one returned by a previous phase's
    /// [`ServiceSim::finish`] — with every client's first arrival offset
    /// by `start_cycle`. Stash occupancy, position map and Eq. 1
    /// accounting all carry over, so phase-chained soak runs observe one
    /// continuous ORAM rather than a sequence of cold starts.
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error.
    pub fn resume(cfg: ServiceConfig, engine: Engine<B>, start_cycle: u64) -> Result<Self, String> {
        let front = Frontend::new_at(cfg, start_cycle)?;
        let waiter_cap = front.waiter_capacity();
        let prior_issued = engine.stats().misses_consumed;
        Ok(ServiceSim {
            front,
            engine,
            waiter_buf: Vec::with_capacity(waiter_cap),
            prior_issued,
        })
    }

    /// Attaches a sink for the service-layer counters. (Engine-side
    /// telemetry — spans, windows, queue-wait samples — is attached to
    /// the engine itself before construction.)
    pub fn attach_telemetry(&mut self, sink: SharedTelemetry) {
        self.front.telemetry = Some(sink);
    }

    /// Attaches a live observer for per-request completion and
    /// rejection events (tenant, shard, serve class, latency).
    pub fn attach_live(&mut self, live: SharedLive) {
        self.front.live = Some(live);
    }

    /// The engine being driven.
    pub fn engine(&self) -> &Engine<B> {
        &self.engine
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.front.cfg
    }

    /// Injects one request directly into a client's queue at the
    /// current engine cycle, subject to normal admission control.
    /// Returns `false` if the queue was full (request rejected). The
    /// deterministic entry point for invariant tests; generated streams
    /// use the client specs instead.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn inject(&mut self, client: usize, addr: u64, write: bool) -> bool {
        let now = self.engine.cycle();
        self.front.inject(now, client, addr, write)
    }

    /// Issues one scheduled request (and its coalesced group) into the
    /// engine.
    fn issue_one(&mut self) -> bool {
        let Some(ci) = self.front.select_client() else { return false };
        let req = self.front.pop_leader(ci, self.engine.cycle());

        // MSHR sweep: absorb every queued read of the same address
        // (any client, any queue position) into this access. Writes
        // never coalesce — they carry distinct payloads.
        if self.front.cfg.coalescing && !req.write {
            let buf = &mut self.waiter_buf;
            for (i, c) in self.front.clients.iter_mut().enumerate() {
                c.queue.retain(|q| {
                    if q.addr == req.addr && !q.write {
                        buf.push((i as u32, *q));
                        false
                    } else {
                        true
                    }
                });
            }
        }

        // The group's effective arrival is its oldest member — the
        // leader under FCFS/oldest-first, and still the honest choice
        // under round-robin where an older waiter may ride along.
        let mut group_arrival = req.arrival;
        for k in 0..self.waiter_buf.len() {
            group_arrival = group_arrival.min(self.waiter_buf[k].1.arrival);
        }
        let out = self.engine.serve_request(req.addr, req.write, group_arrival);
        self.front.complete(ci, &req, &out, true, 0);
        while let Some((wc, wreq)) = self.waiter_buf.pop() {
            self.front.complete(wc as usize, &wreq, &out, false, 0);
        }
        true
    }

    /// Runs one scheduling round: admits every arrival up to the
    /// current engine cycle (advancing to the next pending arrival if
    /// all queues are empty), then issues up to `batch_size` requests.
    /// Returns `false` once the run is drained.
    pub fn step(&mut self) -> bool {
        self.front.admit_until(self.engine.cycle());
        if self.front.queues_empty() {
            let next = self.front.next_pending_arrival();
            if next == NEVER {
                return false;
            }
            self.front.admit_until(next);
        }
        for _ in 0..self.front.cfg.batch_size {
            if !self.issue_one() {
                break;
            }
        }
        !self.front.drained()
    }

    /// Steps until drained.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Closes the engine's Eq. 1 accounting and returns the result
    /// together with the engine (so callers can inspect attached
    /// observers or reuse it).
    pub fn finish(mut self) -> (ServiceResult, Engine<B>) {
        let stats = self.engine.finish();
        let clients = self.front.into_results();
        (ServiceResult { stats, clients, prior_issued: self.prior_issued }, self.engine)
    }
}

/// The service front-end driving a [`ShardedOram`] backend.
///
/// Shares the scheduling front-end with [`ServiceSim`] — same admission
/// control, scheduler policies and MSHR coalescing — but each scheduling
/// round collects up to `batch_size` coalesced group leaders first and
/// dispatches them to the backend as one batch, which partitions them
/// across its shards and serves the shards concurrently. Results are
/// bit-identical for a fixed `(seed, shard count)` at any worker thread
/// count.
#[derive(Debug)]
pub struct ShardedServiceSim<B: StorageBackend = DramBackend> {
    front: Frontend,
    backend: ShardedOram<B>,
    /// Waiters swept out of the queues this round, tagged with the batch
    /// slot of their group leader (pushed in slot-ascending order).
    waiter_buf: Vec<(u32, QueuedRequest, u32)>,
    /// This round's group leaders, by batch slot.
    leaders: Vec<(u32, QueuedRequest)>,
    /// The dispatch batch handed to the backend, by batch slot.
    batch: Vec<ShardRequest>,
    /// Per-slot outcomes scattered back by the backend.
    outs: Vec<ServeOutcome>,
    /// Accesses the backend had consumed before this phase began.
    prior_issued: u64,
}

impl<B: StorageBackend> ShardedServiceSim<B> {
    /// Builds a front-end over a ready sharded backend (prefill the
    /// working set and attach per-shard observers/telemetry *before*
    /// handing it in).
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error.
    pub fn new(cfg: ServiceConfig, backend: ShardedOram<B>) -> Result<Self, String> {
        ShardedServiceSim::build(Frontend::new(cfg)?, backend)
    }

    /// Builds a front-end over a sharded backend whose clock is already
    /// running, with every client's first arrival offset by
    /// `start_cycle` — the sharded counterpart of [`ServiceSim::resume`]
    /// for phase-chained soak runs.
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error.
    pub fn resume(
        cfg: ServiceConfig,
        backend: ShardedOram<B>,
        start_cycle: u64,
    ) -> Result<Self, String> {
        ShardedServiceSim::build(Frontend::new_at(cfg, start_cycle)?, backend)
    }

    fn build(front: Frontend, mut backend: ShardedOram<B>) -> Result<Self, String> {
        let waiter_cap = front.waiter_capacity();
        let batch = front.cfg.batch_size;
        // Construction-time sizing keeps the steady-state dispatch path
        // allocation-free.
        backend.reserve_batch(batch);
        let shards = backend.dispatch_counts().len();
        let prior_issued =
            (0..shards).map(|s| backend.shard_stats(s).misses_consumed).sum();
        Ok(ShardedServiceSim {
            front,
            backend,
            waiter_buf: Vec::with_capacity(waiter_cap),
            leaders: Vec::with_capacity(batch),
            batch: Vec::with_capacity(batch),
            outs: Vec::with_capacity(batch),
            prior_issued,
        })
    }

    /// Attaches a sink for the service-layer counters.
    pub fn attach_telemetry(&mut self, sink: SharedTelemetry) {
        self.front.telemetry = Some(sink);
    }

    /// Attaches a live observer for per-request completion and
    /// rejection events (tenant, shard, serve class, latency).
    pub fn attach_live(&mut self, live: SharedLive) {
        self.front.live = Some(live);
    }

    /// The backend being driven.
    pub fn backend(&self) -> &ShardedOram<B> {
        &self.backend
    }

    /// Mutable backend access (per-shard engines, dispatch counters).
    pub fn backend_mut(&mut self) -> &mut ShardedOram<B> {
        &mut self.backend
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.front.cfg
    }

    /// Injects one request directly into a client's queue at the current
    /// backend cycle, subject to normal admission control. Returns
    /// `false` if the queue was full.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn inject(&mut self, client: usize, addr: u64, write: bool) -> bool {
        let now = self.backend.cycle();
        self.front.inject(now, client, addr, write)
    }

    /// Collects up to `batch_size` coalesced group leaders and
    /// dispatches them to the backend as one batch.
    fn issue_batch(&mut self) {
        self.leaders.clear();
        self.batch.clear();
        let now = self.backend.cycle();
        for _ in 0..self.front.cfg.batch_size {
            let Some(ci) = self.front.select_client() else { break };
            let req = self.front.pop_leader(ci, now);
            let slot = self.leaders.len() as u32;

            // MSHR sweep, as in the single-engine path; waiters remember
            // which batch slot completes them. A later leader can never
            // alias an earlier read leader's address — the sweep just
            // emptied the queues of it.
            if self.front.cfg.coalescing && !req.write {
                let buf = &mut self.waiter_buf;
                for (i, c) in self.front.clients.iter_mut().enumerate() {
                    c.queue.retain(|q| {
                        if q.addr == req.addr && !q.write {
                            buf.push((i as u32, *q, slot));
                            false
                        } else {
                            true
                        }
                    });
                }
            }
            let mut group_arrival = req.arrival;
            for (_, w, s) in &self.waiter_buf {
                if *s == slot {
                    group_arrival = group_arrival.min(w.arrival);
                }
            }
            self.leaders.push((ci as u32, req));
            self.batch.push(ShardRequest { addr: req.addr, write: req.write, arrival: group_arrival });
        }
        if self.batch.is_empty() {
            return;
        }
        self.backend.serve_batch(&self.batch, &mut self.outs);

        // Complete leaders in slot order, each followed by its waiters
        // (the sweep pushed them in slot-ascending order).
        let mut wi = 0;
        for slot in 0..self.leaders.len() {
            let (ci, req) = self.leaders[slot];
            let out = self.outs[slot];
            let shard = self.backend.shard_of(req.addr) as u32;
            self.front.complete(ci as usize, &req, &out, true, shard);
            while wi < self.waiter_buf.len() && self.waiter_buf[wi].2 == slot as u32 {
                let (wc, wreq, _) = self.waiter_buf[wi];
                self.front.complete(wc as usize, &wreq, &out, false, shard);
                wi += 1;
            }
        }
        self.waiter_buf.clear();
    }

    /// Runs one scheduling round: admits every arrival up to the current
    /// backend cycle (advancing to the next pending arrival if all
    /// queues are empty), then collects and dispatches one batch.
    /// Returns `false` once the run is drained.
    pub fn step(&mut self) -> bool {
        self.front.admit_until(self.backend.cycle());
        if self.front.queues_empty() {
            let next = self.front.next_pending_arrival();
            if next == NEVER {
                return false;
            }
            self.front.admit_until(next);
        }
        self.issue_batch();
        !self.front.drained()
    }

    /// Steps until drained.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Closes every shard's Eq. 1 accounting and returns the merged
    /// result together with the backend (so callers can inspect per-shard
    /// engines, observers and dispatch counters).
    pub fn finish(mut self) -> (ServiceResult, ShardedOram<B>) {
        let stats = self.backend.finish();
        let clients = self.front.into_results();
        (ServiceResult { stats, clients, prior_issued: self.prior_issued }, self.backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_sim::SystemConfig;

    fn engine() -> Engine {
        let mut e = Engine::new(SystemConfig::small_test()).expect("valid config");
        e.prefill_working_set(512);
        e
    }

    fn quick_cfg(scheduler: SchedPolicy) -> ServiceConfig {
        let mut cfg = ServiceConfig::symmetric_open(3, 40, 2_000.0, 512, 11);
        cfg.scheduler = scheduler;
        cfg
    }

    #[test]
    fn generated_run_drains_and_validates() {
        for policy in SchedPolicy::ALL {
            let mut sim = ServiceSim::new(quick_cfg(policy), engine()).unwrap();
            sim.run();
            let (res, _) = sim.finish();
            res.validate().unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            assert_eq!(res.completed() + res.rejected(), 3 * 40, "{}", policy.name());
            assert!(res.stats.total_cycles > 0);
        }
    }

    #[test]
    fn same_seed_same_result() {
        let run = || {
            let mut sim = ServiceSim::new(quick_cfg(SchedPolicy::RoundRobin), engine()).unwrap();
            sim.run();
            sim.finish().0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut cfg = quick_cfg(SchedPolicy::Fcfs);
            cfg.seed = seed;
            let mut sim = ServiceSim::new(cfg, engine()).unwrap();
            sim.run();
            sim.finish().0
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn fcfs_and_oldest_first_agree_on_monotone_arrivals() {
        // Admission order equals arrival order here, so the two
        // policies must produce the same schedule (see SchedPolicy
        // docs); round-robin is the one allowed to differ.
        let run = |policy| {
            let mut sim = ServiceSim::new(quick_cfg(policy), engine()).unwrap();
            sim.run();
            let (res, _) = sim.finish();
            res
        };
        let fcfs = run(SchedPolicy::Fcfs);
        let oldest = run(SchedPolicy::OldestFirst);
        assert_eq!(fcfs, oldest);
    }

    #[test]
    fn round_robin_reorders_across_clients() {
        // Client 0 backlogs three requests, client 1 one; under FCFS
        // client 1 waits behind all of client 0, under round-robin it
        // goes second.
        let run = |policy| {
            let mut cfg = ServiceConfig::symmetric_open(2, 0, 1_000.0, 64, 5);
            cfg.scheduler = policy;
            cfg.coalescing = false;
            let mut sim = ServiceSim::new(cfg, engine()).unwrap();
            for addr in [1, 2, 3] {
                assert!(sim.inject(0, addr, false));
            }
            assert!(sim.inject(1, 9, false));
            sim.run();
            let (res, _) = sim.finish();
            res.validate().unwrap();
            res.clients[1].latencies[0]
        };
        let fcfs = run(SchedPolicy::Fcfs);
        let rr = run(SchedPolicy::RoundRobin);
        assert!(rr < fcfs, "round-robin {rr} should beat fcfs {fcfs} for the minority client");
    }

    #[test]
    fn injection_respects_queue_bound() {
        let mut cfg = ServiceConfig::symmetric_open(1, 0, 1_000.0, 64, 5);
        cfg.queue_capacity = 2;
        let mut sim = ServiceSim::new(cfg, engine()).unwrap();
        assert!(sim.inject(0, 1, false));
        assert!(sim.inject(0, 2, false));
        assert!(!sim.inject(0, 3, false), "third injection must bounce");
        sim.run();
        let (res, _) = sim.finish();
        res.validate().unwrap();
        assert_eq!(res.clients[0].admitted, 2);
        assert_eq!(res.clients[0].rejected, 1);
    }

    #[test]
    fn closed_loop_never_rejects() {
        let mut cfg = ServiceConfig::symmetric_open(2, 30, 500.0, 256, 3);
        cfg.queue_capacity = 1;
        for c in &mut cfg.clients {
            c.arrivals = ArrivalModel::Closed { think_cycles: 300.0 };
        }
        let mut sim = ServiceSim::new(cfg, engine()).unwrap();
        sim.run();
        let (res, _) = sim.finish();
        res.validate().unwrap();
        assert_eq!(res.rejected(), 0);
        assert_eq!(res.completed(), 60);
    }

    #[test]
    fn open_loop_overload_rejects() {
        // Offered gap of ~30 cycles against multi-thousand-cycle ORAM
        // accesses: queues must overflow.
        let mut cfg = ServiceConfig::symmetric_open(2, 200, 30.0, 256, 9);
        cfg.queue_capacity = 4;
        let mut sim = ServiceSim::new(cfg, engine()).unwrap();
        sim.run();
        let (res, _) = sim.finish();
        res.validate().unwrap();
        assert!(res.rejected() > 0, "overload must trip admission control");
    }

    #[test]
    fn coalescing_reduces_issued_accesses() {
        let mk = |coalescing| {
            let mut cfg = ServiceConfig::symmetric_open(4, 60, 200.0, 4096, 13);
            cfg.coalescing = coalescing;
            for c in &mut cfg.clients {
                // All clients hammer the same 2 hot blocks with reads.
                c.addresses = AddressMix::Hot { domain: 256, hot_blocks: 2, hot_frac: 1.0 };
                c.write_frac = 0.0;
            }
            let mut sim = ServiceSim::new(cfg, engine()).unwrap();
            sim.run();
            let (res, _) = sim.finish();
            res.validate().unwrap();
            res
        };
        let with = mk(true);
        let without = mk(false);
        assert!(with.coalesced() > 0);
        assert_eq!(without.coalesced(), 0);
        assert!(with.issued() < without.issued());
    }

    #[test]
    fn writes_never_coalesce() {
        let mut cfg = ServiceConfig::symmetric_open(3, 0, 1_000.0, 64, 5);
        cfg.coalescing = true;
        let mut sim = ServiceSim::new(cfg, engine()).unwrap();
        for c in 0..3 {
            assert!(sim.inject(c, 7, true));
        }
        sim.run();
        let (res, _) = sim.finish();
        res.validate().unwrap();
        assert_eq!(res.coalesced(), 0);
        assert_eq!(res.issued(), 3, "each write must issue its own access");
    }

    #[test]
    fn shifted_zipf_migrates_the_hot_set_but_keeps_its_shape() {
        // Same seed, same theta: the shifted mix must draw the *same
        // rank sequence* rotated by the offset — popularity shape
        // intact, hot blocks moved.
        let draws = |addresses| {
            let spec = ClientSpec {
                arrivals: ArrivalModel::Open { mean_gap_cycles: 100.0 },
                addresses,
                write_frac: 0.0,
                requests: 0,
            };
            let mut c = ClientState::new(spec, 42, 0, 0);
            (0..2_000).map(|_| c.draw_addr()).collect::<Vec<u64>>()
        };
        let base = draws(AddressMix::Zipfian { domain: 512, theta: 0.9 });
        let moved =
            draws(AddressMix::ZipfianShifted { domain: 512, theta: 0.9, offset: 100 });
        assert_eq!(moved.len(), base.len());
        for (b, m) in base.iter().zip(&moved) {
            assert_eq!(*m, (b + 100) % 512);
        }
        let zero = draws(AddressMix::ZipfianShifted { domain: 512, theta: 0.9, offset: 0 });
        assert_eq!(zero, base);
    }

    #[test]
    fn resumed_phase_offsets_arrivals_and_keeps_the_engine_warm() {
        // Phase 1 runs to completion; phase 2 resumes on the returned
        // engine from the final cycle. Arrivals must start at or after
        // the resume point and the engine's cumulative accounting must
        // keep growing (no cold restart).
        let mut p1 = ServiceSim::new(quick_cfg(SchedPolicy::Fcfs), engine()).unwrap();
        p1.run();
        let (r1, e1) = p1.finish();
        r1.validate().unwrap();
        let resume_at = e1.cycle();
        assert!(resume_at > 0);

        let mut cfg2 = quick_cfg(SchedPolicy::Fcfs);
        cfg2.seed ^= 0x50AC;
        let mut p2 = ServiceSim::resume(cfg2, e1, resume_at).unwrap();
        p2.run();
        let (r2, e2) = p2.finish();
        r2.validate().unwrap();
        assert_eq!(r2.completed() + r2.rejected(), 3 * 40);
        assert!(e2.cycle() > resume_at, "phase 2 must advance the shared clock");
        // Every phase-2 latency is measured from a post-resume arrival,
        // so no sample can exceed the phase-2 span.
        for c in &r2.clients {
            for &l in &c.latencies {
                assert!(l <= e2.cycle() - resume_at, "latency {l} spans phases");
            }
        }
    }

    #[test]
    fn resume_at_zero_matches_new() {
        let run_new = || {
            let mut s = ServiceSim::new(quick_cfg(SchedPolicy::Fcfs), engine()).unwrap();
            s.run();
            s.finish().0
        };
        let run_resume = || {
            let mut s =
                ServiceSim::resume(quick_cfg(SchedPolicy::Fcfs), engine(), 0).unwrap();
            s.run();
            s.finish().0
        };
        assert_eq!(run_new(), run_resume());
    }

    // ---- sharded backend ----

    fn sharded(shards: usize, threads: usize) -> ShardedOram {
        let mut b = ShardedOram::new(SystemConfig::small_test(), shards, threads)
            .expect("valid config");
        b.prefill_working_set(512);
        b
    }

    #[test]
    fn sharded_run_drains_and_validates() {
        for policy in SchedPolicy::ALL {
            let mut sim = ShardedServiceSim::new(quick_cfg(policy), sharded(4, 2)).unwrap();
            sim.run();
            let (res, backend) = sim.finish();
            res.validate().unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            assert_eq!(res.completed() + res.rejected(), 3 * 40, "{}", policy.name());
            assert!(res.stats.total_cycles > 0);
            let dispatched: u64 = backend.dispatch_counts().iter().sum();
            assert_eq!(dispatched, res.issued(), "{}", policy.name());
        }
    }

    #[test]
    fn sharded_results_are_thread_count_invariant() {
        let run = |threads| {
            let mut sim =
                ShardedServiceSim::new(quick_cfg(SchedPolicy::Fcfs), sharded(4, threads)).unwrap();
            sim.run();
            sim.finish().0
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn one_shard_backend_matches_single_engine_outcomes() {
        // Same leaders, same coalescing, same engine stream: the latency
        // profile and merged statistics must match the reference path
        // (wait accounting may differ — batches snapshot the clock once).
        let mut plain = ServiceSim::new(quick_cfg(SchedPolicy::Fcfs), engine()).unwrap();
        plain.run();
        let (pres, _) = plain.finish();

        let mut shardy = ShardedServiceSim::new(quick_cfg(SchedPolicy::Fcfs), sharded(1, 1)).unwrap();
        shardy.run();
        let (sres, _) = shardy.finish();

        assert_eq!(pres.stats, sres.stats);
        for (p, s) in pres.clients.iter().zip(&sres.clients) {
            assert_eq!(p.latencies, s.latencies);
            assert_eq!(p.served, s.served);
            assert_eq!(p.issued, s.issued);
        }
    }

    #[test]
    fn sharded_coalescing_spans_the_batch() {
        let mut cfg = ServiceConfig::symmetric_open(3, 0, 1_000.0, 64, 5);
        cfg.coalescing = true;
        let mut sim = ShardedServiceSim::new(cfg, sharded(2, 1)).unwrap();
        for c in 0..3 {
            assert!(sim.inject(c, 6, false));
        }
        sim.run();
        let (res, _) = sim.finish();
        res.validate().unwrap();
        assert_eq!(res.issued(), 1, "three same-address reads must share one access");
        assert_eq!(res.coalesced(), 2);
    }
}

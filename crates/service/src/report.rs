//! The service report behind `repro serve`: per-scheduler latency
//! percentiles, throughput and serve accounting, in one structure that
//! renders as a text table, serializes to JSON, parses back, and
//! compares against a checked-in baseline with the same regression
//! machinery `repro compare` uses for profiles.

use oram_telemetry::json::{self, Value};
use oram_telemetry::{CompareOutcome, MetricDelta};

/// Nearest-rank percentile of an ascending-sorted slice (`q` in
/// `[0, 1]`; 0 for an empty slice).
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let need = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[need.saturating_sub(1).min(sorted.len() - 1)]
}

/// Summary statistics of one latency population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: u64,
    /// Arithmetic mean, cycles.
    pub mean: f64,
    /// Median, cycles.
    pub p50: u64,
    /// 99th percentile, cycles.
    pub p99: u64,
    /// 99.9th percentile, cycles — the service-level tail objective.
    pub p999: u64,
    /// Worst observed, cycles.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a sample slice (sorted in place).
    pub fn from_samples(samples: &mut [u64]) -> Self {
        samples.sort_unstable();
        let count = samples.len() as u64;
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / count as f64
        };
        LatencySummary {
            count,
            mean,
            p50: percentile(samples, 0.50),
            p99: percentile(samples, 0.99),
            p999: percentile(samples, 0.999),
            max: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Run parameters a service report was captured under. `repro compare`
/// refuses to diff mismatched metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMeta {
    /// Number of client streams.
    pub clients: u64,
    /// Requests each stream generates.
    pub requests_per_client: u64,
    /// Bounded per-client queue depth.
    pub queue_capacity: u64,
    /// Requests per scheduling batch.
    pub batch_size: u64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Master seed.
    pub seed: u64,
    /// Load factor the offered rate was scaled by (1.0 = the base rate).
    pub load: f64,
    /// ORAM backend shards serving the run (1 = the single-engine
    /// reference path; serialized only when different, so single-shard
    /// reports stay byte-identical to their pre-sharding format).
    pub shards: u64,
    /// Storage backend the run was served from (`"dram"`, `"disk"`,
    /// `"wan"`; serialized only when not `"dram"`, so DRAM reports stay
    /// byte-identical to their pre-backend format).
    pub backend: String,
    /// Position map mode the run was served under (`"flat"` or
    /// `"recursive"`; serialized only when not `"flat"`, so flat-posmap
    /// reports stay byte-identical to their pre-recursion format).
    pub posmap: String,
}

/// One scheduler policy's results over the identical offered workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerSummary {
    /// Policy name (`fcfs`, `round_robin`, `oldest_first`).
    pub policy: String,
    /// Requests completed.
    pub completed: u64,
    /// ORAM accesses issued (coalesced-group leaders).
    pub issued: u64,
    /// Requests that rode a coalesced group.
    pub coalesced: u64,
    /// Requests bounced by admission control.
    pub rejected: u64,
    /// Completions served on chip (stash + treetop).
    pub onchip: u64,
    /// Engine cycles for the whole run.
    pub total_cycles: u64,
    /// Completed requests per million CPU cycles.
    pub throughput_rpmc: f64,
    /// End-to-end request latency (arrival → data ready).
    pub latency: LatencySummary,
}

/// A complete service report: metadata plus one [`SchedulerSummary`]
/// per policy, all measured on the identical offered workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Capture parameters.
    pub meta: ServiceMeta,
    /// Per-policy results, in report order.
    pub schedulers: Vec<SchedulerSummary>,
}

impl ServiceReport {
    /// Renders the human-readable per-scheduler table.
    pub fn render(&self) -> String {
        let m = &self.meta;
        let shard_note =
            if m.shards > 1 { format!(", shards {}", m.shards) } else { String::new() };
        let backend_note =
            if m.backend != "dram" { format!(", backend {}", m.backend) } else { String::new() };
        let posmap_note =
            if m.posmap != "flat" { format!(", posmap {}", m.posmap) } else { String::new() };
        let mut out = format!(
            "service: {} clients x {} requests (queue {}, batch {}, L={}, seed {}, load {:.2}{}{}{})\n",
            m.clients,
            m.requests_per_client,
            m.queue_capacity,
            m.batch_size,
            m.levels,
            m.seed,
            m.load,
            shard_note,
            backend_note,
            posmap_note
        );
        out.push_str(&format!(
            "  {:<13} {:>9} {:>8} {:>9} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9}\n",
            "scheduler",
            "completed",
            "rejected",
            "coalesced",
            "onchip",
            "p50",
            "p99",
            "p99.9",
            "max",
            "req/Mcyc"
        ));
        for s in &self.schedulers {
            out.push_str(&format!(
                "  {:<13} {:>9} {:>8} {:>9} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9.2}\n",
                s.policy,
                s.completed,
                s.rejected,
                s.coalesced,
                s.onchip,
                s.latency.p50,
                s.latency.p99,
                s.latency.p999,
                s.latency.max,
                s.throughput_rpmc
            ));
        }
        out
    }

    /// Serializes the report as JSON (the `"schedulers"` key is how
    /// `repro compare` recognizes a service report).
    pub fn to_json(&self) -> String {
        let m = &self.meta;
        let shard_field =
            if m.shards != 1 { format!(",\"shards\":{}", m.shards) } else { String::new() };
        let backend_field = if m.backend != "dram" {
            format!(",\"backend\":\"{}\"", json::escape(&m.backend))
        } else {
            String::new()
        };
        let posmap_field = if m.posmap != "flat" {
            format!(",\"posmap\":\"{}\"", json::escape(&m.posmap))
        } else {
            String::new()
        };
        let mut out = String::from("{\n");
        out.push_str(&format!(
            concat!(
                "  \"meta\": {{\"clients\":{},\"requests_per_client\":{},",
                "\"queue_capacity\":{},\"batch_size\":{},\"levels\":{},\"seed\":{},",
                "\"load\":{:.6}{}{}{}}},\n"
            ),
            m.clients,
            m.requests_per_client,
            m.queue_capacity,
            m.batch_size,
            m.levels,
            m.seed,
            m.load,
            shard_field,
            backend_field,
            posmap_field
        ));
        out.push_str("  \"schedulers\": [\n");
        for (i, s) in self.schedulers.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"policy\":\"{}\",\"completed\":{},\"issued\":{},",
                    "\"coalesced\":{},\"rejected\":{},\"onchip\":{},\"total_cycles\":{},",
                    "\"throughput_rpmc\":{:.6},\"count\":{},\"mean\":{:.6},",
                    "\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}}{}\n"
                ),
                json::escape(&s.policy),
                s.completed,
                s.issued,
                s.coalesced,
                s.rejected,
                s.onchip,
                s.total_cycles,
                s.throughput_rpmc,
                s.latency.count,
                s.latency.mean,
                s.latency.p50,
                s.latency.p99,
                s.latency.p999,
                s.latency.max,
                if i + 1 < self.schedulers.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously written by [`ServiceReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message locating the first missing or mistyped field.
    pub fn parse(text: &str) -> Result<ServiceReport, String> {
        let doc = json::parse(text)?;
        let req_u64 = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key).and_then(Value::as_u64).ok_or(format!("missing or non-u64 {key:?}"))
        };
        let req_f64 = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key).and_then(Value::as_f64).ok_or(format!("missing or non-number {key:?}"))
        };
        let m = doc.get("meta").ok_or("missing meta")?;
        let meta = ServiceMeta {
            clients: req_u64(m, "clients")?,
            requests_per_client: req_u64(m, "requests_per_client")?,
            queue_capacity: req_u64(m, "queue_capacity")?,
            batch_size: req_u64(m, "batch_size")?,
            levels: req_u64(m, "levels")? as u32,
            seed: req_u64(m, "seed")?,
            load: req_f64(m, "load")?,
            // Absent in reports captured before sharding existed.
            shards: m.get("shards").and_then(Value::as_u64).unwrap_or(1),
            // Absent in reports captured before storage backends existed.
            backend: m
                .get("backend")
                .and_then(Value::as_str)
                .unwrap_or("dram")
                .to_string(),
            // Absent in reports captured before the recursive posmap.
            posmap: m
                .get("posmap")
                .and_then(Value::as_str)
                .unwrap_or("flat")
                .to_string(),
        };
        let list = doc.get("schedulers").and_then(Value::as_array).ok_or("missing schedulers")?;
        let mut schedulers = Vec::new();
        for s in list {
            schedulers.push(SchedulerSummary {
                policy: s
                    .get("policy")
                    .and_then(Value::as_str)
                    .ok_or("missing policy")?
                    .to_string(),
                completed: req_u64(s, "completed")?,
                issued: req_u64(s, "issued")?,
                coalesced: req_u64(s, "coalesced")?,
                rejected: req_u64(s, "rejected")?,
                onchip: req_u64(s, "onchip")?,
                total_cycles: req_u64(s, "total_cycles")?,
                throughput_rpmc: req_f64(s, "throughput_rpmc")?,
                latency: LatencySummary {
                    count: req_u64(s, "count")?,
                    mean: req_f64(s, "mean")?,
                    p50: req_u64(s, "p50")?,
                    p99: req_u64(s, "p99")?,
                    p999: req_u64(s, "p999")?,
                    max: req_u64(s, "max")?,
                },
            });
        }
        Ok(ServiceReport { meta, schedulers })
    }
}

/// Compares a candidate service report against a baseline, reusing the
/// profile regression machinery: latency percentiles and run length are
/// gated (a worsening beyond `tolerance` is a regression), throughput
/// and serve accounting are informational.
///
/// # Errors
///
/// Returns an error when the reports are not comparable (mismatched
/// metadata or scheduler sets).
pub fn compare_service_reports(
    base: &ServiceReport,
    candidate: &ServiceReport,
    tolerance: f64,
) -> Result<CompareOutcome, String> {
    if base.meta != candidate.meta {
        return Err(format!(
            "service reports are not comparable: baseline {:?} vs candidate {:?}",
            base.meta, candidate.meta
        ));
    }
    let mut deltas = Vec::new();
    for b in &base.schedulers {
        let c = candidate
            .schedulers
            .iter()
            .find(|c| c.policy == b.policy)
            .ok_or(format!("candidate is missing scheduler {:?}", b.policy))?;
        let mut push = |metric: &str, bv: f64, cv: f64, gated: bool| {
            let delta = if bv == 0.0 { 0.0 } else { (cv - bv) / bv };
            deltas.push(MetricDelta {
                name: format!("{}.{metric}", b.policy),
                base: bv,
                candidate: cv,
                delta,
                gated,
            });
        };
        push("total_cycles", b.total_cycles as f64, c.total_cycles as f64, true);
        push("p50", b.latency.p50 as f64, c.latency.p50 as f64, true);
        push("p99", b.latency.p99 as f64, c.latency.p99 as f64, true);
        push("p999", b.latency.p999 as f64, c.latency.p999 as f64, true);
        push("mean", b.latency.mean, c.latency.mean, true);
        // Throughput regressions show up as total_cycles increases (the
        // offered workload is fixed), so the rate itself is info-only.
        push("throughput_rpmc", b.throughput_rpmc, c.throughput_rpmc, false);
        push("completed", b.completed as f64, c.completed as f64, false);
        push("issued", b.issued as f64, c.issued as f64, false);
        push("coalesced", b.coalesced as f64, c.coalesced as f64, false);
        push("rejected", b.rejected as f64, c.rejected as f64, false);
        push("onchip", b.onchip as f64, c.onchip as f64, false);
    }
    for c in &candidate.schedulers {
        if !base.schedulers.iter().any(|b| b.policy == c.policy) {
            return Err(format!("baseline is missing scheduler {:?}", c.policy));
        }
    }
    Ok(CompareOutcome { deltas, tolerance })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(policy: &str, p99: u64) -> SchedulerSummary {
        SchedulerSummary {
            policy: policy.into(),
            completed: 1000,
            issued: 900,
            coalesced: 100,
            rejected: 17,
            onchip: 250,
            total_cycles: 5_000_000,
            throughput_rpmc: 0.2,
            latency: LatencySummary {
                count: 1000,
                mean: 4200.5,
                p50: 3000,
                p99,
                p999: p99 * 2,
                max: p99 * 3,
            },
        }
    }

    fn report() -> ServiceReport {
        ServiceReport {
            meta: ServiceMeta {
                clients: 4,
                requests_per_client: 250,
                queue_capacity: 16,
                batch_size: 4,
                levels: 12,
                seed: 7,
                load: 1.0,
                shards: 1,
                backend: "dram".to_string(),
                posmap: "flat".to_string(),
            },
            schedulers: vec![summary("fcfs", 9000), summary("round_robin", 9500)],
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.5), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[42], 0.999), 42);
    }

    #[test]
    fn latency_summary_from_samples() {
        let mut v: Vec<u64> = (0..1000).rev().collect();
        let s = LatencySummary::from_samples(&mut v);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, 499);
        assert_eq!(s.p99, 989);
        assert_eq!(s.p999, 998);
        assert_eq!(s.max, 999);
        assert!((s.mean - 499.5).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let parsed = ServiceReport::parse(&r.to_json()).expect("parse back");
        assert_eq!(parsed.meta, r.meta);
        assert_eq!(parsed.schedulers.len(), r.schedulers.len());
        for (a, b) in parsed.schedulers.iter().zip(&r.schedulers) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.latency.p999, b.latency.p999);
            assert!((a.latency.mean - b.latency.mean).abs() < 1e-3);
            assert!((a.throughput_rpmc - b.throughput_rpmc).abs() < 1e-6);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ServiceReport::parse("{}").is_err());
        assert!(ServiceReport::parse("{\"meta\": {}}").is_err());
        assert!(ServiceReport::parse("not json").is_err());
    }

    #[test]
    fn identical_reports_pass_comparison() {
        let r = report();
        let out = compare_service_reports(&r, &r, 0.02).expect("comparable");
        assert!(out.passed());
    }

    #[test]
    fn tail_regression_is_caught() {
        let base = report();
        let mut cand = report();
        cand.schedulers[0].latency.p999 = (base.schedulers[0].latency.p999 as f64 * 1.10) as u64;
        let out = compare_service_reports(&base, &cand, 0.02).expect("comparable");
        assert!(!out.passed());
        assert!(out.regressions().iter().any(|d| d.name == "fcfs.p999"));
    }

    #[test]
    fn info_metrics_never_gate() {
        let base = report();
        let mut cand = report();
        cand.schedulers[1].rejected = 400;
        cand.schedulers[1].throughput_rpmc = 0.05;
        let out = compare_service_reports(&base, &cand, 0.02).expect("comparable");
        assert!(out.passed(), "rejected/throughput are informational");
    }

    #[test]
    fn mismatched_meta_is_not_comparable() {
        let base = report();
        let mut cand = report();
        cand.meta.seed = 8;
        assert!(compare_service_reports(&base, &cand, 0.02).is_err());
    }

    #[test]
    fn shard_count_is_optional_and_round_trips() {
        // Single-shard reports omit the field entirely (byte-compatible
        // with pre-sharding baselines) and parse back to 1.
        let single = report();
        assert!(!single.to_json().contains("shards"));
        assert!(!single.render().contains("shards"));
        assert_eq!(ServiceReport::parse(&single.to_json()).unwrap().meta.shards, 1);

        let mut multi = report();
        multi.meta.shards = 4;
        assert!(multi.to_json().contains("\"shards\":4"));
        assert!(multi.render().contains("shards 4"));
        assert_eq!(ServiceReport::parse(&multi.to_json()).unwrap().meta.shards, 4);

        // Shard count is part of the comparability contract.
        assert!(compare_service_reports(&single, &multi, 0.02).is_err());
    }

    #[test]
    fn backend_is_optional_and_round_trips() {
        // DRAM reports omit the field entirely (byte-compatible with
        // pre-backend baselines) and parse back to "dram".
        let dram = report();
        assert!(!dram.to_json().contains("backend"));
        assert!(!dram.render().contains("backend"));
        assert_eq!(ServiceReport::parse(&dram.to_json()).unwrap().meta.backend, "dram");

        let mut wan = report();
        wan.meta.backend = "wan".to_string();
        assert!(wan.to_json().contains("\"backend\":\"wan\""));
        assert!(wan.render().contains("backend wan"));
        assert_eq!(ServiceReport::parse(&wan.to_json()).unwrap().meta.backend, "wan");

        // The backend is part of the comparability contract.
        assert!(compare_service_reports(&dram, &wan, 0.02).is_err());
    }

    #[test]
    fn posmap_is_optional_and_round_trips() {
        // Flat-posmap reports omit the field entirely (byte-compatible
        // with pre-recursion baselines) and parse back to "flat".
        let flat = report();
        assert!(!flat.to_json().contains("posmap"));
        assert!(!flat.render().contains("posmap"));
        assert_eq!(ServiceReport::parse(&flat.to_json()).unwrap().meta.posmap, "flat");

        let mut rec = report();
        rec.meta.posmap = "recursive".to_string();
        assert!(rec.to_json().contains("\"posmap\":\"recursive\""));
        assert!(rec.render().contains("posmap recursive"));
        assert_eq!(ServiceReport::parse(&rec.to_json()).unwrap().meta.posmap, "recursive");

        // The posmap mode is part of the comparability contract.
        assert!(compare_service_reports(&flat, &rec, 0.02).is_err());
    }

    #[test]
    fn render_mentions_every_policy() {
        let text = report().render();
        assert!(text.contains("fcfs"));
        assert!(text.contains("round_robin"));
        assert!(text.contains("p99.9"));
    }
}

//! # oram-service
//!
//! Multi-client service front-end for the Shadow Block ORAM stack: N
//! independent client streams (open-loop Poisson and closed-loop
//! think-time generators over Zipfian/uniform/hot address mixes) feed
//! bounded per-client queues with admission control; a batch scheduler
//! (FCFS / round-robin / oldest-first) drains them into the
//! [`oram_sim::Engine`], merging same-address reads MSHR-style strictly
//! *before* the ORAM issue point so the bus-visible access stream — and
//! therefore the obliviousness argument — is unchanged.
//!
//! Everything is deterministic under the master seed: identical
//! configurations produce bit-identical results, which is what lets
//! `repro serve` keep a checked-in baseline under a regression guard.
//!
//! ## Quick example
//!
//! ```
//! use oram_service::{ServiceConfig, ServiceSim};
//! use oram_sim::{Engine, SystemConfig};
//!
//! let cfg = ServiceConfig::symmetric_open(2, 20, 2_000.0, 256, 7);
//! let mut engine = Engine::new(SystemConfig::small_test()).unwrap();
//! engine.prefill_working_set(256);
//! let mut sim = ServiceSim::new(cfg, engine).unwrap();
//! sim.run();
//! let (result, _engine) = sim.finish();
//! result.validate().unwrap();
//! assert_eq!(result.completed() + result.rejected(), 40);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod report;
mod sim;

pub use config::{AddressMix, ArrivalModel, ClientSpec, SchedPolicy, ServiceConfig};
pub use report::{
    compare_service_reports, percentile, LatencySummary, SchedulerSummary, ServiceMeta,
    ServiceReport,
};
pub use sim::{ClientResult, ServiceResult, ServiceSim, ShardedServiceSim, SERVE_CLASS_NAMES};

//! Service-layer configuration: client stream specifications (arrival
//! process, address mix, write ratio) and the front-end parameters
//! (queue bounds, batch size, scheduler policy, coalescing).

/// Scheduling policy used to pick the next request from the per-client
/// queues at each issue slot.
///
/// All three policies select among the queue *heads* (each per-client
/// queue is FIFO, so a head is that client's oldest request).
///
/// Note an intentional structural property: because admission processes
/// arrivals in global time order and per-client arrival times are
/// monotone, the admission sequence number orders requests exactly by
/// arrival — so [`SchedPolicy::Fcfs`] and [`SchedPolicy::OldestFirst`]
/// produce identical schedules unless arrival ties occur (then
/// `OldestFirst` prefers the deeper queue while `Fcfs` keeps strict
/// admission order). [`SchedPolicy::RoundRobin`] genuinely differs: it
/// trades global age order for per-client fairness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict global order of admission (sequence numbers).
    Fcfs,
    /// Rotate over clients, taking the head of the next non-empty queue.
    RoundRobin,
    /// Minimum arrival cycle among queue heads; ties go to the client
    /// with the deepest backlog.
    OldestFirst,
}

impl SchedPolicy {
    /// Every policy, in report order.
    pub const ALL: [SchedPolicy; 3] =
        [SchedPolicy::Fcfs, SchedPolicy::RoundRobin, SchedPolicy::OldestFirst];

    /// Stable snake_case name used in reports and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::RoundRobin => "round_robin",
            SchedPolicy::OldestFirst => "oldest_first",
        }
    }

    /// Parses a CLI/JSON name produced by [`SchedPolicy::name`].
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn parse(name: &str) -> Result<SchedPolicy, String> {
        SchedPolicy::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| format!("unknown scheduler {name:?} (fcfs, round_robin, oldest_first)"))
    }
}

/// How a client stream generates request arrival times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Open loop: Poisson arrivals at a fixed offered rate, independent
    /// of completions. Saturates the server; overflowing requests are
    /// rejected by admission control.
    Open {
        /// Mean interarrival gap in CPU cycles.
        mean_gap_cycles: f64,
    },
    /// Closed loop: the next request is generated only after the
    /// previous one completed, plus an exponentially distributed think
    /// time. At most one request of such a client is ever queued, so
    /// closed streams never overflow their queue.
    Closed {
        /// Mean think time in CPU cycles.
        think_cycles: f64,
    },
}

/// How a client stream picks block addresses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddressMix {
    /// Uniform over `0..domain`.
    Uniform {
        /// Address domain size in blocks.
        domain: u64,
    },
    /// Zipfian over `0..domain` (rank 0 most popular), the standard
    /// skewed multi-tenant popularity model.
    Zipfian {
        /// Address domain size in blocks (≥ 2).
        domain: u64,
        /// Skew in `(0, 1)`; YCSB default 0.99.
        theta: f64,
    },
    /// A two-level mix: with probability `hot_frac` pick uniformly from
    /// the first `hot_blocks` addresses, else uniformly from the rest.
    /// `hot_frac = 1.0` makes every request hit the hot set — the
    /// degenerate case the coalescing tests use.
    Hot {
        /// Address domain size in blocks.
        domain: u64,
        /// Size of the hot prefix (≥ 1, ≤ `domain`).
        hot_blocks: u64,
        /// Probability of drawing from the hot prefix.
        hot_frac: f64,
    },
    /// Zipfian popularity rotated by a fixed offset: rank `r` maps to
    /// address `(r + offset) mod domain`. The soak harness migrates the
    /// hot set between phases by changing `offset` while keeping the
    /// popularity *shape* (and thus the coalescing and stash pressure
    /// profile) identical — only *which* blocks are hot moves.
    ZipfianShifted {
        /// Address domain size in blocks (≥ 2).
        domain: u64,
        /// Skew in `(0, 1)`; YCSB default 0.99.
        theta: f64,
        /// Rotation applied to the ranked address (< `domain`).
        offset: u64,
    },
}

impl AddressMix {
    /// The address domain size this mix draws from.
    pub fn domain(&self) -> u64 {
        match *self {
            AddressMix::Uniform { domain }
            | AddressMix::Zipfian { domain, .. }
            | AddressMix::Hot { domain, .. }
            | AddressMix::ZipfianShifted { domain, .. } => domain,
        }
    }
}

/// One client stream: arrival process, address mix, write ratio, and
/// how many requests the stream generates before drying up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSpec {
    /// Arrival process.
    pub arrivals: ArrivalModel,
    /// Address popularity model.
    pub addresses: AddressMix,
    /// Fraction of requests that are writes, in `[0, 1]`.
    pub write_frac: f64,
    /// Requests this stream generates (0 for injection-driven tests).
    pub requests: u64,
}

/// Full service front-end configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Client streams; index is the client id.
    pub clients: Vec<ClientSpec>,
    /// Bounded per-client queue depth (≥ 1). Open-loop arrivals finding
    /// their queue full are rejected.
    pub queue_capacity: usize,
    /// Requests issued back-to-back per scheduling round before
    /// admission runs again (≥ 1).
    pub batch_size: usize,
    /// Scheduling policy over queue heads.
    pub scheduler: SchedPolicy,
    /// Merge queued same-address reads into one ORAM access
    /// (MSHR-style, strictly before the issue point).
    pub coalescing: bool,
    /// Master seed; every client derives its own generators from it.
    pub seed: u64,
}

impl ServiceConfig {
    /// A symmetric open-loop configuration: `clients` identical Poisson
    /// streams of `requests_each` Zipfian requests over `domain` blocks.
    /// The standard shape for load sweeps.
    pub fn symmetric_open(
        clients: usize,
        requests_each: u64,
        mean_gap_cycles: f64,
        domain: u64,
        seed: u64,
    ) -> Self {
        ServiceConfig {
            clients: vec![
                ClientSpec {
                    arrivals: ArrivalModel::Open { mean_gap_cycles },
                    addresses: AddressMix::Zipfian { domain, theta: 0.99 },
                    write_frac: 0.3,
                    requests: requests_each,
                };
                clients
            ],
            queue_capacity: 16,
            batch_size: 4,
            scheduler: SchedPolicy::Fcfs,
            coalescing: true,
            seed,
        }
    }

    /// Checks every parameter range.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.clients.is_empty() {
            return Err("service needs at least one client".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1".into());
        }
        for (i, c) in self.clients.iter().enumerate() {
            if !(0.0..=1.0).contains(&c.write_frac) {
                return Err(format!("client {i}: write_frac {} outside [0, 1]", c.write_frac));
            }
            match c.arrivals {
                ArrivalModel::Open { mean_gap_cycles: g } | ArrivalModel::Closed { think_cycles: g } => {
                    if !(g.is_finite() && g > 0.0) {
                        return Err(format!("client {i}: mean gap {g} must be positive"));
                    }
                }
            }
            match c.addresses {
                AddressMix::Uniform { domain } => {
                    if domain == 0 {
                        return Err(format!("client {i}: uniform domain must be nonzero"));
                    }
                }
                AddressMix::Zipfian { domain, theta } => {
                    if domain < 2 {
                        return Err(format!("client {i}: zipfian domain must be at least 2"));
                    }
                    if !(theta > 0.0 && theta < 1.0) {
                        return Err(format!("client {i}: zipfian theta {theta} outside (0, 1)"));
                    }
                }
                AddressMix::Hot { domain, hot_blocks, hot_frac } => {
                    if hot_blocks == 0 || hot_blocks > domain {
                        return Err(format!(
                            "client {i}: hot_blocks {hot_blocks} outside 1..={domain}"
                        ));
                    }
                    if !(0.0..=1.0).contains(&hot_frac) {
                        return Err(format!("client {i}: hot_frac {hot_frac} outside [0, 1]"));
                    }
                }
                AddressMix::ZipfianShifted { domain, theta, offset } => {
                    if domain < 2 {
                        return Err(format!("client {i}: zipfian domain must be at least 2"));
                    }
                    if !(theta > 0.0 && theta < 1.0) {
                        return Err(format!("client {i}: zipfian theta {theta} outside (0, 1)"));
                    }
                    if offset >= domain {
                        return Err(format!(
                            "client {i}: zipf offset {offset} outside 0..{domain}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Largest address any client can generate, plus one — the working
    /// set the ORAM should be prefilled with so service runs measure
    /// steady-state serves rather than first touches.
    pub fn address_span(&self) -> u64 {
        self.clients.iter().map(|c| c.addresses.domain()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ServiceConfig {
        ServiceConfig::symmetric_open(4, 100, 500.0, 1 << 10, 7)
    }

    #[test]
    fn policy_names_round_trip() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.name()), Ok(p));
        }
        assert!(SchedPolicy::parse("lifo").is_err());
    }

    #[test]
    fn symmetric_open_validates() {
        assert_eq!(base().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut c = base();
        c.queue_capacity = 0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.batch_size = 0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.clients.clear();
        assert!(c.validate().is_err());

        let mut c = base();
        c.clients[0].write_frac = 1.5;
        assert!(c.validate().is_err());

        let mut c = base();
        c.clients[1].arrivals = ArrivalModel::Open { mean_gap_cycles: 0.0 };
        assert!(c.validate().is_err());

        let mut c = base();
        c.clients[2].addresses = AddressMix::Zipfian { domain: 1, theta: 0.9 };
        assert!(c.validate().is_err());

        let mut c = base();
        c.clients[3].addresses = AddressMix::Hot { domain: 8, hot_blocks: 9, hot_frac: 0.5 };
        assert!(c.validate().is_err());

        let mut c = base();
        c.clients[0].addresses = AddressMix::ZipfianShifted { domain: 64, theta: 0.9, offset: 64 };
        assert!(c.validate().is_err());

        let mut c = base();
        c.clients[0].addresses = AddressMix::ZipfianShifted { domain: 64, theta: 0.9, offset: 16 };
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn address_span_covers_largest_domain() {
        let mut c = base();
        c.clients[2].addresses = AddressMix::Uniform { domain: 1 << 12 };
        assert_eq!(c.address_span(), 1 << 12);
    }
}

//! Deterministic hashing for simulator-internal maps.
//!
//! `std::collections::HashMap` defaults to a randomly seeded SipHash,
//! which breaks the workspace's bit-for-bit reproducibility guarantee
//! the moment iteration order (or even probe order timing) leaks into
//! an output. [`DetHashMap`] swaps in a fixed-key SplitMix64-style
//! mixer so the same inserts always produce the same table — cheap,
//! well distributed for the simulator's integer keys, and free of any
//! process-level entropy.
//!
//! Code that iterates a [`DetHashMap`] must still be order-independent
//! (sums, maxima) or sort first; determinism of the hasher makes the
//! order stable across runs of the *same* build but not something to
//! encode in baselines.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// A fixed-seed [`BuildHasher`]: every map built from it hashes
/// identically in every process.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetState;

impl BuildHasher for DetState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher { state: 0x9E37_79B9_7F4A_7C15 }
    }
}

/// The hasher produced by [`DetState`]: a SplitMix64 finalizer folded
/// over the input words. Not cryptographic — collision resistance here
/// only affects simulator performance, never security.
#[derive(Debug, Clone, Copy)]
pub struct DetHasher {
    state: u64,
}

impl DetHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        let mut z = self.state ^ word.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// A `HashMap` with process-independent, deterministic hashing.
pub type DetHashMap<K, V> = HashMap<K, V, DetState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_spread() {
        let one = {
            let mut h = DetState.build_hasher();
            h.write_u64(42);
            h.finish()
        };
        let two = {
            let mut h = DetState.build_hasher();
            h.write_u64(42);
            h.finish()
        };
        assert_eq!(one, two);
        let other = {
            let mut h = DetState.build_hasher();
            h.write_u64(43);
            h.finish()
        };
        assert_ne!(one, other);
    }

    #[test]
    fn map_round_trips() {
        let mut m: DetHashMap<u64, u64> = DetHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&2997));
        m.remove(&999);
        assert_eq!(m.get(&999), None);
    }
}

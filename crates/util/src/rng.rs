//! Deterministic pseudo-random number generation.
//!
//! The simulator only needs statistical uniformity and bit-for-bit
//! reproducibility from a seed — not cryptographic strength (the
//! protocol's security argument is about *access patterns*, and the
//! label distribution just has to be uniform). xoshiro256** is the
//! same family the `rand` crate's small RNGs use; SplitMix64 expands
//! the single `u64` seed into a full-period initial state.

/// A deterministic xoshiro256** PRNG seeded from a single `u64`.
///
/// ```
/// use oram_util::Rng64;
///
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.next_f64() < 1.0);
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Builds a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 expansion guarantees a non-zero xoshiro state for
        // every seed, including 0.
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next uniformly distributed `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `0..n` via Lemire's widening-multiply
    /// reduction (bias ≤ 2⁻⁶⁴, irrelevant at simulation scale; the
    /// payoff is a branch-free, constant-consumption draw).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should not coincide");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::seed_from_u64(0);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            distinct.insert(r.next_u64());
        }
        assert!(distinct.len() > 95);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn below_power_of_two_is_roughly_uniform() {
        let mut r = Rng64::seed_from_u64(11);
        let n = 16u64;
        let mut counts = [0u32; 16];
        let draws = 16_000;
        for _ in 0..draws {
            counts[r.below(n) as usize] += 1;
        }
        let expect = draws / 16;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect as u64 / 2,
                "bucket {i} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn f64_bounds_and_mean() {
        let mut r = Rng64::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = Rng64::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.range_inclusive(2, 16);
            assert!((2..=16).contains(&v));
            lo_seen |= v == 2;
            hi_seen |= v == 16;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut r = Rng64::seed_from_u64(8);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}

//! The trusted-side telemetry interface: metric identifiers, per-access
//! spans and time-series window samples.
//!
//! This is the measurement counterpart of [`crate::observe`]: where
//! [`crate::observe::BusEvent`] models what an *adversary* on the memory
//! bus can see, the types here expose what the *designer* wants to see —
//! controller-internal events (stash hit classes, shadow serving
//! positions, DRI counter transitions, duplication-queue depths) and
//! simulator-internal timing (per-access lifecycle spans, periodic
//! data/DRI windows). The two vocabularies are deliberately separate:
//! emitting telemetry must never be mistaken for widening the adversary's
//! view.
//!
//! The attachment pattern is the same as for the bus observer: every
//! instrumented component carries an `Option<SharedTelemetry>`, and when
//! none is attached each hook site costs a single branch on `None` — the
//! steady-state access loop stays allocation-free and effectively
//! unchanged. The trait lives here, in the only crate all instrumented
//! layers already depend on; the `oram-telemetry` crate provides the
//! standard sink (metrics registry, span ring buffer, time series) and
//! the exporters.

use std::sync::{Arc, Mutex};

/// Identifier of one metric in the fixed registry schema.
///
/// Counters accumulate event totals; distribution metrics feed
/// log-bucketed histograms. The split is encoded by [`MetricId::kind`],
/// and [`MetricId::ALL`] enumerates the schema so sinks can size fixed
/// storage up front and exports are stable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum MetricId {
    // ---- counters ----
    /// Requests served by a stash hit on a live real entry.
    StashHitReal,
    /// Stash hits whose resident entry was replaceable (shadow or
    /// evicted copy — hits the baseline controller could not have had).
    StashHitReplaceable,
    /// Stash hits served specifically by a shadow-kind entry (HD-Dup's
    /// "cache hot data in the stash" effect).
    StashHitShadow,
    /// Stale copies discarded by the version/label check on load.
    StaleDiscarded,
    /// Requests served from the on-chip treetop levels.
    TreetopServed,
    /// Requests served by the DRAM path read via the real copy.
    DramServedReal,
    /// Requests served by the DRAM path read via a shadow copy strictly
    /// earlier than the real copy (the paper's early-forward effect).
    DramServedShadow,
    /// First-touch requests (no copy existed anywhere).
    FreshServed,
    /// Shadow blocks pulled from the tree into the stash during path
    /// reads (HD-Dup's stash-population mechanism).
    ShadowStashPull,
    /// Hot Address Cache observations that hit an existing line.
    HotCacheHit,
    /// Hot Address Cache observations that missed.
    HotCacheMiss,
    /// Hot Address Cache lines evicted by LFU replacement.
    HotCacheEvict,
    /// DRI saturating-counter increments (dummy/idle observations).
    DriCounterUp,
    /// DRI saturating-counter decrements (real-request observations).
    DriCounterDown,
    /// Dynamic-partition boundary moves (level changed).
    PartitionShift,
    /// Evictions (read+write path pairs) issued.
    Evictions,
    /// Shadow blocks written by RD-Dup.
    RdShadowWritten,
    /// Shadow blocks written by HD-Dup.
    HdShadowWritten,
    /// Dummy blocks written by evictions (slots no scheme could fill).
    DummyBlockWritten,
    /// Shadow writes sourced from a recirculated stash shadow.
    RecirculatedShadow,
    /// Requests admitted into a service-layer client queue.
    ServiceAdmitted,
    /// Requests merged MSHR-style onto an already-queued same-address
    /// request before the ORAM issue point (no extra access issued).
    ServiceCoalesced,
    /// Requests refused by service-layer admission control (bounded
    /// client queue was full at arrival).
    ServiceRejected,
    /// Position-map lookups answered by the PLB (no posmap-ORAM walk).
    PlbHit,
    /// Position-map lookups that missed the PLB (recursive mode walks
    /// the posmap-ORAM chain; flat mode only counts the model).
    PlbMiss,
    /// Valid PLB entries displaced by a conflicting page install.
    PlbEvict,
    // ---- distributions (log-bucketed histograms) ----
    /// Flat path position (0 = root side) at which DRAM-served requests
    /// completed.
    ServedPosition,
    /// Flat path position the *real* copy occupied for shadow-advanced
    /// accesses.
    RealPosition,
    /// Positions saved per shadow-advanced access (real − served).
    AdvanceDepth,
    /// Duplication-queue depth sampled at each eviction write half.
    DupQueueDepth,
    /// Live stash occupancy sampled at each eviction.
    StashOccupancy,
    /// Per-channel DRAM queue occupancy sampled at batch submission.
    DramQueueDepth,
    /// Dynamic partition level sampled whenever it changes.
    PartitionLevel,
    /// Cycles a real/dummy access spent waiting for DRAM banks and the
    /// data bus (per-access, from the critical transaction of the
    /// read-only path read).
    AttrQueueWait,
    /// Cycles spent on row activate/precharge for the critical
    /// transaction (per-access).
    AttrRowOps,
    /// Cycles spent on CAS latency and burst transfer for the critical
    /// transaction (per-access).
    AttrBusTransfer,
    /// Cycles the access spent in eviction read/write phases (the
    /// paper's background/DRI overhead, per-access).
    AttrEvictionOverhead,
    /// Cycles saved by RD-Dup early forwarding (data_ready to path-read
    /// end), sampled per shadow-served access.
    ForwardSavedCycles,
    /// Estimated path-read cycles avoided by an HD-Dup shadow stash hit,
    /// sampled per shadow stash hit.
    StashPullCreditCycles,
    /// Cycles a request waited between arriving at the memory system
    /// (service queue or CPU issue) and its access starting, sampled
    /// per real access.
    ServiceQueueWait,
    /// Cycles of network round-trip latency for the critical request of
    /// the read-only path read (per-access; zero for local backends).
    /// Appended after the original schema so earlier indices are stable.
    AttrNetwork,
    /// Cycles spent walking the recursive position-map ORAM chain before
    /// the data path read could issue (per-access; zero for the flat
    /// posmap and on PLB hits). Appended at the end of the histogram
    /// block so earlier histogram indices are stable.
    AttrPosmap,
}

/// Whether a metric accumulates a total or a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Log-bucketed value distribution.
    Histogram,
}

impl MetricId {
    /// Every metric in schema order (counters first, then histograms).
    pub const ALL: [MetricId; 42] = [
        MetricId::StashHitReal,
        MetricId::StashHitReplaceable,
        MetricId::StashHitShadow,
        MetricId::StaleDiscarded,
        MetricId::TreetopServed,
        MetricId::DramServedReal,
        MetricId::DramServedShadow,
        MetricId::FreshServed,
        MetricId::ShadowStashPull,
        MetricId::HotCacheHit,
        MetricId::HotCacheMiss,
        MetricId::HotCacheEvict,
        MetricId::DriCounterUp,
        MetricId::DriCounterDown,
        MetricId::PartitionShift,
        MetricId::Evictions,
        MetricId::RdShadowWritten,
        MetricId::HdShadowWritten,
        MetricId::DummyBlockWritten,
        MetricId::RecirculatedShadow,
        MetricId::ServiceAdmitted,
        MetricId::ServiceCoalesced,
        MetricId::ServiceRejected,
        MetricId::PlbHit,
        MetricId::PlbMiss,
        MetricId::PlbEvict,
        MetricId::ServedPosition,
        MetricId::RealPosition,
        MetricId::AdvanceDepth,
        MetricId::DupQueueDepth,
        MetricId::StashOccupancy,
        MetricId::DramQueueDepth,
        MetricId::PartitionLevel,
        MetricId::AttrQueueWait,
        MetricId::AttrRowOps,
        MetricId::AttrBusTransfer,
        MetricId::AttrEvictionOverhead,
        MetricId::ForwardSavedCycles,
        MetricId::StashPullCreditCycles,
        MetricId::ServiceQueueWait,
        MetricId::AttrNetwork,
        MetricId::AttrPosmap,
    ];

    /// Dense index of this metric (stable; usable for fixed arrays).
    #[inline]
    pub fn index(self) -> usize {
        self as u16 as usize
    }

    /// Counter or histogram.
    pub fn kind(self) -> MetricKind {
        if self.index() < MetricId::ServedPosition.index() {
            MetricKind::Counter
        } else {
            MetricKind::Histogram
        }
    }

    /// Stable snake_case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            MetricId::StashHitReal => "stash_hit_real",
            MetricId::StashHitReplaceable => "stash_hit_replaceable",
            MetricId::StashHitShadow => "stash_hit_shadow",
            MetricId::StaleDiscarded => "stale_discarded",
            MetricId::TreetopServed => "treetop_served",
            MetricId::DramServedReal => "dram_served_real",
            MetricId::DramServedShadow => "dram_served_shadow",
            MetricId::FreshServed => "fresh_served",
            MetricId::ShadowStashPull => "shadow_stash_pull",
            MetricId::HotCacheHit => "hot_cache_hit",
            MetricId::HotCacheMiss => "hot_cache_miss",
            MetricId::HotCacheEvict => "hot_cache_evict",
            MetricId::DriCounterUp => "dri_counter_up",
            MetricId::DriCounterDown => "dri_counter_down",
            MetricId::PartitionShift => "partition_shift",
            MetricId::Evictions => "evictions",
            MetricId::RdShadowWritten => "rd_shadow_written",
            MetricId::HdShadowWritten => "hd_shadow_written",
            MetricId::DummyBlockWritten => "dummy_block_written",
            MetricId::RecirculatedShadow => "recirculated_shadow",
            MetricId::ServiceAdmitted => "service_admitted",
            MetricId::ServiceCoalesced => "service_coalesced",
            MetricId::ServiceRejected => "service_rejected",
            MetricId::PlbHit => "plb_hit",
            MetricId::PlbMiss => "plb_miss",
            MetricId::PlbEvict => "plb_evict",
            MetricId::ServedPosition => "served_position",
            MetricId::RealPosition => "real_position",
            MetricId::AdvanceDepth => "advance_depth",
            MetricId::DupQueueDepth => "dup_queue_depth",
            MetricId::StashOccupancy => "stash_occupancy",
            MetricId::DramQueueDepth => "dram_queue_depth",
            MetricId::PartitionLevel => "partition_level",
            MetricId::AttrQueueWait => "attr_queue_wait",
            MetricId::AttrRowOps => "attr_row_ops",
            MetricId::AttrBusTransfer => "attr_bus_transfer",
            MetricId::AttrEvictionOverhead => "attr_eviction_overhead",
            MetricId::ForwardSavedCycles => "forward_saved_cycles",
            MetricId::StashPullCreditCycles => "stash_pull_credit_cycles",
            MetricId::ServiceQueueWait => "service_queue_wait",
            MetricId::AttrNetwork => "attr_network",
            MetricId::AttrPosmap => "attr_posmap",
        }
    }
}

/// Where one access's requested data came from, at span granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeClass {
    /// On-chip stash hit.
    Stash,
    /// On-chip treetop hit during the path read.
    Treetop,
    /// DRAM path read, served by the authoritative real copy.
    DramReal,
    /// DRAM path read, served early by a shadow copy.
    DramShadow,
    /// First touch: value is architecturally zero.
    Fresh,
    /// Dummy access (timing protection): serves nothing.
    Dummy,
}

impl ServeClass {
    /// Stable snake_case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            ServeClass::Stash => "stash",
            ServeClass::Treetop => "treetop",
            ServeClass::DramReal => "dram_real",
            ServeClass::DramShadow => "dram_shadow",
            ServeClass::Fresh => "fresh",
            ServeClass::Dummy => "dummy",
        }
    }
}

/// One timed DRAM phase inside an access span. Uses the bus-phase
/// vocabulary from [`crate::observe`] — the phase structure is the same
/// object seen from the trusted side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Which phase this is.
    pub kind: crate::observe::BusPhase,
    /// CPU cycle the phase began occupying the memory system.
    pub start: u64,
    /// CPU cycle the phase completed.
    pub end: u64,
}

impl PhaseSpan {
    /// A zeroed placeholder filling unused slots of the fixed array.
    pub const EMPTY: PhaseSpan =
        PhaseSpan { kind: crate::observe::BusPhase::ReadOnly, start: 0, end: 0 };
}

/// Maximum DRAM phases per access (read-only + eviction read/write).
pub const SPAN_MAX_PHASES: usize = 3;

/// Per-access cycle attribution: where a span's `end − start` cycles
/// went, in named causes, plus the duplication credits.
///
/// The six latency components partition the span exactly:
/// `dram_queue + dram_row + network + dram_bus + eviction + posmap ==
/// end − start` for every span (on-chip serves have all six at zero
/// because they never occupy the memory system). The queue/row/network/bus
/// split comes from the *critical* request of the read-only path read —
/// the one whose finish time bounds the phase — so attributing its
/// wait, positioning, round trips and transfer accounts for the whole
/// phase duration. `network` is zero for local backends (DRAM, disk);
/// boundary rounding from the backend→CPU clock conversion lands
/// deterministically in the component whose boundary crossed it.
///
/// The two credit fields are *not* part of the latency sum: they record
/// cycles the duplication mechanisms saved, and they are mutually
/// exclusive by serve class (`forward_saved` only on shadow DRAM
/// serves, `stash_pull_credit` only on shadow stash hits). A baseline
/// (Tiny) run therefore attributes exactly 0 to duplication.
///
/// `queue_wait` sits outside the latency partition too: it covers the
/// `arrival → start` interval *before* the span's `start..end` window —
/// time the request spent queued (service-layer client queues and
/// backpressure, or the controller being busy with a previous access).
/// It always equals `start − arrival` of the owning span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessAttribution {
    /// Cycles between the request arriving at the memory system and its
    /// access starting (pre-issue queueing; not part of the `start..end`
    /// latency partition).
    pub queue_wait: u64,
    /// Cycles waiting for banks, refresh and the data bus before the
    /// critical transaction could issue.
    pub dram_queue: u64,
    /// Cycles spent on row precharge/activate (or device positioning)
    /// for the critical transaction.
    pub dram_row: u64,
    /// Cycles of network round-trip latency for the critical request
    /// (simulated-WAN backend; zero for local backends).
    pub network: u64,
    /// Cycles of CAS latency plus burst transfer for the critical
    /// transaction.
    pub dram_bus: u64,
    /// Cycles spent in the eviction read/write halves (background/DRI
    /// overhead attached to this access).
    pub eviction: u64,
    /// Cycles spent walking the recursive position-map ORAM chain
    /// before the data path read issued (zero for the flat posmap and
    /// for PLB hits).
    pub posmap: u64,
    /// RD-Dup early-forward savings: cycles between the shadow copy's
    /// data arrival and the end of the path read.
    pub forward_saved: u64,
    /// HD-Dup stash-pull credit: estimated path-read cycles this shadow
    /// stash hit avoided (running mean of recent DRAM access times).
    pub stash_pull_credit: u64,
}

impl AccessAttribution {
    /// All-zero attribution (on-chip serves, unattributed spans).
    pub const ZERO: AccessAttribution = AccessAttribution {
        queue_wait: 0,
        dram_queue: 0,
        dram_row: 0,
        network: 0,
        dram_bus: 0,
        eviction: 0,
        posmap: 0,
        forward_saved: 0,
        stash_pull_credit: 0,
    };

    /// Sum of the latency components (must equal the span duration).
    pub fn latency_total(&self) -> u64 {
        self.dram_queue + self.dram_row + self.network + self.dram_bus + self.eviction + self.posmap
    }
}

/// The full lifecycle of one ORAM access as the simulator timed it:
/// arrival → issue → per-phase DRAM occupancy → data forwarding →
/// completion. Plain `Copy` data so recording into a preallocated ring
/// buffer never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSpan {
    /// Monotone per-engine sequence number.
    pub seq: u64,
    /// `false` for injected dummy accesses.
    pub real: bool,
    /// CPU cycle the request arrived at the memory system.
    pub arrival: u64,
    /// CPU cycle the access started (slot-aligned under timing
    /// protection, queued behind the previous access otherwise).
    pub start: u64,
    /// CPU cycle the requested data reached the CPU (early forwarding
    /// lands this before `end` on shadow-advanced accesses).
    pub data_ready: u64,
    /// CPU cycle the memory system finished all phases.
    pub end: u64,
    /// Where the data came from.
    pub served: ServeClass,
    /// Flat path position of the serving block for DRAM serves;
    /// `u32::MAX` when not applicable.
    pub forward_index: u32,
    /// Total DRAM blocks in the read-only path read (0 for pure on-chip
    /// serves).
    pub blocks_in_path: u32,
    /// Live stash occupancy right after the access.
    pub stash_live: u32,
    /// Cycle attribution: named causes summing exactly to `end − start`,
    /// plus duplication credits.
    pub attr: AccessAttribution,
    /// Timed DRAM phases, `phase_len` of them valid.
    pub phases: [PhaseSpan; SPAN_MAX_PHASES],
    /// Number of valid entries in `phases`.
    pub phase_len: u8,
}

impl AccessSpan {
    /// The valid phases as a slice.
    pub fn phases(&self) -> &[PhaseSpan] {
        &self.phases[..self.phase_len as usize]
    }

    /// Appends a phase.
    ///
    /// # Panics
    ///
    /// Panics if [`SPAN_MAX_PHASES`] phases are already recorded.
    pub fn push_phase(&mut self, p: PhaseSpan) {
        assert!((self.phase_len as usize) < SPAN_MAX_PHASES, "span phase overflow");
        self.phases[self.phase_len as usize] = p;
        self.phase_len += 1;
    }
}

/// One periodic time-series window: where cycles went between two sample
/// points (the paper's Eq. 1 split, per window instead of per run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Window index (0-based, monotone).
    pub index: u64,
    /// First CPU cycle covered.
    pub start_cycle: u64,
    /// One past the last CPU cycle covered.
    pub end_cycle: u64,
    /// Real data requests that touched DRAM in the window.
    pub data_requests: u64,
    /// Requests served on chip in the window.
    pub onchip_served: u64,
    /// Dummy requests in the window.
    pub dummy_requests: u64,
    /// Cycles a real data request occupied the memory system.
    pub data_cycles: u64,
    /// Everything else (Eq. 1's DRI residual for the window).
    pub dri_cycles: u64,
    /// Shadow-advanced accesses in the window.
    pub shadow_advanced: u64,
    /// Live stash occupancy at the sample point.
    pub stash_live: u32,
}

/// A sink for telemetry events.
///
/// Implementations must be cheap: counter hooks fire several times per
/// access whenever a sink is attached. The standard implementation (the
/// `oram-telemetry` registry/ring/time-series recorder) performs no
/// allocation in `count`, `sample` or `span`.
pub trait TelemetrySink: std::fmt::Debug + Send {
    /// Adds `delta` to a counter metric.
    fn count(&mut self, id: MetricId, delta: u64);
    /// Records one sample of a distribution metric.
    fn sample(&mut self, id: MetricId, value: u64);
    /// Records one completed access lifecycle span.
    fn span(&mut self, span: &AccessSpan);
    /// Records one completed time-series window.
    fn window(&mut self, w: &WindowSample);
}

/// A shareable, thread-safe telemetry handle. The same handle can be
/// attached to the controller, the DRAM system and the engine at once,
/// producing one coherent stream.
pub type SharedTelemetry = Arc<Mutex<dyn TelemetrySink>>;

/// A sink for *service-level* live events: per-request completions and
/// rejections with their public dimensions (tenant, shard, serve class).
///
/// This is the front-end counterpart of [`TelemetrySink`] (which carries
/// the engine-side stream: counters, spans, windows). The live
/// observability plane in `oram-obsv` implements both so a single object
/// can aggregate the full picture during a run. Like `TelemetrySink`,
/// implementations must be cheap and allocation-free: the hooks fire
/// once per request on the service hot path whenever an observer is
/// attached.
///
/// Every field is already part of the public surface: tenant/client ids,
/// the shard a request dispatched to (`addr % M` is public routing per
/// the sharding design), serve classes, and cycle timings are all
/// visible to the existing reports. No secret addresses appear here —
/// the audit's relabeling distinguisher holds the observer stream to
/// that contract.
pub trait LiveObserver: std::fmt::Debug + Send {
    /// A request completed: served at `now` (its data-ready cycle) for
    /// `tenant`, dispatched to `shard`, served from `class`, with
    /// end-to-end `latency` cycles (data-ready − arrival). `coalesced`
    /// marks MSHR followers that piggybacked on a leader's access.
    fn request_complete(
        &mut self,
        now: u64,
        tenant: u32,
        shard: u32,
        class: ServeClass,
        latency: u64,
        coalesced: bool,
    );
    /// A request was rejected by admission control at cycle `now` for
    /// `tenant`.
    fn request_rejected(&mut self, now: u64, tenant: u32);
    /// A request was admitted into a service-layer client queue at cycle
    /// `now` for `tenant`. Default no-op so observers that only consume
    /// completions/rejections need not implement it; the flight recorder
    /// captures these to reconstruct admission history around an
    /// incident.
    fn request_admitted(&mut self, _now: u64, _tenant: u32) {}
}

/// A shareable, thread-safe live-observer handle.
pub type SharedLive = Arc<Mutex<dyn LiveObserver>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_indices_are_dense_and_stable() {
        for (i, id) in MetricId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i, "{id:?} out of order in ALL");
        }
        // Counters strictly precede histograms.
        let first_hist = MetricId::ServedPosition.index();
        for id in MetricId::ALL {
            match id.kind() {
                MetricKind::Counter => assert!(id.index() < first_hist),
                MetricKind::Histogram => assert!(id.index() >= first_hist),
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = MetricId::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MetricId::ALL.len());
    }

    #[test]
    fn span_phases_push_and_slice() {
        let mut s = AccessSpan {
            seq: 0,
            real: true,
            arrival: 0,
            start: 0,
            data_ready: 0,
            end: 0,
            served: ServeClass::Stash,
            forward_index: u32::MAX,
            blocks_in_path: 0,
            stash_live: 0,
            attr: AccessAttribution::ZERO,
            phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
            phase_len: 0,
        };
        assert!(s.phases().is_empty());
        s.push_phase(PhaseSpan { kind: crate::observe::BusPhase::ReadOnly, start: 1, end: 5 });
        assert_eq!(s.phases().len(), 1);
        assert_eq!(s.phases()[0].end, 5);
    }

    #[test]
    fn spans_are_copy_and_compact() {
        // One span per access lands in a preallocated ring: keep it flat
        // and modest (no heap indirection).
        assert!(std::mem::size_of::<AccessSpan>() <= 216);
        let s = AccessSpan {
            seq: 1,
            real: false,
            arrival: 2,
            start: 3,
            data_ready: 4,
            end: 5,
            served: ServeClass::Dummy,
            forward_index: u32::MAX,
            blocks_in_path: 0,
            stash_live: 9,
            attr: AccessAttribution::ZERO,
            phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
            phase_len: 0,
        };
        let t = s;
        assert_eq!(s, t);
    }

    #[test]
    fn attribution_components_sum() {
        let a = AccessAttribution {
            queue_wait: 500,
            dram_queue: 10,
            dram_row: 20,
            network: 15,
            dram_bus: 30,
            eviction: 40,
            posmap: 25,
            forward_saved: 99,
            stash_pull_credit: 0,
        };
        // Credits are not part of the latency partition.
        assert_eq!(a.latency_total(), 140);
        assert_eq!(AccessAttribution::ZERO.latency_total(), 0);
        assert_eq!(AccessAttribution::default(), AccessAttribution::ZERO);
    }
}

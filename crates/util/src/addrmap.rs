//! A fixed-capacity open-addressed `u64 → u32` map.
//!
//! Hot-path indexes (the stash CAM) need associative lookup but must
//! never allocate after construction and never pay SipHash. This map
//! uses linear probing with backward-shift deletion (no tombstones, so
//! probe sequences never degrade) over a power-of-two table sized at
//! build time. A fibonacci-multiply hash spreads the small, mostly
//! sequential block addresses the simulator produces.

const EMPTY: u32 = u32::MAX;

/// Fixed-capacity open-addressed map from `u64` keys to `u32` values.
///
/// `u32::MAX` is reserved as the "empty" marker and cannot be stored
/// as a value (values here are small slot indexes).
///
/// ```
/// use oram_util::FixedAddrMap;
///
/// let mut m = FixedAddrMap::with_capacity(8);
/// m.insert(42, 3);
/// assert_eq!(m.get(42), Some(3));
/// assert_eq!(m.remove(42), Some(3));
/// assert_eq!(m.get(42), None);
/// ```
#[derive(Debug, Clone)]
pub struct FixedAddrMap {
    /// `(key, value)`; `value == EMPTY` marks a free slot.
    slots: Vec<(u64, u32)>,
    mask: usize,
    hash_shift: u32,
    len: usize,
}

impl FixedAddrMap {
    /// Builds a map that can hold at least `capacity` entries without
    /// ever allocating again. The table is sized at ≥ 4× capacity so
    /// probe chains stay short.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let size = (capacity * 4).next_power_of_two();
        FixedAddrMap {
            slots: vec![(0, EMPTY); size],
            mask: size - 1,
            hash_shift: 64 - size.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // Fibonacci hashing: the high bits of key * 2^64/φ are well
        // mixed even for sequential keys.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> self.hash_shift) as usize & self.mask
    }

    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.home(key);
        loop {
            let (k, v) = self.slots[i];
            if v == EMPTY {
                return None;
            }
            if k == key {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Returns the value stored for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        self.find(key).map(|i| self.slots[i].1)
    }

    /// Inserts or replaces; returns the previous value if any.
    ///
    /// # Panics
    ///
    /// Panics if `value == u32::MAX` (reserved) or the table is full
    /// (the caller sized the map below its true working set).
    #[inline]
    pub fn insert(&mut self, key: u64, value: u32) -> Option<u32> {
        assert!(value != EMPTY, "u32::MAX is reserved");
        let mut i = self.home(key);
        loop {
            let (k, v) = self.slots[i];
            if v == EMPTY {
                assert!(
                    self.len < self.slots.len() - 1,
                    "FixedAddrMap overflow: capacity undersized"
                );
                self.slots[i] = (key, value);
                self.len += 1;
                return None;
            }
            if k == key {
                self.slots[i].1 = value;
                return Some(v);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value. Backward-shift deletion
    /// keeps probe chains tombstone-free.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        let mut i = self.find(key)?;
        let val = self.slots[i].1;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let (k, v) = self.slots[j];
            if v == EMPTY {
                break;
            }
            // The record at `j` may fill the hole at `i` only if the
            // hole lies cyclically within [home(k), j) — otherwise the
            // move would break its probe chain.
            let h = self.home(k);
            if (i.wrapping_sub(h) & self.mask) < (j.wrapping_sub(h) & self.mask) {
                self.slots[i] = self.slots[j];
                i = j;
            }
        }
        self.slots[i] = (0, EMPTY);
        self.len -= 1;
        Some(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;
    use std::collections::HashMap;

    #[test]
    fn basic_insert_get_remove() {
        let mut m = FixedAddrMap::with_capacity(16);
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(11));
        assert_eq!(m.get(3), None);
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.get(2), Some(20));
    }

    #[test]
    fn extreme_keys_are_legal() {
        let mut m = FixedAddrMap::with_capacity(4);
        m.insert(0, 0);
        m.insert(u64::MAX, 1);
        assert_eq!(m.get(0), Some(0));
        assert_eq!(m.get(u64::MAX), Some(1));
    }

    #[test]
    fn randomized_against_std_hashmap() {
        let mut rng = Rng64::seed_from_u64(0xBEEF);
        let mut m = FixedAddrMap::with_capacity(64);
        let mut reference: HashMap<u64, u32> = HashMap::new();
        for step in 0..20_000 {
            // Small key space forces heavy collision + churn.
            let key = rng.below(48);
            match rng.below(3) {
                0 => {
                    if reference.len() < 48 {
                        let v = (step % 1000) as u32;
                        assert_eq!(m.insert(key, v), reference.insert(key, v));
                    }
                }
                1 => assert_eq!(m.remove(key), reference.remove(&key)),
                _ => assert_eq!(m.get(key), reference.get(&key).copied()),
            }
            assert_eq!(m.len(), reference.len());
        }
        for key in 0..48 {
            assert_eq!(m.get(key), reference.get(&key).copied());
        }
    }

    #[test]
    fn deletion_keeps_probe_chains_intact() {
        // Force a collision cluster, then delete from the middle.
        let mut m = FixedAddrMap::with_capacity(4); // table of 16
        let keys: Vec<u64> = (0..10).collect();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i as u32);
        }
        m.remove(keys[4]);
        m.remove(keys[1]);
        m.remove(keys[8]);
        for (i, &k) in keys.iter().enumerate() {
            let expect =
                if [1usize, 4, 8].contains(&i) { None } else { Some(i as u32) };
            assert_eq!(m.get(k), expect, "key {k}");
        }
    }
}

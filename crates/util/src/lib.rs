//! # oram-util
//!
//! Dependency-free utilities shared across the Shadow Block
//! reproduction crates:
//!
//! * [`Rng64`] — a small, fast, deterministic PRNG (xoshiro256**
//!   seeded via SplitMix64) replacing the external `rand` crate so the
//!   workspace builds without network access and every experiment is
//!   reproducible bit-for-bit from a single `u64` seed.
//! * [`FixedAddrMap`] — a fixed-capacity open-addressed `u64 → u32`
//!   map (linear probing, backward-shift deletion) for hot-path
//!   indexes that must never allocate after construction.
//! * [`DetHashMap`] — a `HashMap` alias with a fixed-seed hasher so
//!   sparse simulator state (billion-block trees, recursive posmap
//!   entries) stays bit-for-bit reproducible across processes.
//! * [`BusObserver`] / [`BusEvent`] — the controller↔DRAM bus
//!   observation interface shared by `oram-protocol`, `oram-dram` and
//!   the `oram-audit` verification crate.
//! * [`TelemetrySink`] / [`MetricId`] — the trusted-side telemetry
//!   interface (designer-facing counters, spans and windows) consumed
//!   by the `oram-telemetry` crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addrmap;
pub mod hash;
pub mod observe;
mod rng;
pub mod telemetry;

pub use addrmap::FixedAddrMap;
pub use hash::{DetHashMap, DetState};
pub use observe::{BusEvent, BusObserver, BusPhase, SharedObserver};
pub use rng::Rng64;
pub use telemetry::{
    AccessAttribution, AccessSpan, LiveObserver, MetricId, MetricKind, PhaseSpan, ServeClass,
    SharedLive, SharedTelemetry, TelemetrySink, WindowSample,
};

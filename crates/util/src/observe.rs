//! The controller↔DRAM bus observation interface.
//!
//! Obliviousness is a property of what an adversary on the memory bus can
//! see. [`BusEvent`] is the vocabulary of that adversary: access framing,
//! per-bucket reads/writes in the order the controller issues them, and
//! the device-level block requests the DRAM system receives. Both the
//! ORAM controller (`oram-protocol`) and the DRAM model (`oram-dram`)
//! carry an optional [`SharedObserver`]; when none is attached the hook
//! is a single branch on `None`, so the steady-state access loop stays
//! allocation-free and effectively unchanged.
//!
//! The trait lives here — the only crate both sides already depend on —
//! so the `oram-audit` crate can record one interleaved trace across the
//! whole boundary.

use std::sync::{Arc, Mutex};

/// The phase of an ORAM access a bus event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusPhase {
    /// The read-only path read serving the request (Tiny ORAM Step 3).
    ReadOnly,
    /// The read half of an eviction.
    EvictionRead,
    /// The write half of an eviction.
    EvictionWrite,
}

/// One externally visible event at the controller↔DRAM boundary.
///
/// Everything here is information an adversary probing the memory bus
/// already has: burst framing, bucket addresses, read/write direction,
/// and physical block addresses. Block *contents* are never exposed —
/// they are ciphertext on the real bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusEvent {
    /// A path-touching access begins (stash hits emit nothing: they are
    /// served by the on-chip CAM and never reach the bus).
    AccessStart,
    /// A phase of the current access begins.
    PhaseStart(BusPhase),
    /// The controller touches one tree bucket (raw heap index, root = 1),
    /// in issue order. `write` is `true` only during eviction writes.
    Bucket {
        /// Raw bucket id (1-based heap index).
        bucket: u64,
        /// Direction of the burst.
        write: bool,
    },
    /// The current phase ends.
    PhaseEnd(BusPhase),
    /// The current access ends.
    AccessEnd,
    /// The DRAM system received one 64-byte block request at a physical
    /// device address (after the subtree layout mapping).
    DramBlock {
        /// Physical block address (units of 64 B).
        addr: u64,
        /// Direction of the request.
        write: bool,
    },
    /// The recursive position map touched one bucket of a posmap-ORAM
    /// tree (raw heap index within that level's tree, root = 1). Only
    /// emitted in `--posmap recursive` mode, so flat-mode traces are
    /// byte-identical to before the subsystem existed.
    PosmapBucket {
        /// Raw bucket id (1-based heap index) in the level's tree.
        bucket: u64,
        /// Which posmap-ORAM level (1 = largest / nearest the data).
        level: u16,
        /// Direction of the burst.
        write: bool,
    },
}

/// An observer of the externally visible bus activity.
///
/// Implementations must be cheap: hooks fire once per bucket/block in the
/// hot loop whenever an observer is attached.
pub trait BusObserver: std::fmt::Debug + Send {
    /// Called for every bus event, in issue order.
    fn on_event(&mut self, event: BusEvent);
}

/// A shareable, thread-safe observer handle.
///
/// The same handle can be attached to the controller and the DRAM system
/// at once, producing one interleaved trace. Cloning shares the
/// underlying observer.
pub type SharedObserver = Arc<Mutex<dyn BusObserver>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Counter(u64);

    impl BusObserver for Counter {
        fn on_event(&mut self, _event: BusEvent) {
            self.0 += 1;
        }
    }

    #[test]
    fn shared_observer_coerces_and_records() {
        let obs: SharedObserver = Arc::new(Mutex::new(Counter::default()));
        obs.lock().unwrap().on_event(BusEvent::AccessStart);
        obs.lock().unwrap().on_event(BusEvent::Bucket { bucket: 1, write: false });
        // Downcast-free check: debug formatting exposes the count.
        assert!(format!("{:?}", obs.lock().unwrap()).contains('2'));
    }

    #[test]
    fn events_are_small_and_copyable() {
        // The hot path hands events by value; keep them register-sized.
        assert!(std::mem::size_of::<BusEvent>() <= 24);
        let e = BusEvent::DramBlock { addr: 7, write: true };
        let f = e;
        assert_eq!(e, f);
    }
}

//! The trace generator: turns a [`WorkloadProfile`] into a stream of
//! memory references ([`MemRef`]s) with the profile's locality, dependence
//! and phase structure.

use oram_cpu::{MemRef, RefStream};
use oram_util::Rng64;

use crate::profile::WorkloadProfile;

/// Pseudo-random reference stream for one workload profile.
///
/// The generator is deterministic given `(profile, seed)`, so experiments
/// are reproducible and baseline/optimized controllers can be driven with
/// bit-identical traces.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: Rng64,
    emitted: u64,
    limit: u64,
    /// Current position of the sequential-run cursor.
    run_cursor: u64,
    /// References remaining in the current sequential run.
    run_left: u32,
}

impl TraceGenerator {
    /// Creates a generator producing at most `limit` references.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: WorkloadProfile, seed: u64, limit: u64) -> Self {
        profile.validate().expect("profile must be valid");
        TraceGenerator {
            rng: Rng64::seed_from_u64(seed ^ 0xABCD_EF01_2345_6789),
            emitted: 0,
            limit,
            run_cursor: 0,
            run_left: 0,
            profile,
        }
    }

    /// The profile being generated.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// References emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Draws a compute gap from a log-normal-ish distribution with the
    /// profile's mean (phase-modulated) and CV.
    fn draw_gap(&mut self) -> u32 {
        let p = &self.profile;
        let mut mean = p.mean_gap_cycles;
        if p.phase_period_refs > 0 {
            // Square-wave phases: half the period fast, half slow, with the
            // configured swing around the base mean.
            let phase = (self.emitted / (p.phase_period_refs / 2).max(1)) % 2;
            mean = if phase == 0 {
                p.mean_gap_cycles / p.phase_gap_swing.sqrt()
            } else {
                p.mean_gap_cycles * p.phase_gap_swing.sqrt()
            };
        }
        if mean <= 0.0 {
            return 0;
        }
        // Sum of two uniforms approximates a unimodal distribution; scale
        // to the target mean and CV without pulling in a stats crate.
        let u: f64 = (self.rng.next_f64() + self.rng.next_f64()) / 2.0; // mean 0.5
        let spread = p.gap_cv.min(1.0);
        let factor = 1.0 + spread * (2.0 * u - 1.0) * 1.7;
        (mean * factor).max(0.0) as u32
    }

    /// Draws the next block address with the hot/stride structure.
    fn draw_addr(&mut self) -> u64 {
        let p = &self.profile;
        // Continue a sequential run if one is active.
        if self.run_left > 0 {
            self.run_left -= 1;
            self.run_cursor = (self.run_cursor + 1) % p.working_set_blocks;
            return self.run_cursor;
        }
        let hot = self.rng.gen_bool(p.hot_access_frac);
        let addr = if hot {
            self.rng.below(p.hot_set_blocks())
        } else {
            self.rng.below(p.working_set_blocks)
        };
        // Possibly begin a new sequential run from here.
        if self.rng.gen_bool(p.stride_run_prob) {
            self.run_left = self.rng.range_inclusive(2, 16) as u32;
            self.run_cursor = addr;
        }
        addr
    }
}

impl RefStream for TraceGenerator {
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.emitted >= self.limit {
            return None;
        }
        let gap = self.draw_gap();
        let addr = self.draw_addr();
        let is_write = self.rng.gen_bool(self.profile.write_frac);
        let depends = self.rng.gen_bool(self.profile.pointer_chase_prob);
        self.emitted += 1;
        Some(MemRef { block_addr: addr, is_write, gap_cycles: gap, depends_on_prev: depends })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(profile: WorkloadProfile, seed: u64, n: u64) -> Vec<MemRef> {
        let mut g = TraceGenerator::new(profile, seed, n);
        std::iter::from_fn(|| g.next_ref()).collect()
    }

    #[test]
    fn respects_limit_and_working_set() {
        let p = WorkloadProfile::uniform("u", 500, 50.0);
        let refs = collect(p, 1, 1000);
        assert_eq!(refs.len(), 1000);
        assert!(refs.iter().all(|r| r.block_addr < 500));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = WorkloadProfile::uniform("u", 100, 10.0);
        assert_eq!(collect(p.clone(), 42, 200), collect(p, 42, 200));
    }

    #[test]
    fn different_seeds_differ() {
        let p = WorkloadProfile::uniform("u", 100, 10.0);
        assert_ne!(collect(p.clone(), 1, 200), collect(p, 2, 200));
    }

    #[test]
    fn mean_gap_approximates_target() {
        let p = WorkloadProfile::uniform("u", 100, 200.0);
        let refs = collect(p, 3, 5000);
        let mean: f64 =
            refs.iter().map(|r| f64::from(r.gap_cycles)).sum::<f64>() / refs.len() as f64;
        assert!((mean - 200.0).abs() < 20.0, "mean gap {mean}");
    }

    #[test]
    fn hot_fraction_concentrates_accesses() {
        let mut p = WorkloadProfile::uniform("h", 1000, 1.0);
        p.hot_access_frac = 0.9;
        p.hot_set_frac = 0.01; // 10 hot blocks
        let refs = collect(p, 4, 5000);
        let hot_hits = refs.iter().filter(|r| r.block_addr < 10).count();
        let frac = hot_hits as f64 / refs.len() as f64;
        assert!(frac > 0.85, "hot fraction {frac}");
    }

    #[test]
    fn stride_runs_produce_sequential_pairs() {
        let mut p = WorkloadProfile::uniform("s", 10_000, 1.0);
        p.stride_run_prob = 0.8;
        let refs = collect(p, 5, 2000);
        let sequential = refs
            .windows(2)
            .filter(|w| w[1].block_addr == w[0].block_addr + 1)
            .count();
        assert!(
            sequential as f64 / refs.len() as f64 > 0.4,
            "sequential pairs {sequential}"
        );
    }

    #[test]
    fn write_fraction_approximates_target() {
        let mut p = WorkloadProfile::uniform("w", 100, 1.0);
        p.write_frac = 0.25;
        let refs = collect(p, 6, 4000);
        let frac = refs.iter().filter(|r| r.is_write).count() as f64 / refs.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "write frac {frac}");
    }

    #[test]
    fn phases_modulate_gaps() {
        let mut p = WorkloadProfile::uniform("ph", 100, 100.0);
        p.phase_period_refs = 1000;
        p.phase_gap_swing = 9.0; // 3x down then 3x up
        let refs = collect(p, 7, 2000);
        let first_half: f64 =
            refs[..500].iter().map(|r| f64::from(r.gap_cycles)).sum::<f64>() / 500.0;
        let second_half: f64 =
            refs[500..1000].iter().map(|r| f64::from(r.gap_cycles)).sum::<f64>() / 500.0;
        assert!(
            second_half > 2.0 * first_half,
            "phases should swing: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn pointer_chase_flags_appear() {
        let mut p = WorkloadProfile::uniform("pc", 100, 1.0);
        p.pointer_chase_prob = 0.5;
        let refs = collect(p, 8, 1000);
        let frac =
            refs.iter().filter(|r| r.depends_on_prev).count() as f64 / refs.len() as f64;
        assert!((frac - 0.5).abs() < 0.08, "chase frac {frac}");
    }
}

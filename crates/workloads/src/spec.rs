//! SPEC-CPU2006-like synthetic workload profiles.
//!
//! The paper evaluates ten SPEC 2006 benchmarks. The actual suites are
//! licensed and gem5 checkpoints are unavailable, so each benchmark is
//! replaced by a profile calibrated to its well-documented qualitative
//! memory behaviour — the properties the paper's results actually hinge
//! on:
//!
//! | benchmark  | character reproduced |
//! |------------|----------------------|
//! | mcf        | very memory-intensive pointer chasing, poor locality |
//! | libquantum | streaming over a large array, high intensity |
//! | omnetpp    | memory-intensive discrete-event heap churn |
//! | hmmer      | compute-heavy with periodic phase swings (Fig. 6a) |
//! | sjeng      | compute-bound game tree search, long miss intervals |
//! | h264ref    | moderate intensity, strong spatial locality |
//! | namd       | compute-bound molecular dynamics, tiny miss rate |
//! | astar      | pointer-heavy path search, medium intensity |
//! | bzip2      | block-sorting compressor, bursty with good reuse |
//! | gcc        | irregular control/data, medium intensity |
//!
//! Working sets are expressed at "paper scale" (multi-MB) and scaled down
//! by the experiment harness to fit scaled ORAM trees; relative ordering
//! of intensity and locality across benchmarks is what matters.

use crate::profile::WorkloadProfile;

/// Names of the ten workloads, in the order the figures list them.
pub const WORKLOAD_NAMES: [&str; 10] = [
    "mcf", "libquantum", "omnetpp", "hmmer", "sjeng", "h264ref", "namd", "astar", "bzip2",
    "gcc",
];

/// Returns the profile for `name`.
///
/// # Panics
///
/// Panics if `name` is not one of [`WORKLOAD_NAMES`].
pub fn profile(name: &str) -> WorkloadProfile {
    match name {
        "mcf" => WorkloadProfile {
            name: "mcf".into(),
            working_set_blocks: 1 << 21, // 128 MB
            hot_access_frac: 0.25,
            hot_set_frac: 0.02,
            stride_run_prob: 0.05,
            pointer_chase_prob: 0.55,
            write_frac: 0.25,
            mean_gap_cycles: 40.0,
            gap_cv: 0.6,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        },
        "libquantum" => WorkloadProfile {
            name: "libquantum".into(),
            working_set_blocks: 1 << 20, // 64 MB
            hot_access_frac: 0.05,
            hot_set_frac: 0.01,
            stride_run_prob: 0.85,
            pointer_chase_prob: 0.02,
            write_frac: 0.45,
            mean_gap_cycles: 35.0,
            gap_cv: 0.3,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        },
        "omnetpp" => WorkloadProfile {
            name: "omnetpp".into(),
            working_set_blocks: 1 << 20,
            hot_access_frac: 0.45,
            hot_set_frac: 0.05,
            stride_run_prob: 0.10,
            pointer_chase_prob: 0.40,
            write_frac: 0.35,
            mean_gap_cycles: 60.0,
            gap_cv: 0.8,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        },
        "hmmer" => WorkloadProfile {
            name: "hmmer".into(),
            working_set_blocks: 1 << 17, // 8 MB
            hot_access_frac: 0.60,
            hot_set_frac: 0.10,
            stride_run_prob: 0.45,
            pointer_chase_prob: 0.05,
            write_frac: 0.30,
            mean_gap_cycles: 320.0,
            gap_cv: 0.5,
            phase_period_refs: 400,
            phase_gap_swing: 6.0,
        },
        "sjeng" => WorkloadProfile {
            name: "sjeng".into(),
            working_set_blocks: 1 << 18, // 16 MB
            hot_access_frac: 0.50,
            hot_set_frac: 0.08,
            stride_run_prob: 0.10,
            pointer_chase_prob: 0.15,
            write_frac: 0.30,
            mean_gap_cycles: 700.0,
            gap_cv: 0.9,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        },
        "h264ref" => WorkloadProfile {
            name: "h264ref".into(),
            working_set_blocks: 1 << 17,
            hot_access_frac: 0.70,
            hot_set_frac: 0.12,
            stride_run_prob: 0.65,
            pointer_chase_prob: 0.03,
            write_frac: 0.35,
            mean_gap_cycles: 260.0,
            gap_cv: 0.5,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        },
        "namd" => WorkloadProfile {
            name: "namd".into(),
            working_set_blocks: 1 << 16, // 4 MB
            hot_access_frac: 0.75,
            hot_set_frac: 0.15,
            stride_run_prob: 0.50,
            pointer_chase_prob: 0.02,
            write_frac: 0.25,
            mean_gap_cycles: 900.0,
            gap_cv: 0.4,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        },
        "astar" => WorkloadProfile {
            name: "astar".into(),
            working_set_blocks: 1 << 19, // 32 MB
            hot_access_frac: 0.40,
            hot_set_frac: 0.06,
            stride_run_prob: 0.15,
            pointer_chase_prob: 0.45,
            write_frac: 0.30,
            mean_gap_cycles: 160.0,
            gap_cv: 0.7,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        },
        "bzip2" => WorkloadProfile {
            name: "bzip2".into(),
            working_set_blocks: 1 << 18,
            hot_access_frac: 0.55,
            hot_set_frac: 0.10,
            stride_run_prob: 0.55,
            pointer_chase_prob: 0.08,
            write_frac: 0.40,
            mean_gap_cycles: 220.0,
            gap_cv: 1.0,
            phase_period_refs: 800,
            phase_gap_swing: 3.0,
        },
        "gcc" => WorkloadProfile {
            name: "gcc".into(),
            working_set_blocks: 1 << 19,
            hot_access_frac: 0.45,
            hot_set_frac: 0.07,
            stride_run_prob: 0.30,
            pointer_chase_prob: 0.20,
            write_frac: 0.35,
            mean_gap_cycles: 180.0,
            gap_cv: 0.8,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        },
        other => panic!("unknown workload {other:?}"),
    }
}

/// All ten profiles in figure order.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    WORKLOAD_NAMES.iter().map(|n| profile(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in all_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_match_profiles() {
        for n in WORKLOAD_NAMES {
            assert_eq!(profile(n).name, n);
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        profile("doom");
    }

    #[test]
    fn memory_intense_trio_has_smallest_gaps() {
        // The paper singles out mcf, libquantum and omnetpp as the most
        // memory-intensive workloads (Fig. 11 discussion).
        let intense: f64 = ["mcf", "libquantum", "omnetpp"]
            .iter()
            .map(|n| profile(n).mean_gap_cycles)
            .fold(f64::MIN, f64::max);
        let relaxed: f64 = ["sjeng", "namd", "hmmer"]
            .iter()
            .map(|n| profile(n).mean_gap_cycles)
            .fold(f64::MAX, f64::min);
        assert!(intense < relaxed);
    }

    #[test]
    fn hmmer_is_the_phased_workload() {
        assert!(profile("hmmer").phase_period_refs > 0);
        assert!(profile("hmmer").phase_gap_swing > 1.0);
    }

    #[test]
    fn pointer_chasers_are_marked() {
        assert!(profile("mcf").pointer_chase_prob > 0.4);
        assert!(profile("astar").pointer_chase_prob > 0.4);
        assert!(profile("libquantum").pointer_chase_prob < 0.1);
    }
}

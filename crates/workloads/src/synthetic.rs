//! Simple deterministic access patterns used by the security experiments
//! and the examples: scans, cycles, Zipf-ish hot loops, pointer chains.
//!
//! The paper's Section III distinguisher compares a *scan* sequence
//! (`a1, a2, …, aN`) against a *cyclic* sequence (`a1 … ak` repeating):
//! these generators produce exactly those.

use oram_cpu::{MemRef, RefStream};

/// A linear scan over `n` distinct blocks, one pass.
#[derive(Debug, Clone)]
pub struct Scan {
    n: u64,
    next: u64,
    gap: u32,
}

impl Scan {
    /// Scan of `n` blocks with fixed compute gap.
    pub fn new(n: u64, gap: u32) -> Self {
        Scan { n, next: 0, gap }
    }
}

impl RefStream for Scan {
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.next >= self.n {
            return None;
        }
        let r = MemRef::read(self.next, self.gap);
        self.next += 1;
        Some(r)
    }
}

/// Cyclic accesses over `k` blocks, `total` references in all.
#[derive(Debug, Clone)]
pub struct Cycle {
    k: u64,
    total: u64,
    emitted: u64,
    gap: u32,
}

impl Cycle {
    /// Cycle over `k` blocks for `total` references with fixed gap.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64, total: u64, gap: u32) -> Self {
        assert!(k > 0, "cycle needs at least one block");
        Cycle { k, total, emitted: 0, gap }
    }
}

impl RefStream for Cycle {
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.emitted >= self.total {
            return None;
        }
        let r = MemRef::read(self.emitted % self.k, self.gap);
        self.emitted += 1;
        Some(r)
    }
}

/// A pointer chain: every reference depends on the previous one
/// (serializing misses), walking a pseudo-random permutation.
#[derive(Debug, Clone)]
pub struct PointerChain {
    n: u64,
    total: u64,
    emitted: u64,
    state: u64,
    gap: u32,
}

impl PointerChain {
    /// Chain over `n` blocks for `total` references with fixed gap.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, total: u64, gap: u32) -> Self {
        assert!(n > 0);
        PointerChain { n, total, emitted: 0, state: 0x9E37_79B9, gap }
    }
}

impl RefStream for PointerChain {
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.emitted >= self.total {
            return None;
        }
        // xorshift walk, dependent on the previous value by construction.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.emitted += 1;
        Some(MemRef {
            block_addr: self.state % self.n,
            is_write: false,
            gap_cycles: self.gap,
            depends_on_prev: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<S: RefStream>(mut s: S) -> Vec<MemRef> {
        std::iter::from_fn(|| s.next_ref()).collect()
    }

    #[test]
    fn scan_visits_each_block_once() {
        let refs = drain(Scan::new(10, 3));
        assert_eq!(refs.len(), 10);
        let addrs: Vec<u64> = refs.iter().map(|r| r.block_addr).collect();
        assert_eq!(addrs, (0..10).collect::<Vec<_>>());
        assert!(refs.iter().all(|r| r.gap_cycles == 3));
    }

    #[test]
    fn cycle_repeats_k_blocks() {
        let refs = drain(Cycle::new(3, 9, 0));
        let addrs: Vec<u64> = refs.iter().map(|r| r.block_addr).collect();
        assert_eq!(addrs, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn pointer_chain_is_dependent_and_bounded() {
        let refs = drain(PointerChain::new(50, 100, 1));
        assert_eq!(refs.len(), 100);
        assert!(refs.iter().all(|r| r.depends_on_prev));
        assert!(refs.iter().all(|r| r.block_addr < 50));
    }
}

//! Workload profiles: the parameter set describing one synthetic
//! benchmark's memory behaviour.
//!
//! Each profile abstracts the properties that drive the paper's results:
//! memory intensity (mean compute gap between references), spatial and
//! temporal locality (hot set + stride runs), pointer-chase dependences
//! (which serialize ORAM requests) and phase behaviour (hmmer's periodic
//! miss-interval swings, Fig. 6a).


/// Parameters of one synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (matching the paper's figures).
    pub name: String,
    /// Working-set size in 64-byte blocks.
    pub working_set_blocks: u64,
    /// Fraction of references addressed to the hot subset.
    pub hot_access_frac: f64,
    /// Size of the hot subset as a fraction of the working set.
    pub hot_set_frac: f64,
    /// Probability that a reference continues a sequential run (stride-1
    /// spatial locality), as opposed to jumping to a fresh location.
    pub stride_run_prob: f64,
    /// Probability that a reference depends on the previous load's value
    /// (pointer chasing; serializes misses).
    pub pointer_chase_prob: f64,
    /// Fraction of references that are stores.
    pub write_frac: f64,
    /// Mean compute cycles between consecutive references.
    pub mean_gap_cycles: f64,
    /// Coefficient of variation of the gap distribution.
    pub gap_cv: f64,
    /// Phase modulation: period in references (0 disables phases).
    pub phase_period_refs: u64,
    /// Phase modulation: multiplicative swing of the mean gap between
    /// phases (e.g. 4.0 = the slow phase has 4× the gap of the fast one).
    pub phase_gap_swing: f64,
}

impl WorkloadProfile {
    /// A neutral profile useful as a starting point for tests.
    pub fn uniform(name: &str, working_set_blocks: u64, mean_gap_cycles: f64) -> Self {
        WorkloadProfile {
            name: name.to_string(),
            working_set_blocks,
            hot_access_frac: 0.0,
            hot_set_frac: 0.1,
            stride_run_prob: 0.0,
            pointer_chase_prob: 0.0,
            write_frac: 0.3,
            mean_gap_cycles,
            gap_cv: 0.5,
            phase_period_refs: 0,
            phase_gap_swing: 1.0,
        }
    }

    /// Number of blocks in the hot subset (at least 1).
    pub fn hot_set_blocks(&self) -> u64 {
        ((self.working_set_blocks as f64 * self.hot_set_frac) as u64).max(1)
    }

    /// Validates all fractions and sizes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.working_set_blocks == 0 {
            return Err(format!("{}: empty working set", self.name));
        }
        for (label, v) in [
            ("hot_access_frac", self.hot_access_frac),
            ("hot_set_frac", self.hot_set_frac),
            ("stride_run_prob", self.stride_run_prob),
            ("pointer_chase_prob", self.pointer_chase_prob),
            ("write_frac", self.write_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {label} = {v} out of [0,1]", self.name));
            }
        }
        if self.mean_gap_cycles < 0.0 || self.gap_cv < 0.0 {
            return Err(format!("{}: negative gap parameters", self.name));
        }
        if self.phase_gap_swing <= 0.0 {
            return Err(format!("{}: phase swing must be positive", self.name));
        }
        Ok(())
    }

    /// Scales the working set (and hence memory footprint) by `factor`,
    /// used to fit paper-scale workloads onto scaled-down trees.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.working_set_blocks =
            ((self.working_set_blocks as f64 * factor) as u64).max(16);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_validates() {
        WorkloadProfile::uniform("u", 1000, 100.0).validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fractions() {
        let mut p = WorkloadProfile::uniform("bad", 10, 1.0);
        p.write_frac = 1.5;
        assert!(p.validate().is_err());
        let mut p = WorkloadProfile::uniform("bad", 10, 1.0);
        p.phase_gap_swing = 0.0;
        assert!(p.validate().is_err());
        let p = WorkloadProfile::uniform("bad", 0, 1.0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn hot_set_is_never_empty() {
        let mut p = WorkloadProfile::uniform("h", 5, 1.0);
        p.hot_set_frac = 0.01;
        assert_eq!(p.hot_set_blocks(), 1);
    }

    #[test]
    fn scaling_shrinks_working_set() {
        let p = WorkloadProfile::uniform("s", 10_000, 1.0).scaled(0.01);
        assert_eq!(p.working_set_blocks, 100);
        let tiny = WorkloadProfile::uniform("t", 100, 1.0).scaled(0.0001);
        assert_eq!(tiny.working_set_blocks, 16, "floor applies");
    }
}

//! # oram-workloads
//!
//! Synthetic memory workload generators for the Shadow Block
//! reproduction, standing in for the SPEC CPU2006 traces the paper drove
//! through gem5.
//!
//! * [`WorkloadProfile`] — the parameter set describing one benchmark's
//!   memory behaviour (intensity, locality, dependences, phases).
//! * [`TraceGenerator`] — deterministic reference-stream generator.
//! * [`spec`] — calibrated profiles for the paper's ten benchmarks.
//! * [`synthetic`] — scans, cycles and pointer chains for security tests
//!   and examples.
//!
//! ## Quick example
//!
//! ```
//! use oram_workloads::{spec, TraceGenerator};
//! use oram_cpu::RefStream;
//!
//! let profile = spec::profile("mcf").scaled(0.001);
//! let mut gen = TraceGenerator::new(profile, 42, 100);
//! let first = gen.next_ref().unwrap();
//! assert!(first.block_addr < 1 << 21);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrivals;
mod generator;
mod profile;
pub mod spec;
pub mod synthetic;

pub use arrivals::{PoissonProcess, ZipfianSampler};
pub use generator::TraceGenerator;
pub use profile::WorkloadProfile;

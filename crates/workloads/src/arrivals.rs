//! Arrival processes and address popularity distributions for the
//! service layer: the open-loop/closed-loop side of a serving workload,
//! complementing the trace-driven [`crate::TraceGenerator`].
//!
//! Everything here is deterministic given its seed — the same seed
//! always reproduces the same arrival stream and the same address
//! sequence — so service-layer experiments are replayable bit-for-bit
//! and baselines can be compared across scheduler policies on identical
//! offered traffic.

use oram_util::Rng64;

/// An open-loop Poisson arrival process: exponentially distributed
/// interarrival gaps with a configurable mean, in CPU cycles.
///
/// Open-loop means arrivals do not react to service completions — the
/// generator models independent clients sending at a fixed offered
/// rate, which is what saturates a server. (Closed-loop behaviour is
/// the service layer's job: it issues the next request only after the
/// previous one completed, plus think time drawn from this process.)
///
/// ```
/// use oram_workloads::PoissonProcess;
/// let mut p = PoissonProcess::new(7, 500.0);
/// let a = p.next_gap();
/// let b = p.next_gap();
/// let mut q = PoissonProcess::new(7, 500.0);
/// assert_eq!((a, b), (q.next_gap(), q.next_gap())); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rng: Rng64,
    mean_gap_cycles: f64,
}

impl PoissonProcess {
    /// A process with the given mean interarrival gap in CPU cycles.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap_cycles` is not finite and positive.
    pub fn new(seed: u64, mean_gap_cycles: f64) -> Self {
        assert!(
            mean_gap_cycles.is_finite() && mean_gap_cycles > 0.0,
            "mean gap must be positive, got {mean_gap_cycles}"
        );
        PoissonProcess {
            rng: Rng64::seed_from_u64(seed ^ 0x0A55_0A55_0A55_0A55),
            mean_gap_cycles,
        }
    }

    /// The configured mean interarrival gap.
    pub fn mean_gap_cycles(&self) -> f64 {
        self.mean_gap_cycles
    }

    /// Draws the next interarrival gap (inverse-CDF exponential).
    pub fn next_gap(&mut self) -> u64 {
        // 1 - U is in (0, 1], so ln never sees 0.
        let u = 1.0 - self.rng.next_f64();
        (-u.ln() * self.mean_gap_cycles).round() as u64
    }
}

/// A Zipfian address sampler over `0..n` (rank 0 most popular), the
/// standard model for skewed multi-tenant key popularity.
///
/// Uses the classic rejection-free inverse-CDF approximation of Gray et
/// al. (the YCSB generator): one harmonic-number precomputation at
/// construction, then two multiplies and a `powf` per sample — no
/// allocation on the sampling path.
///
/// ```
/// use oram_workloads::ZipfianSampler;
/// let mut z = ZipfianSampler::new(1000, 0.99, 42);
/// assert!(z.sample() < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfianSampler {
    rng: Rng64,
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_2: f64,
}

impl ZipfianSampler {
    /// A sampler over `0..n` with skew `theta` in `(0, 1)` (YCSB default
    /// 0.99; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two addresses, got {n}");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zeta_n = zeta(n, theta);
        let zeta_2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        ZipfianSampler {
            rng: Rng64::seed_from_u64(seed ^ 0x21bf_2a11_5e0f_91c5),
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta_2,
        }
    }

    /// The address domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one address in `0..n`; rank 0 is the most popular.
    pub fn sample(&mut self) -> u64 {
        let u = self.rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Probability mass of the single most popular address (rank 0),
    /// useful for sizing hot sets in tests.
    pub fn head_mass(&self) -> f64 {
        1.0 / self.zeta_n
    }

    /// The precomputed generalized harmonic number over two ranks
    /// (exposed for tests of the precomputation).
    pub fn zeta_2(&self) -> f64 {
        self.zeta_2
    }
}

/// Generalized harmonic number `sum_{i=1..n} 1 / i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_same_seed_identical_stream() {
        let mut a = PoissonProcess::new(11, 800.0);
        let mut b = PoissonProcess::new(11, 800.0);
        let ga: Vec<u64> = (0..500).map(|_| a.next_gap()).collect();
        let gb: Vec<u64> = (0..500).map(|_| b.next_gap()).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn poisson_different_seeds_diverge() {
        let mut a = PoissonProcess::new(1, 800.0);
        let mut b = PoissonProcess::new(2, 800.0);
        let ga: Vec<u64> = (0..100).map(|_| a.next_gap()).collect();
        let gb: Vec<u64> = (0..100).map(|_| b.next_gap()).collect();
        assert_ne!(ga, gb);
    }

    #[test]
    fn poisson_mean_approximates_target() {
        let mut p = PoissonProcess::new(3, 1000.0);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| p.next_gap()).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 30.0, "mean gap {mean}");
    }

    #[test]
    fn poisson_gaps_are_memoryless_ish() {
        // An exponential's CV is 1: the sample standard deviation must be
        // close to the mean (a deterministic or uniform stream fails).
        let mut p = PoissonProcess::new(5, 500.0);
        let gaps: Vec<f64> = (0..20_000).map(|_| p.next_gap() as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "coefficient of variation {cv}");
    }

    #[test]
    fn zipf_same_seed_identical_stream() {
        let mut a = ZipfianSampler::new(4096, 0.99, 77);
        let mut b = ZipfianSampler::new(4096, 0.99, 77);
        let sa: Vec<u64> = (0..500).map(|_| a.sample()).collect();
        let sb: Vec<u64> = (0..500).map(|_| b.sample()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn zipf_stays_in_domain_and_covers_head() {
        let mut z = ZipfianSampler::new(100, 0.9, 9);
        let mut seen0 = false;
        for _ in 0..2000 {
            let v = z.sample();
            assert!(v < 100);
            seen0 |= v == 0;
        }
        assert!(seen0, "rank 0 must appear");
    }

    #[test]
    fn zipf_head_dominates_tail() {
        // With theta = 0.99 over 10k addresses, the top 1% of ranks draw
        // far more than 1% of the samples (uniform would give ~1%).
        let mut z = ZipfianSampler::new(10_000, 0.99, 21);
        let draws = 50_000;
        let head = (0..draws).filter(|_| z.sample() < 100).count();
        let frac = head as f64 / draws as f64;
        assert!(frac > 0.3, "head fraction {frac} not skewed");
    }

    #[test]
    fn zipf_rank0_matches_head_mass() {
        let mut z = ZipfianSampler::new(1000, 0.99, 4);
        let expect = z.head_mass();
        let draws = 100_000;
        let got = (0..draws).filter(|_| z.sample() == 0).count() as f64 / draws as f64;
        assert!(
            (got - expect).abs() < 0.02,
            "rank-0 mass {got} vs analytic {expect}"
        );
    }

    #[test]
    fn zipf_more_theta_more_skew() {
        let mut lo = ZipfianSampler::new(4096, 0.5, 6);
        let mut hi = ZipfianSampler::new(4096, 0.95, 6);
        let draws = 30_000;
        let head_lo = (0..draws).filter(|_| lo.sample() < 41).count();
        let head_hi = (0..draws).filter(|_| hi.sample() < 41).count();
        assert!(head_hi > 2 * head_lo, "skew ordering: {head_lo} vs {head_hi}");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_bad_theta() {
        let _ = ZipfianSampler::new(100, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "mean gap")]
    fn poisson_rejects_bad_mean() {
        let _ = PoissonProcess::new(0, 0.0);
    }
}

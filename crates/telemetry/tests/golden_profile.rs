//! Golden-file tests for the `repro profile` attribution table and the
//! `repro compare` regression report: the rendered forms of a fixed
//! profile pair are committed under `tests/golden/` so any byte-level
//! drift in the human-readable output fails here first.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! cargo test -p oram-telemetry --test golden_profile regenerate -- --ignored
//! ```

use oram_telemetry::{
    compare_reports, ChannelProfile, PolicyProfile, ProfileMeta, ProfileReport, DEFAULT_TOLERANCE,
};

const GOLDEN_PROFILE: &str = include_str!("golden/profile.txt");
const GOLDEN_COMPARE: &str = include_str!("golden/compare.txt");

fn channel(busy: u64, hit: f64, reads: u64, writes: u64) -> ChannelProfile {
    ChannelProfile {
        busy_cycles: busy,
        row_hit_rate: hit,
        reads,
        writes,
        queue_p50: 2,
        queue_max: 9,
    }
}

/// A fixed two-policy profile: a Tiny baseline with zero duplication
/// credit and an RD-Dup run with early-forward savings.
fn golden_report() -> ProfileReport {
    ProfileReport {
        meta: ProfileMeta { workload: "mcf".to_string(), misses: 1000, levels: 12, seed: 7 },
        policies: vec![
            PolicyProfile {
                policy: "tiny".to_string(),
                total_cycles: 2_000_000,
                data_cycles: 800_000,
                dri_cycles: 1_200_000,
                attr_queue: 200_000,
                attr_row: 150_000,
                attr_network: 0,
                attr_bus: 900_000,
                attr_eviction: 650_000,
                attr_posmap: 0,
                plb_hits: 0,
                plb_misses: 0,
                plb_evictions: 0,
                forward_saved: 0,
                stash_pull_credit: 0,
                energy_mj: 1.25,
                channels: vec![channel(700_000, 0.62, 4000, 4100), channel(680_000, 0.6, 3900, 4000)],
                level_reads: vec![0, 0, 120, 240, 480],
                level_writes: vec![40, 80, 160, 320, 640],
            },
            PolicyProfile {
                policy: "rd_dup".to_string(),
                total_cycles: 1_700_000,
                data_cycles: 650_000,
                dri_cycles: 1_050_000,
                attr_queue: 170_000,
                attr_row: 130_000,
                attr_network: 0,
                attr_bus: 780_000,
                attr_eviction: 560_000,
                attr_posmap: 40_000,
                plb_hits: 9_000,
                plb_misses: 600,
                plb_evictions: 180,
                forward_saved: 240_000,
                stash_pull_credit: 0,
                energy_mj: 1.1,
                channels: vec![channel(610_000, 0.64, 3600, 3700), channel(590_000, 0.63, 3500, 3600)],
                level_reads: vec![0, 0, 110, 220, 440],
                level_writes: vec![40, 80, 160, 320, 640],
            },
        ],
    }
}

/// The golden report with a >5% latency and energy regression injected
/// into the baseline policy — what a broken candidate looks like.
fn regressed_report() -> ProfileReport {
    let mut r = golden_report();
    let tiny = &mut r.policies[0];
    tiny.total_cycles = 2_200_000; // +10%
    tiny.dri_cycles = 1_400_000;
    tiny.energy_mj = 1.38;
    tiny.attr_queue = 400_000;
    r
}

#[test]
fn profile_table_matches_golden_file() {
    let got = golden_report().render();
    assert_eq!(
        got, GOLDEN_PROFILE,
        "profile table drifted from tests/golden/profile.txt — if intentional, regenerate \
         with: cargo test -p oram-telemetry --test golden_profile regenerate -- --ignored"
    );
}

#[test]
fn compare_report_matches_golden_file() {
    let outcome = compare_reports(&golden_report(), &regressed_report(), DEFAULT_TOLERANCE)
        .expect("matching meta");
    assert!(!outcome.passed(), "the injected regression must trip the guard");
    assert_eq!(
        outcome.render(),
        GOLDEN_COMPARE,
        "compare report drifted from tests/golden/compare.txt — if intentional, regenerate \
         with: cargo test -p oram-telemetry --test golden_profile regenerate -- --ignored"
    );
}

#[test]
fn golden_profile_json_roundtrips() {
    let report = golden_report();
    let parsed = ProfileReport::parse(&report.to_json()).expect("own JSON parses");
    assert_eq!(parsed.meta, report.meta);
    assert_eq!(parsed.policies.len(), report.policies.len());
    // Byte-identical render proves the roundtrip preserved every field
    // the table shows (floats included, to display precision).
    assert_eq!(parsed.render(), GOLDEN_PROFILE);
}

/// Not a test: rewrites the golden files from the current renderers.
/// Run explicitly (see module docs) after an intentional format change.
#[test]
#[ignore = "regenerates golden files; run explicitly after intentional format changes"]
fn regenerate() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("profile.txt"), golden_report().render()).unwrap();
    let outcome = compare_reports(&golden_report(), &regressed_report(), DEFAULT_TOLERANCE)
        .expect("matching meta");
    std::fs::write(dir.join("compare.txt"), outcome.render()).unwrap();
}

//! Golden-file tests for the span exporters: the serialized forms of a
//! fixed span set are committed under `tests/golden/` and any byte-level
//! drift in the JSONL schema or the Chrome `trace_event` layout fails
//! here first, before downstream consumers notice.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! cargo test -p oram-telemetry --test golden regenerate -- --ignored
//! ```

use oram_telemetry::export::{spans_to_chrome_trace, spans_to_jsonl, validate_chrome_trace, validate_jsonl};
use oram_telemetry::SpanRing;
use oram_util::observe::BusPhase;
use oram_util::telemetry::SPAN_MAX_PHASES;
use oram_util::{AccessAttribution, AccessSpan, PhaseSpan, ServeClass};

const GOLDEN_JSONL: &str = include_str!("golden/spans.jsonl");
const GOLDEN_CHROME: &str = include_str!("golden/trace.json");

/// A fixed, fully deterministic span set covering every interesting
/// shape: an on-chip stash hit, a DRAM read with an early shadow
/// forward, a full eviction access with all three phases, and a dummy.
fn golden_ring() -> SpanRing {
    let mut ring = SpanRing::new(16);
    let empty = [PhaseSpan::EMPTY; SPAN_MAX_PHASES];

    // On-chip stash hit: no memory phases, zero-latency data.
    ring.push(&AccessSpan {
        seq: 0,
        real: true,
        arrival: 100,
        start: 100,
        data_ready: 100,
        end: 100,
        served: ServeClass::Stash,
        forward_index: u32::MAX,
        blocks_in_path: 0,
        stash_live: 7,
        attr: AccessAttribution {
            stash_pull_credit: 450,
            ..AccessAttribution::ZERO
        },
        phases: empty,
        phase_len: 0,
    });

    // Path read served early by an RD-Dup shadow at position 3 of 33.
    let mut shadow = AccessSpan {
        seq: 1,
        real: true,
        arrival: 120,
        start: 140,
        data_ready: 520,
        end: 900,
        served: ServeClass::DramShadow,
        forward_index: 3,
        blocks_in_path: 33,
        stash_live: 9,
        attr: AccessAttribution {
            queue_wait: 20,
            dram_queue: 100,
            dram_row: 200,
            network: 50,
            dram_bus: 410,
            eviction: 0,
            posmap: 0,
            forward_saved: 380,
            stash_pull_credit: 0,
        },
        phases: empty,
        phase_len: 0,
    };
    shadow.push_phase(PhaseSpan { kind: BusPhase::ReadOnly, start: 140, end: 900 });
    ring.push(&shadow);

    // Eviction access: read-only, then the eviction read/write halves.
    let mut evict = AccessSpan {
        seq: 2,
        real: true,
        arrival: 900,
        start: 950,
        data_ready: 1400,
        end: 2600,
        served: ServeClass::DramReal,
        forward_index: 32,
        blocks_in_path: 33,
        stash_live: 12,
        attr: AccessAttribution {
            queue_wait: 50,
            dram_queue: 60,
            dram_row: 120,
            network: 0,
            dram_bus: 320,
            eviction: 1150,
            posmap: 0,
            forward_saved: 0,
            stash_pull_credit: 0,
        },
        phases: empty,
        phase_len: 0,
    };
    evict.push_phase(PhaseSpan { kind: BusPhase::ReadOnly, start: 950, end: 1450 });
    evict.push_phase(PhaseSpan { kind: BusPhase::EvictionRead, start: 1450, end: 2000 });
    evict.push_phase(PhaseSpan { kind: BusPhase::EvictionWrite, start: 2000, end: 2600 });
    ring.push(&evict);

    // Timing-protection dummy.
    let mut dummy = AccessSpan {
        seq: 3,
        real: false,
        arrival: 2600,
        start: 2600,
        data_ready: 3000,
        end: 3100,
        served: ServeClass::Dummy,
        forward_index: u32::MAX,
        blocks_in_path: 0,
        stash_live: 12,
        attr: AccessAttribution {
            queue_wait: 0,
            dram_queue: 50,
            dram_row: 90,
            network: 0,
            dram_bus: 360,
            eviction: 0,
            posmap: 0,
            forward_saved: 0,
            stash_pull_credit: 0,
        },
        phases: empty,
        phase_len: 0,
    };
    dummy.push_phase(PhaseSpan { kind: BusPhase::ReadOnly, start: 2600, end: 3100 });
    ring.push(&dummy);

    ring
}

#[test]
fn jsonl_matches_golden_file() {
    let got = spans_to_jsonl(&golden_ring());
    assert_eq!(
        got, GOLDEN_JSONL,
        "JSONL schema drifted from tests/golden/spans.jsonl — if intentional, \
         regenerate with: cargo test -p oram-telemetry --test golden regenerate -- --ignored"
    );
}

#[test]
fn chrome_trace_matches_golden_file() {
    let got = spans_to_chrome_trace(&golden_ring());
    assert_eq!(
        got, GOLDEN_CHROME,
        "Chrome trace layout drifted from tests/golden/trace.json — if intentional, \
         regenerate with: cargo test -p oram-telemetry --test golden regenerate -- --ignored"
    );
}

#[test]
fn golden_files_pass_their_own_validators() {
    assert_eq!(validate_jsonl(GOLDEN_JSONL).expect("golden JSONL valid"), 4);
    assert!(validate_chrome_trace(GOLDEN_CHROME).expect("golden trace valid") >= 4);
}

#[test]
fn validators_reject_corrupted_goldens() {
    // Drop a required field from every JSONL line.
    let broken = GOLDEN_JSONL.replace("\"served\":", "\"serbed\":");
    assert!(validate_jsonl(&broken).is_err(), "missing field must fail");
    // Unbalance the Chrome trace by turning an end event into a begin.
    let broken = GOLDEN_CHROME.replacen("\"ph\":\"E\"", "\"ph\":\"B\"", 1);
    assert!(validate_chrome_trace(&broken).is_err(), "unbalanced B/E must fail");
}

/// Not a test: rewrites the golden files from the current serializers.
/// Run explicitly (see module docs) after an intentional format change.
#[test]
#[ignore = "regenerates golden files; run explicitly after intentional format changes"]
fn regenerate() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("spans.jsonl"), spans_to_jsonl(&golden_ring())).unwrap();
    std::fs::write(dir.join("trace.json"), spans_to_chrome_trace(&golden_ring())).unwrap();
}

//! The human-readable end-of-run report: a per-policy breakdown of
//! where cycles went, reproducing the paper's Eq. 1 decomposition
//! (`total = data access time + DRI`) from the live telemetry stream
//! and cross-checked against the simulator's aggregate stats.

/// One policy's row of the end-of-run report.
#[derive(Debug, Clone)]
pub struct PolicyReport {
    /// Policy label ("tiny", "rd_dup", ...).
    pub policy: String,
    /// Total measured cycles.
    pub total_cycles: u64,
    /// Cycles spent on real data accesses (Eq. 1 first term).
    pub data_cycles: u64,
    /// Residual cycles: dummies, evictions, idle (Eq. 1 DRI term).
    pub dri_cycles: u64,
    /// Real data requests that reached the memory system.
    pub data_requests: u64,
    /// Requests served on chip (stash/treetop/PLB side).
    pub onchip_served: u64,
    /// Injected dummy requests.
    pub dummy_requests: u64,
    /// Accesses served early by a shadow copy.
    pub shadow_served: u64,
    /// Mean path positions saved per shadow-served access.
    pub mean_advance: f64,
    /// DRAM energy over the measured portion, millijoules.
    pub energy_mj: f64,
    /// Spans currently held in the trace ring.
    pub spans_held: u64,
    /// Spans dropped by ring overwrite.
    pub spans_dropped: u64,
}

impl PolicyReport {
    /// Data fraction of total cycles (Eq. 1, normalized).
    pub fn data_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.data_cycles as f64 / self.total_cycles as f64
        }
    }

    /// DRI fraction of total cycles.
    pub fn dri_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.dri_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// The full report: one row per policy.
#[derive(Debug, Default)]
pub struct RunReport {
    rows: Vec<PolicyReport>,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        RunReport::default()
    }

    /// Appends one policy row.
    pub fn push(&mut self, row: PolicyReport) {
        self.rows.push(row);
    }

    /// The accumulated rows.
    pub fn rows(&self) -> &[PolicyReport] {
        &self.rows
    }

    /// Checks Eq. 1 internal consistency on every row:
    /// `data_cycles + dri_cycles == total_cycles` exactly.
    pub fn check_eq1(&self) -> Result<(), String> {
        for r in &self.rows {
            if r.data_cycles + r.dri_cycles != r.total_cycles {
                return Err(format!(
                    "{}: data {} + dri {} != total {}",
                    r.policy, r.data_cycles, r.dri_cycles, r.total_cycles
                ));
            }
        }
        Ok(())
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("end-of-run report (Eq. 1: total = data + DRI)\n");
        out.push_str(&format!(
            "  {:<10} {:>12} {:>12} {:>12} {:>7} {:>7} {:>9} {:>8} {:>9} {:>8} {:>13} {:>10}\n",
            "policy",
            "total_cyc",
            "data_cyc",
            "dri_cyc",
            "data%",
            "dri%",
            "requests",
            "onchip",
            "dummies",
            "shadow",
            "mean_advance",
            "energy_mJ"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<10} {:>12} {:>12} {:>12} {:>6.1}% {:>6.1}% {:>9} {:>8} {:>9} {:>8} {:>13.2} {:>10.3}\n",
                r.policy,
                r.total_cycles,
                r.data_cycles,
                r.dri_cycles,
                100.0 * r.data_fraction(),
                100.0 * r.dri_fraction(),
                r.data_requests,
                r.onchip_served,
                r.dummy_requests,
                r.shadow_served,
                r.mean_advance,
                r.energy_mj,
            ));
        }
        if let Some(drops) = self.rows.iter().find(|r| r.spans_dropped > 0) {
            out.push_str(&format!(
                "  note: span ring overwrote old spans (e.g. {}: kept {}, dropped {})\n",
                drops.policy, drops.spans_held, drops.spans_dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(policy: &str, total: u64, data: u64) -> PolicyReport {
        PolicyReport {
            policy: policy.into(),
            total_cycles: total,
            data_cycles: data,
            dri_cycles: total - data,
            data_requests: 100,
            onchip_served: 20,
            dummy_requests: 30,
            shadow_served: 15,
            mean_advance: 3.5,
            energy_mj: 1.25,
            spans_held: 50,
            spans_dropped: 0,
        }
    }

    #[test]
    fn eq1_consistency_accepts_exact_split() {
        let mut rep = RunReport::new();
        rep.push(row("tiny", 1000, 400));
        rep.push(row("rd_dup", 900, 420));
        assert!(rep.check_eq1().is_ok());
    }

    #[test]
    fn eq1_consistency_rejects_drift() {
        let mut rep = RunReport::new();
        let mut bad = row("hd_dup", 1000, 400);
        bad.dri_cycles += 1;
        rep.push(bad);
        let err = rep.check_eq1().unwrap_err();
        assert!(err.contains("hd_dup"), "{err}");
    }

    #[test]
    fn render_includes_every_policy_and_fractions() {
        let mut rep = RunReport::new();
        rep.push(row("tiny", 1000, 250));
        let text = rep.render();
        assert!(text.contains("tiny"));
        assert!(text.contains("25.0%"));
        assert!(text.contains("75.0%"));
        assert!(text.contains("energy_mJ"));
        assert!(text.contains("1.250"));
    }
}

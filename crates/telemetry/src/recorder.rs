//! The standard telemetry sink: registry + span ring + time series
//! behind one [`TelemetrySink`] implementation, with a shared-handle
//! constructor matching how the audit crate shares its bus observers.

use std::sync::{Arc, Mutex};

use oram_util::{AccessSpan, MetricId, SharedTelemetry, TelemetrySink, WindowSample};

use crate::registry::MetricsRegistry;
use crate::spans::SpanRing;
use crate::timeseries::TimeSeries;

/// Sizing knobs for a [`TelemetryRecorder`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Span ring capacity (most recent spans kept; older ones counted
    /// as dropped).
    pub span_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        // ~64k spans ≈ 10 MB: enough to hold a full quick run and the
        // tail of a long one.
        TelemetryConfig { span_capacity: 1 << 16 }
    }
}

/// The standard in-memory recorder. All storage is preallocated at
/// construction (the time series grows one small `Copy` struct per
/// window, far off the per-access hot path), so `count`/`sample`/`span`
/// never allocate.
#[derive(Debug)]
pub struct TelemetryRecorder {
    metrics: MetricsRegistry,
    spans: SpanRing,
    series: TimeSeries,
}

impl TelemetryRecorder {
    /// A recorder sized by `cfg`.
    pub fn new(cfg: TelemetryConfig) -> Self {
        TelemetryRecorder {
            metrics: MetricsRegistry::new(),
            spans: SpanRing::new(cfg.span_capacity),
            series: TimeSeries::new(),
        }
    }

    /// Wraps a fresh recorder in the shared handle the instrumented
    /// components attach to.
    pub fn shared(cfg: TelemetryConfig) -> Arc<Mutex<TelemetryRecorder>> {
        Arc::new(Mutex::new(TelemetryRecorder::new(cfg)))
    }

    /// Upcasts a concrete shared recorder to the trait handle.
    pub fn as_sink(this: &Arc<Mutex<TelemetryRecorder>>) -> SharedTelemetry {
        this.clone()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span ring.
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// The time series of completed windows.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

impl TelemetrySink for TelemetryRecorder {
    #[inline]
    fn count(&mut self, id: MetricId, delta: u64) {
        self.metrics.count(id, delta);
    }

    #[inline]
    fn sample(&mut self, id: MetricId, value: u64) {
        self.metrics.sample(id, value);
    }

    #[inline]
    fn span(&mut self, span: &AccessSpan) {
        self.spans.push(span);
    }

    fn window(&mut self, w: &WindowSample) {
        self.series.push(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_util::telemetry::SPAN_MAX_PHASES;
    use oram_util::{AccessAttribution, PhaseSpan, ServeClass};

    #[test]
    fn recorder_routes_all_event_kinds() {
        let shared = TelemetryRecorder::shared(TelemetryConfig { span_capacity: 8 });
        let sink: SharedTelemetry = TelemetryRecorder::as_sink(&shared);
        {
            let mut s = sink.lock().unwrap();
            s.count(MetricId::TreetopServed, 3);
            s.sample(MetricId::StashOccupancy, 42);
            s.span(&AccessSpan {
                seq: 1,
                real: true,
                arrival: 0,
                start: 0,
                data_ready: 4,
                end: 9,
                served: ServeClass::DramReal,
                forward_index: 2,
                blocks_in_path: 24,
                stash_live: 5,
                attr: AccessAttribution::ZERO,
                phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
                phase_len: 0,
            });
            s.window(&WindowSample { index: 0, end_cycle: 100, ..Default::default() });
        }
        let r = shared.lock().unwrap();
        assert_eq!(r.metrics().counter(MetricId::TreetopServed), 3);
        assert_eq!(r.metrics().histogram(MetricId::StashOccupancy).count(), 1);
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.series().windows().len(), 1);
    }
}

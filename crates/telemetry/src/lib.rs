//! # oram-telemetry
//!
//! The measurement substrate of the Shadow Block reproduction: a
//! fixed-schema metrics registry (counters + log-bucketed histograms),
//! a fixed-capacity per-access span tracer with JSONL and Chrome
//! `trace_event` exporters, periodic time-series windows as CSV, and a
//! human-readable end-of-run report reproducing the paper's Eq. 1
//! `total = data + DRI` cycle decomposition.
//!
//! The hook vocabulary ([`oram_util::TelemetrySink`], [`oram_util::MetricId`],
//! [`oram_util::AccessSpan`], [`oram_util::WindowSample`]) lives in
//! `oram-util` so instrumented crates don't depend on this one; this
//! crate provides the standard sink ([`TelemetryRecorder`]), the
//! exporters and the validators that tests and the CI smoke job use to
//! check exported files.
//!
//! Relation to `oram-audit`: the audit's [`oram_util::BusObserver`]
//! models the *adversary's* view of the memory bus (addresses and
//! timing only — what obliviousness is judged on). Telemetry is the
//! *designer's* view: controller internals an adversary never sees.
//! Both use the same attachment pattern — an `Option<Arc<Mutex<dyn …>>>`
//! costing one branch on `None` when detached — and may be attached
//! simultaneously.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod json;
pub mod profile;
pub mod registry;
pub mod report;
pub mod spans;
pub mod tee;
pub mod timeseries;

mod recorder;

pub use export::{
    spans_to_chrome_trace, spans_to_jsonl, validate_chrome_trace, validate_jsonl,
};
pub use profile::{
    compare_reports, validate_attribution, ChannelProfile, CompareOutcome, MetricDelta,
    PolicyProfile, ProfileMeta, ProfileReport, DEFAULT_TOLERANCE,
};
pub use recorder::{TelemetryConfig, TelemetryRecorder};
pub use registry::{LogHistogram, MetricsRegistry};
pub use report::{PolicyReport, RunReport};
pub use spans::SpanRing;
pub use tee::TeeSink;
pub use timeseries::{validate_timeseries_csv, TimeSeries};

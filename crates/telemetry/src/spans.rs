//! Fixed-capacity ring buffer of [`AccessSpan`]s.
//!
//! Long runs produce millions of accesses; the tracer keeps the most
//! recent `capacity` spans and counts the rest as dropped, so memory is
//! bounded and `push` never allocates after construction.

use oram_util::AccessSpan;

/// A preallocated overwrite-oldest ring of access spans.
#[derive(Debug)]
pub struct SpanRing {
    buf: Vec<AccessSpan>,
    capacity: usize,
    /// Index of the next write (wraps).
    head: usize,
    /// Total spans ever pushed.
    pushed: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (capacity 0 drops all).
    pub fn new(capacity: usize) -> Self {
        SpanRing { buf: Vec::with_capacity(capacity), capacity, head: 0, pushed: 0 }
    }

    /// Records a span, overwriting the oldest when full. Allocation-free
    /// once the ring has filled.
    #[inline]
    pub fn push(&mut self, span: &AccessSpan) {
        self.pushed += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(*span);
        } else {
            self.buf[self.head] = *span;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total spans ever pushed (held + dropped).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Spans that were overwritten (oldest-first eviction).
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// The held spans in push order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &AccessSpan> {
        let (newer, older) = if self.buf.len() < self.capacity {
            (&self.buf[..], &self.buf[..0])
        } else {
            // head points at the oldest entry once full.
            let (b, a) = self.buf.split_at(self.head);
            (a, b)
        };
        newer.iter().chain(older.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_util::telemetry::SPAN_MAX_PHASES;
    use oram_util::{AccessAttribution, PhaseSpan, ServeClass};

    fn span(seq: u64) -> AccessSpan {
        AccessSpan {
            seq,
            real: true,
            arrival: seq * 10,
            start: seq * 10,
            data_ready: seq * 10 + 5,
            end: seq * 10 + 8,
            served: ServeClass::DramReal,
            forward_index: 3,
            blocks_in_path: 56,
            stash_live: 7,
            attr: AccessAttribution::ZERO,
            phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
            phase_len: 0,
        }
    }

    #[test]
    fn keeps_most_recent_in_order() {
        let mut r = SpanRing::new(4);
        for i in 0..10 {
            r.push(&span(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 10);
        assert_eq!(r.dropped(), 6);
        let seqs: Vec<u64> = r.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_fill_iterates_in_push_order() {
        let mut r = SpanRing::new(8);
        for i in 0..3 {
            r.push(&span(i));
        }
        let seqs: Vec<u64> = r.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_counts_but_holds_nothing() {
        let mut r = SpanRing::new(0);
        r.push(&span(0));
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 1);
        assert_eq!(r.dropped(), 1);
    }
}

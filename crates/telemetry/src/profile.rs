//! The profiling report behind `repro profile`: per-policy cycle
//! attribution (where every cycle of the run went), DRAM backend
//! utilization, and the per-level bucket-touch heatmap — in one
//! structure that renders as an aligned text table, serializes to JSON,
//! and parses back for `repro compare`'s regression guard.
//!
//! The attribution invariant this module enforces end to end: the six
//! latency components of every span (`dram_queue + dram_row + network +
//! dram_bus + eviction + posmap`) sum *exactly* to the span's duration,
//! so at run level `total = queue + row + network + bus + eviction +
//! posmap + idle` with nothing unattributed (`network` is zero for local
//! backends, `posmap` is zero for flat position maps). Duplication
//! effects are reported as credits on the side (RD-Dup early-forward
//! savings, HD-Dup stash-pull credit), never folded into the latency sum.

use oram_util::ServeClass;

use crate::json::{self, Value};
use crate::spans::SpanRing;

/// Run parameters a profile was captured under (for apples-to-apples
/// comparison: `repro compare` refuses to diff mismatched metadata).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileMeta {
    /// Workload name ("mcf", ...).
    pub workload: String,
    /// Measured misses per policy.
    pub misses: u64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Trace seed.
    pub seed: u64,
}

/// One DRAM channel's utilization summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelProfile {
    /// Cycles the data bus moved data (measured portion).
    pub busy_cycles: u64,
    /// Row-buffer hit rate over reads + writes.
    pub row_hit_rate: f64,
    /// Read transactions serviced.
    pub reads: u64,
    /// Write transactions serviced.
    pub writes: u64,
    /// Median queue depth observed at submit.
    pub queue_p50: u64,
    /// Deepest queue observed at submit.
    pub queue_max: u64,
}

/// One policy's full profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyProfile {
    /// Policy label ("tiny", "rd_dup", ...).
    pub policy: String,
    /// Total measured cycles.
    pub total_cycles: u64,
    /// Cycles on real data accesses (Eq. 1 first term).
    pub data_cycles: u64,
    /// Residual cycles (Eq. 1 DRI term).
    pub dri_cycles: u64,
    /// Σ over spans: cycles waiting in DRAM bank queues.
    pub attr_queue: u64,
    /// Σ over spans: cycles in row activate/precharge.
    pub attr_row: u64,
    /// Σ over spans: cycles in network round trips (zero for local
    /// backends; populated by the simulated-WAN storage backend).
    pub attr_network: u64,
    /// Σ over spans: cycles moving data on the bus.
    pub attr_bus: u64,
    /// Σ over spans: cycles in background-eviction phases.
    pub attr_eviction: u64,
    /// Σ over spans: cycles walking the recursive posmap-ORAM chain on
    /// PLB misses (zero for flat position maps).
    pub attr_posmap: u64,
    /// PLB hits (posmap lookups short-circuited on chip).
    pub plb_hits: u64,
    /// PLB misses (posmap lookups that walked the recursion chain).
    pub plb_misses: u64,
    /// PLB lines displaced by a miss install.
    pub plb_evictions: u64,
    /// Σ RD-Dup early-forward savings (credit, not latency).
    pub forward_saved: u64,
    /// Σ HD-Dup stash-pull credits (credit, not latency).
    pub stash_pull_credit: u64,
    /// DRAM energy over the measured portion, millijoules.
    pub energy_mj: f64,
    /// Per-channel backend utilization.
    pub channels: Vec<ChannelProfile>,
    /// Off-chip bucket reads per tree level (index = level).
    pub level_reads: Vec<u64>,
    /// Off-chip bucket writes per tree level.
    pub level_writes: Vec<u64>,
}

impl PolicyProfile {
    /// Cycles not attributed to any memory phase: idle gaps between
    /// accesses. `total = queue + row + network + bus + eviction +
    /// posmap + idle` exactly.
    pub fn idle_cycles(&self) -> u64 {
        self.total_cycles.saturating_sub(
            self.attr_queue
                + self.attr_row
                + self.attr_network
                + self.attr_bus
                + self.attr_eviction
                + self.attr_posmap,
        )
    }

    /// PLB hit rate over all posmap lookups that consulted the PLB
    /// (0 when the PLB saw no traffic).
    pub fn plb_hit_rate(&self) -> f64 {
        let total = self.plb_hits + self.plb_misses;
        if total == 0 {
            0.0
        } else {
            self.plb_hits as f64 / total as f64
        }
    }
}

/// A complete profile: metadata plus one [`PolicyProfile`] per policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Capture parameters.
    pub meta: ProfileMeta,
    /// Per-policy profiles, in report order.
    pub policies: Vec<PolicyProfile>,
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

impl ProfileReport {
    /// Renders the human-readable profile: the attribution table, the
    /// backend-utilization table, and the per-level touch heatmap.
    pub fn render(&self) -> String {
        let m = &self.meta;
        let mut out = format!(
            "profile: {} ({} misses, L={}, seed {})\n",
            m.workload, m.misses, m.levels, m.seed
        );
        out.push_str(
            "cycle attribution (total = queue + row + net + bus + eviction + posmap + idle)\n",
        );
        out.push_str(&format!(
            "  {:<10} {:>12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>11} {:>12}\n",
            "policy", "total_cyc", "queue%", "row%", "net%", "bus%", "evict%", "posmap%", "idle%",
            "fwd_saved", "stash_credit"
        ));
        for p in &self.policies {
            out.push_str(&format!(
                "  {:<10} {:>12} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>11} {:>12}\n",
                p.policy,
                p.total_cycles,
                pct(p.attr_queue, p.total_cycles),
                pct(p.attr_row, p.total_cycles),
                pct(p.attr_network, p.total_cycles),
                pct(p.attr_bus, p.total_cycles),
                pct(p.attr_eviction, p.total_cycles),
                pct(p.attr_posmap, p.total_cycles),
                pct(p.idle_cycles(), p.total_cycles),
                p.forward_saved,
                p.stash_pull_credit,
            ));
        }
        out.push_str("posmap lookaside buffer (hits / misses / evictions)\n");
        for p in &self.policies {
            out.push_str(&format!(
                "  {:<10} {:>9} {:>9} {:>9}  hit_rate {:>5.1}%\n",
                p.policy,
                p.plb_hits,
                p.plb_misses,
                p.plb_evictions,
                100.0 * p.plb_hit_rate(),
            ));
        }
        out.push_str("backend utilization (per channel)\n");
        out.push_str(&format!(
            "  {:<10} {:>3} {:>12} {:>8} {:>9} {:>9} {:>6} {:>6}\n",
            "policy", "ch", "busy_cyc", "row_hit", "reads", "writes", "q_p50", "q_max"
        ));
        for p in &self.policies {
            for (i, c) in p.channels.iter().enumerate() {
                out.push_str(&format!(
                    "  {:<10} {:>3} {:>12} {:>7.1}% {:>9} {:>9} {:>6} {:>6}\n",
                    p.policy,
                    i,
                    c.busy_cycles,
                    100.0 * c.row_hit_rate,
                    c.reads,
                    c.writes,
                    c.queue_p50,
                    c.queue_max,
                ));
            }
        }
        out.push_str("bucket touches per level (reads/writes, level 0 = root)\n");
        for p in &self.policies {
            out.push_str(&format!("  {:<10}", p.policy));
            for (l, (r, w)) in p.level_reads.iter().zip(&p.level_writes).enumerate() {
                out.push_str(&format!(" L{l}:{r}/{w}"));
            }
            out.push('\n');
        }
        out.push_str("energy (measured portion)\n");
        for p in &self.policies {
            out.push_str(&format!("  {:<10} {:>10.3} mJ\n", p.policy, p.energy_mj));
        }
        out
    }

    /// Serializes the profile as a single JSON document (the baseline
    /// format `repro compare` consumes).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"meta\": {{\"workload\":\"{}\",\"misses\":{},\"levels\":{},\"seed\":{}}},\n",
            json::escape(&self.meta.workload),
            self.meta.misses,
            self.meta.levels,
            self.meta.seed
        ));
        out.push_str("  \"policies\": [\n");
        for (i, p) in self.policies.iter().enumerate() {
            let channels: Vec<String> = p
                .channels
                .iter()
                .map(|c| {
                    format!(
                        concat!(
                            "{{\"busy_cycles\":{},\"row_hit_rate\":{:.6},\"reads\":{},",
                            "\"writes\":{},\"queue_p50\":{},\"queue_max\":{}}}"
                        ),
                        c.busy_cycles, c.row_hit_rate, c.reads, c.writes, c.queue_p50, c.queue_max
                    )
                })
                .collect();
            let nums = |v: &[u64]| {
                let s: Vec<String> = v.iter().map(u64::to_string).collect();
                format!("[{}]", s.join(","))
            };
            out.push_str(&format!(
                concat!(
                    "    {{\"policy\":\"{}\",\"total_cycles\":{},\"data_cycles\":{},",
                    "\"dri_cycles\":{},\"attr_queue\":{},\"attr_row\":{},\"attr_network\":{},",
                    "\"attr_bus\":{},\"attr_eviction\":{},\"attr_posmap\":{},",
                    "\"plb_hits\":{},\"plb_misses\":{},\"plb_evictions\":{},",
                    "\"forward_saved\":{},\"stash_pull_credit\":{},",
                    "\"energy_mj\":{:.6},\"channels\":[{}],\"level_reads\":{},",
                    "\"level_writes\":{}}}{}\n"
                ),
                json::escape(&p.policy),
                p.total_cycles,
                p.data_cycles,
                p.dri_cycles,
                p.attr_queue,
                p.attr_row,
                p.attr_network,
                p.attr_bus,
                p.attr_eviction,
                p.attr_posmap,
                p.plb_hits,
                p.plb_misses,
                p.plb_evictions,
                p.forward_saved,
                p.stash_pull_credit,
                p.energy_mj,
                channels.join(","),
                nums(&p.level_reads),
                nums(&p.level_writes),
                if i + 1 < self.policies.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a profile previously written by [`ProfileReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message locating the first missing or mistyped field.
    pub fn parse(text: &str) -> Result<ProfileReport, String> {
        let doc = json::parse(text)?;
        let meta = doc.get("meta").ok_or("missing meta")?;
        let req_u64 = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key).and_then(Value::as_u64).ok_or(format!("missing or non-u64 {key:?}"))
        };
        let meta = ProfileMeta {
            workload: meta
                .get("workload")
                .and_then(Value::as_str)
                .ok_or("missing meta.workload")?
                .to_string(),
            misses: req_u64(meta, "misses")?,
            levels: req_u64(meta, "levels")? as u32,
            seed: req_u64(meta, "seed")?,
        };
        let list = doc.get("policies").and_then(Value::as_array).ok_or("missing policies")?;
        let mut policies = Vec::new();
        for p in list {
            let u64s = |key: &str| -> Result<Vec<u64>, String> {
                p.get(key)
                    .and_then(Value::as_array)
                    .ok_or(format!("missing array {key:?}"))?
                    .iter()
                    .map(|v| v.as_u64().ok_or(format!("non-u64 entry in {key:?}")))
                    .collect()
            };
            let mut channels = Vec::new();
            for c in p.get("channels").and_then(Value::as_array).ok_or("missing channels")? {
                channels.push(ChannelProfile {
                    busy_cycles: req_u64(c, "busy_cycles")?,
                    row_hit_rate: c
                        .get("row_hit_rate")
                        .and_then(Value::as_f64)
                        .ok_or("missing row_hit_rate")?,
                    reads: req_u64(c, "reads")?,
                    writes: req_u64(c, "writes")?,
                    queue_p50: req_u64(c, "queue_p50")?,
                    queue_max: req_u64(c, "queue_max")?,
                });
            }
            policies.push(PolicyProfile {
                policy: p
                    .get("policy")
                    .and_then(Value::as_str)
                    .ok_or("missing policy name")?
                    .to_string(),
                total_cycles: req_u64(p, "total_cycles")?,
                data_cycles: req_u64(p, "data_cycles")?,
                dri_cycles: req_u64(p, "dri_cycles")?,
                attr_queue: req_u64(p, "attr_queue")?,
                attr_row: req_u64(p, "attr_row")?,
                // Lenient: baselines captured before the storage-backend
                // refactor predate this field; they are all-local runs,
                // so a missing value is exactly zero.
                attr_network: p.get("attr_network").and_then(Value::as_u64).unwrap_or(0),
                attr_bus: req_u64(p, "attr_bus")?,
                attr_eviction: req_u64(p, "attr_eviction")?,
                // Lenient: baselines captured before the recursive
                // posmap subsystem predate these fields; those are all
                // flat-posmap runs, so a missing value is exactly zero.
                attr_posmap: p.get("attr_posmap").and_then(Value::as_u64).unwrap_or(0),
                plb_hits: p.get("plb_hits").and_then(Value::as_u64).unwrap_or(0),
                plb_misses: p.get("plb_misses").and_then(Value::as_u64).unwrap_or(0),
                plb_evictions: p.get("plb_evictions").and_then(Value::as_u64).unwrap_or(0),
                forward_saved: req_u64(p, "forward_saved")?,
                stash_pull_credit: req_u64(p, "stash_pull_credit")?,
                energy_mj: p
                    .get("energy_mj")
                    .and_then(Value::as_f64)
                    .ok_or("missing energy_mj")?,
                channels,
                level_reads: u64s("level_reads")?,
                level_writes: u64s("level_writes")?,
            });
        }
        Ok(ProfileReport { meta, policies })
    }
}

/// Checks the attribution invariant on every span in `ring`: the six
/// latency components sum exactly to the span's duration (no
/// unattributed cycles) and duplication credits sit only on the serve
/// classes that can earn them (`forward_saved` ⇒ shadow DRAM serve,
/// `stash_pull_credit` ⇒ stash hit).
///
/// # Errors
///
/// Returns a message naming the first offending span.
pub fn validate_attribution(ring: &SpanRing) -> Result<(), String> {
    for s in ring.iter() {
        let a = &s.attr;
        let sum = a.dram_queue + a.dram_row + a.network + a.dram_bus + a.eviction + a.posmap;
        let dur = s.end - s.start;
        if sum != dur {
            return Err(format!(
                "span {}: attribution {sum} != duration {dur} \
                 (queue {} + row {} + network {} + bus {} + eviction {} + posmap {})",
                s.seq, a.dram_queue, a.dram_row, a.network, a.dram_bus, a.eviction, a.posmap
            ));
        }
        if a.queue_wait != s.start - s.arrival {
            return Err(format!(
                "span {}: queue_wait {} != start {} - arrival {}",
                s.seq, a.queue_wait, s.start, s.arrival
            ));
        }
        if a.forward_saved > 0 && s.served != ServeClass::DramShadow {
            return Err(format!(
                "span {}: forward_saved {} on {:?} serve",
                s.seq, a.forward_saved, s.served
            ));
        }
        if a.stash_pull_credit > 0 && s.served != ServeClass::Stash {
            return Err(format!(
                "span {}: stash_pull_credit {} on {:?} serve",
                s.seq, a.stash_pull_credit, s.served
            ));
        }
    }
    Ok(())
}

/// One metric's base-vs-candidate comparison line.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// `"<policy>.<metric>"`.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Relative change `(candidate - base) / base` (0 when base is 0).
    pub delta: f64,
    /// Whether this metric is gated (a worsening beyond tolerance is a
    /// regression) or informational only.
    pub gated: bool,
}

impl MetricDelta {
    /// True when this delta trips the regression guard at `tol`.
    pub fn regressed(&self, tol: f64) -> bool {
        self.gated && self.delta > tol
    }
}

/// The outcome of comparing two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareOutcome {
    /// All per-metric deltas, in render order.
    pub deltas: Vec<MetricDelta>,
    /// Tolerance the gated metrics were held to.
    pub tolerance: f64,
}

impl CompareOutcome {
    /// Gated metrics that worsened beyond tolerance.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed(self.tolerance)).collect()
    }

    /// True when no gated metric regressed.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Renders the comparison table plus a one-line verdict.
    pub fn render(&self) -> String {
        let mut out = format!(
            "profile comparison (tolerance {:.1}% on gated metrics)\n  {:<28} {:>14} {:>14} {:>8}  status\n",
            100.0 * self.tolerance,
            "metric",
            "baseline",
            "candidate",
            "delta"
        );
        for d in &self.deltas {
            let status = if d.regressed(self.tolerance) {
                "REGRESSION"
            } else if d.gated {
                "ok"
            } else {
                "info"
            };
            out.push_str(&format!(
                "  {:<28} {:>14.1} {:>14.1} {:>+7.2}%  {status}\n",
                d.name,
                d.base,
                d.candidate,
                100.0 * d.delta
            ));
        }
        let regs = self.regressions();
        if regs.is_empty() {
            out.push_str("verdict: PASS (no gated metric regressed)\n");
        } else {
            out.push_str(&format!("verdict: FAIL ({} regression(s))\n", regs.len()));
        }
        out
    }
}

/// Default tolerance for [`compare_reports`]: 2% — tight enough that
/// the 5%-class regressions the guard exists for always trip it, loose
/// enough to absorb formatting-level noise (the simulator itself is
/// deterministic, so identical configurations diff to exactly zero).
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// Compares `candidate` against `base` per policy. Gated
/// (higher-is-worse) metrics: total/data/DRI cycles and energy; the
/// attribution components ride along as informational deltas.
///
/// # Errors
///
/// Returns a message when the two profiles were captured under
/// different parameters or cover different policy sets.
pub fn compare_reports(
    base: &ProfileReport,
    candidate: &ProfileReport,
    tolerance: f64,
) -> Result<CompareOutcome, String> {
    if base.meta != candidate.meta {
        return Err(format!(
            "profiles are not comparable: baseline {:?} vs candidate {:?}",
            base.meta, candidate.meta
        ));
    }
    let mut deltas = Vec::new();
    for b in &base.policies {
        let c = candidate
            .policies
            .iter()
            .find(|c| c.policy == b.policy)
            .ok_or(format!("candidate is missing policy {:?}", b.policy))?;
        let mut push = |metric: &str, bv: f64, cv: f64, gated: bool| {
            let delta = if bv == 0.0 { 0.0 } else { (cv - bv) / bv };
            deltas.push(MetricDelta {
                name: format!("{}.{metric}", b.policy),
                base: bv,
                candidate: cv,
                delta,
                gated,
            });
        };
        push("total_cycles", b.total_cycles as f64, c.total_cycles as f64, true);
        push("data_cycles", b.data_cycles as f64, c.data_cycles as f64, true);
        push("dri_cycles", b.dri_cycles as f64, c.dri_cycles as f64, true);
        push("energy_mj", b.energy_mj, c.energy_mj, true);
        push("attr_queue", b.attr_queue as f64, c.attr_queue as f64, false);
        push("attr_row", b.attr_row as f64, c.attr_row as f64, false);
        push("attr_network", b.attr_network as f64, c.attr_network as f64, false);
        push("attr_bus", b.attr_bus as f64, c.attr_bus as f64, false);
        push("attr_eviction", b.attr_eviction as f64, c.attr_eviction as f64, false);
        push("attr_posmap", b.attr_posmap as f64, c.attr_posmap as f64, false);
        push("plb_hits", b.plb_hits as f64, c.plb_hits as f64, false);
        push("plb_misses", b.plb_misses as f64, c.plb_misses as f64, false);
        push("forward_saved", b.forward_saved as f64, c.forward_saved as f64, false);
    }
    for c in &candidate.policies {
        if !base.policies.iter().any(|b| b.policy == c.policy) {
            return Err(format!("baseline is missing policy {:?}", c.policy));
        }
    }
    Ok(CompareOutcome { deltas, tolerance })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_util::telemetry::SPAN_MAX_PHASES;
    use oram_util::{AccessAttribution, AccessSpan, PhaseSpan};

    fn policy(name: &str, total: u64) -> PolicyProfile {
        PolicyProfile {
            policy: name.into(),
            total_cycles: total,
            data_cycles: total / 2,
            dri_cycles: total - total / 2,
            attr_queue: total / 10,
            attr_row: total / 10,
            attr_network: 0,
            attr_bus: total / 4,
            attr_eviction: total / 4,
            attr_posmap: total / 20,
            plb_hits: 900,
            plb_misses: 100,
            plb_evictions: 60,
            forward_saved: if name == "tiny" { 0 } else { total / 20 },
            stash_pull_credit: 0,
            energy_mj: total as f64 * 1e-6,
            channels: vec![ChannelProfile {
                busy_cycles: total / 8,
                row_hit_rate: 0.75,
                reads: 1000,
                writes: 500,
                queue_p50: 2,
                queue_max: 9,
            }],
            level_reads: vec![0, 0, 40, 40],
            level_writes: vec![0, 0, 10, 10],
        }
    }

    fn report() -> ProfileReport {
        ProfileReport {
            meta: ProfileMeta { workload: "mcf".into(), misses: 1000, levels: 12, seed: 7 },
            policies: vec![policy("tiny", 100_000), policy("rd_dup", 90_000)],
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let r = report();
        let parsed = ProfileReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed.meta, r.meta);
        assert_eq!(parsed.policies.len(), r.policies.len());
        // Floats go through decimal text, so compare them to within the
        // serialized precision and everything else exactly.
        for (a, b) in parsed.policies.iter().zip(&r.policies) {
            assert!((a.energy_mj - b.energy_mj).abs() < 1e-6, "{} vs {}", a.energy_mj, b.energy_mj);
            for (ca, cb) in a.channels.iter().zip(&b.channels) {
                assert!((ca.row_hit_rate - cb.row_hit_rate).abs() < 1e-6);
            }
            let mut a = a.clone();
            let mut b = b.clone();
            a.energy_mj = 0.0;
            b.energy_mj = 0.0;
            for c in a.channels.iter_mut().chain(b.channels.iter_mut()) {
                c.row_hit_rate = 0.0;
            }
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let text = report().to_json().replace("\"attr_queue\"", "\"attr_q\"");
        assert!(ProfileReport::parse(&text).is_err());
        assert!(ProfileReport::parse("not json").is_err());
    }

    #[test]
    fn render_names_every_policy_and_section() {
        let text = report().render();
        for needle in ["tiny", "rd_dup", "cycle attribution", "backend utilization", "L3:40/10"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn idle_completes_the_partition() {
        let p = policy("tiny", 100_000);
        assert_eq!(
            p.attr_queue + p.attr_row + p.attr_network + p.attr_bus + p.attr_eviction
                + p.attr_posmap
                + p.idle_cycles(),
            p.total_cycles
        );
        assert!((p.plb_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn pre_posmap_baselines_parse_as_zero() {
        // Strip the posmap-era fields the way an old baseline would lack
        // them: parsing must succeed with all four read as zero.
        let mut text = report().to_json();
        for field in ["attr_posmap", "plb_hits", "plb_misses", "plb_evictions"] {
            let needle = format!("\"{field}\":");
            while let Some(at) = text.find(&needle) {
                let end = at + text[at..].find(',').unwrap() + 1;
                text.replace_range(at..end, "");
            }
        }
        let parsed = ProfileReport::parse(&text).unwrap();
        for p in &parsed.policies {
            assert_eq!(p.attr_posmap, 0);
            assert_eq!(p.plb_hits + p.plb_misses + p.plb_evictions, 0);
        }
    }

    #[test]
    fn identical_profiles_compare_clean() {
        let r = report();
        let out = compare_reports(&r, &r, DEFAULT_TOLERANCE).unwrap();
        assert!(out.passed());
        assert!(out.deltas.iter().all(|d| d.delta == 0.0));
        assert!(out.render().contains("PASS"));
    }

    #[test]
    fn five_percent_latency_regression_trips_the_guard() {
        let base = report();
        let mut cand = report();
        cand.policies[0].total_cycles = base.policies[0].total_cycles * 105 / 100;
        let out = compare_reports(&base, &cand, DEFAULT_TOLERANCE).unwrap();
        assert!(!out.passed());
        let regs = out.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "tiny.total_cycles");
        assert!(out.render().contains("REGRESSION"));
    }

    #[test]
    fn informational_deltas_never_gate() {
        let base = report();
        let mut cand = report();
        cand.policies[1].forward_saved *= 10;
        let out = compare_reports(&base, &cand, DEFAULT_TOLERANCE).unwrap();
        assert!(out.passed(), "forward_saved is informational");
    }

    #[test]
    fn mismatched_meta_or_policies_are_rejected() {
        let base = report();
        let mut other = report();
        other.meta.seed = 8;
        assert!(compare_reports(&base, &other, 0.02).is_err());
        let mut fewer = report();
        fewer.policies.pop();
        assert!(compare_reports(&base, &fewer, 0.02).is_err());
        assert!(compare_reports(&fewer, &base, 0.02).is_err());
    }

    fn span_with(attr: AccessAttribution, served: ServeClass, dur: u64) -> AccessSpan {
        AccessSpan {
            seq: 1,
            real: true,
            arrival: 100,
            start: 100,
            data_ready: 100 + dur,
            end: 100 + dur,
            served,
            forward_index: u32::MAX,
            blocks_in_path: 0,
            stash_live: 0,
            attr,
            phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
            phase_len: 0,
        }
    }

    #[test]
    fn attribution_validator_accepts_exact_and_rejects_drift() {
        let good = AccessAttribution {
            queue_wait: 0,
            dram_queue: 10,
            dram_row: 20,
            network: 0,
            dram_bus: 30,
            eviction: 25,
            posmap: 15,
            forward_saved: 0,
            stash_pull_credit: 0,
        };
        let mut ring = SpanRing::new(4);
        ring.push(&span_with(good, ServeClass::DramReal, 100));
        assert!(validate_attribution(&ring).is_ok());

        let mut bad = good;
        bad.dram_bus += 1;
        let mut ring = SpanRing::new(4);
        ring.push(&span_with(bad, ServeClass::DramReal, 100));
        assert!(validate_attribution(&ring).unwrap_err().contains("!= duration"));
    }

    #[test]
    fn attribution_validator_checks_queue_wait() {
        let attr = AccessAttribution { dram_queue: 100, ..AccessAttribution::ZERO };
        let mut s = span_with(attr, ServeClass::DramReal, 100);
        s.arrival = 60; // start 100 → queue_wait must be exactly 40
        let mut ring = SpanRing::new(4);
        ring.push(&s);
        assert!(validate_attribution(&ring).unwrap_err().contains("queue_wait"));

        s.attr.queue_wait = 40;
        let mut ring = SpanRing::new(4);
        ring.push(&s);
        assert!(validate_attribution(&ring).is_ok());
    }

    #[test]
    fn attribution_validator_enforces_credit_exclusivity() {
        let mut with_fwd = AccessAttribution::ZERO;
        with_fwd.forward_saved = 5;
        let mut ring = SpanRing::new(4);
        ring.push(&span_with(with_fwd, ServeClass::DramReal, 0));
        assert!(validate_attribution(&ring).unwrap_err().contains("forward_saved"));

        let mut with_credit = AccessAttribution::ZERO;
        with_credit.stash_pull_credit = 7;
        let mut ring = SpanRing::new(4);
        ring.push(&span_with(with_credit, ServeClass::Treetop, 0));
        assert!(validate_attribution(&ring).unwrap_err().contains("stash_pull_credit"));
    }
}

//! A fan-out telemetry sink: forwards every event to two downstream
//! shared sinks.
//!
//! Used by the live observability plane (`oram-obsv`) to receive the
//! engine-side stream *alongside* the standard [`crate::TelemetryRecorder`]
//! without the engine knowing about either: the engine sees one
//! `SharedTelemetry` handle as before, and the tee forwards in a fixed
//! order (primary first, then secondary), so attaching the secondary
//! changes nothing about what the primary records.

use std::sync::{Arc, Mutex};

use oram_util::{AccessSpan, MetricId, SharedTelemetry, TelemetrySink, WindowSample};

/// A [`TelemetrySink`] that forwards each event to two shared sinks in
/// a fixed order. Forwarding takes each downstream lock per event; both
/// locks are uncontended in the single-engine attachment this is built
/// for, and the tee itself performs no allocation.
#[derive(Debug)]
pub struct TeeSink {
    primary: SharedTelemetry,
    secondary: SharedTelemetry,
}

impl TeeSink {
    /// A tee forwarding to `primary` then `secondary`.
    pub fn new(primary: SharedTelemetry, secondary: SharedTelemetry) -> Self {
        TeeSink { primary, secondary }
    }

    /// Wraps a fresh tee in the shared handle components attach to.
    pub fn shared(primary: SharedTelemetry, secondary: SharedTelemetry) -> SharedTelemetry {
        Arc::new(Mutex::new(TeeSink::new(primary, secondary)))
    }
}

impl TelemetrySink for TeeSink {
    #[inline]
    fn count(&mut self, id: MetricId, delta: u64) {
        self.primary.lock().unwrap().count(id, delta);
        self.secondary.lock().unwrap().count(id, delta);
    }

    #[inline]
    fn sample(&mut self, id: MetricId, value: u64) {
        self.primary.lock().unwrap().sample(id, value);
        self.secondary.lock().unwrap().sample(id, value);
    }

    #[inline]
    fn span(&mut self, span: &AccessSpan) {
        self.primary.lock().unwrap().span(span);
        self.secondary.lock().unwrap().span(span);
    }

    fn window(&mut self, w: &WindowSample) {
        self.primary.lock().unwrap().window(w);
        self.secondary.lock().unwrap().window(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TelemetryConfig, TelemetryRecorder};

    #[test]
    fn tee_forwards_to_both_sinks() {
        let a = TelemetryRecorder::shared(TelemetryConfig::default());
        let b = TelemetryRecorder::shared(TelemetryConfig::default());
        let tee = TeeSink::shared(TelemetryRecorder::as_sink(&a), TelemetryRecorder::as_sink(&b));
        {
            let mut t = tee.lock().unwrap();
            t.count(MetricId::TreetopServed, 2);
            t.sample(MetricId::StashOccupancy, 7);
            t.window(&WindowSample { index: 0, end_cycle: 10, ..Default::default() });
        }
        for r in [&a, &b] {
            let r = r.lock().unwrap();
            assert_eq!(r.metrics().counter(MetricId::TreetopServed), 2);
            assert_eq!(r.metrics().histogram(MetricId::StashOccupancy).count(), 1);
            assert_eq!(r.series().windows().len(), 1);
        }
    }
}

//! Periodic time-series windows: where cycles went, per sample window.

use oram_util::WindowSample;

/// An append-only series of completed windows.
#[derive(Debug, Default)]
pub struct TimeSeries {
    windows: Vec<WindowSample>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends one completed window.
    pub fn push(&mut self, w: &WindowSample) {
        self.windows.push(*w);
    }

    /// The recorded windows, oldest first.
    pub fn windows(&self) -> &[WindowSample] {
        &self.windows
    }

    /// True when no window has completed.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Sum of a field over all windows — used to cross-check the series
    /// against end-of-run aggregate stats.
    pub fn total(&self, f: impl Fn(&WindowSample) -> u64) -> u64 {
        self.windows.iter().map(f).sum()
    }

    /// CSV export with the fixed header
    /// `window,start_cycle,end_cycle,data_requests,onchip_served,dummy_requests,data_cycles,dri_cycles,shadow_advanced,stash_live`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "window,start_cycle,end_cycle,data_requests,onchip_served,dummy_requests,\
             data_cycles,dri_cycles,shadow_advanced,stash_live\n",
        );
        for w in &self.windows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                w.index,
                w.start_cycle,
                w.end_cycle,
                w.data_requests,
                w.onchip_served,
                w.dummy_requests,
                w.data_cycles,
                w.dri_cycles,
                w.shadow_advanced,
                w.stash_live,
            ));
        }
        out
    }
}

/// Validates a time-series CSV: exact header, numeric fields,
/// contiguous window indices and non-overlapping cycle ranges. Returns
/// the number of data rows.
pub fn validate_timeseries_csv(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty file")?;
    let expected = "window,start_cycle,end_cycle,data_requests,onchip_served,dummy_requests,\
                    data_cycles,dri_cycles,shadow_advanced,stash_live";
    if header != expected {
        return Err(format!("bad header {header:?}"));
    }
    let mut rows = 0usize;
    let mut prev_end = 0u64;
    for (i, line) in lines.enumerate() {
        let at = |msg: &str| format!("row {}: {msg}", i + 1);
        let fields: Vec<u64> = line
            .split(',')
            .map(|f| f.trim().parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|e| at(&format!("non-numeric field: {e}")))?;
        if fields.len() != 10 {
            return Err(at(&format!("expected 10 fields, got {}", fields.len())));
        }
        if fields[0] != i as u64 {
            return Err(at("window index not contiguous"));
        }
        let (start, end) = (fields[1], fields[2]);
        if start > end || start < prev_end {
            return Err(at("cycle range out of order"));
        }
        prev_end = end;
        rows += 1;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(index: u64, start: u64, end: u64) -> WindowSample {
        WindowSample {
            index,
            start_cycle: start,
            end_cycle: end,
            data_requests: 5,
            onchip_served: 2,
            dummy_requests: 1,
            data_cycles: (end - start) / 2,
            dri_cycles: (end - start) - (end - start) / 2,
            shadow_advanced: 1,
            stash_live: 30,
        }
    }

    #[test]
    fn csv_roundtrips_through_validator() {
        let mut ts = TimeSeries::new();
        ts.push(&w(0, 0, 1000));
        ts.push(&w(1, 1000, 2000));
        ts.push(&w(2, 2000, 2500));
        let csv = ts.to_csv();
        assert_eq!(validate_timeseries_csv(&csv).unwrap(), 3);
        assert_eq!(ts.total(|w| w.data_requests), 15);
        // Per-window cycle split sums to the covered range.
        assert_eq!(ts.total(|w| w.data_cycles + w.dri_cycles), 2500);
    }

    #[test]
    fn validator_rejects_bad_rows() {
        let mut ts = TimeSeries::new();
        ts.push(&w(0, 0, 1000));
        let csv = ts.to_csv();
        assert!(validate_timeseries_csv(&csv.replace("0,0,1000", "1,0,1000")).is_err());
        assert!(validate_timeseries_csv(&csv.replace(",1000,", ",abc,")).is_err());
        assert!(validate_timeseries_csv("wrong,header\n").is_err());
        assert!(validate_timeseries_csv("").is_err());
    }

    #[test]
    fn overlapping_windows_rejected() {
        let mut ts = TimeSeries::new();
        ts.push(&w(0, 0, 1000));
        ts.push(&w(1, 500, 1500)); // overlaps the first window
        assert!(validate_timeseries_csv(&ts.to_csv()).is_err());
    }
}

//! The metrics registry: fixed-schema counters and log-bucketed
//! histograms, sized once at construction so the record path never
//! allocates.

use oram_util::{MetricId, MetricKind};

/// Number of log2 buckets. Bucket `i` holds values whose bit length is
/// `i` (bucket 0 holds the value 0), so 65 buckets cover all of `u64`.
pub const LOG_BUCKETS: usize = 65;

#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// A log2-bucketed histogram with exact count/sum/min/max.
///
/// Distribution metrics (latencies, queue depths, path positions) span
/// several orders of magnitude; log bucketing gives bounded storage and
/// an allocation-free `record` while keeping quantiles accurate to a
/// factor of two and the mean exact (the sum is tracked separately).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; LOG_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LogHistogram { buckets: [0; LOG_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding quantile `q` in `[0, 1]`:
    /// the largest value with the same bit length as the samples there.
    /// Exact min/max are reported for the extreme quantiles.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Largest value in bucket i, clamped to the observed max.
                let hi = if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self` (exact for counts/sums/extremes).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The raw bucket counts (bucket `i` = values of bit length `i`).
    pub fn buckets(&self) -> &[u64; LOG_BUCKETS] {
        &self.buckets
    }
}

/// The full fixed-schema registry: one counter or histogram per
/// [`MetricId`]. Construction allocates everything; recording never
/// does.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    counters: [u64; MetricId::ALL.len()],
    hists: Vec<LogHistogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry covering the whole schema.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: [0; MetricId::ALL.len()],
            hists: vec![LogHistogram::new(); MetricId::ALL.len()],
        }
    }

    /// Adds `delta` to a counter.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `id` is a counter metric.
    #[inline]
    pub fn count(&mut self, id: MetricId, delta: u64) {
        debug_assert_eq!(id.kind(), MetricKind::Counter, "{id:?} is not a counter");
        self.counters[id.index()] += delta;
    }

    /// Records one histogram sample.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `id` is a histogram metric.
    #[inline]
    pub fn sample(&mut self, id: MetricId, value: u64) {
        debug_assert_eq!(id.kind(), MetricKind::Histogram, "{id:?} is not a histogram");
        self.hists[id.index()].record(value);
    }

    /// Current value of a counter.
    pub fn counter(&self, id: MetricId) -> u64 {
        self.counters[id.index()]
    }

    /// The histogram behind a distribution metric.
    pub fn histogram(&self, id: MetricId) -> &LogHistogram {
        &self.hists[id.index()]
    }

    /// Merges another registry into this one, metric by metric.
    /// Deterministic: merging shards in a fixed order gives the same
    /// registry regardless of how work was split across threads.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.hists.iter().all(|h| h.count() == 0)
    }

    /// CSV export: one row per metric with fixed columns
    /// `metric,kind,count,sum,min,max,mean,p50,p99`.
    /// Counters report their total in `count` and leave the
    /// distribution columns zero.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,count,sum,min,max,mean,p50,p99\n");
        for id in MetricId::ALL {
            match id.kind() {
                MetricKind::Counter => {
                    out.push_str(&format!(
                        "{},counter,{},0,0,0,0,0,0\n",
                        id.name(),
                        self.counter(id)
                    ));
                }
                MetricKind::Histogram => {
                    let h = self.histogram(id);
                    out.push_str(&format!(
                        "{},histogram,{},{},{},{},{:.3},{},{}\n",
                        id.name(),
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                    ));
                }
            }
        }
        out
    }

    /// Human-readable dump of every non-empty metric, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for id in MetricId::ALL {
            match id.kind() {
                MetricKind::Counter => {
                    let c = self.counter(id);
                    if c > 0 {
                        out.push_str(&format!("  {:<24} {c}\n", id.name()));
                    }
                }
                MetricKind::Histogram => {
                    let h = self.histogram(id);
                    if h.count() > 0 {
                        out.push_str(&format!(
                            "  {:<24} n={} mean={:.2} min={} p50={} p99={} max={}\n",
                            id.name(),
                            h.count(),
                            h.mean(),
                            h.min(),
                            h.quantile(0.5),
                            h.quantile(0.99),
                            h.max(),
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_exact_extremes_and_mean() {
        let mut h = LogHistogram::new();
        for v in [3, 9, 27, 81] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 81);
        assert_eq!(h.sum(), 120);
        assert!((h.mean() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_bounded_by_bucket_and_max() {
        let mut h = LogHistogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        // p0/p100 are exact.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 99);
        // Any quantile is within a factor of two of the true value and
        // never exceeds the observed max.
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = h.quantile(q);
            let true_v = ((q * 100.0).ceil() as u64).saturating_sub(1);
            assert!(est <= 99, "q={q} est={est}");
            assert!(est >= true_v, "log-bucket upper bound must dominate: q={q} est={est}");
            assert!(est <= true_v.max(1) * 2, "q={q} est={est} true={true_v}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [1u64, 5, 70, 4000] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 2, 900, 65535] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.buckets(), both.buckets());
    }

    #[test]
    fn registry_counts_samples_and_merges() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.count(MetricId::StashHitReal, 2);
        r.sample(MetricId::ServedPosition, 17);
        let mut s = MetricsRegistry::new();
        s.count(MetricId::StashHitReal, 3);
        s.sample(MetricId::ServedPosition, 40);
        r.merge(&s);
        assert_eq!(r.counter(MetricId::StashHitReal), 5);
        assert_eq!(r.histogram(MetricId::ServedPosition).count(), 2);
        assert_eq!(r.histogram(MetricId::ServedPosition).max(), 40);
        assert!(!r.is_empty());
    }

    #[test]
    fn csv_has_header_and_full_schema() {
        let r = MetricsRegistry::new();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], "metric,kind,count,sum,min,max,mean,p50,p99");
        assert_eq!(lines.len(), 1 + MetricId::ALL.len());
        for (line, id) in lines[1..].iter().zip(MetricId::ALL.iter()) {
            assert!(line.starts_with(id.name()), "{line}");
        }
    }
}

//! Span exporters (JSONL, Chrome `trace_event`) and the matching
//! validators the tests and the CI smoke job run against exported files.

use oram_util::observe::BusPhase;
use oram_util::{AccessSpan, ServeClass};

use crate::json::{self, Value};
use crate::spans::SpanRing;

fn phase_name(p: BusPhase) -> &'static str {
    match p {
        BusPhase::ReadOnly => "read_only",
        BusPhase::EvictionRead => "eviction_read",
        BusPhase::EvictionWrite => "eviction_write",
    }
}

/// All serve-class names the JSONL schema admits.
pub const SERVE_CLASSES: [&str; 6] =
    ["stash", "treetop", "dram_real", "dram_shadow", "fresh", "dummy"];

const PHASE_NAMES: [&str; 3] = ["read_only", "eviction_read", "eviction_write"];

fn span_to_json(s: &AccessSpan) -> String {
    let mut phases = String::from("[");
    for (i, p) in s.phases().iter().enumerate() {
        if i > 0 {
            phases.push(',');
        }
        phases.push_str(&format!(
            r#"{{"kind":"{}","start":{},"end":{}}}"#,
            phase_name(p.kind),
            p.start,
            p.end
        ));
    }
    phases.push(']');
    let forward = if s.forward_index == u32::MAX {
        "null".to_string()
    } else {
        s.forward_index.to_string()
    };
    // The posmap component is omitted when zero so flat-posmap exports
    // stay byte-identical to the pre-recursion schema (the validator and
    // all parsers treat a missing field as 0).
    let posmap = if s.attr.posmap > 0 {
        format!(r#""posmap":{},"#, s.attr.posmap)
    } else {
        String::new()
    };
    let attr = format!(
        concat!(
            r#"{{"queue_wait":{},"dram_queue":{},"dram_row":{},"network":{},"dram_bus":{},"#,
            r#""eviction":{},{}"forward_saved":{},"stash_pull_credit":{}}}"#
        ),
        s.attr.queue_wait,
        s.attr.dram_queue,
        s.attr.dram_row,
        s.attr.network,
        s.attr.dram_bus,
        s.attr.eviction,
        posmap,
        s.attr.forward_saved,
        s.attr.stash_pull_credit
    );
    format!(
        concat!(
            r#"{{"seq":{},"real":{},"arrival":{},"start":{},"data_ready":{},"#,
            r#""end":{},"served":"{}","forward_index":{},"blocks_in_path":{},"#,
            r#""stash_live":{},"attr":{},"phases":{}}}"#
        ),
        s.seq,
        s.real,
        s.arrival,
        s.start,
        s.data_ready,
        s.end,
        s.served.name(),
        forward,
        s.blocks_in_path,
        s.stash_live,
        attr,
        phases
    )
}

/// Serializes the ring's spans as JSONL: one self-contained JSON object
/// per line, oldest span first.
pub fn spans_to_jsonl(ring: &SpanRing) -> String {
    let mut out = String::new();
    for s in ring.iter() {
        out.push_str(&span_to_json(s));
        out.push('\n');
    }
    out
}

/// Validates a JSONL export: every line is a JSON object carrying the
/// full span schema with consistent types and orderings. Returns the
/// number of valid spans.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    let mut prev_seq: Option<u64> = None;
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let v = json::parse(line).map_err(|e| at(&e))?;
        let obj = v.as_object().ok_or_else(|| at("not an object"))?;
        for key in [
            "seq",
            "real",
            "arrival",
            "start",
            "data_ready",
            "end",
            "served",
            "forward_index",
            "blocks_in_path",
            "stash_live",
            "attr",
            "phases",
        ] {
            if !obj.contains_key(key) {
                return Err(at(&format!("missing field {key:?}")));
            }
        }
        let seq = v.get("seq").unwrap().as_u64().ok_or_else(|| at("seq not u64"))?;
        if let Some(p) = prev_seq {
            if seq <= p {
                return Err(at("seq not strictly increasing"));
            }
        }
        prev_seq = Some(seq);
        if !matches!(v.get("real"), Some(Value::Bool(_))) {
            return Err(at("real not bool"));
        }
        let arrival = v.get("arrival").unwrap().as_u64().ok_or_else(|| at("arrival not u64"))?;
        let start = v.get("start").unwrap().as_u64().ok_or_else(|| at("start not u64"))?;
        let ready =
            v.get("data_ready").unwrap().as_u64().ok_or_else(|| at("data_ready not u64"))?;
        let end = v.get("end").unwrap().as_u64().ok_or_else(|| at("end not u64"))?;
        if arrival > start || start > end || ready < start {
            return Err(at("timestamps out of order"));
        }
        let served =
            v.get("served").unwrap().as_str().ok_or_else(|| at("served not string"))?;
        if !SERVE_CLASSES.contains(&served) {
            return Err(at(&format!("unknown serve class {served:?}")));
        }
        match v.get("forward_index") {
            Some(Value::Null) => {}
            Some(Value::Number(_)) => {
                v.get("forward_index").unwrap().as_u64().ok_or_else(|| at("forward_index"))?;
            }
            _ => return Err(at("forward_index not u64 or null")),
        }
        let attr = v.get("attr").unwrap();
        if attr.as_object().is_none() {
            return Err(at("attr not object"));
        }
        let mut comp = [0u64; 8];
        for (i, key) in [
            "queue_wait",
            "dram_queue",
            "dram_row",
            "network",
            "dram_bus",
            "eviction",
            "forward_saved",
            "stash_pull_credit",
        ]
        .iter()
        .enumerate()
        {
            comp[i] = attr
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| at(&format!("attr.{key} not u64")))?;
        }
        // The posmap component is optional in the schema (absent = 0, so
        // pre-recursion exports still validate).
        let posmap = attr.get("posmap").and_then(Value::as_u64).unwrap_or(0);
        // Queue wait sits before the span and must equal the pre-issue
        // interval exactly.
        if comp[0] != start - arrival {
            return Err(at("attr.queue_wait does not equal start - arrival"));
        }
        // The six latency components must partition the span exactly —
        // the exporter never emits unattributed cycles.
        if comp[1] + comp[2] + comp[3] + comp[4] + comp[5] + posmap != end - start {
            return Err(at("attr components do not sum to span duration"));
        }
        // Credits are mutually exclusive by serve class.
        if comp[6] > 0 && served != "dram_shadow" {
            return Err(at("forward_saved on a non-shadow serve"));
        }
        if comp[7] > 0 && served != "stash" {
            return Err(at("stash_pull_credit on a non-stash serve"));
        }
        let phases =
            v.get("phases").unwrap().as_array().ok_or_else(|| at("phases not array"))?;
        if phases.len() > oram_util::telemetry::SPAN_MAX_PHASES {
            return Err(at("too many phases"));
        }
        for p in phases {
            let kind = p
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| at("phase kind missing"))?;
            if !PHASE_NAMES.contains(&kind) {
                return Err(at(&format!("unknown phase kind {kind:?}")));
            }
            let ps = p.get("start").and_then(Value::as_u64).ok_or_else(|| at("phase start"))?;
            let pe = p.get("end").and_then(Value::as_u64).ok_or_else(|| at("phase end"))?;
            if ps > pe {
                return Err(at("phase start after end"));
            }
        }
        n += 1;
    }
    Ok(n)
}

/// Thread id used for accesses that occupy the memory system.
const TID_MEMORY: u64 = 1;
/// Thread id used for on-chip serves (zero DRAM phases): they do not
/// occupy the memory pipeline, so they get their own lane to keep the
/// memory lane's begin/end events properly nested.
const TID_ONCHIP: u64 = 2;

/// Serializes the ring's spans in Chrome `trace_event` JSON (the format
/// `chrome://tracing` and Perfetto load directly). Timestamps are CPU
/// cycles reported in the `ts` microsecond field — absolute scale is
/// irrelevant for inspection, ordering and nesting are what matter.
pub fn spans_to_chrome_trace(ring: &SpanRing) -> String {
    let mut ev: Vec<String> = Vec::new();
    ev.push(
        r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"shadow-oram"}}"#
            .to_string(),
    );
    ev.push(
        format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{TID_MEMORY},"args":{{"name":"memory system"}}}}"#
        ),
    );
    ev.push(
        format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{TID_ONCHIP},"args":{{"name":"on-chip serves"}}}}"#
        ),
    );
    for s in ring.iter() {
        let name = format!(
            "{}#{}{}",
            if s.real { "access" } else { "dummy" },
            s.seq,
            if s.served == ServeClass::DramShadow { " (shadow)" } else { "" }
        );
        let name = json::escape(&name);
        if s.phase_len == 0 {
            // On-chip serve: a zero-duration begin/end pair on its own lane.
            ev.push(format!(
                r#"{{"name":"{name}","cat":"{}","ph":"B","ts":{},"pid":0,"tid":{TID_ONCHIP}}}"#,
                s.served.name(),
                s.start
            ));
            ev.push(format!(
                r#"{{"name":"{name}","ph":"E","ts":{},"pid":0,"tid":{TID_ONCHIP}}}"#,
                s.start
            ));
            continue;
        }
        // Build this span's events, then stable-sort by timestamp so the
        // early-forward instant (data_ready precedes the span end) lands
        // between the right phase boundaries and the per-thread timestamp
        // order the validator enforces holds.
        let mut span_ev: Vec<(u64, String)> = Vec::new();
        span_ev.push((
            s.start,
            format!(
                r#"{{"name":"{name}","cat":"{}","ph":"B","ts":{},"pid":0,"tid":{TID_MEMORY},"args":{{"stash_live":{},"blocks_in_path":{}}}}}"#,
                s.served.name(),
                s.start,
                s.stash_live,
                s.blocks_in_path
            ),
        ));
        for p in s.phases() {
            span_ev.push((
                p.start,
                format!(
                    r#"{{"name":"{}","ph":"B","ts":{},"pid":0,"tid":{TID_MEMORY}}}"#,
                    phase_name(p.kind),
                    p.start
                ),
            ));
            span_ev.push((
                p.end,
                format!(
                    r#"{{"name":"{}","ph":"E","ts":{},"pid":0,"tid":{TID_MEMORY}}}"#,
                    phase_name(p.kind),
                    p.end
                ),
            ));
        }
        if s.real && s.data_ready >= s.start && s.data_ready <= s.end {
            // Early forwarding shows up as an instant marker inside the span.
            span_ev.push((
                s.data_ready,
                format!(
                    r#"{{"name":"data_ready","ph":"i","ts":{},"pid":0,"tid":{TID_MEMORY},"s":"t"}}"#,
                    s.data_ready
                ),
            ));
        }
        span_ev.push((
            s.end,
            format!(
                r#"{{"name":"{name}","ph":"E","ts":{},"pid":0,"tid":{TID_MEMORY}}}"#,
                s.end
            ),
        ));
        span_ev.sort_by_key(|(ts, _)| *ts);
        ev.extend(span_ev.into_iter().map(|(_, e)| e));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
}

/// Validates a Chrome `trace_event` document: parses as JSON, every
/// event carries `name`/`ph`/`pid`/`tid` (+`ts` for timed events), and
/// per thread the `B`/`E` events are balanced, properly nested (an `E`
/// closes the most recent open `B` of the same name) and have monotone
/// non-decreasing timestamps. Returns the number of complete slices.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    // tid → (open B name stack, last ts seen)
    let mut threads: std::collections::BTreeMap<u64, (Vec<String>, u64)> =
        std::collections::BTreeMap::new();
    let mut slices = 0usize;
    for (i, e) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let name = e.get("name").and_then(Value::as_str).ok_or_else(|| at("missing name"))?;
        let ph = e.get("ph").and_then(Value::as_str).ok_or_else(|| at("missing ph"))?;
        let tid = e.get("tid").and_then(Value::as_u64).ok_or_else(|| at("missing tid"))?;
        e.get("pid").and_then(Value::as_u64).ok_or_else(|| at("missing pid"))?;
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = e.get("ts").and_then(Value::as_u64).ok_or_else(|| at("missing ts"))?;
        let entry = threads.entry(tid).or_insert_with(|| (Vec::new(), 0));
        if ts < entry.1 {
            return Err(at(&format!("ts {ts} before {} on tid {tid}", entry.1)));
        }
        entry.1 = ts;
        match ph {
            "B" => entry.0.push(name.to_string()),
            "E" => {
                let open = entry.0.pop().ok_or_else(|| at("E without open B"))?;
                if open != name {
                    return Err(at(&format!("E {name:?} closes open B {open:?}")));
                }
                slices += 1;
            }
            "i" | "I" => {}
            other => return Err(at(&format!("unsupported phase {other:?}"))),
        }
    }
    for (tid, (stack, _)) in &threads {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} unclosed B events {stack:?}", stack.len()));
        }
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_util::telemetry::SPAN_MAX_PHASES;
    use oram_util::{AccessAttribution, PhaseSpan};

    fn mem_span(seq: u64, start: u64) -> AccessSpan {
        let mut s = AccessSpan {
            seq,
            real: true,
            arrival: start.saturating_sub(2),
            start,
            data_ready: start + 30,
            end: start + 100,
            served: ServeClass::DramShadow,
            forward_index: 12,
            blocks_in_path: 56,
            stash_live: 40,
            attr: AccessAttribution {
                queue_wait: 2,
                dram_queue: 10,
                dram_row: 15,
                network: 0,
                dram_bus: 35,
                eviction: 40,
                posmap: 0,
                forward_saved: 70,
                stash_pull_credit: 0,
            },
            phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
            phase_len: 0,
        };
        s.push_phase(PhaseSpan { kind: BusPhase::ReadOnly, start, end: start + 60 });
        s.push_phase(PhaseSpan {
            kind: BusPhase::EvictionRead,
            start: start + 60,
            end: start + 100,
        });
        s
    }

    fn onchip_span(seq: u64, start: u64) -> AccessSpan {
        AccessSpan {
            seq,
            real: true,
            arrival: start,
            start,
            data_ready: start,
            end: start,
            served: ServeClass::Stash,
            forward_index: u32::MAX,
            blocks_in_path: 0,
            stash_live: 11,
            attr: AccessAttribution::ZERO,
            phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
            phase_len: 0,
        }
    }

    fn ring() -> SpanRing {
        let mut r = SpanRing::new(16);
        r.push(&mem_span(1, 100));
        r.push(&onchip_span(2, 150));
        r.push(&mem_span(3, 300));
        r
    }

    #[test]
    fn jsonl_roundtrips_through_validator() {
        let text = spans_to_jsonl(&ring());
        assert_eq!(validate_jsonl(&text).unwrap(), 3);
    }

    #[test]
    fn jsonl_validator_rejects_corruption() {
        let good = spans_to_jsonl(&ring());
        // Break the schema in several distinct ways.
        assert!(validate_jsonl(&good.replace("\"served\":\"stash\"", "\"served\":\"cache\""))
            .is_err());
        assert!(validate_jsonl(&good.replace("\"seq\":3", "\"seq\":1")).is_err());
        assert!(validate_jsonl(&good.replacen("\"arrival\":", "\"arival\":", 1)).is_err());
        // One unattributed cycle breaks the exact-sum invariant.
        assert!(validate_jsonl(&good.replace("\"dram_queue\":10", "\"dram_queue\":11"))
            .unwrap_err()
            .contains("sum"));
        // A queue wait disagreeing with start - arrival is rejected.
        assert!(validate_jsonl(&good.replace("\"queue_wait\":2", "\"queue_wait\":3"))
            .unwrap_err()
            .contains("queue_wait"));
        // A duplication credit on the wrong serve class is rejected.
        assert!(validate_jsonl(
            &good.replace("\"stash_pull_credit\":0", "\"stash_pull_credit\":5")
        )
        .is_err());
        assert!(validate_jsonl("not json\n").is_err());
    }

    #[test]
    fn jsonl_emits_posmap_only_when_nonzero() {
        // Flat-posmap spans (posmap == 0) keep the pre-recursion schema.
        assert!(!spans_to_jsonl(&ring()).contains("\"posmap\""));
        let mut s = mem_span(1, 100);
        s.attr.dram_bus = 15;
        s.attr.posmap = 20;
        let mut r = SpanRing::new(4);
        r.push(&s);
        let text = spans_to_jsonl(&r);
        assert!(text.contains("\"posmap\":20"));
        assert_eq!(validate_jsonl(&text).unwrap(), 1);
        // The posmap component participates in the exact-sum invariant.
        assert!(validate_jsonl(&text.replace("\"posmap\":20", "\"posmap\":21"))
            .unwrap_err()
            .contains("sum"));
    }

    #[test]
    fn chrome_trace_roundtrips_through_validator() {
        let text = spans_to_chrome_trace(&ring());
        // 2 memory spans with 2 phases each (3 slices per access) + 1 on-chip.
        assert_eq!(validate_chrome_trace(&text).unwrap(), 7);
    }

    #[test]
    fn chrome_validator_rejects_unbalanced_and_nonmonotone() {
        let no_end = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":0,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(no_end).unwrap_err().contains("unclosed"));
        let wrong_close = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":0,"tid":1},
            {"name":"b","ph":"E","ts":2,"pid":0,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(wrong_close).is_err());
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":0,"tid":1},
            {"name":"a","ph":"E","ts":3,"pid":0,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(backwards).unwrap_err().contains("before"));
        let stray_end = r#"{"traceEvents":[
            {"name":"a","ph":"E","ts":3,"pid":0,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(stray_end).unwrap_err().contains("without open B"));
    }

    #[test]
    fn empty_ring_exports_are_valid() {
        let r = SpanRing::new(4);
        assert_eq!(validate_jsonl(&spans_to_jsonl(&r)).unwrap(), 0);
        assert_eq!(validate_chrome_trace(&spans_to_chrome_trace(&r)).unwrap(), 0);
    }
}

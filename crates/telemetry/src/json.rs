//! A minimal JSON parser for the export validators.
//!
//! The workspace is dependency-free by policy, and the validators only
//! need to *check* trace files the exporters themselves wrote — so this
//! is a small recursive-descent parser over the JSON grammar, not a
//! general-purpose serde replacement. Numbers are kept as `f64`
//! (sufficient: exported timestamps are cycle counts well under 2^53).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; `BTreeMap` keeps iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8], v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our exporters;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c if c < 0x20 => return Err(format!("raw control byte at {}", *pos)),
            _ => {
                // Copy a full UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a": "#).is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let s = "line\nwith \"quotes\" and \\slash\\ and tab\t.";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn u64_detection() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}

//! # oram-dram
//!
//! A bank-level DDR3 timing and energy model — the repo's stand-in for
//! DRAMSim2, which the Shadow Block paper (MICRO 2018) used to time ORAM
//! path accesses.
//!
//! The model covers what matters for ORAM performance studies:
//!
//! * JEDEC core timings (tRCD/CL/tRP/tRAS/tWR/tWTR/tRTP/tCCD/tRRD/tFAW),
//!   DDR3-1333 defaults matching the paper's Table I (2 channels,
//!   21.3 GB/s peak);
//! * per-bank row-buffer state with FR-FCFS scheduling and data-bus
//!   contention, so sequential path reads stream near peak bandwidth
//!   while scattered accesses pay activate/precharge penalties;
//! * the sub-tree address layout of Ren et al., which packs ORAM subtrees
//!   into DRAM rows ([`SubtreeLayout`]);
//! * refresh (tREFI/tRFC) and an energy model (per-op energies plus
//!   background power) for the paper's Fig. 12.
//!
//! ## Quick example
//!
//! ```
//! use oram_dram::{DramSystem, DramConfig, BlockRequest};
//!
//! let mut dram = DramSystem::new(DramConfig::ddr3_1333()).unwrap();
//! // An ORAM path access: a batch of block reads issued together.
//! let reqs: Vec<BlockRequest> = (0..125).map(BlockRequest::read).collect();
//! let finish_cycles = dram.service_batch(0, &reqs);
//! assert_eq!(finish_cycles.len(), 125);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod bank;
mod config;
mod controller;
mod energy;
mod system;

pub use address::{AddressMapping, Interleave, Location, SubtreeLayout};
pub use bank::{Bank, Command, RowState};
pub use config::DramConfig;
pub use controller::{
    Channel, ChannelStats, ChannelUtilization, Completion, Transaction, TxBreakdown,
    QUEUE_DEPTH_BUCKETS,
};
pub use energy::{EnergyCounters, EnergyModel};
pub use system::{BlockRequest, DramSystem};

//! DRAM energy model.
//!
//! The paper charges energy per memory operation plus background (static)
//! power over execution time, following the parameters of Fletcher et al.
//! (HPCA 2014). We use typical DDR3 per-operation energies derived from
//! datasheet IDD values: the figures that matter for the paper's Fig. 12
//! are *relative* (normalized to the insecure baseline), so the relevant
//! property is the split between per-access dynamic energy (proportional
//! to block transfers) and time-proportional static energy.


/// Raw event counters a channel accumulates; converted to joules by an
/// [`EnergyModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// Row activations.
    pub activates: u64,
    /// Precharges.
    pub precharges: u64,
    /// Read bursts.
    pub read_bursts: u64,
    /// Write bursts.
    pub write_bursts: u64,
    /// Refresh operations.
    pub refreshes: u64,
    /// Latest data-bus busy cycle observed (per-channel activity horizon).
    pub busy_until: i64,
}

impl EnergyCounters {
    /// Sums two counter sets (e.g. across channels).
    pub fn merged(self, other: EnergyCounters) -> EnergyCounters {
        EnergyCounters {
            activates: self.activates + other.activates,
            precharges: self.precharges + other.precharges,
            read_bursts: self.read_bursts + other.read_bursts,
            write_bursts: self.write_bursts + other.write_bursts,
            refreshes: self.refreshes + other.refreshes,
            busy_until: self.busy_until.max(other.busy_until),
        }
    }
}

/// Per-operation energies in nanojoules plus background power in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one activate+precharge pair (row cycle), nJ.
    pub act_pre_nj: f64,
    /// Energy of one 64-byte read burst, nJ.
    pub read_nj: f64,
    /// Energy of one 64-byte write burst, nJ.
    pub write_nj: f64,
    /// Energy of one all-bank refresh, nJ.
    pub refresh_nj: f64,
    /// Background (static + standby) power for the whole DRAM system, W.
    pub background_w: f64,
}

impl EnergyModel {
    /// Typical 4 Gb DDR3-1333 x8 device values scaled to a 2-channel,
    /// 2-rank module system.
    pub fn ddr3_typical() -> Self {
        EnergyModel {
            act_pre_nj: 2.5,
            read_nj: 1.2,
            write_nj: 1.3,
            refresh_nj: 25.0,
            background_w: 1.0,
        }
    }

    /// Total energy in millijoules given counters and wall-clock time.
    pub fn total_mj(&self, c: &EnergyCounters, elapsed_ns: f64) -> f64 {
        let dynamic_nj = self.act_pre_nj * c.activates as f64
            + self.read_nj * c.read_bursts as f64
            + self.write_nj * c.write_bursts as f64
            + self.refresh_nj * c.refreshes as f64;
        let static_nj = self.background_w * elapsed_ns; // W * ns = nJ
        (dynamic_nj + static_nj) / 1.0e6
    }

    /// Dynamic-only energy in millijoules.
    pub fn dynamic_mj(&self, c: &EnergyCounters) -> f64 {
        (self.act_pre_nj * c.activates as f64
            + self.read_nj * c.read_bursts as f64
            + self.write_nj * c.write_bursts as f64
            + self.refresh_nj * c.refreshes as f64)
            / 1.0e6
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr3_typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_counters() {
        let a = EnergyCounters { activates: 1, read_bursts: 2, busy_until: 5, ..Default::default() };
        let b = EnergyCounters { activates: 3, write_bursts: 4, busy_until: 9, ..Default::default() };
        let m = a.merged(b);
        assert_eq!(m.activates, 4);
        assert_eq!(m.read_bursts, 2);
        assert_eq!(m.write_bursts, 4);
        assert_eq!(m.busy_until, 9);
    }

    #[test]
    fn energy_scales_with_work_and_time() {
        let model = EnergyModel::ddr3_typical();
        let light = EnergyCounters { read_bursts: 10, ..Default::default() };
        let heavy = EnergyCounters { read_bursts: 1000, activates: 100, ..Default::default() };
        assert!(model.total_mj(&heavy, 1000.0) > model.total_mj(&light, 1000.0));
        // Static component dominates for long idle periods.
        let idle_long = model.total_mj(&light, 1.0e9);
        let idle_short = model.total_mj(&light, 1.0e3);
        assert!(idle_long > 100.0 * idle_short);
    }

    #[test]
    fn dynamic_ignores_time() {
        let model = EnergyModel::ddr3_typical();
        let c = EnergyCounters { read_bursts: 7, ..Default::default() };
        assert_eq!(model.dynamic_mj(&c), model.dynamic_mj(&c));
        assert!(model.dynamic_mj(&c) > 0.0);
    }
}

//! Per-bank state machine enforcing the JEDEC core timing constraints.
//!
//! Each bank tracks its open row and the timestamps of its last commands;
//! [`Bank::earliest`] answers "when may command C legally issue here",
//! and [`Bank::issue`] commits a command. Rank-level constraints (tRRD,
//! tFAW, bus contention) live in the channel controller.


use crate::config::DramConfig;

/// DRAM command kinds relevant to the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Open a row.
    Activate,
    /// Close the open row.
    Precharge,
    /// Column read burst.
    Read,
    /// Column write burst.
    Write,
}

/// Current row state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowState {
    /// No row open.
    Idle,
    /// The given row is open in the row buffer.
    Open(u64),
}

/// One DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bank {
    state: RowState,
    last_activate: i64,
    last_precharge: i64,
    /// Cycle when the most recent read burst's data finishes.
    last_read_end: i64,
    /// Cycle when the most recent write burst's data finishes.
    last_write_end: i64,
    /// Earliest cycle a precharge may issue (from tRAS / tWR / tRTP).
    precharge_ready: i64,
}

impl Bank {
    /// A bank with no row open and no timing history.
    pub fn new() -> Self {
        const LONG_AGO: i64 = -100_000;
        Bank {
            state: RowState::Idle,
            last_activate: LONG_AGO,
            last_precharge: LONG_AGO,
            last_read_end: LONG_AGO,
            last_write_end: LONG_AGO,
            precharge_ready: 0,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> RowState {
        self.state
    }

    /// Whether `row` is currently open.
    pub fn is_open(&self, row: u64) -> bool {
        self.state == RowState::Open(row)
    }

    /// Earliest cycle at which `cmd` may issue on this bank, not counting
    /// rank/channel constraints.
    pub fn earliest(&self, cmd: Command, cfg: &DramConfig) -> i64 {
        match cmd {
            Command::Activate => self.last_precharge + cfg.trp as i64,
            Command::Precharge => self.precharge_ready,
            Command::Read | Command::Write => self.last_activate + cfg.trcd as i64,
        }
    }

    /// Commits `cmd` at cycle `at`, updating the bank state.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the command violates this bank's own
    /// timing or state (the controller must consult [`Bank::earliest`]).
    pub fn issue(&mut self, cmd: Command, at: i64, row: u64, cfg: &DramConfig) {
        debug_assert!(at >= self.earliest(cmd, cfg), "{cmd:?} too early");
        match cmd {
            Command::Activate => {
                debug_assert_eq!(self.state, RowState::Idle, "activate on open bank");
                self.state = RowState::Open(row);
                self.last_activate = at;
                self.precharge_ready = at + cfg.tras as i64;
            }
            Command::Precharge => {
                debug_assert_ne!(self.state, RowState::Idle, "precharge on idle bank");
                self.state = RowState::Idle;
                self.last_precharge = at;
            }
            Command::Read => {
                debug_assert!(self.is_open(row), "read on wrong/closed row");
                let data_end = at + (cfg.cl + cfg.burst_cycles()) as i64;
                self.last_read_end = data_end;
                self.precharge_ready =
                    self.precharge_ready.max(at + cfg.trtp as i64);
            }
            Command::Write => {
                debug_assert!(self.is_open(row), "write on wrong/closed row");
                let data_end = at + (cfg.cwl + cfg.burst_cycles()) as i64;
                self.last_write_end = data_end;
                self.precharge_ready =
                    self.precharge_ready.max(data_end + cfg.twr as i64);
            }
        }
    }

    /// Forces the bank idle and unavailable until `cycle` (refresh window):
    /// the earliest subsequent activate is exactly `cycle`.
    pub fn stall_until(&mut self, cycle: i64, cfg: &DramConfig) {
        self.state = RowState::Idle;
        self.last_precharge = self.last_precharge.max(cycle - cfg.trp as i64);
        self.precharge_ready = self.precharge_ready.max(cycle);
    }

    /// Cycle at which the row opened by the most recent activate becomes
    /// column-accessible (activate time + tRCD). The channel's cycle
    /// attribution uses this as the end of the row-operation interval.
    pub fn row_ready(&self, cfg: &DramConfig) -> i64 {
        self.last_activate + cfg.trcd as i64
    }

    /// Cycle at which the last read's data completes.
    pub fn last_read_end(&self) -> i64 {
        self.last_read_end
    }

    /// Cycle at which the last write's data completes.
    pub fn last_write_end(&self) -> i64 {
        self.last_write_end
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr3_1333()
    }

    #[test]
    fn fresh_bank_is_idle_and_ready() {
        let b = Bank::new();
        assert_eq!(b.state(), RowState::Idle);
        assert!(b.earliest(Command::Activate, &cfg()) <= 0);
    }

    #[test]
    fn activate_then_read_respects_trcd() {
        let c = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 0, 5, &c);
        assert!(b.is_open(5));
        assert_eq!(b.earliest(Command::Read, &c), c.trcd as i64);
        b.issue(Command::Read, c.trcd as i64, 5, &c);
        assert_eq!(
            b.last_read_end(),
            (c.trcd + c.cl + c.burst_cycles()) as i64
        );
    }

    #[test]
    fn precharge_waits_for_tras() {
        let c = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 10, 1, &c);
        assert_eq!(b.earliest(Command::Precharge, &c), 10 + c.tras as i64);
    }

    #[test]
    fn write_recovery_extends_precharge() {
        let c = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 0, 1, &c);
        let w_at = c.trcd as i64;
        b.issue(Command::Write, w_at, 1, &c);
        let data_end = w_at + (c.cwl + c.burst_cycles()) as i64;
        assert_eq!(
            b.earliest(Command::Precharge, &c),
            data_end + c.twr as i64
        );
    }

    #[test]
    fn precharge_then_activate_respects_trp() {
        let c = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 0, 1, &c);
        let pre_at = b.earliest(Command::Precharge, &c);
        b.issue(Command::Precharge, pre_at, 0, &c);
        assert_eq!(b.state(), RowState::Idle);
        assert_eq!(b.earliest(Command::Activate, &c), pre_at + c.trp as i64);
    }

    #[test]
    fn row_hit_needs_no_new_activate() {
        let c = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 0, 7, &c);
        b.issue(Command::Read, c.trcd as i64, 7, &c);
        // A second read to the same row may go as soon as tRCD from the
        // original activate (bus constraints handled elsewhere).
        assert!(b.is_open(7));
        b.issue(Command::Read, (c.trcd + c.tccd) as i64, 7, &c);
    }
}

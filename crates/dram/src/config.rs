//! DDR3 device geometry and timing parameters.
//!
//! Values follow JEDEC DDR3-1333 (the paper's configuration, modeled there
//! by DRAMSim2's defaults): a 666.7 MHz DRAM clock (tCK = 1.5 ns), 64-bit
//! channel data bus, burst length 8, and the standard core timings.


/// Geometry and timing of one DRAM configuration. All timings are in DRAM
/// clock cycles unless noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Independent channels (each with its own bus and controller).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: usize,
    /// Data-bus width in bytes (8 = 64-bit).
    pub bus_bytes: usize,
    /// Burst length in beats (DDR3: 8).
    pub burst_length: usize,
    /// DRAM clock period in nanoseconds (DDR3-1333: 1.5 ns).
    pub tck_ns: f64,
    /// CAS latency (read command → first data beat).
    pub cl: u64,
    /// RAS-to-CAS delay (activate → read/write).
    pub trcd: u64,
    /// Row precharge time (precharge → activate).
    pub trp: u64,
    /// Minimum row-open time (activate → precharge).
    pub tras: u64,
    /// Write recovery (end of write burst → precharge).
    pub twr: u64,
    /// Write-to-read turnaround (same rank).
    pub twtr: u64,
    /// Read-to-precharge delay.
    pub trtp: u64,
    /// Column-to-column delay (back-to-back bursts).
    pub tccd: u64,
    /// Activate-to-activate delay, different banks same rank.
    pub trrd: u64,
    /// Four-activate window, same rank.
    pub tfaw: u64,
    /// Write latency (write command → first data beat).
    pub cwl: u64,
    /// Refresh interval in DRAM cycles (tREFI); 0 disables refresh.
    pub trefi: u64,
    /// Refresh cycle time (tRFC).
    pub trfc: u64,
}

impl DramConfig {
    /// DDR3-1333 with two channels and 8 KB rows — the paper's Table I
    /// memory (peak bandwidth 2 × 10.67 = 21.3 GB/s).
    pub fn ddr3_1333() -> Self {
        DramConfig {
            channels: 2,
            ranks: 2,
            banks: 8,
            row_bytes: 8192,
            bus_bytes: 8,
            burst_length: 8,
            tck_ns: 1.5,
            cl: 10,
            trcd: 10,
            trp: 10,
            tras: 24,
            twr: 10,
            twtr: 5,
            trtp: 5,
            tccd: 4,
            trrd: 4,
            tfaw: 20,
            cwl: 7,
            trefi: 5200, // 7.8 µs / 1.5 ns
            trfc: 107,   // 160 ns
        }
    }

    /// Single-channel variant (sensitivity studies).
    pub fn ddr3_1333_single_channel() -> Self {
        DramConfig { channels: 1, ..Self::ddr3_1333() }
    }

    /// Bus cycles occupied by one burst: `burst_length / 2` (DDR transfers
    /// two beats per clock).
    pub fn burst_cycles(&self) -> u64 {
        (self.burst_length as u64).div_ceil(2)
    }

    /// Bytes transferred by one full burst.
    pub fn burst_bytes(&self) -> usize {
        self.bus_bytes * self.burst_length
    }

    /// Columns (in burst units) per row.
    pub fn bursts_per_row(&self) -> usize {
        self.row_bytes / self.burst_bytes()
    }

    /// Peak bandwidth of the whole system in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        let per_channel = self.bus_bytes as f64 * 2.0 / self.tck_ns; // bytes/ns
        per_channel * self.channels as f64
    }

    /// Converts DRAM cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.tck_ns
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks == 0 || self.banks == 0 {
            return Err("channels, ranks and banks must be positive".into());
        }
        if !self.row_bytes.is_multiple_of(self.burst_bytes()) {
            return Err("row size must be a whole number of bursts".into());
        }
        if self.tck_ns <= 0.0 {
            return Err("tCK must be positive".into());
        }
        if self.tras < self.trcd {
            return Err("tRAS must cover at least tRCD".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr3_1333()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_defaults_validate() {
        DramConfig::ddr3_1333().validate().unwrap();
        DramConfig::ddr3_1333_single_channel().validate().unwrap();
    }

    #[test]
    fn peak_bandwidth_matches_table1() {
        let c = DramConfig::ddr3_1333();
        // Table I: 21.3 GB/s across two channels.
        let bw = c.peak_bandwidth_gbps();
        assert!((bw - 21.33).abs() < 0.1, "got {bw}");
    }

    #[test]
    fn burst_arithmetic() {
        let c = DramConfig::ddr3_1333();
        assert_eq!(c.burst_cycles(), 4);
        assert_eq!(c.burst_bytes(), 64); // one ORAM block per burst
        assert_eq!(c.bursts_per_row(), 128);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = DramConfig::ddr3_1333();
        c.channels = 0;
        assert!(c.validate().is_err());

        let mut c = DramConfig::ddr3_1333();
        c.row_bytes = 100;
        assert!(c.validate().is_err());

        let mut c = DramConfig::ddr3_1333();
        c.tras = 1;
        assert!(c.validate().is_err());
    }
}

//! The multi-channel DRAM system facade used by the ORAM simulator.


use oram_util::{BusEvent, MetricId, SharedObserver, SharedTelemetry};

use crate::address::{AddressMapping, Interleave};
use crate::config::DramConfig;
use crate::controller::{Channel, ChannelStats, ChannelUtilization, Completion, Transaction, TxBreakdown};
use crate::energy::EnergyCounters;

/// One block request submitted to the system: a 64-byte read or write at a
/// physical block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest {
    /// Physical block address (units of 64 B).
    pub addr: u64,
    /// `true` for writes.
    pub is_write: bool,
}

impl BlockRequest {
    /// Convenience constructor for a read.
    pub fn read(addr: u64) -> Self {
        BlockRequest { addr, is_write: false }
    }

    /// Convenience constructor for a write.
    pub fn write(addr: u64) -> Self {
        BlockRequest { addr, is_write: true }
    }
}

/// The DRAM system: one controller per channel plus the shared address
/// mapping. Bank and row-buffer state persists across batches, so
/// consecutive ORAM path accesses interact (row reuse, open-page wins).
///
/// ```
/// use oram_dram::{DramSystem, DramConfig, BlockRequest};
///
/// let mut dram = DramSystem::new(DramConfig::ddr3_1333()).unwrap();
/// let done = dram.service_batch(0, &[BlockRequest::read(0), BlockRequest::read(1)]);
/// assert_eq!(done.len(), 2);
/// assert!(done[0] > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DramSystem {
    cfg: DramConfig,
    mapping: AddressMapping,
    channels: Vec<Channel>,
    /// Optional bus observer; cloning the system shares it.
    observer: Option<SharedObserver>,
    /// Optional telemetry sink sampling per-channel queue occupancy at
    /// each batch submission; cloning the system shares it.
    telemetry: Option<SharedTelemetry>,
}

impl DramSystem {
    /// Builds a system from `cfg` with the default interleave.
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error, if any.
    pub fn new(cfg: DramConfig) -> Result<Self, String> {
        Self::with_interleave(cfg, Interleave::RowRankBankColChan)
    }

    /// Builds a system with an explicit interleave order.
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error, if any.
    pub fn with_interleave(cfg: DramConfig, il: Interleave) -> Result<Self, String> {
        cfg.validate()?;
        Ok(DramSystem {
            mapping: AddressMapping::new(&cfg, il),
            channels: (0..cfg.channels).map(|_| Channel::new(cfg)).collect(),
            observer: None,
            telemetry: None,
            cfg,
        })
    }

    /// Attaches (or with `None` detaches) a bus observer that sees every
    /// block request at submission, in order — the device-level half of
    /// the externally visible trace.
    pub fn set_observer(&mut self, observer: Option<SharedObserver>) {
        self.observer = observer;
    }

    /// Attaches (or with `None` detaches) a telemetry sink that samples
    /// each channel's transaction-queue occupancy right after every batch
    /// submission — the paper's queueing-pressure view of an ORAM path
    /// access. One branch on `None` when detached.
    pub fn set_telemetry(&mut self, telemetry: Option<SharedTelemetry>) {
        self.telemetry = telemetry;
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Services a batch of block requests arriving together at DRAM cycle
    /// `now`, returning each request's completion cycle **in submission
    /// order**. Bank state persists to the next batch.
    ///
    /// Requests are queued in order; channels schedule independently with
    /// FR-FCFS, which is how an ORAM path access behaves: the controller
    /// issues the whole path and blocks arrive as banks allow.
    pub fn service_batch(&mut self, now: i64, reqs: &[BlockRequest]) -> Vec<i64> {
        self.service_batch_with(now, reqs, true)
    }

    /// Like [`DramSystem::service_batch`] but with explicit control over
    /// data-bus occupancy for reads (see [`Channel::drain_with`]); used by
    /// the XOR-compression model, where the in-memory hub consumes read
    /// data locally.
    pub fn service_batch_with(
        &mut self,
        now: i64,
        reqs: &[BlockRequest],
        occupy_bus: bool,
    ) -> Vec<i64> {
        let mut finishes = Vec::new();
        self.service_batch_into(now, reqs, occupy_bus, &mut finishes);
        finishes
    }

    /// Like [`DramSystem::service_batch_with`], but writes the completion
    /// cycles into a caller-owned buffer (cleared and resized to
    /// `reqs.len()`). Reusing one buffer across batches keeps the
    /// simulator's per-access hot loop allocation-free.
    pub fn service_batch_into(
        &mut self,
        now: i64,
        reqs: &[BlockRequest],
        occupy_bus: bool,
        finishes: &mut Vec<i64>,
    ) {
        if let Some(obs) = &self.observer {
            let mut obs = obs.lock().expect("bus observer poisoned");
            for r in reqs {
                obs.on_event(BusEvent::DramBlock { addr: r.addr, write: r.is_write });
            }
        }
        for (i, r) in reqs.iter().enumerate() {
            let loc = self.mapping.decode(r.addr);
            self.channels[loc.channel].submit(Transaction {
                id: i as u64,
                loc,
                is_write: r.is_write,
                arrival: now,
            });
        }
        if let Some(t) = &self.telemetry {
            if !reqs.is_empty() {
                let mut t = t.lock().expect("telemetry poisoned");
                for ch in &self.channels {
                    t.sample(MetricId::DramQueueDepth, ch.pending() as u64);
                }
            }
        }
        finishes.clear();
        finishes.resize(reqs.len(), 0);
        for ch in &mut self.channels {
            ch.begin_batch();
            ch.drain_unordered(now, occupy_bus, |Completion { id, finish }| {
                finishes[id as usize] = finish;
            });
        }
    }

    /// Cycle decomposition of the most recent batch's critical
    /// transaction — the one whose finish time bounded the batch across
    /// all channels. `None` if the last batch was empty. Valid until the
    /// next `service_batch*` call.
    pub fn last_batch_breakdown(&self) -> Option<TxBreakdown> {
        self.channels
            .iter()
            .filter_map(Channel::batch_critical)
            .max_by_key(|bd| bd.finish)
    }

    /// Per-channel utilization snapshots (allocates; call at run
    /// boundaries, not per access).
    pub fn utilization(&self) -> Vec<ChannelUtilization> {
        self.channels.iter().map(Channel::utilization).collect()
    }

    /// Latency (in DRAM cycles, relative to `now`) of one isolated block
    /// read — the insecure-baseline cost of an LLC miss.
    pub fn single_read_latency(&mut self, now: i64, addr: u64) -> i64 {
        let done = self.service_batch(now, &[BlockRequest::read(addr)]);
        done[0] - now
    }

    /// Merged statistics across channels.
    pub fn stats(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for ch in &self.channels {
            let s = ch.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.row_hits += s.row_hits;
            total.row_misses += s.row_misses;
            total.row_conflicts += s.row_conflicts;
            total.activates += s.activates;
            total.precharges += s.precharges;
            total.refreshes += s.refreshes;
        }
        total
    }

    /// Merged energy counters across channels.
    pub fn energy(&self) -> EnergyCounters {
        self.channels
            .iter()
            .fold(EnergyCounters::default(), |acc, ch| acc.merged(ch.energy()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        let mut c = DramConfig::ddr3_1333();
        c.trefi = 0;
        c
    }

    #[test]
    fn batch_completes_all_in_order_ids() {
        let mut d = DramSystem::new(cfg()).unwrap();
        let reqs: Vec<BlockRequest> = (0..32).map(BlockRequest::read).collect();
        let done = d.service_batch(0, &reqs);
        assert_eq!(done.len(), 32);
        assert!(done.iter().all(|&f| f > 0));
    }

    #[test]
    fn two_channels_roughly_double_throughput() {
        let mut two = DramSystem::new(cfg()).unwrap();
        let mut one = DramSystem::new(DramConfig {
            channels: 1,
            trefi: 0,
            ..DramConfig::ddr3_1333()
        })
        .unwrap();
        // A long sequential stream.
        let reqs: Vec<BlockRequest> = (0..512).map(BlockRequest::read).collect();
        let t2 = *two.service_batch(0, &reqs).iter().max().unwrap();
        let t1 = *one.service_batch(0, &reqs).iter().max().unwrap();
        let ratio = t1 as f64 / t2 as f64;
        assert!(ratio > 1.6, "two channels should be ~2x: ratio {ratio}");
    }

    #[test]
    fn sequential_stream_approaches_peak_bandwidth() {
        let c = cfg();
        let mut d = DramSystem::new(c).unwrap();
        let n = 2048usize;
        let reqs: Vec<BlockRequest> = (0..n as u64).map(BlockRequest::read).collect();
        let finish = *d.service_batch(0, &reqs).iter().max().unwrap();
        let bytes = (n * 64) as f64;
        let ns = c.cycles_to_ns(finish as u64);
        let gbps = bytes / ns;
        let peak = c.peak_bandwidth_gbps();
        assert!(
            gbps > 0.7 * peak,
            "sequential stream only reached {gbps:.1} of {peak:.1} GB/s"
        );
    }

    #[test]
    fn bank_conflict_stream_is_slower_than_sequential() {
        // With 16 banks per channel a scattered stream stays bus-bound, so
        // the honest worst case is a same-bank different-row stream: every
        // access pays a full row cycle on one bank.
        let c = cfg();
        let m = AddressMapping::new(&c, Interleave::RowRankBankColChan);
        let base = m.decode(0);
        let mut conflicts = Vec::new();
        let mut a = 1u64;
        let mut last_row = base.row;
        while conflicts.len() < 64 {
            let l = m.decode(a);
            if l.channel == base.channel
                && l.rank == base.rank
                && l.bank == base.bank
                && l.row != last_row
            {
                conflicts.push(BlockRequest::read(a));
                last_row = l.row;
            }
            a += 1;
        }
        let mut seq = DramSystem::new(c).unwrap();
        let mut cfl = DramSystem::new(c).unwrap();
        let seq_reqs: Vec<BlockRequest> = (0..64).map(BlockRequest::read).collect();
        let t_seq = *seq.service_batch(0, &seq_reqs).iter().max().unwrap();
        let t_cfl = *cfl.service_batch(0, &conflicts).iter().max().unwrap();
        assert!(
            t_cfl > 2 * t_seq,
            "conflict stream {t_cfl} should be far slower than sequential {t_seq}"
        );
    }

    #[test]
    fn state_persists_across_batches() {
        let c = cfg();
        let mut d = DramSystem::new(c).unwrap();
        let first = d.service_batch(0, &[BlockRequest::read(0)]);
        // Second batch to the same row starts later but should be a row hit.
        let now = first[0];
        let _ = d.service_batch(now, &[BlockRequest::read(c.channels as u64)]);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn single_read_latency_is_positive_and_stable() {
        let mut d = DramSystem::new(cfg()).unwrap();
        let l1 = d.single_read_latency(0, 4096);
        assert!(l1 > 0);
        let l2 = d.single_read_latency(10_000, 4096 + 2);
        // Row hit the second time: strictly cheaper or equal.
        assert!(l2 <= l1);
    }

    #[test]
    fn batch_breakdown_tracks_the_critical_transaction() {
        let mut d = DramSystem::new(cfg()).unwrap();
        assert!(d.last_batch_breakdown().is_none());
        let reqs: Vec<BlockRequest> = (0..32).map(BlockRequest::read).collect();
        let now = 1000;
        let done = d.service_batch(now, &reqs);
        let crit = d.last_batch_breakdown().expect("non-empty batch");
        assert_eq!(crit.finish, *done.iter().max().unwrap());
        assert_eq!(
            crit.queue + crit.row + crit.transfer,
            (crit.finish - now) as u64,
            "critical breakdown partitions [now, finish] exactly"
        );
        // An empty batch resets the tracking.
        d.service_batch(crit.finish, &[]);
        assert!(d.last_batch_breakdown().is_none());
    }

    #[test]
    fn utilization_reports_every_channel() {
        let c = cfg();
        let mut d = DramSystem::new(c).unwrap();
        let reqs: Vec<BlockRequest> = (0..64).map(BlockRequest::read).collect();
        d.service_batch(0, &reqs);
        let util = d.utilization();
        assert_eq!(util.len(), c.channels);
        let total_reads: u64 = util.iter().map(|u| u.stats.reads).sum();
        assert_eq!(total_reads, 64);
        assert!(util.iter().all(|u| u.busy_cycles > 0));
    }

    #[test]
    fn writes_are_counted() {
        let mut d = DramSystem::new(cfg()).unwrap();
        d.service_batch(0, &[BlockRequest::write(0), BlockRequest::read(64)]);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
        assert!(d.energy().write_bursts == 1);
    }
}

//! Physical address decomposition and the ORAM sub-tree layout.
//!
//! A physical address names a 64-byte block. [`AddressMapping`] splits it
//! into `(channel, rank, bank, row, column)`. For ORAM, the *sub-tree
//! layout* of Ren et al. packs small subtrees of the ORAM tree into single
//! DRAM rows so that a path access touches few rows per channel and enjoys
//! row-buffer locality; [`SubtreeLayout`] converts bucket ids to physical
//! block addresses accordingly.


use crate::config::DramConfig;

/// A decoded DRAM location for one 64-byte block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column in burst units within the row.
    pub column: usize,
}

/// Interleaving order used to decode physical block addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleave {
    /// row : rank : bank : column : channel — consecutive blocks alternate
    /// channels, then walk a row; good for streaming (the default).
    RowRankBankColChan,
    /// row : column : rank : bank : channel — consecutive blocks spread
    /// over banks first.
    RowColRankBankChan,
}

/// Physical-address → DRAM-location mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddressMapping {
    channels: usize,
    ranks: usize,
    banks: usize,
    bursts_per_row: usize,
    interleave: Interleave,
}

impl AddressMapping {
    /// Builds the mapping for `cfg` with the given interleave order.
    pub fn new(cfg: &DramConfig, interleave: Interleave) -> Self {
        AddressMapping {
            channels: cfg.channels,
            ranks: cfg.ranks,
            banks: cfg.banks,
            bursts_per_row: cfg.bursts_per_row(),
            interleave,
        }
    }

    /// Decodes a physical block address (units of one burst / 64 B).
    pub fn decode(&self, block_addr: u64) -> Location {
        let mut a = block_addr;
        match self.interleave {
            Interleave::RowRankBankColChan => {
                let channel = (a % self.channels as u64) as usize;
                a /= self.channels as u64;
                let column = (a % self.bursts_per_row as u64) as usize;
                a /= self.bursts_per_row as u64;
                let bank = (a % self.banks as u64) as usize;
                a /= self.banks as u64;
                let rank = (a % self.ranks as u64) as usize;
                a /= self.ranks as u64;
                Location { channel, rank, bank, row: a, column }
            }
            Interleave::RowColRankBankChan => {
                let channel = (a % self.channels as u64) as usize;
                a /= self.channels as u64;
                let bank = (a % self.banks as u64) as usize;
                a /= self.banks as u64;
                let rank = (a % self.ranks as u64) as usize;
                a /= self.ranks as u64;
                let column = (a % self.bursts_per_row as u64) as usize;
                a /= self.bursts_per_row as u64;
                Location { channel, rank, bank, row: a, column }
            }
        }
    }
}

/// Maps ORAM bucket ids to physical block addresses using the sub-tree
/// layout: the tree is cut into subtrees of `subtree_levels` levels; each
/// subtree's buckets are stored contiguously, so one subtree spans few
/// rows and a path access walks one subtree per `subtree_levels` levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeLayout {
    subtree_levels: u32,
    blocks_per_bucket: usize,
}

impl SubtreeLayout {
    /// Creates a layout packing `subtree_levels` tree levels per subtree,
    /// with `z` blocks per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `subtree_levels` is 0 or `z` is 0.
    pub fn new(subtree_levels: u32, z: usize) -> Self {
        assert!(subtree_levels > 0 && z > 0);
        SubtreeLayout { subtree_levels, blocks_per_bucket: z }
    }

    /// Picks the largest subtree depth whose bucket storage fits in one
    /// DRAM row (Ren et al.'s heuristic): `2^k − 1` buckets of `z` blocks
    /// of 64 B per row.
    pub fn fit_to_row(cfg: &DramConfig, z: usize) -> Self {
        let bucket_bytes = z * 64;
        let mut k = 1;
        while ((1usize << (k + 1)) - 1) * bucket_bytes <= cfg.row_bytes {
            k += 1;
        }
        SubtreeLayout::new(k, z)
    }

    /// Subtree depth in levels.
    pub fn subtree_levels(&self) -> u32 {
        self.subtree_levels
    }

    /// Physical block address of slot `slot` of the bucket with 1-based
    /// heap index `bucket_heap`.
    ///
    /// The scheme: group tree levels into bands of `subtree_levels`; within
    /// a band, a bucket belongs to the subtree rooted at its band-top
    /// ancestor. Subtrees are numbered breadth-first and laid out
    /// contiguously.
    pub fn block_addr(&self, bucket_heap: u64, slot: usize) -> u64 {
        debug_assert!(bucket_heap >= 1);
        debug_assert!(slot < self.blocks_per_bucket);
        let k = self.subtree_levels;
        let level = 63 - bucket_heap.leading_zeros();
        let band = level / k;
        let level_in_band = level % k;
        // The band-top ancestor of this bucket.
        let top = bucket_heap >> level_in_band;
        // Index of the subtree: number of subtree roots before `top` in
        // breadth-first order. Subtree roots of band b live at tree level
        // b*k; `top` is one of them.
        let band_base_heap = 1u64 << (band * k);
        let subtree_index = top - band_base_heap;
        // Buckets inside a subtree, breadth-first: level_in_band gives the
        // local level; the local offset is the path below `top`.
        let local_base = (1u64 << level_in_band) - 1;
        let local_offset = bucket_heap - (top << level_in_band);
        let bucket_in_subtree = local_base + local_offset;
        let subtree_buckets = (1u64 << k) - 1;
        // Global bucket number: all buckets in previous bands, plus
        // previous subtrees in this band, plus position inside.
        let buckets_before_band = (1u64 << (band * k)) - 1;
        let global_bucket =
            buckets_before_band + subtree_index * subtree_buckets + bucket_in_subtree;
        global_bucket * self.blocks_per_bucket as u64 + slot as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_round_trips_within_geometry() {
        let cfg = DramConfig::ddr3_1333();
        let m = AddressMapping::new(&cfg, Interleave::RowRankBankColChan);
        let mut seen = std::collections::HashSet::new();
        for a in 0..10_000u64 {
            let loc = m.decode(a);
            assert!(loc.channel < cfg.channels);
            assert!(loc.rank < cfg.ranks);
            assert!(loc.bank < cfg.banks);
            assert!(loc.column < cfg.bursts_per_row());
            assert!(seen.insert(loc), "duplicate location for {a}");
        }
    }

    #[test]
    fn consecutive_blocks_alternate_channels() {
        let cfg = DramConfig::ddr3_1333();
        let m = AddressMapping::new(&cfg, Interleave::RowRankBankColChan);
        assert_ne!(m.decode(0).channel, m.decode(1).channel);
        assert_eq!(m.decode(0).channel, m.decode(2).channel);
    }

    #[test]
    fn subtree_layout_is_injective() {
        let layout = SubtreeLayout::new(3, 4);
        let mut seen = std::collections::HashSet::new();
        for heap in 1u64..512 {
            for slot in 0..4 {
                let a = layout.block_addr(heap, slot);
                assert!(seen.insert(a), "collision at bucket {heap} slot {slot}");
            }
        }
    }

    #[test]
    fn subtree_layout_is_dense() {
        // All buckets of a complete tree of 9 levels (bands of 3) must map
        // to a contiguous range starting at 0.
        let layout = SubtreeLayout::new(3, 1);
        let total_buckets = (1u64 << 9) - 1;
        let mut addrs: Vec<u64> =
            (1..=total_buckets).map(|h| layout.block_addr(h, 0)).collect();
        addrs.sort_unstable();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(*a, i as u64, "layout must be dense");
        }
    }

    #[test]
    fn buckets_of_one_subtree_are_contiguous() {
        let layout = SubtreeLayout::new(2, 2);
        // Band 1 subtree rooted at heap 4 contains buckets {4, 8, 9}.
        let addrs: Vec<u64> = [4u64, 8, 9]
            .iter()
            .map(|&h| layout.block_addr(h, 0) / 2)
            .collect();
        let min = *addrs.iter().min().unwrap();
        let max = *addrs.iter().max().unwrap();
        assert_eq!(max - min, 2, "subtree buckets span exactly 3 slots");
    }

    #[test]
    fn fit_to_row_packs_within_row() {
        let cfg = DramConfig::ddr3_1333(); // 8 KB rows
        let layout = SubtreeLayout::fit_to_row(&cfg, 5);
        // (2^(k+1)-1) * 320 <= 8192  →  k = 4 (15 buckets = 4800 B).
        assert_eq!(layout.subtree_levels(), 4);
    }

    #[test]
    fn path_touches_expected_subtree_count() {
        let k = 3;
        let layout = SubtreeLayout::new(k, 4);
        // Walk a root-to-leaf path of 12 levels; count distinct subtrees
        // (by address / blocks-per-subtree).
        let subtree_blocks = ((1u64 << k) - 1) * 4;
        let mut leaf_heap = 1u64 << 11; // leftmost leaf at level 11
        let mut path = Vec::new();
        while leaf_heap >= 1 {
            path.push(leaf_heap);
            if leaf_heap == 1 {
                break;
            }
            leaf_heap >>= 1;
        }
        let mut subtrees = std::collections::HashSet::new();
        for h in path {
            subtrees.insert(layout.block_addr(h, 0) / subtree_blocks);
        }
        assert_eq!(subtrees.len(), 4, "12 levels / 3 per subtree");
    }
}

//! Per-channel memory controller: transaction queue, FR-FCFS scheduling,
//! command generation under bank/rank/bus constraints, and refresh.
//!
//! The controller is *event-stepped* rather than ticked: it repeatedly
//! picks the best transaction (row hits first, then oldest), computes the
//! earliest legal issue time for its next command given all constraints,
//! and commits it. That keeps full-path ORAM workloads (hundreds of
//! transactions per access) fast to simulate while preserving the timing
//! interactions that matter: row-buffer locality, bank parallelism, bus
//! occupancy, tFAW, write turnaround and refresh.

use std::collections::VecDeque;


use crate::address::Location;
use crate::bank::{Bank, Command, RowState};
use crate::config::DramConfig;
use crate::energy::EnergyCounters;

/// A memory transaction: one 64-byte burst read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Caller-chosen identifier returned in the [`Completion`].
    pub id: u64,
    /// Decoded target location.
    pub loc: Location,
    /// `true` for writes.
    pub is_write: bool,
    /// Cycle (DRAM clock) at which the transaction enters the queue.
    pub arrival: i64,
}

/// A finished transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id given at submission.
    pub id: u64,
    /// Cycle at which the data burst completed (read data valid at the
    /// pins / write data fully transferred).
    pub finish: i64,
}

/// Cycle decomposition (DRAM clock) of one serviced transaction: where
/// the cycles between queue entry (`base = max(now, arrival)`) and the
/// data-burst finish went. The three components partition that interval
/// exactly: `queue + row + transfer == finish − base`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxBreakdown {
    /// Cycles waiting before/between row and column activity: bank
    /// readiness, refresh stalls, tRRD/tFAW spacing and data-bus
    /// back-pressure.
    pub queue: u64,
    /// Cycles spent on row operations (precharge on a conflict, then
    /// activate + tRCD). Zero for row-buffer hits.
    pub row: u64,
    /// CAS latency plus burst-transfer cycles.
    pub transfer: u64,
    /// Absolute finish time (DRAM clock) of the data burst.
    pub finish: i64,
}

/// Buckets of the dense per-channel queue-depth histogram (depths
/// `0..QUEUE_DEPTH_BUCKETS-1`, last bucket saturating).
pub const QUEUE_DEPTH_BUCKETS: usize = 65;

/// Point-in-time utilization snapshot of one channel, for profiling.
/// Counters are monotone, so a measured interval is the elementwise
/// [`ChannelUtilization::delta`] of two snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelUtilization {
    /// Scheduling statistics (reads/writes, row hit/miss/conflict, ...).
    pub stats: ChannelStats,
    /// Cycles the channel's data bus spent transferring bursts.
    pub busy_cycles: u64,
    /// Queue depth observed by each arriving transaction
    /// ([`QUEUE_DEPTH_BUCKETS`] dense buckets, last saturating).
    pub queue_depth_hist: Vec<u64>,
    /// Transactions serviced per bank (`[rank][bank]` flattened).
    pub bank_touches: Vec<u64>,
    /// Cycles each bank spent actively servicing (row operations plus
    /// column access and transfer), `[rank][bank]` flattened.
    pub bank_busy: Vec<u64>,
}

impl ChannelUtilization {
    /// Elementwise difference `self − base` (counters are monotone).
    pub fn delta(&self, base: &ChannelUtilization) -> ChannelUtilization {
        let sub = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter()
                .enumerate()
                .map(|(i, v)| v.saturating_sub(b.get(i).copied().unwrap_or(0)))
                .collect()
        };
        ChannelUtilization {
            stats: ChannelStats {
                reads: self.stats.reads - base.stats.reads,
                writes: self.stats.writes - base.stats.writes,
                row_hits: self.stats.row_hits - base.stats.row_hits,
                row_misses: self.stats.row_misses - base.stats.row_misses,
                row_conflicts: self.stats.row_conflicts - base.stats.row_conflicts,
                activates: self.stats.activates - base.stats.activates,
                precharges: self.stats.precharges - base.stats.precharges,
                refreshes: self.stats.refreshes - base.stats.refreshes,
            },
            busy_cycles: self.busy_cycles - base.busy_cycles,
            queue_depth_hist: sub(&self.queue_depth_hist, &base.queue_depth_hist),
            bank_touches: sub(&self.bank_touches, &base.bank_touches),
            bank_busy: sub(&self.bank_busy, &base.bank_busy),
        }
    }

    /// Fraction of serviced transactions that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.stats.row_hits + self.stats.row_misses + self.stats.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.stats.row_hits as f64 / total as f64
        }
    }

    /// Queue-depth quantile (`q` in `[0, 1]`) from the dense histogram.
    pub fn queue_depth_quantile(&self, q: f64) -> usize {
        let total: u64 = self.queue_depth_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (depth, &n) in self.queue_depth_hist.iter().enumerate() {
            seen += n;
            if seen >= target {
                return depth;
            }
        }
        self.queue_depth_hist.len() - 1
    }

    /// Deepest queue depth observed.
    pub fn queue_depth_max(&self) -> usize {
        self.queue_depth_hist.iter().rposition(|&n| n > 0).unwrap_or(0)
    }
}

/// Scheduling statistics for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced.
    pub writes: u64,
    /// Transactions that hit an open row.
    pub row_hits: u64,
    /// Transactions that required opening a row on an idle bank.
    pub row_misses: u64,
    /// Transactions that had to close another row first (conflicts).
    pub row_conflicts: u64,
    /// Activates issued.
    pub activates: u64,
    /// Precharges issued.
    pub precharges: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
}

/// One channel: banks, queue and data-bus state.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: DramConfig,
    banks: Vec<Vec<Bank>>, // [rank][bank]
    queue: VecDeque<Transaction>,
    /// Cycle after which the shared data bus is free.
    bus_free: i64,
    /// Recent activate times per rank (for tFAW / tRRD).
    recent_activates: Vec<VecDeque<i64>>,
    /// Next refresh deadline per rank.
    next_refresh: Vec<i64>,
    stats: ChannelStats,
    energy: EnergyCounters,
    /// Breakdown of the longest-finishing transaction since the last
    /// [`Channel::begin_batch`] (the batch's critical transaction).
    batch_crit: Option<TxBreakdown>,
    /// Data-bus burst occupancy accumulated over the run.
    busy_cycles: u64,
    /// Queue depth seen by each arriving transaction (dense, saturating).
    queue_depth_hist: [u64; QUEUE_DEPTH_BUCKETS],
    /// Transactions serviced per bank (`[rank][bank]` flattened).
    bank_touches: Vec<u64>,
    /// Active service cycles per bank (`[rank][bank]` flattened).
    bank_busy: Vec<u64>,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        Channel {
            banks: vec![vec![Bank::new(); cfg.banks]; cfg.ranks],
            queue: VecDeque::new(),
            bus_free: 0,
            recent_activates: vec![VecDeque::new(); cfg.ranks],
            next_refresh: vec![cfg.trefi as i64; cfg.ranks],
            stats: ChannelStats::default(),
            energy: EnergyCounters::default(),
            batch_crit: None,
            busy_cycles: 0,
            queue_depth_hist: [0; QUEUE_DEPTH_BUCKETS],
            bank_touches: vec![0; cfg.ranks * cfg.banks],
            bank_busy: vec![0; cfg.ranks * cfg.banks],
            cfg,
        }
    }

    /// Resets the batch-critical breakdown; subsequent [`Channel::drain`]
    /// calls record the decomposition of the longest-finishing
    /// transaction until the next reset.
    pub fn begin_batch(&mut self) {
        self.batch_crit = None;
    }

    /// Breakdown of the critical (longest-finishing) transaction serviced
    /// since the last [`Channel::begin_batch`], if any were serviced.
    pub fn batch_critical(&self) -> Option<TxBreakdown> {
        self.batch_crit
    }

    /// Utilization snapshot (allocates; intended for run boundaries, not
    /// the access hot path).
    pub fn utilization(&self) -> ChannelUtilization {
        ChannelUtilization {
            stats: self.stats,
            busy_cycles: self.busy_cycles,
            queue_depth_hist: self.queue_depth_hist.to_vec(),
            bank_touches: self.bank_touches.clone(),
            bank_busy: self.bank_busy.clone(),
        }
    }

    /// Queue depth.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Energy counters snapshot.
    pub fn energy(&self) -> EnergyCounters {
        self.energy
    }

    /// Enqueues a transaction.
    pub fn submit(&mut self, t: Transaction) {
        self.queue_depth_hist[self.queue.len().min(QUEUE_DEPTH_BUCKETS - 1)] += 1;
        self.queue.push_back(t);
    }

    /// Services the whole queue, returning completions in finish order.
    /// `now` lower-bounds all issue times.
    pub fn drain(&mut self, now: i64) -> Vec<Completion> {
        self.drain_with(now, true)
    }

    /// Like [`Channel::drain`], but when `occupy_bus` is `false` read
    /// bursts do not hold the shared data bus (models an in-memory XOR
    /// hub that consumes read data locally and returns a single block).
    pub fn drain_with(&mut self, now: i64, occupy_bus: bool) -> Vec<Completion> {
        let mut done = Vec::with_capacity(self.queue.len());
        self.drain_unordered(now, occupy_bus, |c| done.push(c));
        done.sort_by_key(|c| c.finish);
        done
    }

    /// Like [`Channel::drain_with`], but delivers completions through a
    /// callback in service order (not finish order) without allocating.
    /// This keeps the simulator's steady-state access loop off the heap.
    pub fn drain_unordered(
        &mut self,
        now: i64,
        occupy_bus: bool,
        mut sink: impl FnMut(Completion),
    ) {
        while !self.queue.is_empty() {
            let idx = self.pick_fr_fcfs();
            let t = self.queue.remove(idx).expect("index in range");
            let finish = self.service_one(&t, now, occupy_bus);
            sink(Completion { id: t.id, finish });
        }
    }

    /// FR-FCFS: the oldest transaction whose row is open wins; otherwise
    /// the oldest overall.
    fn pick_fr_fcfs(&self) -> usize {
        for (i, t) in self.queue.iter().enumerate() {
            let bank = &self.banks[t.loc.rank][t.loc.bank];
            if bank.is_open(t.loc.row) {
                return i;
            }
        }
        0
    }

    /// Issues all commands needed by `t` and returns its data-finish time.
    fn service_one(&mut self, t: &Transaction, now: i64, occupy_bus: bool) -> i64 {
        let cfg = self.cfg;
        let base = now.max(t.arrival);
        self.maybe_refresh(t.loc.rank, base);

        // Row-operation interval [row_start, row_end] for attribution:
        // empty on a row hit, precharge-to-column-ready on a conflict,
        // activate-to-column-ready on a miss.
        let mut row_start = base;
        let mut row_end = base;
        let bank_state = self.banks[t.loc.rank][t.loc.bank].state();
        match bank_state {
            RowState::Open(r) if r == t.loc.row => {
                self.stats.row_hits += 1;
            }
            RowState::Open(_) => {
                self.stats.row_conflicts += 1;
                let at = self.banks[t.loc.rank][t.loc.bank]
                    .earliest(Command::Precharge, &cfg)
                    .max(base);
                self.banks[t.loc.rank][t.loc.bank].issue(Command::Precharge, at, 0, &cfg);
                self.stats.precharges += 1;
                self.energy.precharges += 1;
                self.activate(t.loc, base);
                row_start = at;
                row_end = self.banks[t.loc.rank][t.loc.bank].row_ready(&cfg);
            }
            RowState::Idle => {
                self.stats.row_misses += 1;
                let act_at = self.activate(t.loc, base);
                row_start = act_at;
                row_end = self.banks[t.loc.rank][t.loc.bank].row_ready(&cfg);
            }
        }

        // Column command: constrained by bank readiness and bus occupancy.
        let cmd = if t.is_write { Command::Write } else { Command::Read };
        let bank_ready = self.banks[t.loc.rank][t.loc.bank].earliest(cmd, &cfg).max(base);
        // The data burst occupies the bus [issue+latency, issue+latency+burst).
        let latency = if t.is_write { cfg.cwl } else { cfg.cl } as i64;
        let use_bus = occupy_bus || t.is_write;
        let issue = if use_bus {
            bank_ready.max(self.bus_free - latency)
        } else {
            bank_ready
        };
        self.banks[t.loc.rank][t.loc.bank].issue(cmd, issue, t.loc.row, &cfg);
        let data_start = issue + latency;
        let finish = data_start + cfg.burst_cycles() as i64;
        if use_bus {
            self.bus_free = finish;
            self.busy_cycles += cfg.burst_cycles();
        }

        // Exact decomposition of [base, finish]: row cycles are the part
        // of the row interval the column command actually waited behind;
        // everything else before issue is queueing.
        let row_d = row_end.min(issue).saturating_sub(row_start.max(base)).max(0) as u64;
        let queue_d = (issue - base) as u64 - row_d;
        let transfer_d = (finish - issue) as u64;
        let bd = TxBreakdown { queue: queue_d, row: row_d, transfer: transfer_d, finish };
        if self.batch_crit.is_none_or(|c| finish > c.finish) {
            self.batch_crit = Some(bd);
        }
        let flat = t.loc.rank * cfg.banks + t.loc.bank;
        self.bank_touches[flat] += 1;
        self.bank_busy[flat] += row_d + transfer_d;

        if t.is_write {
            self.stats.writes += 1;
            self.energy.write_bursts += 1;
        } else {
            self.stats.reads += 1;
            self.energy.read_bursts += 1;
        }
        self.energy.busy_until = self.energy.busy_until.max(finish);
        finish
    }

    /// Issues an activate respecting tRRD and tFAW for the rank, returning
    /// the cycle the activate was committed at.
    fn activate(&mut self, loc: Location, base: i64) -> i64 {
        let cfg = self.cfg;
        let mut at = self.banks[loc.rank][loc.bank]
            .earliest(Command::Activate, &cfg)
            .max(base);
        {
            let recent = &mut self.recent_activates[loc.rank];
            if let Some(&last) = recent.back() {
                at = at.max(last + cfg.trrd as i64);
            }
            if recent.len() >= 4 {
                let fourth_last = recent[recent.len() - 4];
                at = at.max(fourth_last + cfg.tfaw as i64);
            }
        }
        self.banks[loc.rank][loc.bank].issue(Command::Activate, at, loc.row, &cfg);
        let recent = &mut self.recent_activates[loc.rank];
        recent.push_back(at);
        if recent.len() > 8 {
            recent.pop_front();
        }
        self.stats.activates += 1;
        self.energy.activates += 1;
        at
    }

    /// Performs any due refreshes for `rank` before `now` by stalling the
    /// whole rank for tRFC (all-bank refresh; rows must be precharged).
    fn maybe_refresh(&mut self, rank: usize, now: i64) {
        if self.cfg.trefi == 0 {
            return;
        }
        while self.next_refresh[rank] <= now {
            let deadline = self.next_refresh[rank];
            // Precharge any open banks in the rank.
            for b in 0..self.cfg.banks {
                if self.banks[rank][b].state() != RowState::Idle {
                    let at = self.banks[rank][b]
                        .earliest(Command::Precharge, &self.cfg)
                        .max(deadline);
                    self.banks[rank][b].issue(Command::Precharge, at, 0, &self.cfg);
                    self.stats.precharges += 1;
                    self.energy.precharges += 1;
                }
            }
            // The whole rank is unavailable for tRFC.
            let resume = deadline + self.cfg.trfc as i64;
            for b in 0..self.cfg.banks {
                self.banks[rank][b].stall_until(resume, &self.cfg);
            }
            self.stats.refreshes += 1;
            self.energy.refreshes += 1;
            self.next_refresh[rank] += self.cfg.trefi as i64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{AddressMapping, Interleave};

    fn cfg() -> DramConfig {
        let mut c = DramConfig::ddr3_1333();
        c.trefi = 0; // deterministic tests without refresh
        c
    }

    fn tx(id: u64, addr: u64, write: bool, cfg: &DramConfig) -> Transaction {
        let m = AddressMapping::new(cfg, Interleave::RowRankBankColChan);
        Transaction { id, loc: m.decode(addr), is_write: write, arrival: 0 }
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let c = cfg();
        let mut ch = Channel::new(c);
        ch.submit(tx(1, 0, false, &c));
        let done = ch.drain(0);
        assert_eq!(done.len(), 1);
        let expect = (c.trcd + c.cl + c.burst_cycles()) as i64;
        assert_eq!(done[0].finish, expect);
        assert_eq!(ch.stats().row_misses, 1);
    }

    #[test]
    fn row_hits_stream_at_bus_rate() {
        let c = cfg();
        let mut ch = Channel::new(c);
        // Same row: columns 0..8 on channel 0 (addresses step by
        // channels to stay on channel 0's row).
        for i in 0..8u64 {
            ch.submit(tx(i, i * c.channels as u64, false, &c));
        }
        let done = ch.drain(0);
        assert_eq!(ch.stats().row_hits, 7);
        // After the first access, consecutive bursts complete every
        // burst_cycles (bus-limited streaming).
        let gaps: Vec<i64> = done.windows(2).map(|w| w[1].finish - w[0].finish).collect();
        assert!(gaps.iter().all(|&g| g == c.burst_cycles() as i64), "{gaps:?}");
    }

    #[test]
    fn row_conflict_pays_precharge_plus_activate() {
        let c = cfg();
        let mut ch = Channel::new(c);
        ch.submit(tx(1, 0, false, &c));
        // Same bank, different row: bursts_per_row*banks*ranks apart in
        // column-major decode; easier to construct via decode probing.
        let m = AddressMapping::new(&c, Interleave::RowRankBankColChan);
        let base = m.decode(0);
        let mut conflict_addr = None;
        for a in 1..1_000_000u64 {
            let l = m.decode(a);
            if l.channel == base.channel
                && l.rank == base.rank
                && l.bank == base.bank
                && l.row != base.row
            {
                conflict_addr = Some(a);
                break;
            }
        }
        ch.submit(tx(2, conflict_addr.unwrap(), false, &c));
        let done = ch.drain(0);
        assert_eq!(ch.stats().row_conflicts, 1);
        // Second access must wait ≥ tRAS + tRP after the first activate.
        let min_second = (c.tras + c.trp + c.trcd + c.cl + c.burst_cycles()) as i64;
        assert!(done[1].finish >= min_second, "{} < {min_second}", done[1].finish);
    }

    #[test]
    fn bank_parallelism_beats_serial_access() {
        let c = cfg();
        // Two different banks: overlap activates.
        let m = AddressMapping::new(&c, Interleave::RowRankBankColChan);
        let mut other_bank = None;
        let base = m.decode(0);
        for a in 1..1_000_000u64 {
            let l = m.decode(a);
            if l.channel == base.channel && (l.bank != base.bank || l.rank != base.rank) {
                other_bank = Some(a);
                break;
            }
        }
        let mut ch = Channel::new(c);
        ch.submit(tx(1, 0, false, &c));
        ch.submit(tx(2, other_bank.unwrap(), false, &c));
        let done = ch.drain(0);
        let serial = 2 * (c.trcd + c.cl + c.burst_cycles()) as i64;
        assert!(done[1].finish < serial, "no overlap: {}", done[1].finish);
    }

    #[test]
    fn fr_fcfs_prefers_open_rows() {
        let c = cfg();
        let m = AddressMapping::new(&c, Interleave::RowRankBankColChan);
        let mut ch = Channel::new(c);
        // t1 opens row R; t2 conflicts (same bank, other row); t3 hits R.
        let base = m.decode(0);
        let mut conflict = None;
        for a in 1..1_000_000u64 {
            let l = m.decode(a);
            if l.channel == base.channel
                && l.rank == base.rank
                && l.bank == base.bank
                && l.row != base.row
            {
                conflict = Some(a);
                break;
            }
        }
        ch.submit(tx(1, 0, false, &c));
        ch.submit(tx(2, conflict.unwrap(), false, &c));
        ch.submit(tx(3, c.channels as u64, false, &c)); // same row as t1
        let done = ch.drain(0);
        let order: Vec<u64> = done.iter().map(|d| d.id).collect();
        assert_eq!(order, vec![1, 3, 2], "row hit t3 bypasses conflicting t2");
    }

    #[test]
    fn writes_then_reads_respect_turnaround() {
        let c = cfg();
        let mut ch = Channel::new(c);
        ch.submit(tx(1, 0, true, &c));
        ch.submit(tx(2, c.channels as u64, false, &c)); // same row read
        let done = ch.drain(0);
        assert_eq!(ch.stats().writes, 1);
        assert_eq!(ch.stats().reads, 1);
        assert!(done[1].finish > done[0].finish);
    }

    #[test]
    fn breakdown_partitions_service_time_exactly() {
        let c = cfg();
        let mut ch = Channel::new(c);
        ch.begin_batch();
        assert!(ch.batch_critical().is_none());
        ch.submit(tx(1, 0, false, &c));
        ch.submit(tx(2, c.channels as u64, false, &c)); // same-row hit
        let done = ch.drain(0);
        let crit = ch.batch_critical().expect("batch serviced");
        let last = done.iter().map(|d| d.finish).max().unwrap();
        assert_eq!(crit.finish, last, "critical transaction is the longest-finishing");
        assert_eq!(
            crit.queue + crit.row + crit.transfer,
            crit.finish as u64,
            "components partition [base, finish] exactly"
        );
        ch.begin_batch();
        assert!(ch.batch_critical().is_none(), "begin_batch resets");
    }

    #[test]
    fn utilization_counters_accumulate_and_delta() {
        let c = cfg();
        let mut ch = Channel::new(c);
        let before = ch.utilization();
        for i in 0..4u64 {
            ch.submit(tx(i, i * c.channels as u64, false, &c));
        }
        ch.drain(0);
        let d = ch.utilization().delta(&before);
        assert_eq!(d.stats.reads, 4);
        assert_eq!(d.busy_cycles, 4 * c.burst_cycles());
        // Queue depth is sampled at arrival: depths 0, 1, 2, 3.
        assert_eq!(d.queue_depth_hist.iter().sum::<u64>(), 4);
        assert_eq!(d.queue_depth_max(), 3);
        assert_eq!(d.queue_depth_quantile(0.5), 1);
        assert_eq!(d.bank_touches.iter().sum::<u64>(), 4);
        assert!(d.bank_busy.iter().sum::<u64>() > 0);
        // Three of four accesses hit the open row.
        assert!((d.row_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn refresh_inserts_stall() {
        let mut c = DramConfig::ddr3_1333();
        c.trefi = 100;
        c.trfc = 50;
        let mut ch = Channel::new(c);
        // Arrival after two refresh intervals.
        let m = AddressMapping::new(&c, Interleave::RowRankBankColChan);
        ch.submit(Transaction { id: 1, loc: m.decode(0), is_write: false, arrival: 250 });
        let done = ch.drain(0);
        assert!(ch.stats().refreshes >= 2);
        // Finish must be at least after the last refresh window + access.
        assert!(done[0].finish >= 250 + (c.trcd + c.cl + c.burst_cycles()) as i64);
    }
}

//! Dependency-free exporters over a [`LivePlane`] snapshot: Prometheus
//! text exposition format 0.0.4 (`/metrics`), the SLO burn JSON
//! (`/slo`), the health JSON (`/healthz`), and the `repro top` terminal
//! panel.
//!
//! The render is a pure function of plane state with a fixed family
//! order and stable metric/label names, so a drained deterministic run
//! produces a byte-identical scrape — which is what lets CI diff a live
//! scrape against a seeded baseline.

use oram_util::ServeClass;

use crate::plane::{LivePlane, CLASSES, PHASE_NAMES};
use crate::sketch::QuantileSketch;

/// Formats an `f64` the way the exposition format expects (fixed
/// six-digit precision keeps renders byte-stable across platforms).
fn f(v: f64) -> String {
    format!("{v:.6}")
}

fn class_name(k: usize) -> &'static str {
    match k {
        0 => ServeClass::Stash.name(),
        1 => ServeClass::Treetop.name(),
        2 => ServeClass::DramReal.name(),
        3 => ServeClass::DramShadow.name(),
        4 => ServeClass::Fresh.name(),
        _ => ServeClass::Dummy.name(),
    }
}

fn summary(out: &mut String, name: &str, labels: &str, s: &QuantileSketch) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (q, qs) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
        out.push_str(&format!(
            "{name}{{{labels}{sep}quantile=\"{qs}\"}} {}\n",
            s.quantile(q)
        ));
    }
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", s.sum()));
    out.push_str(&format!("{name}_count{{{labels}}} {}\n", s.count()));
}

fn head(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Renders the full `/metrics` page for a plane snapshot.
pub fn render_prometheus(p: &LivePlane) -> String {
    let mut out = String::with_capacity(8 * 1024);
    let t = p.total();

    head(&mut out, "oram_requests_completed_total", "counter", "Requests completed by the service layer.");
    out.push_str(&format!("oram_requests_completed_total {}\n", t.completed));
    head(&mut out, "oram_requests_rejected_total", "counter", "Requests rejected by admission control.");
    out.push_str(&format!("oram_requests_rejected_total {}\n", t.rejected));
    head(&mut out, "oram_requests_coalesced_total", "counter", "Completions that rode an MSHR leader.");
    out.push_str(&format!("oram_requests_coalesced_total {}\n", t.coalesced));

    head(
        &mut out,
        "oram_latency_cycles",
        "summary",
        "End-to-end request latency in CPU cycles (cumulative sketch; relative error <= 1/16).",
    );
    summary(&mut out, "oram_latency_cycles", "", &t.latency);

    head(
        &mut out,
        "oram_window_latency_cycles",
        "gauge",
        "Request latency quantiles over the most recently closed window.",
    );
    if let Some(w) = p.last_closed() {
        for (q, qs) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
            out.push_str(&format!(
                "oram_window_latency_cycles{{quantile=\"{qs}\"}} {}\n",
                w.latency.quantile(q)
            ));
        }
    }

    head(&mut out, "oram_tenant_requests_total", "counter", "Completions per tenant.");
    for i in 0..p.config().tenants {
        out.push_str(&format!("oram_tenant_requests_total{{tenant=\"{i}\"}} {}\n", t.tenant_completed[i]));
    }
    head(&mut out, "oram_tenant_rejected_total", "counter", "Rejections per tenant.");
    for i in 0..p.config().tenants {
        out.push_str(&format!("oram_tenant_rejected_total{{tenant=\"{i}\"}} {}\n", t.tenant_rejected[i]));
    }
    head(
        &mut out,
        "oram_tenant_latency_cycles",
        "summary",
        "Per-tenant end-to-end latency in CPU cycles (cumulative sketch).",
    );
    for i in 0..p.config().tenants {
        summary(
            &mut out,
            "oram_tenant_latency_cycles",
            &format!("tenant=\"{i}\""),
            p.tenant_latency(i),
        );
    }

    head(&mut out, "oram_shard_requests_total", "counter", "Completions per shard (addr mod M routing).");
    for i in 0..p.config().shards {
        out.push_str(&format!("oram_shard_requests_total{{shard=\"{i}\"}} {}\n", t.shard_completed[i]));
    }

    head(&mut out, "oram_class_requests_total", "counter", "Completions per serve class.");
    for k in 0..CLASSES {
        out.push_str(&format!(
            "oram_class_requests_total{{class=\"{}\"}} {}\n",
            class_name(k),
            t.class_completed[k]
        ));
    }

    head(
        &mut out,
        "oram_phase_cycles_total",
        "counter",
        "Cycles attributed per backend phase (Eq. 1 components).",
    );
    for (name, cycles) in PHASE_NAMES.iter().zip(t.phase_cycles.iter()) {
        out.push_str(&format!("oram_phase_cycles_total{{phase=\"{name}\"}} {cycles}\n"));
    }

    head(
        &mut out,
        "oram_plb_events_total",
        "counter",
        "Posmap lookaside buffer events (all zero under a flat posmap).",
    );
    let (plb_hits, plb_misses, plb_evictions) = p.plb_totals();
    out.push_str(&format!("oram_plb_events_total{{event=\"hit\"}} {plb_hits}\n"));
    out.push_str(&format!("oram_plb_events_total{{event=\"miss\"}} {plb_misses}\n"));
    out.push_str(&format!("oram_plb_events_total{{event=\"evict\"}} {plb_evictions}\n"));

    head(&mut out, "oram_stash_occupancy_peak", "gauge", "Peak live stash occupancy observed.");
    out.push_str(&format!("oram_stash_occupancy_peak {}\n", p.stash_peak()));

    head(
        &mut out,
        "oram_eq1_residual_ppm",
        "gauge",
        "Worst Eq. 1 window residual observed, ppm of window width.",
    );
    out.push_str(&format!("oram_eq1_residual_ppm {}\n", p.eq1_worst_residual_ppm()));

    head(
        &mut out,
        "oram_slo_burn_fast",
        "gauge",
        "Error-budget burn rate over the last closed window (1.0 = on budget).",
    );
    for (i, slo) in p.config().slos.iter().enumerate() {
        out.push_str(&format!("oram_slo_burn_fast{{slo=\"{}\"}} {}\n", slo.name, f(p.burn(i).fast)));
    }
    head(
        &mut out,
        "oram_slo_burn_slow",
        "gauge",
        "Error-budget burn rate over the last 12 closed windows.",
    );
    for (i, slo) in p.config().slos.iter().enumerate() {
        out.push_str(&format!("oram_slo_burn_slow{{slo=\"{}\"}} {}\n", slo.name, f(p.burn(i).slow)));
    }

    head(&mut out, "oram_alerts_total", "counter", "Alert raise edges by kind.");
    for kind in [
        crate::slo::AlertKind::SloBurn,
        crate::slo::AlertKind::StashPressure,
        crate::slo::AlertKind::RejectionKnee,
        crate::slo::AlertKind::Eq1Residual,
    ] {
        out.push_str(&format!(
            "oram_alerts_total{{kind=\"{}\"}} {}\n",
            kind.name(),
            p.alert_count(kind)
        ));
    }

    head(&mut out, "oram_windows_closed_total", "counter", "Aggregation windows closed.");
    out.push_str(&format!("oram_windows_closed_total {}\n", p.closed_windows()));
    head(&mut out, "oram_engine_windows_total", "counter", "Engine time-series windows observed.");
    out.push_str(&format!("oram_engine_windows_total {}\n", p.engine_windows()));
    head(&mut out, "oram_events_dropped_total", "counter", "Structured events dropped after the buffer filled.");
    out.push_str(&format!("oram_events_dropped_total {}\n", p.events_dropped()));
    out
}

/// Renders the `/slo` JSON: burn state per objective plus the tail of
/// the structured event stream.
pub fn render_slo_json(p: &LivePlane) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"objectives\":[");
    for (i, slo) in p.config().slos.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let b = p.burn(i);
        let kind = match slo.kind {
            crate::slo::SloKind::LatencyAbove { threshold_cycles } => {
                format!("{{\"latency_above_cycles\":{threshold_cycles}}}")
            }
            crate::slo::SloKind::Rejection => "\"rejection\"".to_string(),
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"kind\":{kind},\"budget\":{},\"burn_fast\":{},\"burn_slow\":{},\"breached\":{}}}",
            slo.name,
            f(slo.budget),
            f(b.fast),
            f(b.slow),
            b.breached
        ));
    }
    out.push_str("],\"events\":[");
    let events = p.events();
    let tail = events.len().saturating_sub(64);
    for (i, ev) in events[tail..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = p.config().slos.get(ev.slo as usize).map(|s| s.name.as_str());
        out.push_str(&ev.to_json(name));
    }
    out.push_str(&format!(
        "],\"events_dropped\":{},\"windows_closed\":{}}}",
        p.events_dropped(),
        p.closed_windows()
    ));
    out
}

/// Renders the `/healthz` JSON.
pub fn render_healthz(p: &LivePlane) -> String {
    let breached = (0..p.config().slos.len()).any(|i| p.burn(i).breached);
    format!(
        "{{\"status\":\"{}\",\"windows_closed\":{},\"requests_completed\":{},\"alerts\":{}}}",
        if breached { "degraded" } else { "ok" },
        p.closed_windows(),
        p.total().completed,
        p.events().len()
    )
}

/// Renders the `repro top` terminal panel: cumulative and last-window
/// aggregates, per-tenant lines, burn rates and recent alerts.
pub fn render_top(p: &LivePlane) -> String {
    let mut out = String::with_capacity(1024);
    let t = p.total();
    let offered = t.completed + t.rejected;
    out.push_str(&format!(
        "repro top · window {} · {} completed / {} offered · {} rejected · stash peak {}\n",
        p.open_window().index,
        t.completed,
        offered,
        t.rejected,
        p.stash_peak()
    ));
    out.push_str(&format!(
        "  latency cycles: p50 {}  p99 {}  p99.9 {}  max {}\n",
        t.latency.quantile(0.5),
        t.latency.quantile(0.99),
        t.latency.quantile(0.999),
        t.latency.max()
    ));
    if let Some(w) = p.last_closed() {
        let rate = w.completed as f64 / (p.config().window_cycles as f64 / 1_000_000.0);
        out.push_str(&format!(
            "  last window: {} done  {} rejected  p99 {}  ({:.1} req/Mcyc)\n",
            w.completed,
            w.rejected,
            w.latency.quantile(0.99),
            rate
        ));
    }
    for (i, slo) in p.config().slos.iter().enumerate() {
        let b = p.burn(i);
        out.push_str(&format!(
            "  slo {:<14} burn fast {:>8}  slow {:>8}{}\n",
            slo.name,
            f(b.fast),
            f(b.slow),
            if b.breached { "  BREACHED" } else { "" }
        ));
    }
    for i in 0..p.config().tenants {
        let s = p.tenant_latency(i);
        out.push_str(&format!(
            "  tenant {i}: {} done  {} rejected  p99 {}\n",
            t.tenant_completed[i],
            t.tenant_rejected[i],
            s.quantile(0.99)
        ));
    }
    let events = p.events();
    for ev in events.iter().rev().take(3).rev() {
        out.push_str(&format!(
            "  alert {} window {} value {} threshold {}\n",
            ev.kind.name(),
            ev.window_index,
            ev.value,
            ev.threshold
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::LiveConfig;
    use crate::slo::SloSpec;
    use oram_util::LiveObserver;

    fn filled_plane() -> LivePlane {
        let mut p = LivePlane::new(LiveConfig {
            window_cycles: 1_000,
            tenants: 2,
            shards: 2,
            stash_bound: 100,
            slos: SloSpec::default_set(500),
            event_capacity: 64,
        });
        for i in 0..5_000u64 {
            p.request_complete(
                i * 13,
                (i % 2) as u32,
                (i % 2) as u32,
                ServeClass::DramReal,
                200 + i % 900,
                false,
            );
        }
        p.flush();
        p
    }

    #[test]
    fn prometheus_render_is_well_formed() {
        let p = filled_plane();
        let text = render_prometheus(&p);
        // Every family carries HELP and TYPE; every sample line parses as
        // name{labels} value.
        let mut families = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                families += 1;
                let name = rest.split(' ').next().unwrap();
                assert!(
                    text.contains(&format!("# TYPE {name} ")),
                    "family {name} missing TYPE"
                );
            } else if !line.starts_with('#') {
                let (metric, value) = line.rsplit_once(' ').expect("sample line");
                assert!(metric.starts_with("oram_"), "bad metric {metric}");
                value.parse::<f64>().expect("numeric value");
            }
        }
        assert!(families >= 15, "expected a full family set, got {families}");
        assert!(text.contains("oram_latency_cycles{quantile=\"0.999\"}"));
        assert!(text.contains("oram_phase_cycles_total{phase=\"network\"}"));
        assert!(text.contains("oram_phase_cycles_total{phase=\"posmap\"}"));
        assert!(text.contains("oram_plb_events_total{event=\"hit\"}"));
    }

    #[test]
    fn render_is_deterministic() {
        let a = render_prometheus(&filled_plane());
        let b = render_prometheus(&filled_plane());
        assert_eq!(a, b);
        assert_eq!(render_slo_json(&filled_plane()), render_slo_json(&filled_plane()));
    }

    #[test]
    fn slo_and_healthz_json_are_valid_shape() {
        let p = filled_plane();
        let slo = render_slo_json(&p);
        assert!(slo.starts_with('{') && slo.ends_with('}'));
        assert!(slo.contains("\"objectives\":["));
        assert!(slo.contains("latency_p999"));
        let h = render_healthz(&p);
        assert!(h.contains("\"status\":\"ok\"") || h.contains("\"status\":\"degraded\""));
    }

    #[test]
    fn top_panel_mentions_tenants_and_quantiles() {
        let p = filled_plane();
        let top = render_top(&p);
        assert!(top.contains("p99.9"));
        assert!(top.contains("tenant 0:"));
        assert!(top.contains("slo latency_p99"));
    }
}

//! A fixed-memory, dependency-free online quantile sketch.
//!
//! Log-linear bucketing (HDR-histogram style): values below 16 get one
//! bucket each (exact); above that, every power-of-two range is split
//! into 16 linear sub-buckets, so a bucket spanning `[lo, lo + w)` has
//! `w ≤ lo/16`. Reported quantiles interpolate linearly inside the
//! bucket and are clamped to the observed `[min, max]`, giving a
//! **relative error ≤ 1/16 = 6.25%** on any quantile (exact for values
//! < 16). Everything is a flat `u64` array: `record` is O(1), never
//! allocates, and the whole sketch is ~8 KiB.

/// Linear sub-buckets per power-of-two range, as a bit count.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two range (16).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count: 16 exact small-value buckets plus 16 per
/// power-of-two range for exponents 4..=63.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// An online quantile sketch over `u64` samples. See the module docs
/// for the bucketing scheme and error bound.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for value `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let k = 63 - v.leading_zeros(); // k ≥ SUB_BITS
        let mantissa = (v >> (k - SUB_BITS)) as usize; // in [16, 32)
        (k - SUB_BITS + 1) as usize * SUB_BUCKETS + (mantissa - SUB_BUCKETS)
    }
}

/// Inclusive lower bound of bucket `i` (the smallest value mapping to it).
#[inline]
fn bucket_lower(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let k = (i / SUB_BUCKETS - 1) as u32 + SUB_BITS;
        let m = (i % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + m) << (k - SUB_BITS)
    }
}

/// Width of bucket `i` (number of distinct values mapping to it).
#[inline]
fn bucket_width(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        1
    } else {
        let k = (i / SUB_BUCKETS - 1) as u32 + SUB_BITS;
        1u64 << (k - SUB_BITS)
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. O(1), no allocation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) with linear interpolation
    /// inside the landing bucket, clamped to `[min, max]`. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank among `count` samples, nearest-rank style with
        // intra-bucket interpolation.
        let target = q * (self.count - 1) as f64;
        let mut cum = 0u64;
        for i in 0..NUM_BUCKETS {
            let c = self.buckets[i];
            if c == 0 {
                continue;
            }
            // Ranks [cum, cum + c) live in this bucket.
            if target < (cum + c) as f64 {
                let frac = if c == 1 {
                    0.5
                } else {
                    (target - cum as f64) / (c - 1) as f64
                };
                let w = bucket_width(i);
                let est = bucket_lower(i) as f64 + frac * (w - 1) as f64;
                let v = est.round() as u64;
                return v.clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Adds every sample of `other` into `self`. No allocation.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for i in 0..NUM_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Copies `other` into `self` wholesale. No allocation.
    pub fn copy_from(&mut self, other: &QuantileSketch) {
        self.buckets.copy_from_slice(&other.buckets[..]);
        self.count = other.count;
        self.sum = other.sum;
        self.min = other.min;
        self.max = other.max;
    }

    /// Resets to empty. No allocation.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_util::Rng64;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for shift in 0..64u32 {
            for off in [0u64, 1, 7] {
                let v = (1u64 << shift).saturating_add(off.min((1u64 << shift) - 1));
                let i = bucket_index(v);
                assert!(i < NUM_BUCKETS, "v={v} i={i}");
                assert!(i >= prev, "index not monotone at v={v}");
                prev = i;
                // Round trip: v lands inside [lower, lower + width).
                let lo = bucket_lower(i);
                let w = bucket_width(i);
                assert!(v >= lo && v < lo + w, "v={v} lo={lo} w={w}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..16u64 {
            s.record(v);
        }
        // With one sample per unit bucket, the rank walk floors the
        // fractional target rank — still exact to within one unit.
        for q in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            let exact = (q * 15.0).floor() as u64;
            assert_eq!(s.quantile(q), exact, "q={q}");
        }
    }

    /// The documented bound: every quantile estimate within 1/16
    /// relative error of the exact sample quantile.
    #[test]
    fn quantiles_match_exact_within_documented_error() {
        let mut rng = Rng64::seed_from_u64(0x0b5e);
        let mut s = QuantileSketch::new();
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..50_000 {
            // Log-uniform-ish heavy-tailed sample mix.
            let mag = rng.below(20) + 2;
            let v = rng.next_u64() & ((1u64 << mag) - 1);
            s.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let idx = ((q * (exact.len() - 1) as f64).round() as usize).min(exact.len() - 1);
            let want = exact[idx] as f64;
            let got = s.quantile(q) as f64;
            let err = (got - want).abs() / want.max(1.0);
            assert!(err <= 1.0 / 16.0 + 1e-9, "q={q} want={want} got={got} err={err}");
        }
        assert_eq!(s.count(), 50_000);
        assert_eq!(s.sum(), exact.iter().sum::<u64>());
        assert_eq!(s.min(), exact[0]);
        assert_eq!(s.max(), *exact.last().unwrap());
    }

    /// Property: for seeded random partitions of a heavy-tailed stream
    /// into k parts, merging the per-part sketches is exactly equivalent
    /// to recording the whole stream into one sketch — every aggregate
    /// and every quantile. This is what the soak harness's per-tenant
    /// rollups rely on.
    #[test]
    fn merge_of_random_partitions_equals_whole() {
        let mut rng = Rng64::seed_from_u64(0xF00D);
        for case in 0..8u64 {
            let parts_n = 2 + (case % 4) as usize;
            let mut parts: Vec<QuantileSketch> =
                (0..parts_n).map(|_| QuantileSketch::new()).collect();
            let mut whole = QuantileSketch::new();
            let n = 2_000 + case * 777;
            for _ in 0..n {
                let mag = rng.below(30) + 1;
                let v = rng.next_u64() & ((1u64 << mag) - 1);
                let p = rng.below(parts_n as u64) as usize;
                parts[p].record(v);
                whole.record(v);
            }
            let mut merged = QuantileSketch::new();
            for p in &parts {
                merged.merge(p);
            }
            assert_eq!(merged.count(), whole.count(), "case {case}");
            assert_eq!(merged.sum(), whole.sum(), "case {case}");
            assert_eq!(merged.min(), whole.min(), "case {case}");
            assert_eq!(merged.max(), whole.max(), "case {case}");
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(merged.quantile(q), whole.quantile(q), "case {case} q={q}");
            }
        }
    }

    /// Property: the documented 1/16 relative-error bound survives
    /// merging — quantiles of a sketch assembled from shard merges stay
    /// within the bound of the exact combined sample.
    #[test]
    fn merge_preserves_documented_error_bound() {
        let mut rng = Rng64::seed_from_u64(0xB0B);
        let mut exact: Vec<u64> = Vec::new();
        let mut shards: Vec<QuantileSketch> = (0..5).map(|_| QuantileSketch::new()).collect();
        for i in 0..40_000u64 {
            let mag = rng.below(22) + 2;
            let v = rng.next_u64() & ((1u64 << mag) - 1);
            shards[(i % 5) as usize].record(v);
            exact.push(v);
        }
        let mut merged = QuantileSketch::new();
        for s in &shards {
            merged.merge(s);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let idx = ((q * (exact.len() - 1) as f64).round() as usize).min(exact.len() - 1);
            let want = exact[idx] as f64;
            let got = merged.quantile(q) as f64;
            let err = (got - want).abs() / want.max(1.0);
            assert!(err <= 1.0 / 16.0 + 1e-9, "q={q} want={want} got={got} err={err}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for i in 0..10_000u64 {
            let v = rng.below(1_000_000);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.quantile(0.99), all.quantile(0.99));
        let mut c = QuantileSketch::new();
        c.copy_from(&all);
        assert_eq!(c.quantile(0.5), all.quantile(0.5));
        c.reset();
        assert_eq!(c.count(), 0);
        assert_eq!(c.quantile(0.5), 0);
    }
}

//! Declarative service-level objectives and the structured alert
//! events the plane emits when they burn.
//!
//! ## Burn-rate math
//!
//! An objective declares a *budget*: the fraction of events allowed to
//! be bad (latency above a threshold, or any rejection). The **burn
//! rate** over a span is
//!
//! ```text
//! burn = (bad / total) / budget
//! ```
//!
//! 1.0 means the error budget is being consumed exactly at its
//! sustainable rate; 2.0 means it will be exhausted in half the
//! intended period. The plane computes burn over two spans at every
//! window close — **fast** (the last window) and **slow** (the last 12
//! windows) — and raises an alert only when the fast rate exceeds
//! [`crate::plane::FAST_BURN_THRESHOLD`] *and* the slow rate exceeds
//! [`crate::plane::SLOW_BURN_THRESHOLD`]: the classic multi-window
//! guard against paging on a single noisy window while still catching
//! sustained overspend quickly.

/// Maximum objectives a plane tracks (fixed arrays on the hot path).
pub const MAX_SLOS: usize = 8;

/// What makes an event "bad" for an objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// A completion is bad when its end-to-end latency exceeds the
    /// threshold.
    LatencyAbove {
        /// Bad-latency threshold in CPU cycles.
        threshold_cycles: u64,
    },
    /// Every rejection is bad; total counts completions + rejections.
    Rejection,
}

/// One declared objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable name (a Prometheus label value — keep it label-safe).
    pub name: String,
    /// Bad-event predicate.
    pub kind: SloKind,
    /// Allowed bad fraction (e.g. `0.001` = 99.9% of events good).
    pub budget: f64,
}

impl SloSpec {
    /// The default objective set for a serve run, with latency
    /// thresholds scaled to the workload's base inter-arrival gap:
    /// p99-class latency under 2 gaps, p99.9-class latency under 6
    /// gaps, and rejections under 0.5%.
    pub fn default_set(base_gap_cycles: u64) -> Vec<SloSpec> {
        let gap = base_gap_cycles.max(1);
        vec![
            SloSpec {
                name: "latency_p99".to_string(),
                kind: SloKind::LatencyAbove { threshold_cycles: 2 * gap },
                budget: 0.01,
            },
            SloSpec {
                name: "latency_p999".to_string(),
                kind: SloKind::LatencyAbove { threshold_cycles: 6 * gap },
                budget: 0.001,
            },
            SloSpec { name: "rejections".to_string(), kind: SloKind::Rejection, budget: 0.005 },
        ]
    }
}

/// Parses a JSON SLO spec file into objectives, replacing the
/// hard-coded [`SloSpec::default_set`]. The expected shape:
///
/// ```json
/// {"slos": [
///   {"name": "latency_p99", "kind": "latency_above",
///    "threshold_cycles": 50000, "budget": 0.01},
///   {"name": "rejections", "kind": "rejection", "budget": 0.005}
/// ]}
/// ```
///
/// # Errors
///
/// Returns a one-line description of the first problem found (the CLI
/// prints it verbatim and exits with the usage code).
pub fn parse_slo_spec(text: &str) -> Result<Vec<SloSpec>, String> {
    use oram_telemetry::json::{self, Value};
    let doc = json::parse(text).map_err(|e| format!("slo spec: {e}"))?;
    let arr = doc
        .get("slos")
        .and_then(Value::as_array)
        .ok_or("slo spec: missing top-level \"slos\" array")?;
    if arr.is_empty() {
        return Err("slo spec: \"slos\" must declare at least one objective".into());
    }
    if arr.len() > MAX_SLOS {
        return Err(format!("slo spec: at most {MAX_SLOS} objectives supported, got {}", arr.len()));
    }
    let mut out: Vec<SloSpec> = Vec::with_capacity(arr.len());
    for (i, o) in arr.iter().enumerate() {
        let at = |m: &str| format!("slo spec: objective {i}: {m}");
        let name =
            o.get("name").and_then(Value::as_str).ok_or_else(|| at("missing string \"name\""))?;
        let label_safe =
            |b: u8| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_';
        if name.is_empty() || !name.bytes().all(label_safe) {
            return Err(at("\"name\" must be non-empty snake_case ([a-z0-9_])"));
        }
        if out.iter().any(|s| s.name == name) {
            return Err(at(&format!("duplicate name {name:?}")));
        }
        let budget = o
            .get("budget")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric \"budget\""))?;
        if !(budget > 0.0 && budget <= 1.0) {
            return Err(at("\"budget\" must be in (0, 1]"));
        }
        let kind = match o.get("kind").and_then(Value::as_str) {
            Some("latency_above") => {
                let t = o.get("threshold_cycles").and_then(Value::as_u64).ok_or_else(|| {
                    at("kind \"latency_above\" needs integer \"threshold_cycles\"")
                })?;
                if t == 0 {
                    return Err(at("\"threshold_cycles\" must be positive"));
                }
                SloKind::LatencyAbove { threshold_cycles: t }
            }
            Some("rejection") => SloKind::Rejection,
            Some(k) => {
                return Err(at(&format!(
                    "unknown kind {k:?} (expected \"latency_above\" or \"rejection\")"
                )))
            }
            None => return Err(at("missing string \"kind\"")),
        };
        out.push(SloSpec { name: name.to_string(), kind, budget });
    }
    Ok(out)
}

/// Alert families the plane raises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// An objective's multi-window burn rate crossed both thresholds.
    SloBurn,
    /// Window-peak stash occupancy reached the configured Path ORAM
    /// bound.
    StashPressure,
    /// Window rejection fraction crossed the saturation-knee 5%.
    RejectionKnee,
    /// An engine window's Eq. 1 residual drifted past 1% of the window.
    Eq1Residual,
}

impl AlertKind {
    /// Dense index (for fixed per-kind arrays).
    pub fn index(self) -> usize {
        match self {
            AlertKind::SloBurn => 0,
            AlertKind::StashPressure => 1,
            AlertKind::RejectionKnee => 2,
            AlertKind::Eq1Residual => 3,
        }
    }

    /// Stable snake_case name (a Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::SloBurn => "slo_burn",
            AlertKind::StashPressure => "stash_pressure",
            AlertKind::RejectionKnee => "rejection_knee",
            AlertKind::Eq1Residual => "eq1_residual",
        }
    }
}

/// One structured alert event. Every field is sim-time or a public
/// aggregate — no addresses, leaf labels or any other secret-dependent
/// value appears here (the audit's relabeling distinguisher holds the
/// event stream to that contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloEvent {
    /// The closed window that triggered the alert.
    pub window_index: u64,
    /// The cycle the alert was evaluated at (the window-close edge, or
    /// the engine-window end for residual alerts).
    pub cycle: u64,
    /// Alert family.
    pub kind: AlertKind,
    /// Objective index for [`AlertKind::SloBurn`]; `u32::MAX` otherwise.
    pub slo: u32,
    /// Measured value: burn rate ×1e6 for burns, ppm fractions for
    /// knee/residual, raw occupancy for stash.
    pub value: u64,
    /// The threshold crossed, in the same unit as `value`.
    pub threshold: u64,
}

impl SloEvent {
    /// Renders the event as one JSON object (allocation is fine here —
    /// export paths are off the hot path).
    pub fn to_json(&self, slo_name: Option<&str>) -> String {
        let slo = match slo_name {
            Some(n) => format!("\"{n}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"window\":{},\"cycle\":{},\"kind\":\"{}\",\"slo\":{},\"value\":{},\"threshold\":{}}}",
            self.window_index,
            self.cycle,
            self.kind.name(),
            slo,
            self.value,
            self.threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_kind_indices_are_dense() {
        let kinds = [
            AlertKind::SloBurn,
            AlertKind::StashPressure,
            AlertKind::RejectionKnee,
            AlertKind::Eq1Residual,
        ];
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn default_set_scales_with_gap() {
        let slos = SloSpec::default_set(1_000);
        assert_eq!(slos.len(), 3);
        assert!(matches!(slos[0].kind, SloKind::LatencyAbove { threshold_cycles: 2_000 }));
        assert!(matches!(slos[1].kind, SloKind::LatencyAbove { threshold_cycles: 6_000 }));
        assert!(matches!(slos[2].kind, SloKind::Rejection));
    }

    #[test]
    fn spec_file_parses_round_trip() {
        let text = r#"{"slos": [
            {"name": "latency_p99", "kind": "latency_above",
             "threshold_cycles": 50000, "budget": 0.01},
            {"name": "rejections", "kind": "rejection", "budget": 0.005}
        ]}"#;
        let slos = parse_slo_spec(text).unwrap();
        assert_eq!(slos.len(), 2);
        assert_eq!(slos[0].name, "latency_p99");
        assert!(matches!(slos[0].kind, SloKind::LatencyAbove { threshold_cycles: 50_000 }));
        assert!(matches!(slos[1].kind, SloKind::Rejection));
        assert!((slos[1].budget - 0.005).abs() < 1e-12);
    }

    #[test]
    fn spec_file_rejections_are_one_line() {
        let cases = [
            ("not json", "slo spec:"),
            (r#"{"objectives": []}"#, "missing top-level"),
            (r#"{"slos": []}"#, "at least one"),
            (r#"{"slos": [{"kind": "rejection", "budget": 0.1}]}"#, "missing string \"name\""),
            (r#"{"slos": [{"name": "Bad Name", "kind": "rejection", "budget": 0.1}]}"#, "snake_case"),
            (r#"{"slos": [{"name": "a", "kind": "rejection", "budget": 0.0}]}"#, "(0, 1]"),
            (r#"{"slos": [{"name": "a", "kind": "rejection", "budget": 2.0}]}"#, "(0, 1]"),
            (r#"{"slos": [{"name": "a", "kind": "latency_above", "budget": 0.1}]}"#, "threshold_cycles"),
            (r#"{"slos": [{"name": "a", "kind": "percentile", "budget": 0.1}]}"#, "unknown kind"),
            (r#"{"slos": [{"name": "a", "budget": 0.1}]}"#, "missing string \"kind\""),
            (
                r#"{"slos": [{"name": "a", "kind": "rejection", "budget": 0.1},
                            {"name": "a", "kind": "rejection", "budget": 0.2}]}"#,
                "duplicate",
            ),
        ];
        for (text, want) in cases {
            let err = parse_slo_spec(text).unwrap_err();
            assert!(err.contains(want), "{text:?}: {err}");
            assert_eq!(err.lines().count(), 1, "error must be one line: {err}");
        }
        // The MAX_SLOS cap.
        let many: Vec<String> = (0..MAX_SLOS + 1)
            .map(|i| format!(r#"{{"name": "slo_{i}", "kind": "rejection", "budget": 0.1}}"#))
            .collect();
        let err = parse_slo_spec(&format!(r#"{{"slos": [{}]}}"#, many.join(","))).unwrap_err();
        assert!(err.contains("at most"), "{err}");
    }

    #[test]
    fn event_json_shape() {
        let ev = SloEvent {
            window_index: 3,
            cycle: 200_000,
            kind: AlertKind::SloBurn,
            slo: 0,
            value: 2_500_000,
            threshold: 2_000_000,
        };
        let j = ev.to_json(Some("latency_p99"));
        assert!(j.contains("\"kind\":\"slo_burn\""));
        assert!(j.contains("\"slo\":\"latency_p99\""));
        let j2 = ev.to_json(None);
        assert!(j2.contains("\"slo\":null"));
    }
}

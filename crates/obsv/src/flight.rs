//! The flight recorder: bounded full-fidelity recent history, frozen at
//! the moment an anomaly trigger fires and exportable as a self-contained
//! incident bundle.
//!
//! The live plane aggregates — by the time an SLO burn alert pages, the
//! individual spans and admission decisions that explain it have been
//! folded into window counters. The recorder keeps the raw recent
//! history in four preallocated overwrite-oldest rings:
//!
//! * engine [`AccessSpan`]s with full cycle attribution,
//! * service admission / rejection / coalesce events,
//! * structured [`SloEvent`]s,
//! * engine Eq. 1 [`WindowSample`]s.
//!
//! Recording is allocation-free after construction (the zero-alloc bench
//! gate runs with the recorder attached). When a trigger fires — an SLO
//! burn alert, stash occupancy reaching the configured bound, or an
//! Eq. 1 residual drift alert — the recorder **freezes**: the rings stop
//! overwriting, preserving the exact history leading up to the trigger.
//! The frozen state renders to an [`IncidentBundle`] of seven files
//! (`repro incident <dir>` re-validates them offline); rendering happens
//! off the hot path and may allocate freely.
//!
//! Like every other observability surface, the bundle carries no
//! addresses or leaf labels — spans, service events and window samples
//! are timing/aggregate data only, and the audit's relabeling
//! distinguisher holds the rendered bundle bytes to that contract.

use oram_telemetry::{spans_to_chrome_trace, spans_to_jsonl, SpanRing};
use oram_util::{AccessSpan, WindowSample};

use crate::slo::SloEvent;

/// Trigger kind recorded when a freeze is forced explicitly (CLI
/// `--force-incident`, golden tests) rather than raised by an alert.
pub const TRIGGER_FORCED: &str = "forced";

/// What a service-layer event ring entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceEventKind {
    /// A request entered a client queue.
    Admit,
    /// Admission control refused a request (queue full).
    Reject,
    /// A completion that rode an MSHR leader (no extra ORAM access).
    Coalesce,
}

impl ServiceEventKind {
    /// Stable snake_case name used in the bundle export.
    pub fn name(self) -> &'static str {
        match self {
            ServiceEventKind::Admit => "admit",
            ServiceEventKind::Reject => "reject",
            ServiceEventKind::Coalesce => "coalesce",
        }
    }
}

/// One service-layer admission-path event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceEvent {
    /// Sim cycle the event happened at.
    pub cycle: u64,
    /// Tenant (client) id.
    pub tenant: u32,
    /// What happened.
    pub kind: ServiceEventKind,
}

/// Why (and when) the recorder froze.
#[derive(Debug, Clone, Copy)]
pub struct FlightTrigger {
    /// Trigger family: an [`crate::slo::AlertKind`] name or
    /// [`TRIGGER_FORCED`].
    pub kind: &'static str,
    /// Sim cycle the trigger fired at.
    pub cycle: u64,
    /// Window index the trigger was evaluated in.
    pub window_index: u64,
    /// Objective index for SLO-burn triggers; `u32::MAX` otherwise.
    pub slo: u32,
    /// Measured value at the trigger (same units as the source alert).
    pub value: u64,
    /// Threshold crossed.
    pub threshold: u64,
}

/// Construction-time ring capacities of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Engine access spans kept.
    pub span_capacity: usize,
    /// Service admission/reject/coalesce events kept.
    pub event_capacity: usize,
    /// Structured SLO events kept.
    pub slo_capacity: usize,
    /// Engine Eq. 1 window samples kept.
    pub window_capacity: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            span_capacity: 4096,
            event_capacity: 8192,
            slo_capacity: 256,
            window_capacity: 512,
        }
    }
}

/// A preallocated overwrite-oldest ring of `Copy` records (the same
/// discipline as the telemetry `SpanRing`, reused for the recorder's
/// non-span streams).
#[derive(Debug)]
struct Ring<T: Copy> {
    buf: Vec<T>,
    capacity: usize,
    head: usize,
    pushed: u64,
}

impl<T: Copy> Ring<T> {
    fn new(capacity: usize) -> Self {
        Ring { buf: Vec::with_capacity(capacity), capacity, head: 0, pushed: 0 }
    }

    #[inline]
    fn push(&mut self, item: T) {
        self.pushed += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    fn iter(&self) -> impl Iterator<Item = &T> {
        let (newer, older) = if self.buf.len() < self.capacity {
            (&self.buf[..], &self.buf[..0])
        } else {
            let (b, a) = self.buf.split_at(self.head);
            (a, b)
        };
        newer.iter().chain(older.iter())
    }
}

/// The flight recorder. Owned by a [`crate::LivePlane`] (attach with
/// [`crate::LivePlane::attach_flight`]); the plane feeds it from both
/// telemetry streams and freezes it on trigger alerts.
#[derive(Debug)]
pub struct FlightRecorder {
    spans: SpanRing,
    events: Ring<ServiceEvent>,
    slo_events: Ring<SloEvent>,
    windows: Ring<WindowSample>,
    trigger: Option<FlightTrigger>,
}

impl FlightRecorder {
    /// A recorder with all rings preallocated to `cfg`'s capacities.
    /// Nothing allocates after this.
    pub fn new(cfg: FlightConfig) -> Self {
        FlightRecorder {
            spans: SpanRing::new(cfg.span_capacity),
            events: Ring::new(cfg.event_capacity),
            slo_events: Ring::new(cfg.slo_capacity),
            windows: Ring::new(cfg.window_capacity),
            trigger: None,
        }
    }

    /// The trigger that froze the recorder, if one fired.
    pub fn trigger(&self) -> Option<&FlightTrigger> {
        self.trigger.as_ref()
    }

    /// True once a trigger has frozen the rings.
    pub fn is_frozen(&self) -> bool {
        self.trigger.is_some()
    }

    /// Records an engine access span. No-op once frozen.
    #[inline]
    pub fn record_span(&mut self, span: &AccessSpan) {
        if self.trigger.is_none() {
            self.spans.push(span);
        }
    }

    /// Records a service admission-path event. No-op once frozen.
    #[inline]
    pub fn record_service(&mut self, cycle: u64, tenant: u32, kind: ServiceEventKind) {
        if self.trigger.is_none() {
            self.events.push(ServiceEvent { cycle, tenant, kind });
        }
    }

    /// Records a structured SLO event. No-op once frozen (the event that
    /// *causes* a freeze is recorded first, then the freeze lands).
    #[inline]
    pub fn record_slo(&mut self, ev: &SloEvent) {
        if self.trigger.is_none() {
            self.slo_events.push(*ev);
        }
    }

    /// Records an engine Eq. 1 window sample. No-op once frozen.
    #[inline]
    pub fn record_window(&mut self, w: &WindowSample) {
        if self.trigger.is_none() {
            self.windows.push(*w);
        }
    }

    /// Freezes the rings. The first trigger wins; later calls are
    /// no-ops, so the bundle always explains the *first* anomaly.
    pub fn freeze(&mut self, trigger: FlightTrigger) {
        if self.trigger.is_none() {
            self.trigger = Some(trigger);
        }
    }

    /// The held spans, oldest first.
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Held service events, oldest first.
    pub fn service_events(&self) -> impl Iterator<Item = &ServiceEvent> {
        self.events.iter()
    }

    /// Held SLO events, oldest first.
    pub fn slo_events(&self) -> impl Iterator<Item = &SloEvent> {
        self.slo_events.iter()
    }

    /// Held window samples, oldest first.
    pub fn window_samples(&self) -> impl Iterator<Item = &WindowSample> {
        self.windows.iter()
    }

    /// Renders the ring contents into the bundle's per-stream files.
    /// `slo_names` maps objective indices to names for the alert export.
    pub(crate) fn render_streams(
        &self,
        slo_names: &[String],
    ) -> (String, String, String, String, String) {
        let spans_jsonl = spans_to_jsonl(&self.spans);
        let trace_json = spans_to_chrome_trace(&self.spans);
        let mut alerts = String::new();
        for ev in self.slo_events.iter() {
            let name = slo_names.get(ev.slo as usize).map(String::as_str);
            alerts.push_str(&ev.to_json(name));
            alerts.push('\n');
        }
        let mut windows = String::new();
        for w in self.windows.iter() {
            windows.push_str(&window_to_json(w));
            windows.push('\n');
        }
        let mut events = String::new();
        for e in self.events.iter() {
            events.push_str(&format!(
                "{{\"cycle\":{},\"tenant\":{},\"kind\":\"{}\"}}\n",
                e.cycle,
                e.tenant,
                e.kind.name()
            ));
        }
        (spans_jsonl, trace_json, alerts, windows, events)
    }

    /// Per-ring `(held, dropped)` counts: spans, service events, SLO
    /// events, window samples.
    pub fn counts(&self) -> [(u64, u64); 4] {
        [
            (self.spans.len() as u64, self.spans.dropped()),
            (self.events.len() as u64, self.events.dropped()),
            (self.slo_events.len() as u64, self.slo_events.dropped()),
            (self.windows.len() as u64, self.windows.dropped()),
        ]
    }
}

fn window_to_json(w: &WindowSample) -> String {
    format!(
        concat!(
            "{{\"index\":{},\"start_cycle\":{},\"end_cycle\":{},\"data_requests\":{},",
            "\"onchip_served\":{},\"dummy_requests\":{},\"data_cycles\":{},",
            "\"dri_cycles\":{},\"shadow_advanced\":{},\"stash_live\":{}}}"
        ),
        w.index,
        w.start_cycle,
        w.end_cycle,
        w.data_requests,
        w.onchip_served,
        w.dummy_requests,
        w.data_cycles,
        w.dri_cycles,
        w.shadow_advanced,
        w.stash_live
    )
}

/// Run identity stamped into a bundle's `meta.json` so an incident is
/// reproducible from its bundle alone.
#[derive(Debug, Clone, Default)]
pub struct IncidentMeta {
    /// Master seed of the run.
    pub seed: u64,
    /// ORAM tree levels.
    pub levels: u32,
    /// Client (tenant) count.
    pub clients: usize,
    /// Shard count.
    pub shards: usize,
    /// Requests per client the run was configured for.
    pub requests: u64,
    /// Offered load multiplier.
    pub load: f64,
    /// Scheduler policy name.
    pub scheduler: String,
    /// Storage backend name.
    pub backend: String,
}

/// The names of the files a bundle directory contains, index-aligned
/// with [`IncidentBundle::files`].
pub const BUNDLE_FILES: [&str; 7] = [
    "meta.json",
    "spans.jsonl",
    "trace.json",
    "metrics.prom",
    "alerts.jsonl",
    "windows.jsonl",
    "events.jsonl",
];

/// A fully rendered incident bundle: seven self-contained text files.
/// For a fixed seed the bytes are identical at any thread count, and
/// byte-invariant under address relabeling (audit section 8).
#[derive(Debug, Clone)]
pub struct IncidentBundle {
    /// `meta.json` — schema, trigger, run config, ring counts.
    pub meta_json: String,
    /// `spans.jsonl` — one access span per line, oldest first.
    pub spans_jsonl: String,
    /// `trace.json` — the same spans as a Chrome `trace_event` document.
    pub trace_json: String,
    /// `metrics.prom` — the plane's full Prometheus exposition.
    pub metrics_prom: String,
    /// `alerts.jsonl` — structured SLO events, oldest first.
    pub alerts_jsonl: String,
    /// `windows.jsonl` — engine Eq. 1 window samples, oldest first.
    pub windows_jsonl: String,
    /// `events.jsonl` — service admit/reject/coalesce events.
    pub events_jsonl: String,
}

impl IncidentBundle {
    /// `(file name, contents)` pairs in [`BUNDLE_FILES`] order.
    pub fn files(&self) -> [(&'static str, &str); 7] {
        [
            (BUNDLE_FILES[0], &self.meta_json),
            (BUNDLE_FILES[1], &self.spans_jsonl),
            (BUNDLE_FILES[2], &self.trace_json),
            (BUNDLE_FILES[3], &self.metrics_prom),
            (BUNDLE_FILES[4], &self.alerts_jsonl),
            (BUNDLE_FILES[5], &self.windows_jsonl),
            (BUNDLE_FILES[6], &self.events_jsonl),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_util::telemetry::SPAN_MAX_PHASES;
    use oram_util::{AccessAttribution, PhaseSpan, ServeClass};

    fn span(seq: u64) -> AccessSpan {
        AccessSpan {
            seq,
            real: true,
            arrival: seq * 10,
            start: seq * 10,
            data_ready: seq * 10,
            end: seq * 10,
            served: ServeClass::Stash,
            forward_index: u32::MAX,
            blocks_in_path: 0,
            stash_live: 3,
            attr: AccessAttribution::ZERO,
            phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
            phase_len: 0,
        }
    }

    fn small() -> FlightRecorder {
        FlightRecorder::new(FlightConfig {
            span_capacity: 4,
            event_capacity: 4,
            slo_capacity: 2,
            window_capacity: 2,
        })
    }

    #[test]
    fn rings_overwrite_oldest_until_frozen() {
        let mut r = small();
        for i in 0..10 {
            r.record_span(&span(i));
            r.record_service(i * 10, 0, ServiceEventKind::Admit);
        }
        assert_eq!(r.spans().len(), 4);
        assert_eq!(r.counts()[0], (4, 6));
        assert_eq!(r.counts()[1], (4, 6));
        let seqs: Vec<u64> = r.spans().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn freeze_stops_recording_and_first_trigger_wins() {
        let mut r = small();
        r.record_span(&span(1));
        r.freeze(FlightTrigger {
            kind: "stash_pressure",
            cycle: 100,
            window_index: 2,
            slo: u32::MAX,
            value: 7,
            threshold: 5,
        });
        assert!(r.is_frozen());
        r.record_span(&span(2));
        r.record_service(1, 0, ServiceEventKind::Reject);
        r.record_window(&WindowSample::default());
        assert_eq!(r.spans().len(), 1, "frozen rings must not grow");
        assert_eq!(r.counts()[1], (0, 0));
        r.freeze(FlightTrigger {
            kind: TRIGGER_FORCED,
            cycle: 999,
            window_index: 9,
            slo: u32::MAX,
            value: 0,
            threshold: 0,
        });
        assert_eq!(r.trigger().unwrap().kind, "stash_pressure");
        assert_eq!(r.trigger().unwrap().cycle, 100);
    }

    #[test]
    fn stream_rendering_is_parseable_and_ordered() {
        let mut r = small();
        for i in 1..=3 {
            r.record_span(&span(i));
            r.record_service(i * 10, (i % 2) as u32, ServiceEventKind::Coalesce);
        }
        r.record_window(&WindowSample {
            index: 0,
            start_cycle: 0,
            end_cycle: 100,
            data_cycles: 60,
            dri_cycles: 40,
            ..Default::default()
        });
        let (spans, trace, alerts, windows, events) = r.render_streams(&[]);
        assert_eq!(oram_telemetry::validate_jsonl(&spans).unwrap(), 3);
        oram_telemetry::validate_chrome_trace(&trace).unwrap();
        assert!(alerts.is_empty());
        assert_eq!(windows.lines().count(), 1);
        assert!(windows.contains("\"data_cycles\":60"));
        assert_eq!(events.lines().count(), 3);
        assert!(events.contains("\"kind\":\"coalesce\""));
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(ServiceEventKind::Admit.name(), "admit");
        assert_eq!(ServiceEventKind::Reject.name(), "reject");
        assert_eq!(ServiceEventKind::Coalesce.name(), "coalesce");
    }
}

//! The live aggregation core: sliding sim-time windows of quantile
//! sketches and dimensional counters, fed by both telemetry streams
//! (engine-side spans/windows via [`TelemetrySink`], service-side
//! completions/rejections via [`LiveObserver`]), plus the SLO burn-rate
//! engine and threshold alerts.
//!
//! ## Window model
//!
//! Sim time is divided into fixed windows of `window_cycles`, aligned at
//! absolute multiples (window `i` covers `[i·W, (i+1)·W)`). Exactly one
//! window is *open* at a time; every event first advances the plane to
//! the window containing its cycle, closing intervening windows (empty
//! ones included — burn rates must see quiet periods). Closed windows
//! land in a fixed ring of [`RING_WINDOWS`] slots; a window evicted from
//! the ring is folded into a `folded` accumulator first, so at any
//! instant
//!
//! ```text
//! folded + Σ ring + open == cumulative totals
//! ```
//!
//! field by field — the conservation law [`LivePlane::validate_conservation`]
//! checks and the scrape-under-load test asserts.
//!
//! Everything after construction is fixed-size: event recording performs
//! no allocation (the zero-alloc bench gate runs with the plane, windows,
//! sketches and exporter attached).

use std::sync::{Arc, Mutex};

use oram_util::{
    AccessSpan, LiveObserver, MetricId, ServeClass, SharedLive, SharedTelemetry, TelemetrySink,
    WindowSample,
};

use crate::flight::{
    FlightConfig, FlightRecorder, FlightTrigger, IncidentBundle, IncidentMeta, ServiceEventKind,
    TRIGGER_FORCED,
};
use crate::sketch::QuantileSketch;
use crate::slo::{AlertKind, SloEvent, SloKind, SloSpec, MAX_SLOS};
use crate::trend::TrendEstimator;

/// Backend phases broken out per window (Eq. 1 components).
pub const PHASES: usize = 6;
/// Stable phase labels, index-aligned with `WindowAgg::phase_cycles`.
pub const PHASE_NAMES: [&str; PHASES] =
    ["dram_queue", "dram_row", "dram_bus", "eviction", "network", "posmap"];
/// Serve classes broken out per window.
pub const CLASSES: usize = 6;
/// Closed windows kept live in the ring (≥ the slow burn span).
pub const RING_WINDOWS: usize = 16;
/// The slow burn-rate span, in windows (the "12x" of fast 1x/slow 12x).
pub const SLOW_BURN_WINDOWS: usize = 12;
/// Fast burn-rate threshold (consuming budget ≥ 2x its sustainable rate
/// over the last window)...
pub const FAST_BURN_THRESHOLD: f64 = 2.0;
/// ...combined with sustained overspend across the slow span.
pub const SLOW_BURN_THRESHOLD: f64 = 1.0;
/// Rejection-knee alert threshold (the sweep's knee definition, 5%).
pub const KNEE_REJECT_PPM: u64 = 50_000;
/// Eq. 1 residual-drift alert threshold, parts per million of the
/// window width (1%).
pub const EQ1_RESIDUAL_PPM: u64 = 10_000;

const ALERT_KINDS: usize = 4;

/// Construction-time shape of a [`LivePlane`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Window width in CPU cycles.
    pub window_cycles: u64,
    /// Tenant (client) slots; completions index tenant dimensions with
    /// their client id (clamped into range).
    pub tenants: usize,
    /// Shard slots.
    pub shards: usize,
    /// Stash-occupancy alert threshold (e.g. the configured stash
    /// capacity, the Path ORAM overflow bound the design sizes for).
    pub stash_bound: u32,
    /// Declared objectives (at most [`MAX_SLOS`]; extras are ignored).
    pub slos: Vec<SloSpec>,
    /// Structured-event buffer capacity; further events are counted as
    /// dropped, never allocated.
    pub event_capacity: usize,
}

impl LiveConfig {
    /// A plane shaped for a serve run: `tenants` clients, `shards`
    /// shards, the default objectives scaled to the workload's base
    /// inter-arrival gap, and the standard 50k-cycle window.
    pub fn for_serve(tenants: usize, shards: usize, base_gap_cycles: u64, stash_bound: u32) -> Self {
        LiveConfig {
            window_cycles: 50_000,
            tenants: tenants.max(1),
            shards: shards.max(1),
            stash_bound,
            slos: SloSpec::default_set(base_gap_cycles),
            event_capacity: 1024,
        }
    }
}

/// One window's aggregates (also reused for the cumulative and folded
/// accumulators). All storage is sized at construction.
#[derive(Debug)]
pub struct WindowAgg {
    /// Window index (start cycle = `index · window_cycles`).
    pub index: u64,
    /// Completed requests.
    pub completed: u64,
    /// Rejected requests.
    pub rejected: u64,
    /// Completions that rode an MSHR leader.
    pub coalesced: u64,
    /// End-to-end latency sketch (data-ready − arrival).
    pub latency: QuantileSketch,
    /// Completions per tenant.
    pub tenant_completed: Box<[u64]>,
    /// Rejections per tenant.
    pub tenant_rejected: Box<[u64]>,
    /// Latency sum per tenant (mean = sum / completed).
    pub tenant_latency_sum: Box<[u64]>,
    /// Completions per shard.
    pub shard_completed: Box<[u64]>,
    /// Completions per serve class.
    pub class_completed: [u64; CLASSES],
    /// Cycles per backend phase (from span attribution).
    pub phase_cycles: [u64; PHASES],
    /// Engine spans observed.
    pub spans: u64,
    /// Peak live stash occupancy observed.
    pub stash_max: u32,
    /// Per-objective bad events.
    pub slo_bad: [u64; MAX_SLOS],
    /// Per-objective total events.
    pub slo_total: [u64; MAX_SLOS],
}

impl WindowAgg {
    fn new(tenants: usize, shards: usize) -> Self {
        WindowAgg {
            index: 0,
            completed: 0,
            rejected: 0,
            coalesced: 0,
            latency: QuantileSketch::new(),
            tenant_completed: vec![0; tenants].into_boxed_slice(),
            tenant_rejected: vec![0; tenants].into_boxed_slice(),
            tenant_latency_sum: vec![0; tenants].into_boxed_slice(),
            shard_completed: vec![0; shards].into_boxed_slice(),
            class_completed: [0; CLASSES],
            phase_cycles: [0; PHASES],
            spans: 0,
            stash_max: 0,
            slo_bad: [0; MAX_SLOS],
            slo_total: [0; MAX_SLOS],
        }
    }

    /// Clears to an empty window at `index`. No allocation.
    fn reset(&mut self, index: u64) {
        self.index = index;
        self.completed = 0;
        self.rejected = 0;
        self.coalesced = 0;
        self.latency.reset();
        self.tenant_completed.fill(0);
        self.tenant_rejected.fill(0);
        self.tenant_latency_sum.fill(0);
        self.shard_completed.fill(0);
        self.class_completed = [0; CLASSES];
        self.phase_cycles = [0; PHASES];
        self.spans = 0;
        self.stash_max = 0;
        self.slo_bad = [0; MAX_SLOS];
        self.slo_total = [0; MAX_SLOS];
    }

    /// Overwrites `self` with `src`. No allocation.
    fn copy_from(&mut self, src: &WindowAgg) {
        self.index = src.index;
        self.completed = src.completed;
        self.rejected = src.rejected;
        self.coalesced = src.coalesced;
        self.latency.copy_from(&src.latency);
        self.tenant_completed.copy_from_slice(&src.tenant_completed);
        self.tenant_rejected.copy_from_slice(&src.tenant_rejected);
        self.tenant_latency_sum.copy_from_slice(&src.tenant_latency_sum);
        self.shard_completed.copy_from_slice(&src.shard_completed);
        self.class_completed = src.class_completed;
        self.phase_cycles = src.phase_cycles;
        self.spans = src.spans;
        self.stash_max = src.stash_max;
        self.slo_bad = src.slo_bad;
        self.slo_total = src.slo_total;
    }

    /// Adds `self`'s tallies into `dst` (stash as max). No allocation.
    fn add_into(&self, dst: &mut WindowAgg) {
        dst.completed += self.completed;
        dst.rejected += self.rejected;
        dst.coalesced += self.coalesced;
        dst.latency.merge(&self.latency);
        for (d, s) in dst.tenant_completed.iter_mut().zip(self.tenant_completed.iter()) {
            *d += s;
        }
        for (d, s) in dst.tenant_rejected.iter_mut().zip(self.tenant_rejected.iter()) {
            *d += s;
        }
        for (d, s) in dst.tenant_latency_sum.iter_mut().zip(self.tenant_latency_sum.iter()) {
            *d += s;
        }
        for (d, s) in dst.shard_completed.iter_mut().zip(self.shard_completed.iter()) {
            *d += s;
        }
        for k in 0..CLASSES {
            dst.class_completed[k] += self.class_completed[k];
        }
        for k in 0..PHASES {
            dst.phase_cycles[k] += self.phase_cycles[k];
        }
        dst.spans += self.spans;
        dst.stash_max = dst.stash_max.max(self.stash_max);
        for k in 0..MAX_SLOS {
            dst.slo_bad[k] += self.slo_bad[k];
            dst.slo_total[k] += self.slo_total[k];
        }
    }
}

/// Per-objective burn-rate snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct BurnState {
    /// Budget-consumption rate over the last closed window (1.0 =
    /// exactly on budget).
    pub fast: f64,
    /// Budget-consumption rate over the last [`SLOW_BURN_WINDOWS`]
    /// closed windows.
    pub slow: f64,
    /// Whether the objective is currently in breach (both thresholds
    /// exceeded at the latest window close).
    pub breached: bool,
}

/// The live observability plane. Implements both sink traits so one
/// object aggregates the engine-side stream (spans, windows, stash
/// samples) and the service-side stream (completions, rejections).
#[derive(Debug)]
pub struct LivePlane {
    cfg: LiveConfig,
    total: WindowAgg,
    folded: WindowAgg,
    open: WindowAgg,
    ring: Vec<WindowAgg>,
    closed_windows: u64,
    /// Cumulative per-tenant latency sketches (windows keep sums only).
    tenant_latency: Vec<QuantileSketch>,
    // Engine-side Eq. 1 window-stream tracking.
    engine_windows: u64,
    eq1_width: u64,
    eq1_data: u64,
    eq1_dri: u64,
    eq1_worst_residual_ppm: u64,
    stash_peak: u32,
    // SLO / alert state.
    burns: [BurnState; MAX_SLOS],
    alert_active: [bool; ALERT_KINDS],
    alert_counts: [u64; ALERT_KINDS],
    events: Vec<SloEvent>,
    events_dropped: u64,
    // Cumulative PLB counters from the engine's counter stream (the
    // posmap lookaside buffer lives outside the windowed conservation
    // law — counters are monotone totals, like `eq1_*`).
    plb_hits: u64,
    plb_misses: u64,
    plb_evictions: u64,
    // Windowed drift estimators (fed at every window close).
    latency_trend: TrendEstimator,
    stash_trend: TrendEstimator,
    // Optional flight recorder; frozen by trigger alerts.
    flight: Option<FlightRecorder>,
}

impl LivePlane {
    /// A plane shaped by `cfg`. All aggregation storage is allocated
    /// here; nothing allocates afterwards.
    pub fn new(mut cfg: LiveConfig) -> Self {
        cfg.slos.truncate(MAX_SLOS);
        cfg.tenants = cfg.tenants.max(1);
        cfg.shards = cfg.shards.max(1);
        assert!(cfg.window_cycles > 0, "window_cycles must be positive");
        let t = cfg.tenants;
        let s = cfg.shards;
        let ring = (0..RING_WINDOWS).map(|_| WindowAgg::new(t, s)).collect();
        LivePlane {
            total: WindowAgg::new(t, s),
            folded: WindowAgg::new(t, s),
            open: WindowAgg::new(t, s),
            ring,
            closed_windows: 0,
            tenant_latency: (0..t).map(|_| QuantileSketch::new()).collect(),
            engine_windows: 0,
            eq1_width: 0,
            eq1_data: 0,
            eq1_dri: 0,
            eq1_worst_residual_ppm: 0,
            stash_peak: 0,
            burns: [BurnState::default(); MAX_SLOS],
            alert_active: [false; ALERT_KINDS],
            alert_counts: [0; ALERT_KINDS],
            events: Vec::with_capacity(cfg.event_capacity),
            events_dropped: 0,
            plb_hits: 0,
            plb_misses: 0,
            plb_evictions: 0,
            latency_trend: TrendEstimator::new(),
            stash_trend: TrendEstimator::new(),
            flight: None,
            cfg,
        }
    }

    /// Wraps a fresh plane in a shared handle.
    pub fn shared(cfg: LiveConfig) -> Arc<Mutex<LivePlane>> {
        Arc::new(Mutex::new(LivePlane::new(cfg)))
    }

    /// Upcasts a shared plane to the engine-side telemetry handle.
    pub fn as_sink(this: &Arc<Mutex<LivePlane>>) -> SharedTelemetry {
        this.clone()
    }

    /// Upcasts a shared plane to the service-side observer handle.
    pub fn as_live(this: &Arc<Mutex<LivePlane>>) -> SharedLive {
        this.clone()
    }

    /// The configuration in force.
    pub fn config(&self) -> &LiveConfig {
        &self.cfg
    }

    /// Cumulative totals since construction.
    pub fn total(&self) -> &WindowAgg {
        &self.total
    }

    /// The open (in-progress) window.
    pub fn open_window(&self) -> &WindowAgg {
        &self.open
    }

    /// Closed windows so far.
    pub fn closed_windows(&self) -> u64 {
        self.closed_windows
    }

    /// The most recently closed window, if any.
    pub fn last_closed(&self) -> Option<&WindowAgg> {
        if self.closed_windows == 0 {
            return None;
        }
        let idx = self.closed_windows - 1;
        Some(&self.ring[(idx % RING_WINDOWS as u64) as usize])
    }

    /// Ring slot `i` (0-based), if a closed window occupies it.
    pub fn ring_window(&self, i: usize) -> Option<&WindowAgg> {
        if i < RING_WINDOWS && (i as u64) < self.closed_windows.min(RING_WINDOWS as u64) {
            Some(&self.ring[i])
        } else {
            None
        }
    }

    /// Cumulative latency sketch for tenant `t`.
    pub fn tenant_latency(&self, t: usize) -> &QuantileSketch {
        &self.tenant_latency[t]
    }

    /// Burn-rate snapshot for objective `i`.
    pub fn burn(&self, i: usize) -> BurnState {
        self.burns[i]
    }

    /// Structured alert events emitted so far (oldest first; bounded by
    /// the configured capacity).
    pub fn events(&self) -> &[SloEvent] {
        &self.events
    }

    /// Events discarded after the buffer filled.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Alert firings by kind (raise edges, not per-window repeats).
    pub fn alert_count(&self, kind: AlertKind) -> u64 {
        self.alert_counts[kind.index()]
    }

    /// Peak live stash occupancy seen on the engine stream.
    pub fn stash_peak(&self) -> u32 {
        self.stash_peak
    }

    /// Engine time-series windows observed.
    pub fn engine_windows(&self) -> u64 {
        self.engine_windows
    }

    /// Cumulative posmap lookaside buffer totals: (hits, misses,
    /// evictions). All zero under a flat posmap.
    pub fn plb_totals(&self) -> (u64, u64, u64) {
        (self.plb_hits, self.plb_misses, self.plb_evictions)
    }

    /// Worst Eq. 1 residual observed, in ppm of the window width.
    pub fn eq1_worst_residual_ppm(&self) -> u64 {
        self.eq1_worst_residual_ppm
    }

    /// Mean Eq. 1 residual over all engine windows, in ppm.
    pub fn eq1_mean_residual_ppm(&self) -> u64 {
        if self.eq1_width == 0 {
            return 0;
        }
        let covered = self.eq1_data + self.eq1_dri;
        covered.saturating_sub(self.eq1_width) * 1_000_000 / self.eq1_width
    }

    /// Per-window end-to-end latency (p99) drift estimator: one point
    /// per closed window that saw completions, `x` = window index, `y` =
    /// the window's p99 latency in cycles.
    pub fn latency_trend(&self) -> &TrendEstimator {
        &self.latency_trend
    }

    /// Per-window stash-occupancy drift estimator: one point per closed
    /// window that observed the stash, `y` = the window's peak
    /// occupancy.
    pub fn stash_trend(&self) -> &TrendEstimator {
        &self.stash_trend
    }

    /// Attaches a flight recorder. All ring storage is allocated here;
    /// recording afterwards never allocates.
    pub fn attach_flight(&mut self, cfg: FlightConfig) {
        self.flight = Some(FlightRecorder::new(cfg));
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Freezes the flight recorder explicitly (CLI `--force-incident`,
    /// golden tests) with a synthetic [`TRIGGER_FORCED`] trigger at the
    /// open window's start. No-op without a recorder or after a real
    /// trigger already froze it.
    pub fn force_incident(&mut self) {
        let (window_index, window_cycles) = (self.open.index, self.cfg.window_cycles);
        if let Some(f) = self.flight.as_mut() {
            f.freeze(FlightTrigger {
                kind: TRIGGER_FORCED,
                cycle: window_index * window_cycles,
                window_index,
                slo: u32::MAX,
                value: 0,
                threshold: 0,
            });
        }
    }

    /// Renders the frozen flight-recorder state plus the plane's metric
    /// exposition into a self-contained incident bundle. Off the hot
    /// path; allocates freely.
    ///
    /// # Errors
    ///
    /// Fails when no recorder is attached or no trigger has frozen it.
    pub fn render_incident(&self, meta: &IncidentMeta) -> Result<IncidentBundle, String> {
        let f = self.flight.as_ref().ok_or("no flight recorder attached")?;
        let trig = *f.trigger().ok_or("no trigger fired; freeze the recorder first")?;
        let names: Vec<String> = self.cfg.slos.iter().map(|s| s.name.clone()).collect();
        let (spans_jsonl, trace_json, alerts_jsonl, windows_jsonl, events_jsonl) =
            f.render_streams(&names);
        let trig_slo = match names.get(trig.slo as usize) {
            Some(n) => format!("\"{}\"", oram_telemetry::json::escape(n)),
            None => "null".to_string(),
        };
        let slos = self
            .cfg
            .slos
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"budget\":{:.6}}}",
                    oram_telemetry::json::escape(&s.name),
                    s.budget
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let counts = f.counts();
        let count_names = ["spans", "service_events", "slo_events", "windows"];
        let counts_json = count_names
            .iter()
            .zip(counts)
            .map(|(n, (held, dropped))| format!("\"{n}\":{{\"held\":{held},\"dropped\":{dropped}}}"))
            .collect::<Vec<_>>()
            .join(",");
        let meta_json = format!(
            concat!(
                "{{\"schema\":1,\n",
                "\"trigger\":{{\"kind\":\"{}\",\"cycle\":{},\"window\":{},\"slo\":{},",
                "\"value\":{},\"threshold\":{}}},\n",
                "\"config\":{{\"seed\":{},\"levels\":{},\"clients\":{},\"shards\":{},",
                "\"requests\":{},\"load\":{:.6},\"scheduler\":\"{}\",",
                "\"backend\":\"{}\",\"window_cycles\":{},\"stash_bound\":{},\"slos\":[{}]}},\n",
                "\"counts\":{{{}}}}}\n"
            ),
            trig.kind,
            trig.cycle,
            trig.window_index,
            trig_slo,
            trig.value,
            trig.threshold,
            meta.seed,
            meta.levels,
            meta.clients,
            meta.shards,
            meta.requests,
            meta.load,
            oram_telemetry::json::escape(&meta.scheduler),
            oram_telemetry::json::escape(&meta.backend),
            self.cfg.window_cycles,
            self.cfg.stash_bound,
            slos,
            counts_json
        );
        Ok(IncidentBundle {
            meta_json,
            spans_jsonl,
            trace_json,
            metrics_prom: crate::prom::render_prometheus(self),
            alerts_jsonl,
            windows_jsonl,
            events_jsonl,
        })
    }

    fn push_event(&mut self, ev: SloEvent) {
        if let Some(f) = self.flight.as_mut() {
            // The triggering event is recorded first, then the freeze
            // lands, so the bundle always contains its own trigger.
            f.record_slo(&ev);
            if matches!(
                ev.kind,
                AlertKind::SloBurn | AlertKind::StashPressure | AlertKind::Eq1Residual
            ) {
                f.freeze(FlightTrigger {
                    kind: ev.kind.name(),
                    cycle: ev.cycle,
                    window_index: ev.window_index,
                    slo: ev.slo,
                    value: ev.value,
                    threshold: ev.threshold,
                });
            }
        }
        if self.events.len() < self.events.capacity() {
            self.events.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Advances the plane so the open window contains `now`, closing any
    /// windows that end at or before it.
    #[inline]
    fn advance(&mut self, now: u64) {
        let target = now / self.cfg.window_cycles;
        while self.open.index < target {
            self.close_open();
        }
    }

    /// Closes the open window: folds the evicted ring slot, copies the
    /// window in, evaluates burn rates and threshold alerts, and opens
    /// the successor.
    fn close_open(&mut self) {
        let idx = self.open.index;
        let slot = (idx % RING_WINDOWS as u64) as usize;
        if self.closed_windows >= RING_WINDOWS as u64 {
            // About to overwrite the oldest live window: fold it first so
            // conservation holds.
            let (folded, evicted) = (&mut self.folded, &self.ring[slot]);
            evicted.add_into(folded);
        }
        self.ring[slot].copy_from(&self.open);
        self.closed_windows += 1;
        // Feed the drift estimators: one point per window that actually
        // observed the signal, so idle windows don't drag slopes to zero.
        let w = &self.ring[slot];
        if w.completed > 0 {
            self.latency_trend.push(w.index as f64, w.latency.quantile(0.99) as f64);
        }
        if w.stash_max > 0 {
            self.stash_trend.push(w.index as f64, w.stash_max as f64);
        }
        self.evaluate_alerts(slot);
        self.open.reset(idx + 1);
    }

    /// Burn rates and threshold alerts at window close. `slot` is the
    /// just-closed window's ring slot.
    fn evaluate_alerts(&mut self, slot: usize) {
        let w = &self.ring[slot];
        let close_cycle = (w.index + 1) * self.cfg.window_cycles;
        let window_index = w.index;

        // Multi-window SLO burn rates: fast over this window, slow over
        // the last SLOW_BURN_WINDOWS closed windows.
        let span = (self.closed_windows.min(SLOW_BURN_WINDOWS as u64)) as usize;
        for i in 0..self.cfg.slos.len() {
            let budget = self.cfg.slos[i].budget;
            let fast = burn_rate(self.ring[slot].slo_bad[i], self.ring[slot].slo_total[i], budget);
            let (mut bad, mut tot) = (0u64, 0u64);
            for back in 0..span {
                let wi = self.closed_windows - 1 - back as u64;
                let s = (wi % RING_WINDOWS as u64) as usize;
                bad += self.ring[s].slo_bad[i];
                tot += self.ring[s].slo_total[i];
            }
            let slow = burn_rate(bad, tot, budget);
            let breach = fast >= FAST_BURN_THRESHOLD && slow >= SLOW_BURN_THRESHOLD;
            let was = self.burns[i].breached;
            self.burns[i] = BurnState { fast, slow, breached: breach };
            if breach && !was {
                self.alert_counts[AlertKind::SloBurn.index()] += 1;
                self.push_event(SloEvent {
                    window_index,
                    cycle: close_cycle,
                    kind: AlertKind::SloBurn,
                    slo: i as u32,
                    value: (fast * 1_000_000.0) as u64,
                    threshold: (FAST_BURN_THRESHOLD * 1_000_000.0) as u64,
                });
            }
        }

        // Stash pressure: window peak vs. the configured bound.
        let stash_max = self.ring[slot].stash_max;
        let stash_bound = self.cfg.stash_bound;
        let stash_breach = stash_bound > 0 && stash_max >= stash_bound;
        self.edge_alert(
            AlertKind::StashPressure,
            stash_breach,
            window_index,
            close_cycle,
            stash_max as u64,
            stash_bound as u64,
        );

        // Rejection knee: window rejection fraction vs. the sweep's 5%
        // knee definition.
        let (completed, rejected) = (self.ring[slot].completed, self.ring[slot].rejected);
        let offered = completed + rejected;
        let reject_ppm = (rejected * 1_000_000).checked_div(offered).unwrap_or(0);
        self.edge_alert(
            AlertKind::RejectionKnee,
            reject_ppm > KNEE_REJECT_PPM,
            window_index,
            close_cycle,
            reject_ppm,
            KNEE_REJECT_PPM,
        );
    }

    fn edge_alert(
        &mut self,
        kind: AlertKind,
        breach: bool,
        window_index: u64,
        cycle: u64,
        value: u64,
        threshold: u64,
    ) {
        let k = kind.index();
        if breach && !self.alert_active[k] {
            self.alert_counts[k] += 1;
            self.push_event(SloEvent { window_index, cycle, kind, slo: u32::MAX, value, threshold });
        }
        self.alert_active[k] = breach;
    }

    /// Closes the open window unconditionally (end-of-run flush) so the
    /// final partial window reaches the ring, burn rates and exporters.
    pub fn flush(&mut self) {
        self.close_open();
    }

    /// The conservation law: `folded + Σ live ring + open == total`,
    /// field by field.
    ///
    /// # Errors
    ///
    /// Returns a description of the first field that fails to balance.
    pub fn validate_conservation(&self) -> Result<(), String> {
        let mut acc = WindowAgg::new(self.cfg.tenants, self.cfg.shards);
        self.folded.add_into(&mut acc);
        let live = self.closed_windows.min(RING_WINDOWS as u64) as usize;
        for s in 0..live {
            self.ring[s].add_into(&mut acc);
        }
        self.open.add_into(&mut acc);

        let checks: [(&str, u64, u64); 7] = [
            ("completed", acc.completed, self.total.completed),
            ("rejected", acc.rejected, self.total.rejected),
            ("coalesced", acc.coalesced, self.total.coalesced),
            ("latency.count", acc.latency.count(), self.total.latency.count()),
            ("latency.sum", acc.latency.sum(), self.total.latency.sum()),
            ("spans", acc.spans, self.total.spans),
            (
                "phase_cycles",
                acc.phase_cycles.iter().sum::<u64>(),
                self.total.phase_cycles.iter().sum::<u64>(),
            ),
        ];
        for (name, got, want) in checks {
            if got != want {
                return Err(format!("window {name} deltas sum to {got}, registry total {want}"));
            }
        }
        for t in 0..self.cfg.tenants {
            if acc.tenant_completed[t] != self.total.tenant_completed[t]
                || acc.tenant_rejected[t] != self.total.tenant_rejected[t]
            {
                return Err(format!("tenant {t} window deltas do not sum to totals"));
            }
        }
        for s in 0..self.cfg.shards {
            if acc.shard_completed[s] != self.total.shard_completed[s] {
                return Err(format!("shard {s} window deltas do not sum to totals"));
            }
        }
        for k in 0..CLASSES {
            if acc.class_completed[k] != self.total.class_completed[k] {
                return Err(format!("class {k} window deltas do not sum to totals"));
            }
        }
        for i in 0..self.cfg.slos.len() {
            if acc.slo_bad[i] != self.total.slo_bad[i]
                || acc.slo_total[i] != self.total.slo_total[i]
            {
                return Err(format!("slo {i} window tallies do not sum to totals"));
            }
        }
        Ok(())
    }
}

/// Budget-consumption rate: observed bad fraction over the allowed one.
fn burn_rate(bad: u64, total: u64, budget: f64) -> f64 {
    if total == 0 || budget <= 0.0 {
        return 0.0;
    }
    (bad as f64 / total as f64) / budget
}

impl LiveObserver for LivePlane {
    fn request_complete(
        &mut self,
        now: u64,
        tenant: u32,
        shard: u32,
        class: ServeClass,
        latency: u64,
        coalesced: bool,
    ) {
        if coalesced {
            if let Some(f) = self.flight.as_mut() {
                f.record_service(now, tenant, ServiceEventKind::Coalesce);
            }
        }
        self.advance(now);
        let t = (tenant as usize).min(self.cfg.tenants - 1);
        let s = (shard as usize).min(self.cfg.shards - 1);
        let k = class as usize;
        for agg in [&mut self.open, &mut self.total] {
            agg.completed += 1;
            if coalesced {
                agg.coalesced += 1;
            }
            agg.latency.record(latency);
            agg.tenant_completed[t] += 1;
            agg.tenant_latency_sum[t] += latency;
            agg.shard_completed[s] += 1;
            agg.class_completed[k] += 1;
        }
        self.tenant_latency[t].record(latency);
        for i in 0..self.cfg.slos.len() {
            match self.cfg.slos[i].kind {
                SloKind::LatencyAbove { threshold_cycles } => {
                    let bad = (latency > threshold_cycles) as u64;
                    for agg in [&mut self.open, &mut self.total] {
                        agg.slo_total[i] += 1;
                        agg.slo_bad[i] += bad;
                    }
                }
                SloKind::Rejection => {
                    for agg in [&mut self.open, &mut self.total] {
                        agg.slo_total[i] += 1;
                    }
                }
            }
        }
    }

    fn request_rejected(&mut self, now: u64, tenant: u32) {
        if let Some(f) = self.flight.as_mut() {
            f.record_service(now, tenant, ServiceEventKind::Reject);
        }
        self.advance(now);
        let t = (tenant as usize).min(self.cfg.tenants - 1);
        for agg in [&mut self.open, &mut self.total] {
            agg.rejected += 1;
            agg.tenant_rejected[t] += 1;
        }
        for i in 0..self.cfg.slos.len() {
            if matches!(self.cfg.slos[i].kind, SloKind::Rejection) {
                for agg in [&mut self.open, &mut self.total] {
                    agg.slo_total[i] += 1;
                    agg.slo_bad[i] += 1;
                }
            }
        }
    }

    fn request_admitted(&mut self, now: u64, tenant: u32) {
        // Admission is history for the flight recorder only: window
        // aggregation stays driven by completions/rejections, so plane
        // outputs are unchanged whether or not this hook fires.
        if let Some(f) = self.flight.as_mut() {
            f.record_service(now, tenant, ServiceEventKind::Admit);
        }
    }
}

impl TelemetrySink for LivePlane {
    #[inline]
    fn count(&mut self, id: MetricId, delta: u64) {
        // Most engine counters stay with the standard recorder; the
        // plane aggregates only what it windows — plus the PLB totals,
        // which are monotone and exported verbatim by /metrics.
        match id {
            MetricId::PlbHit => self.plb_hits += delta,
            MetricId::PlbMiss => self.plb_misses += delta,
            MetricId::PlbEvict => self.plb_evictions += delta,
            _ => {}
        }
    }

    #[inline]
    fn sample(&mut self, id: MetricId, value: u64) {
        if id == MetricId::StashOccupancy {
            let v = value as u32;
            self.stash_peak = self.stash_peak.max(v);
            self.open.stash_max = self.open.stash_max.max(v);
        }
    }

    #[inline]
    fn span(&mut self, span: &AccessSpan) {
        if let Some(f) = self.flight.as_mut() {
            f.record_span(span);
        }
        self.advance(span.end);
        let a = &span.attr;
        let phases = [a.dram_queue, a.dram_row, a.dram_bus, a.eviction, a.network, a.posmap];
        for agg in [&mut self.open, &mut self.total] {
            for (acc, add) in agg.phase_cycles.iter_mut().zip(phases) {
                *acc += add;
            }
            agg.spans += 1;
            agg.stash_max = agg.stash_max.max(span.stash_live);
        }
        self.stash_peak = self.stash_peak.max(span.stash_live);
    }

    fn window(&mut self, w: &WindowSample) {
        if let Some(f) = self.flight.as_mut() {
            f.record_window(w);
        }
        self.advance(w.end_cycle);
        self.engine_windows += 1;
        let width = w.end_cycle - w.start_cycle;
        self.eq1_width += width;
        self.eq1_data += w.data_cycles;
        self.eq1_dri += w.dri_cycles;
        self.stash_peak = self.stash_peak.max(w.stash_live);
        // Eq. 1 per window: data + dri covers exactly the window width
        // unless an access straddles the boundary; the overshoot is the
        // residual whose drift we alert on.
        let residual_ppm = ((w.data_cycles + w.dri_cycles).saturating_sub(width) * 1_000_000)
            .checked_div(width)
            .unwrap_or(0);
        self.eq1_worst_residual_ppm = self.eq1_worst_residual_ppm.max(residual_ppm);
        let window_index = self.open.index;
        self.edge_alert(
            AlertKind::Eq1Residual,
            residual_ppm > EQ1_RESIDUAL_PPM,
            window_index,
            w.end_cycle,
            residual_ppm,
            EQ1_RESIDUAL_PPM,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(slos: Vec<SloSpec>) -> LivePlane {
        LivePlane::new(LiveConfig {
            window_cycles: 1_000,
            tenants: 3,
            shards: 2,
            stash_bound: 100,
            slos,
            event_capacity: 64,
        })
    }

    #[test]
    fn windows_close_on_advance_and_conserve() {
        let mut p = plane(SloSpec::default_set(1_000));
        for i in 0..10_000u64 {
            let now = i * 37;
            p.request_complete(now, (i % 3) as u32, (i % 2) as u32, ServeClass::DramReal, 500 + i % 3_000, i % 5 == 0);
            if i % 11 == 0 {
                p.request_rejected(now, (i % 3) as u32);
            }
        }
        assert!(p.closed_windows() > RING_WINDOWS as u64, "ring must have wrapped");
        p.validate_conservation().expect("conservation");
        assert_eq!(p.total().completed, 10_000);
        assert_eq!(p.total().rejected, 10_000 / 11 + 1);
        let t = p.total();
        assert_eq!(t.tenant_completed.iter().sum::<u64>(), t.completed);
        assert_eq!(t.shard_completed.iter().sum::<u64>(), t.completed);
        assert_eq!(t.class_completed.iter().sum::<u64>(), t.completed);
        p.flush();
        p.validate_conservation().expect("conservation after flush");
    }

    #[test]
    fn latency_slo_burn_fires_under_sustained_breach() {
        let slo = SloSpec {
            name: "lat".to_string(),
            kind: SloKind::LatencyAbove { threshold_cycles: 100 },
            budget: 0.01,
        };
        let mut p = plane(vec![slo]);
        // Every request breaches: burn = 100x budget, fast and slow.
        for i in 0..20_000u64 {
            p.request_complete(i * 10, 0, 0, ServeClass::Stash, 1_000, false);
        }
        p.flush();
        assert!(p.burn(0).fast > FAST_BURN_THRESHOLD);
        assert!(p.burn(0).slow > SLOW_BURN_THRESHOLD);
        assert!(p.burn(0).breached);
        assert_eq!(p.alert_count(AlertKind::SloBurn), 1, "edge-triggered, not per window");
        assert!(p.events().iter().any(|e| e.kind == AlertKind::SloBurn));
    }

    #[test]
    fn healthy_run_fires_no_alerts() {
        let mut p = plane(SloSpec::default_set(1_000));
        for i in 0..20_000u64 {
            p.request_complete(i * 10, 0, 0, ServeClass::Stash, 50, false);
        }
        p.flush();
        assert_eq!(p.events().len(), 0);
        assert!(!p.burn(0).breached);
    }

    #[test]
    fn rejection_knee_and_stash_alerts() {
        let mut p = plane(vec![]);
        // 50% rejections: far past the 5% knee.
        for i in 0..4_000u64 {
            p.request_complete(i * 10, 0, 0, ServeClass::Stash, 10, false);
            p.request_rejected(i * 10, 1);
        }
        p.flush();
        assert!(p.alert_count(AlertKind::RejectionKnee) >= 1);
        // Stash breach via the engine sample stream.
        let mut p = plane(vec![]);
        p.sample(MetricId::StashOccupancy, 150);
        p.request_complete(10, 0, 0, ServeClass::Stash, 10, false);
        p.flush();
        assert_eq!(p.alert_count(AlertKind::StashPressure), 1);
        assert_eq!(p.stash_peak(), 150);
    }

    #[test]
    fn eq1_residual_tracking() {
        let mut p = plane(vec![]);
        p.window(&WindowSample {
            index: 0,
            start_cycle: 0,
            end_cycle: 1_000,
            data_cycles: 600,
            dri_cycles: 400,
            ..Default::default()
        });
        assert_eq!(p.eq1_worst_residual_ppm(), 0);
        // 2% overshoot: an access straddled the boundary.
        p.window(&WindowSample {
            index: 1,
            start_cycle: 1_000,
            end_cycle: 2_000,
            data_cycles: 620,
            dri_cycles: 400,
            ..Default::default()
        });
        assert_eq!(p.eq1_worst_residual_ppm(), 20_000);
        assert_eq!(p.alert_count(AlertKind::Eq1Residual), 1);
        assert_eq!(p.engine_windows(), 2);
    }

    #[test]
    fn flight_recorder_freezes_on_stash_trigger_and_renders() {
        let mut p = plane(vec![]);
        p.attach_flight(FlightConfig::default());
        for i in 0..2_000u64 {
            p.request_complete(i * 10, 0, 0, ServeClass::Stash, 10, i % 7 == 0);
        }
        // Stash breach (bound 100) freezes the recorder at window close.
        p.sample(MetricId::StashOccupancy, 150);
        p.request_complete(25_000, 0, 0, ServeClass::Stash, 10, false);
        p.flush();
        let f = p.flight().expect("recorder attached");
        assert!(f.is_frozen());
        let trig = f.trigger().unwrap();
        assert_eq!(trig.kind, "stash_pressure");
        assert_eq!(trig.value, 150);
        let bundle = p.render_incident(&IncidentMeta::default()).unwrap();
        assert!(bundle.meta_json.contains("\"kind\":\"stash_pressure\""));
        assert!(bundle.alerts_jsonl.contains("stash_pressure"));
        assert!(!bundle.metrics_prom.is_empty());
        assert!(bundle.events_jsonl.contains("\"kind\":\"coalesce\""));
    }

    #[test]
    fn forced_incident_renders_without_any_alert() {
        let mut p = plane(SloSpec::default_set(1_000));
        p.attach_flight(FlightConfig::default());
        for i in 0..5_000u64 {
            p.request_complete(i * 10, (i % 3) as u32, 0, ServeClass::Stash, 50, false);
        }
        p.flush();
        assert!(p.render_incident(&IncidentMeta::default()).is_err(), "no trigger yet");
        p.force_incident();
        let b = p.render_incident(&IncidentMeta::default()).unwrap();
        assert!(b.meta_json.contains("\"kind\":\"forced\""));
        assert_eq!(b.files().len(), 7);
        assert!(b.meta_json.contains("\"slos\":[{\"name\":\"latency_p99\""));
    }

    #[test]
    fn trend_estimators_follow_window_series() {
        let mut p = plane(vec![]);
        // Latency ramps linearly with time: positive per-window slope.
        for i in 0..20_000u64 {
            let now = i * 10;
            p.request_complete(now, 0, 0, ServeClass::Stash, 100 + now / 100, false);
        }
        p.flush();
        assert!(p.latency_trend().samples() > 10);
        assert!(p.latency_trend().slope() > 5.0, "slope {}", p.latency_trend().slope());
        // Flat latency: slope collapses to ~0.
        let mut q = plane(vec![]);
        for i in 0..20_000u64 {
            q.request_complete(i * 10, 0, 0, ServeClass::Stash, 500, false);
        }
        q.flush();
        assert!(q.latency_trend().slope().abs() < 1e-6);
        assert_eq!(q.stash_trend().samples(), 0, "no stash signal observed");
    }

    #[test]
    fn event_buffer_is_bounded() {
        let mut p = LivePlane::new(LiveConfig {
            window_cycles: 100,
            tenants: 1,
            shards: 1,
            stash_bound: 1,
            slos: vec![],
            event_capacity: 2,
        });
        // Alternate breach / recover so the edge trigger fires repeatedly:
        // window i carries a stash sample only when i is even.
        for i in 0..40u64 {
            p.request_complete(i * 100, 0, 0, ServeClass::Stash, 1, false);
            if i % 2 == 0 {
                p.sample(MetricId::StashOccupancy, 10);
            }
        }
        p.flush();
        assert!(p.events().len() <= 2);
        assert!(p.events_dropped() > 0);
    }
}

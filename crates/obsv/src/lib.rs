//! # oram-obsv
//!
//! The live observability plane of the Shadow Block reproduction: where
//! `oram-telemetry` is post-hoc (spans and counters exported after a
//! run), this crate watches a serve/soak *while it runs*:
//!
//! * [`QuantileSketch`] — a fixed-memory log-linear quantile sketch
//!   (interpolated p50/p99/p99.9, relative error ≤ 1/16) recording in
//!   O(1) with zero allocation.
//! * [`LivePlane`] — sliding sim-time windows of sketches and
//!   dimensional counters (tenant, shard, serve class, backend phase),
//!   fed by both telemetry streams: it implements
//!   [`oram_util::TelemetrySink`] for the engine side (spans, Eq. 1
//!   windows, stash samples) and [`oram_util::LiveObserver`] for the
//!   service side (completions, rejections), under a conservation law
//!   (`folded + ring + open == totals`) the scrape tests assert.
//! * [`SloSpec`] / [`SloEvent`] — declarative latency/rejection
//!   objectives with multi-window (fast 1x / slow 12x) burn rates and
//!   threshold alerts (stash vs. the Path ORAM bound, the rejection
//!   knee, Eq. 1 residual drift) as structured, address-free events.
//! * [`MetricsServer`] — a dependency-free `std::net` endpoint serving
//!   `/metrics` (Prometheus text format 0.0.4), `/healthz` and `/slo`
//!   from plane snapshots without perturbing the simulation.
//! * [`render_top`] — the `repro top` terminal panel over the same
//!   snapshots.
//! * [`FlightRecorder`] — bounded rings of raw recent history (spans,
//!   admission events, SLO events, Eq. 1 windows) frozen when a trigger
//!   alert fires and rendered into a self-contained incident bundle
//!   (`repro incident` re-validates it offline).
//! * [`TrendEstimator`] — deterministic per-window drift slopes
//!   (latency, stash occupancy) for the `repro soak` long-horizon
//!   harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod plane;
pub mod prom;
pub mod server;
pub mod sketch;
pub mod slo;
pub mod trend;

pub use flight::{
    FlightConfig, FlightRecorder, FlightTrigger, IncidentBundle, IncidentMeta, ServiceEvent,
    ServiceEventKind, BUNDLE_FILES, TRIGGER_FORCED,
};
pub use plane::{
    BurnState, LiveConfig, LivePlane, WindowAgg, EQ1_RESIDUAL_PPM, FAST_BURN_THRESHOLD,
    KNEE_REJECT_PPM, PHASES, PHASE_NAMES, RING_WINDOWS, SLOW_BURN_THRESHOLD, SLOW_BURN_WINDOWS,
};
pub use prom::{render_healthz, render_prometheus, render_slo_json, render_top};
pub use server::{http_get, MetricsServer};
pub use sketch::QuantileSketch;
pub use slo::{parse_slo_spec, AlertKind, SloEvent, SloKind, SloSpec, MAX_SLOS};
pub use trend::TrendEstimator;

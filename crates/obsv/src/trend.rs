//! Deterministic windowed trend detection: online least-squares slope
//! estimators over per-window series.
//!
//! The soak harness watches two slow signals that no single window can
//! show — end-to-end latency drifting up (queueing debt accumulating)
//! and stash occupancy creeping toward the Path ORAM bound (eviction
//! falling behind). Both reduce to the same question: over the whole
//! run, what is the slope of a per-window statistic against the window
//! index? [`TrendEstimator`] answers it with an ordinary least-squares
//! fit maintained online in O(1) memory: push `(x, y)` points as
//! windows close, read the fitted slope at the end. All arithmetic is
//! plain `f64` sums in a fixed order, so for a fixed input series the
//! result is bit-stable — the soak report's trend self-checks gate on
//! exact thresholds.

/// An online ordinary-least-squares line fit over `(x, y)` points.
///
/// Maintains the five running sums the closed-form OLS slope needs
/// (`n`, `Σx`, `Σy`, `Σx²`, `Σxy`). Pushing is O(1) and allocation-free;
/// the slope is computed on demand.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrendEstimator {
    n: u64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
}

impl TrendEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        TrendEstimator::default()
    }

    /// Adds one `(x, y)` observation. O(1), no allocation.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
    }

    /// Number of observations so far.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Mean of the `y` observations (0.0 when empty).
    pub fn mean_y(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sy / self.n as f64
        }
    }

    /// The fitted OLS slope `dy/dx`. Returns 0.0 with fewer than two
    /// points or a degenerate (constant-`x`) series.
    pub fn slope(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let denom = n * self.sxx - self.sx * self.sx;
        if denom == 0.0 {
            return 0.0;
        }
        (n * self.sxy - self.sx * self.sy) / denom
    }

    /// The slope normalized by the mean level, in parts per million per
    /// unit of `x` — the scale-free drift rate the soak thresholds gate
    /// on. Returns 0 when the mean is zero.
    pub fn slope_ppm_of_mean(&self) -> i64 {
        let mean = self.mean_y();
        if mean == 0.0 {
            return 0;
        }
        (self.slope() / mean * 1_000_000.0) as i64
    }

    /// Resets to empty. No allocation.
    pub fn reset(&mut self) {
        *self = TrendEstimator::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_has_zero_slope() {
        let mut t = TrendEstimator::new();
        for i in 0..100 {
            t.push(i as f64, 42.0);
        }
        assert_eq!(t.slope(), 0.0);
        assert_eq!(t.slope_ppm_of_mean(), 0);
        assert_eq!(t.mean_y(), 42.0);
        assert_eq!(t.samples(), 100);
    }

    #[test]
    fn exact_line_is_recovered() {
        let mut t = TrendEstimator::new();
        for i in 0..50 {
            t.push(i as f64, 7.0 + 3.0 * i as f64);
        }
        assert!((t.slope() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_slope_is_close() {
        // Deterministic sawtooth noise around a slope-2 line.
        let mut t = TrendEstimator::new();
        for i in 0..1_000i64 {
            let noise = ((i * 37) % 11 - 5) as f64;
            t.push(i as f64, 100.0 + 2.0 * i as f64 + noise);
        }
        assert!((t.slope() - 2.0).abs() < 0.01, "slope {}", t.slope());
        assert!(t.slope_ppm_of_mean() > 0);
    }

    #[test]
    fn degenerate_cases_return_zero() {
        let mut t = TrendEstimator::new();
        assert_eq!(t.slope(), 0.0);
        t.push(5.0, 1.0);
        assert_eq!(t.slope(), 0.0, "single point");
        t.push(5.0, 9.0);
        assert_eq!(t.slope(), 0.0, "constant x");
        t.reset();
        assert_eq!(t.samples(), 0);
    }
}

//! A minimal, dependency-free HTTP endpoint serving plane snapshots:
//! `GET /metrics` (Prometheus text format 0.0.4), `GET /healthz` and
//! `GET /slo` (JSON).
//!
//! ## Lifecycle
//!
//! [`MetricsServer::start`] binds a `std::net::TcpListener` (port 0
//! works — the bound address is reported back) and spawns one accept
//! thread; each request is answered synchronously on that thread
//! (scrapes are rare and cheap — one lock, one render, one write).
//! [`MetricsServer::shutdown`] flips a stop flag, unblocks the accept
//! loop with a self-connection, and joins the thread. Dropping the
//! server shuts it down too.
//!
//! The endpoint never touches the simulation: scraping only takes the
//! plane lock long enough to render a snapshot, so the served run's
//! output is byte-identical whether the endpoint is attached, scraped,
//! or absent (a CLI test holds this line).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::plane::LivePlane;
use crate::prom::{render_healthz, render_prometheus, render_slo_json};

/// The metrics endpoint handle. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving snapshots
    /// of `plane`.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, parse).
    pub fn start(addr: &str, plane: Arc<Mutex<LivePlane>>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("obsv-metrics".to_string())
            .spawn(move || accept_loop(listener, plane, stop2))
            .expect("spawn metrics thread");
        Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept call; an error just means the listener
            // already went away.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, plane: Arc<Mutex<LivePlane>>, stop: Arc<AtomicBool>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = serve_one(stream, &plane);
    }
}

/// Reads one request head and writes one response. Any I/O error just
/// drops the connection — a scraper will retry.
fn serve_one(mut stream: TcpStream, plane: &Arc<Mutex<LivePlane>>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => {
                let p = plane.lock().expect("plane lock");
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", render_prometheus(&p))
            }
            "/healthz" => {
                let p = plane.lock().expect("plane lock");
                ("200 OK", "application/json", render_healthz(&p))
            }
            "/slo" => {
                let p = plane.lock().expect("plane lock");
                ("200 OK", "application/json", render_slo_json(&p))
            }
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// A tiny blocking HTTP GET against `addr` (test and smoke-tool
/// helper; not a general client). Returns `(status_line, body)`.
///
/// # Errors
///
/// Returns connection/read errors or a malformed response error.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator"));
    };
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::LiveConfig;
    use crate::slo::SloSpec;
    use oram_util::{LiveObserver, ServeClass};

    fn plane() -> Arc<Mutex<LivePlane>> {
        let p = LivePlane::shared(LiveConfig {
            window_cycles: 1_000,
            tenants: 1,
            shards: 1,
            stash_bound: 100,
            slos: SloSpec::default_set(500),
            event_capacity: 64,
        });
        {
            let mut g = p.lock().unwrap();
            for i in 0..100u64 {
                g.request_complete(i * 100, 0, 0, ServeClass::Stash, 50, false);
            }
        }
        p
    }

    #[test]
    fn serves_all_routes_and_shuts_down() {
        let plane = plane();
        let server = MetricsServer::start("127.0.0.1:0", plane.clone()).expect("bind");
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics").expect("scrape");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("oram_requests_completed_total 100"));

        let (status, body) = http_get(addr, "/healthz").expect("healthz");
        assert!(status.contains("200"));
        assert!(body.contains("\"status\""));

        let (status, body) = http_get(addr, "/slo").expect("slo");
        assert!(status.contains("200"));
        assert!(body.contains("\"objectives\""));

        let (status, _) = http_get(addr, "/nope").expect("404 route");
        assert!(status.contains("404"));

        server.shutdown();
        // The port is released: connecting now fails or the probe sees
        // no HTTP answer. A rebind on the same port must succeed.
        let again = MetricsServer::start(&addr.to_string(), plane).expect("rebind after shutdown");
        again.shutdown();
    }

    #[test]
    fn scrapes_observe_live_updates() {
        let plane = plane();
        let server = MetricsServer::start("127.0.0.1:0", plane.clone()).expect("bind");
        let (_, before) = http_get(server.local_addr(), "/metrics").expect("scrape");
        {
            let mut g = plane.lock().unwrap();
            g.request_complete(1_000_000, 0, 0, ServeClass::Stash, 50, false);
        }
        let (_, after) = http_get(server.local_addr(), "/metrics").expect("scrape");
        assert!(before.contains("oram_requests_completed_total 100"));
        assert!(after.contains("oram_requests_completed_total 101"));
        server.shutdown();
    }
}

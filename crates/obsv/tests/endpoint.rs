//! Integration tests for the observability plane's external surface:
//! the Prometheus exposition format is pinned against a golden file,
//! and concurrent scrapes under load must always see a conserved
//! snapshot (window deltas summing to the registry totals).

use oram_obsv::{
    http_get, render_prometheus, LiveConfig, LivePlane, MetricsServer, SloSpec,
};
use oram_util::{LiveObserver, MetricId, ServeClass, TelemetrySink};

/// A deterministic plane exercising every exported family: two tenants,
/// two shards, several serve classes, engine-side stash samples, and
/// enough traffic to close multiple windows.
fn golden_plane() -> LivePlane {
    let mut p = LivePlane::new(LiveConfig {
        window_cycles: 10_000,
        tenants: 2,
        shards: 2,
        stash_bound: 100,
        slos: SloSpec::default_set(5_000),
        event_capacity: 64,
    });
    for i in 0..2_000u64 {
        let class = match i % 4 {
            0 => ServeClass::Stash,
            1 => ServeClass::DramReal,
            2 => ServeClass::DramShadow,
            _ => ServeClass::Dummy,
        };
        p.request_complete(i * 37, (i % 2) as u32, (i % 2) as u32, class, 1_000 + (i % 7) * 991, i % 5 == 0);
        if i % 11 == 0 {
            p.request_rejected(i * 37, (i % 2) as u32);
        }
        if i % 13 == 0 {
            p.sample(MetricId::StashOccupancy, i % 40);
        }
    }
    p.flush();
    p
}

const GOLDEN: &str = include_str!("golden_metrics.prom");

/// The exposition format is part of the public contract: dashboards and
/// the CI smoke diff parse it. Any intentional change regenerates the
/// golden via `cargo test -p oram-obsv --test endpoint -- --ignored`.
#[test]
fn prometheus_exposition_matches_the_golden_file() {
    let rendered = render_prometheus(&golden_plane());
    assert_eq!(
        rendered, GOLDEN,
        "exposition format drifted from the golden file; if intentional, regenerate with \
         `cargo test -p oram-obsv --test endpoint -- --ignored`"
    );
}

/// Regenerates the golden file in the source tree. Run manually after
/// an intentional format change, then review the diff.
#[test]
#[ignore]
fn regenerate_golden_metrics() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.prom");
    std::fs::write(path, render_prometheus(&golden_plane())).expect("write golden");
}

/// Scrapes taken mid-load must each be internally consistent, and the
/// plane must conserve every count across its windows: after the run,
/// `folded + ring + open == totals`, and the final scrape reports
/// exactly the traffic that was fed.
#[test]
fn scrapes_under_load_observe_conserved_snapshots() {
    let plane = LivePlane::shared(LiveConfig {
        window_cycles: 1_000,
        tenants: 2,
        shards: 1,
        stash_bound: 100,
        slos: SloSpec::default_set(500),
        event_capacity: 64,
    });
    let server = MetricsServer::start("127.0.0.1:0", plane.clone()).expect("bind");
    let addr = server.local_addr();

    const TOTAL: u64 = 5_000;
    let feeder = {
        let plane = plane.clone();
        std::thread::spawn(move || {
            for i in 0..TOTAL {
                let mut p = plane.lock().expect("plane lock");
                p.request_complete(i * 17, (i % 2) as u32, 0, ServeClass::Stash, 300 + i % 500, false);
            }
        })
    };

    // Scrape continuously while the feeder runs. Every snapshot must
    // parse, be monotone in the completed counter, and conserve its
    // windows (the plane checks the law under its own lock).
    let mut last_completed = 0u64;
    let mut scrapes = 0u32;
    while !feeder.is_finished() || scrapes < 3 {
        let (status, body) = http_get(addr, "/metrics").expect("scrape");
        assert!(status.contains("200"), "{status}");
        let completed: u64 = body
            .lines()
            .find_map(|l| l.strip_prefix("oram_requests_completed_total "))
            .expect("completed counter present")
            .trim()
            .parse()
            .expect("numeric");
        assert!(completed >= last_completed, "counter went backwards");
        last_completed = completed;
        {
            let p = plane.lock().expect("plane lock");
            p.validate_conservation().expect("mid-load snapshot conserves");
        }
        scrapes += 1;
        if scrapes > 10_000 {
            panic!("feeder never finished");
        }
    }
    feeder.join().expect("feeder");

    {
        let mut p = plane.lock().expect("plane lock");
        p.flush();
        p.validate_conservation().expect("final state conserves");
    }
    let (_, body) = http_get(addr, "/metrics").expect("final scrape");
    assert!(
        body.contains(&format!("oram_requests_completed_total {TOTAL}\n")),
        "final scrape must report all {TOTAL} completions"
    );
    // The window deltas sum to the registry totals: count the closed
    // windows' contributions through the plane accessors.
    {
        let p = plane.lock().expect("plane lock");
        let ring_sum: u64 = (0..p.closed_windows().min(16) as usize)
            .filter_map(|i| p.ring_window(i).map(|w| w.completed))
            .sum();
        assert!(ring_sum <= TOTAL);
        assert_eq!(p.total().completed, TOTAL);
    }
    server.shutdown();
}

/// The sketch quantiles served over HTTP agree with an exact post-hoc
/// histogram of the same samples within the documented 1/16 bound.
#[test]
fn served_quantiles_agree_with_exact_histogram() {
    let plane = LivePlane::shared(LiveConfig {
        window_cycles: 100_000,
        tenants: 1,
        shards: 1,
        stash_bound: 100,
        slos: SloSpec::default_set(500),
        event_capacity: 64,
    });
    let mut exact: Vec<u64> = Vec::new();
    {
        let mut p = plane.lock().unwrap();
        let mut x = 0x2545f4914f6cdd1du64;
        for i in 0..20_000u64 {
            // xorshift-mixed heavy-tailed latencies.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 500 + (x % 50_000);
            p.request_complete(i * 29, 0, 0, ServeClass::Stash, v, false);
            exact.push(v);
        }
    }
    let server = MetricsServer::start("127.0.0.1:0", plane.clone()).expect("bind");
    let (_, body) = http_get(server.local_addr(), "/metrics").expect("scrape");
    server.shutdown();

    exact.sort_unstable();
    for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
        let got: f64 = body
            .lines()
            .find_map(|l| {
                l.strip_prefix(&format!("oram_latency_cycles{{quantile=\"{label}\"}} "))
            })
            .expect("quantile line")
            .trim()
            .parse()
            .expect("numeric");
        let idx = ((q * (exact.len() - 1) as f64).round() as usize).min(exact.len() - 1);
        let want = exact[idx] as f64;
        let err = (got - want).abs() / want;
        assert!(err <= 1.0 / 16.0 + 1e-9, "q={q}: served {got}, exact {want}, err {err}");
    }
}

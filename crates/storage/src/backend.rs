//! The storage-backend trait: batched block I/O with deterministic
//! timing, a per-batch cost breakdown, and optional payload
//! persistence.

use oram_dram::{BlockRequest, ChannelStats, ChannelUtilization, TxBreakdown};
use oram_protocol::Block;
use oram_util::{SharedObserver, SharedTelemetry};

/// Cycle decomposition of one serviced batch's critical (slowest)
/// request, in the backend clock domain.
///
/// The four cost components partition `[base, finish]` exactly, where
/// `base = max(now, arrival)` is when the batch entered the backend:
/// `queue + row + network + transfer == finish − base`. The engine
/// converts the boundaries to CPU cycles with a monotone clamped
/// cursor, so per-access attribution always sums to the span duration
/// regardless of clock-domain rounding.
///
/// Components map per backend:
///
/// * DRAM — `queue` is bank/bus/refresh wait, `row` is
///   precharge/activate, `transfer` is CAS + burst; `network` is 0.
/// * Disk — `row` models device positioning (seek/settle) per batch,
///   `transfer` is per-block media transfer; `queue` and `network`
///   are 0.
/// * WAN — `network` is the round-trip latency paid once per request
///   round (batching amortizes it), `transfer` is serialized bytes on
///   the link; `queue` and `row` are 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchBreakdown {
    /// Cycles waiting before the critical request could make progress.
    pub queue: u64,
    /// Cycles of device positioning (DRAM row operations, disk seek).
    pub row: u64,
    /// Cycles of network round-trip latency (0 for local backends).
    pub network: u64,
    /// Cycles of data transfer for the critical request.
    pub transfer: u64,
    /// Absolute finish time (backend clock) of the critical request.
    pub finish: i64,
}

impl BatchBreakdown {
    /// Lifts the DRAM model's critical-transaction breakdown into the
    /// backend-agnostic form (`network` = 0).
    pub fn from_tx(tx: TxBreakdown) -> Self {
        BatchBreakdown {
            queue: tx.queue,
            row: tx.row,
            network: 0,
            transfer: tx.transfer,
            finish: tx.finish,
        }
    }
}

/// A bucket-storage backend: services batched block requests with
/// deterministic completion times and optionally persists bucket
/// payloads.
///
/// The contract mirrors how the engine drives the DRAM model:
///
/// * [`StorageBackend::service_batch_into`] is the hot path — called
///   once per DRAM phase with a reused request buffer, it must write
///   one completion time per request (submission order) into the
///   caller's buffer and **allocate nothing** in steady state.
/// * Each request must be reported to the attached bus observer as a
///   [`oram_util::BusEvent::DramBlock`] *in submission order* before
///   timing is computed, so bus traces are backend-invariant and the
///   obliviousness audit applies unchanged.
/// * Completion times are in the backend clock domain (the engine
///   converts; see `SystemConfig::to_dram_cycles`). State may persist
///   across batches (DRAM row buffers do; the WAN model is
///   stateless).
/// * [`StorageBackend::last_batch_breakdown`] reports the critical
///   request's cost split for the most recent non-empty batch.
///
/// Payload persistence is opt-in: backends that return `true` from
/// [`StorageBackend::wants_payloads`] receive the post-eviction bucket
/// contents via [`StorageBackend::persist_bucket`]. The default no-op
/// implementations keep the timing-only backends allocation-free.
pub trait StorageBackend: std::fmt::Debug + Send {
    /// Services a batch of block requests arriving together at backend
    /// cycle `now`, writing each request's completion cycle into
    /// `finishes` (cleared and resized) **in submission order**.
    /// `occupy_bus` is false when the XOR-compression hub consumes read
    /// data locally instead of transferring every block.
    fn service_batch_into(
        &mut self,
        now: i64,
        reqs: &[BlockRequest],
        occupy_bus: bool,
        finishes: &mut Vec<i64>,
    );

    /// Cost decomposition of the most recent batch's critical request;
    /// `None` if the last batch was empty. Valid until the next
    /// [`StorageBackend::service_batch_into`] call.
    fn last_batch_breakdown(&self) -> Option<BatchBreakdown>;

    /// Attaches (or with `None` detaches) a bus observer that must see
    /// every block request at submission, in order.
    fn set_observer(&mut self, observer: Option<SharedObserver>);

    /// Attaches (or with `None` detaches) a telemetry sink (queue-depth
    /// sampling and the like; backends without queues may ignore it).
    fn set_telemetry(&mut self, telemetry: Option<SharedTelemetry>);

    /// Merged request statistics over the run.
    fn stats(&self) -> ChannelStats;

    /// Energy counters over the run (all-zero for backends without an
    /// energy model).
    fn energy(&self) -> oram_dram::EnergyCounters;

    /// Per-channel utilization snapshots (allocates; call at run
    /// boundaries). Empty for backends without channels.
    fn utilization(&self) -> Vec<ChannelUtilization> {
        Vec::new()
    }

    /// `true` when the backend durably stores bucket payloads and wants
    /// [`StorageBackend::persist_bucket`] calls after eviction writes.
    fn wants_payloads(&self) -> bool {
        false
    }

    /// Durably records the post-write contents of one bucket (heap
    /// index `bucket`). Only called when
    /// [`StorageBackend::wants_payloads`] returns `true`.
    fn persist_bucket(&mut self, _bucket: u64, _slots: &[Block]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_lifts_tx_with_zero_network() {
        let tx = TxBreakdown { queue: 5, row: 7, transfer: 11, finish: 40 };
        let bd = BatchBreakdown::from_tx(tx);
        assert_eq!(bd.queue, 5);
        assert_eq!(bd.row, 7);
        assert_eq!(bd.network, 0);
        assert_eq!(bd.transfer, 11);
        assert_eq!(bd.finish, 40);
    }
}

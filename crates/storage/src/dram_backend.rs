//! The DRAM timing model behind the storage trait.

use oram_dram::{
    BlockRequest, ChannelStats, ChannelUtilization, DramConfig, DramSystem, EnergyCounters,
};
use oram_util::{SharedObserver, SharedTelemetry};

use crate::backend::{BatchBreakdown, StorageBackend};

/// The existing bank-level DDR3 model wrapped behind [`StorageBackend`].
///
/// A zero-cost wrapper: every trait method forwards to the identically
/// shaped [`DramSystem`] call, so an engine instantiated with this
/// backend produces byte-identical traces, statistics and timings to
/// the pre-trait code, and the hot path stays allocation-free (the
/// engine's generic parameter resolves these calls statically).
#[derive(Debug, Clone)]
pub struct DramBackend {
    system: DramSystem,
}

impl DramBackend {
    /// Builds the backend from a DRAM configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error, if any.
    pub fn new(cfg: DramConfig) -> Result<Self, String> {
        Ok(DramBackend { system: DramSystem::new(cfg)? })
    }

    /// The wrapped DRAM system (utilization counters, energy, config).
    pub fn system(&self) -> &DramSystem {
        &self.system
    }
}

impl StorageBackend for DramBackend {
    #[inline]
    fn service_batch_into(
        &mut self,
        now: i64,
        reqs: &[BlockRequest],
        occupy_bus: bool,
        finishes: &mut Vec<i64>,
    ) {
        self.system.service_batch_into(now, reqs, occupy_bus, finishes);
    }

    #[inline]
    fn last_batch_breakdown(&self) -> Option<BatchBreakdown> {
        self.system.last_batch_breakdown().map(BatchBreakdown::from_tx)
    }

    fn set_observer(&mut self, observer: Option<SharedObserver>) {
        self.system.set_observer(observer);
    }

    fn set_telemetry(&mut self, telemetry: Option<SharedTelemetry>) {
        self.system.set_telemetry(telemetry);
    }

    fn stats(&self) -> ChannelStats {
        self.system.stats()
    }

    fn energy(&self) -> EnergyCounters {
        self.system.energy()
    }

    fn utilization(&self) -> Vec<ChannelUtilization> {
        self.system.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_matches_the_raw_system_exactly() {
        let cfg = DramConfig::ddr3_1333();
        let mut raw = DramSystem::new(cfg).unwrap();
        let mut wrapped = DramBackend::new(cfg).unwrap();
        let reqs: Vec<BlockRequest> =
            (0..64).map(|i| if i % 7 == 0 { BlockRequest::write(i) } else { BlockRequest::read(i) }).collect();
        let mut fr = Vec::new();
        let mut fw = Vec::new();
        let mut now = 0i64;
        for _ in 0..4 {
            raw.service_batch_into(now, &reqs, true, &mut fr);
            wrapped.service_batch_into(now, &reqs, true, &mut fw);
            assert_eq!(fr, fw);
            now = *fr.iter().max().unwrap();
        }
        assert_eq!(raw.stats(), wrapped.stats());
        assert_eq!(raw.energy(), wrapped.energy());
        let tx = raw.last_batch_breakdown().unwrap();
        let bd = wrapped.last_batch_breakdown().unwrap();
        assert_eq!(bd, BatchBreakdown::from_tx(tx));
        assert_eq!(bd.network, 0);
    }
}

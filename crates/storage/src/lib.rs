//! # oram-storage
//!
//! Pluggable bucket-storage backends for the ORAM engine.
//!
//! Everything below the ORAM controller used to be hard-wired to the
//! bank-level DDR3 timing model; this crate turns that boundary into a
//! trait. A [`StorageBackend`] answers batched block I/O with
//! deterministic completion times in the backend clock domain, reports
//! a per-batch cost breakdown the engine folds into its cycle
//! attribution, and (for persistent backends) durably stores bucket
//! payloads.
//!
//! Three implementations ship:
//!
//! * [`DramBackend`] — the existing [`oram_dram::DramSystem`] behind the
//!   trait. Byte-identical traces, statistics and zero-alloc behavior
//!   versus calling the DRAM model directly: the wrapper adds no state
//!   and the engine's generic parameter resolves it statically.
//! * [`DiskBackend`] — a persistent on-disk bucket store
//!   ([`DiskStore`]: fixed-size records, write-ahead log, crash-safe
//!   recovery) plus a seek/transfer latency model.
//! * [`WanBackend`] — a deterministic simulated network store:
//!   configurable RTT and per-block transfer time, with request
//!   batching that amortizes round trips (the core lever of
//!   "Optimizing Path ORAM for Cloud Storage Applications").
//!
//! All backends emit the same [`oram_util::BusEvent::DramBlock`] stream
//! per request in submission order, so the obliviousness audit checks
//! one backend-agnostic event vocabulary and traces are
//! backend-invariant for a fixed (seed, policy).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod disk;
mod dram_backend;
mod wan;

pub use backend::{BatchBreakdown, StorageBackend};
pub use disk::{DiskBackend, DiskConfig, DiskStore, RecoveredBucket};
pub use dram_backend::DramBackend;
pub use wan::{WanBackend, WanConfig};

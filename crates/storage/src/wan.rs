//! A deterministic simulated-WAN storage backend: buckets live across a
//! network, so the dominant cost is round-trip latency, and batching
//! path requests amortizes it.

use oram_dram::{BlockRequest, ChannelStats, EnergyCounters};
use oram_util::{BusEvent, SharedObserver, SharedTelemetry};

use crate::backend::{BatchBreakdown, StorageBackend};

/// Cost model of the simulated network store. All times are in backend
/// cycles (the engine converts from CPU cycles exactly as it does for
/// the DRAM clock), and the model is jitter-free: two runs with the
/// same configuration produce bit-identical timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanConfig {
    /// Round-trip latency paid once per request round.
    pub rtt_cycles: u64,
    /// Link serialization time per 64-byte block (the bandwidth term).
    pub per_block_cycles: u64,
    /// Requests per network round: a path access of `n` blocks costs
    /// `ceil(n / batch)` round trips. 1 models naive per-block RPCs;
    /// larger values amortize the RTT (the cloud-ORAM batching lever).
    pub batch: usize,
}

impl WanConfig {
    /// A 10 ms-class WAN at DRAM-cycle resolution: the regime where the
    /// RTT dwarfs every other term.
    pub fn default_wan() -> Self {
        WanConfig { rtt_cycles: 666_667, per_block_cycles: 8, batch: 4 }
    }

    /// Builds a config from an RTT in microseconds and the backend
    /// clock period in nanoseconds (`tck_ns`, the DRAM tCK the engine's
    /// clock conversion already uses).
    pub fn from_rtt_us(rtt_us: f64, tck_ns: f64, per_block_cycles: u64, batch: usize) -> Self {
        WanConfig {
            rtt_cycles: ((rtt_us * 1000.0) / tck_ns).round().max(1.0) as u64,
            per_block_cycles,
            batch,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.rtt_cycles == 0 {
            return Err("wan: rtt_cycles must be positive".into());
        }
        if self.batch == 0 {
            return Err("wan: batch must be positive".into());
        }
        Ok(())
    }
}

/// The simulated-WAN backend.
///
/// Request `i` of a batch completes at
/// `now + (i / batch + 1) * rtt + transfer(i)`: its round's round trip
/// plus the link serialization of everything up to and including it.
/// With XOR compression (`occupy_bus == false`) the remote hub returns
/// one combined block, so the transfer term is a single block per
/// round instead of cumulative.
#[derive(Debug, Clone)]
pub struct WanBackend {
    cfg: WanConfig,
    observer: Option<SharedObserver>,
    stats: ChannelStats,
    last: Option<BatchBreakdown>,
}

impl WanBackend {
    /// Builds the backend.
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error, if any.
    pub fn new(cfg: WanConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(WanBackend { cfg, observer: None, stats: ChannelStats::default(), last: None })
    }

    /// The cost model in force.
    pub fn config(&self) -> &WanConfig {
        &self.cfg
    }
}

impl StorageBackend for WanBackend {
    fn service_batch_into(
        &mut self,
        now: i64,
        reqs: &[BlockRequest],
        occupy_bus: bool,
        finishes: &mut Vec<i64>,
    ) {
        if let Some(obs) = &self.observer {
            let mut obs = obs.lock().expect("bus observer poisoned");
            for r in reqs {
                obs.on_event(BusEvent::DramBlock { addr: r.addr, write: r.is_write });
            }
        }
        finishes.clear();
        finishes.resize(reqs.len(), 0);
        if reqs.is_empty() {
            self.last = None;
            return;
        }
        let rtt = self.cfg.rtt_cycles as i64;
        let per_block = self.cfg.per_block_cycles as i64;
        let batch = self.cfg.batch as i64;
        for (i, r) in reqs.iter().enumerate() {
            if r.is_write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            let i = i as i64;
            let round = i / batch;
            let transfer = if occupy_bus { (i + 1) * per_block } else { per_block };
            finishes[i as usize] = now + (round + 1) * rtt + transfer;
        }
        let n = reqs.len() as i64;
        let rounds = (n - 1) / batch + 1;
        let transfer = if occupy_bus { n * per_block } else { per_block };
        self.last = Some(BatchBreakdown {
            queue: 0,
            row: 0,
            network: (rounds * rtt) as u64,
            transfer: transfer as u64,
            finish: now + rounds * rtt + transfer,
        });
    }

    fn last_batch_breakdown(&self) -> Option<BatchBreakdown> {
        self.last
    }

    fn set_observer(&mut self, observer: Option<SharedObserver>) {
        self.observer = observer;
    }

    fn set_telemetry(&mut self, _telemetry: Option<SharedTelemetry>) {}

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn energy(&self) -> EnergyCounters {
        EnergyCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::{Arc, Mutex};

    use oram_util::BusObserver;

    use super::*;

    #[derive(Debug, Default)]
    struct Tape(Vec<BusEvent>);
    impl BusObserver for Tape {
        fn on_event(&mut self, e: BusEvent) {
            self.0.push(e);
        }
    }

    fn run(cfg: WanConfig, n: usize) -> (Vec<i64>, BatchBreakdown) {
        let mut wan = WanBackend::new(cfg).unwrap();
        let reqs: Vec<BlockRequest> = (0..n as u64).map(BlockRequest::read).collect();
        let mut f = Vec::new();
        wan.service_batch_into(1000, &reqs, true, &mut f);
        let bd = wan.last_batch_breakdown().unwrap();
        (f, bd)
    }

    #[test]
    fn breakdown_partitions_the_batch_exactly() {
        let cfg = WanConfig { rtt_cycles: 500, per_block_cycles: 3, batch: 4 };
        let (f, bd) = run(cfg, 10);
        assert_eq!(bd.finish, *f.iter().max().unwrap());
        assert_eq!(bd.queue + bd.row + bd.network + bd.transfer, (bd.finish - 1000) as u64);
        // 10 requests in rounds of 4 => 3 round trips.
        assert_eq!(bd.network, 3 * 500);
        assert_eq!(bd.transfer, 10 * 3);
    }

    #[test]
    fn batching_amortizes_round_trips_monotonically() {
        // Fixed RTT, growing batch: the batch finish time must be
        // monotone non-increasing in the batch size, strictly down from
        // batch 1 to 2 while rounds still dominate.
        let finishes: Vec<i64> = [1, 2, 4, 8, 16, 32]
            .iter()
            .map(|&b| {
                let cfg = WanConfig { rtt_cycles: 10_000, per_block_cycles: 2, batch: b };
                run(cfg, 52).1.finish
            })
            .collect();
        for w in finishes.windows(2) {
            assert!(w[1] <= w[0], "batching must never slow a batch: {finishes:?}");
        }
        assert!(finishes[1] < finishes[0], "doubling the batch must save round trips");
    }

    #[test]
    fn xor_mode_transfers_one_block_per_round() {
        let cfg = WanConfig { rtt_cycles: 500, per_block_cycles: 7, batch: 64 };
        let mut wan = WanBackend::new(cfg).unwrap();
        let reqs: Vec<BlockRequest> = (0..8).map(BlockRequest::read).collect();
        let mut f = Vec::new();
        wan.service_batch_into(0, &reqs, false, &mut f);
        assert_eq!(wan.last_batch_breakdown().unwrap().transfer, 7);
    }

    #[test]
    fn observer_sees_every_request_in_order() {
        let tape = Arc::new(Mutex::new(Tape::default()));
        let mut wan = WanBackend::new(WanConfig::default_wan()).unwrap();
        wan.set_observer(Some(tape.clone()));
        let reqs =
            vec![BlockRequest::read(7), BlockRequest::write(9), BlockRequest::read(11)];
        let mut f = Vec::new();
        wan.service_batch_into(0, &reqs, true, &mut f);
        let got = &tape.lock().unwrap().0;
        assert_eq!(
            got.as_slice(),
            &[
                BusEvent::DramBlock { addr: 7, write: false },
                BusEvent::DramBlock { addr: 9, write: true },
                BusEvent::DramBlock { addr: 11, write: false },
            ]
        );
        assert_eq!(wan.stats().reads, 2);
        assert_eq!(wan.stats().writes, 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(WanBackend::new(WanConfig { rtt_cycles: 0, per_block_cycles: 1, batch: 1 })
            .is_err());
        assert!(WanBackend::new(WanConfig { rtt_cycles: 1, per_block_cycles: 1, batch: 0 })
            .is_err());
        let c = WanConfig::from_rtt_us(1000.0, 1.5, 4, 8);
        assert_eq!(c.rtt_cycles, 666_667);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = WanConfig { rtt_cycles: 123, per_block_cycles: 5, batch: 3 };
        assert_eq!(run(cfg, 17), run(cfg, 17));
    }
}

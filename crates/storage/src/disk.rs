//! A persistent on-disk bucket store with crash-consistent writes, plus
//! the [`StorageBackend`] wrapper that adds a seek/transfer latency
//! model on top of it.
//!
//! Layout (one directory per ORAM shard):
//!
//! * `buckets.dat` — a 24-byte header (magic, bucket arity `z`, bucket
//!   count) followed by one fixed-size checksummed record per bucket.
//! * `wal.log` — a write-ahead log of the same records. Every bucket
//!   write appends to the WAL (flushed) before touching `buckets.dat`,
//!   so a crash mid-record leaves either a torn WAL tail (the write
//!   never committed; the tail is discarded on recovery) or a torn
//!   in-place record shadowed by a complete WAL entry (replayed on
//!   recovery). A torn bucket is therefore never observable after
//!   [`DiskStore::open`] returns.
//!
//! Records carry an FNV-1a-64 checksum over the bucket id and block
//! payloads; an all-zero (never-written) record fails the checksum and
//! reads as absent rather than as a bucket of garbage.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use oram_dram::{BlockRequest, ChannelStats, EnergyCounters};
use oram_protocol::{Block, BlockAddr, BlockKind, LeafLabel};
use oram_util::{BusEvent, SharedObserver, SharedTelemetry};

use crate::backend::{BatchBreakdown, StorageBackend};

/// `b"ORAMDSK1"` little-endian: identifies `buckets.dat`.
const MAGIC: u64 = u64::from_le_bytes(*b"ORAMDSK1");
/// Bytes per serialized block: kind tag + addr + label + data + version.
const BLOCK_BYTES: usize = 1 + 8 + 8 + 8 + 8;
/// Header bytes in `buckets.dat`: magic, z, bucket count.
const HEADER_BYTES: u64 = 24;
/// WAL records between automatic checkpoints (WAL truncations).
const CHECKPOINT_EVERY: u64 = 1024;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_block(block: &Block, out: &mut Vec<u8>) {
    let kind = match block.kind {
        BlockKind::Dummy => 0u8,
        BlockKind::Real => 1,
        BlockKind::Shadow => 2,
    };
    out.push(kind);
    out.extend_from_slice(&block.addr.raw().to_le_bytes());
    out.extend_from_slice(&block.label.raw().to_le_bytes());
    out.extend_from_slice(&block.data.to_le_bytes());
    out.extend_from_slice(&block.version.to_le_bytes());
}

fn decode_block(bytes: &[u8]) -> Result<Block, String> {
    let kind = match bytes[0] {
        0 => BlockKind::Dummy,
        1 => BlockKind::Real,
        2 => BlockKind::Shadow,
        k => return Err(format!("disk: invalid block kind tag {k}")),
    };
    let u = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    Ok(Block {
        kind,
        addr: BlockAddr::new(u(1)),
        label: LeafLabel::new(u(9)),
        data: u(17),
        version: u(25),
    })
}

/// A bucket whose contents were restored from the write-ahead log when
/// the store was reopened (i.e. the previous process stopped between
/// the WAL append and a durable in-place write).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredBucket {
    /// Heap index of the bucket.
    pub bucket: u64,
    /// The committed slot contents replayed over `buckets.dat`.
    pub slots: Vec<Block>,
}

/// The persistent bucket store: fixed-record main file plus
/// write-ahead log. Pure storage — no timing; [`DiskBackend`] layers
/// the latency model on top.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    data: File,
    wal: File,
    z: usize,
    bucket_count: u64,
    wal_records: u64,
    recovered: Vec<RecoveredBucket>,
    scratch: Vec<u8>,
}

impl DiskStore {
    fn record_bytes(z: usize) -> usize {
        8 + z * BLOCK_BYTES + 8
    }

    fn record_offset(&self, bucket: u64) -> u64 {
        HEADER_BYTES + bucket * Self::record_bytes(self.z) as u64
    }

    /// Opens (creating if absent) the store at `dir` for a tree of
    /// `bucket_count` buckets of arity `z`, running crash recovery:
    /// complete write-ahead records are replayed over `buckets.dat`
    /// (fixing any torn in-place write) and a torn WAL tail is
    /// discarded, then the WAL is truncated.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if an existing store's geometry (z,
    /// bucket count) does not match.
    pub fn open(dir: &Path, z: usize, bucket_count: u64) -> Result<DiskStore, String> {
        if z == 0 || bucket_count == 0 {
            return Err("disk: z and bucket_count must be positive".into());
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("disk: create {}: {e}", dir.display()))?;
        let data_path = dir.join("buckets.dat");
        let wal_path = dir.join("wal.log");
        let mut data = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&data_path)
            .map_err(|e| format!("disk: open {}: {e}", data_path.display()))?;
        let file_len =
            data.metadata().map_err(|e| format!("disk: stat buckets.dat: {e}"))?.len();
        let full_len = HEADER_BYTES + bucket_count * Self::record_bytes(z) as u64;
        if file_len == 0 {
            let mut header = Vec::with_capacity(HEADER_BYTES as usize);
            header.extend_from_slice(&MAGIC.to_le_bytes());
            header.extend_from_slice(&(z as u64).to_le_bytes());
            header.extend_from_slice(&bucket_count.to_le_bytes());
            data.write_all(&header).map_err(|e| format!("disk: write header: {e}"))?;
            data.set_len(full_len).map_err(|e| format!("disk: size buckets.dat: {e}"))?;
        } else {
            let mut header = [0u8; HEADER_BYTES as usize];
            data.seek(SeekFrom::Start(0)).map_err(|e| format!("disk: seek: {e}"))?;
            data.read_exact(&mut header).map_err(|e| format!("disk: read header: {e}"))?;
            let field = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
            if field(0) != MAGIC {
                return Err("disk: buckets.dat has wrong magic".into());
            }
            if field(8) != z as u64 || field(16) != bucket_count {
                return Err(format!(
                    "disk: geometry mismatch: store has z={} buckets={}, expected z={z} buckets={bucket_count}",
                    field(8),
                    field(16)
                ));
            }
            if file_len < full_len {
                // A crash between header write and set_len, or mid-grow:
                // extend to full size (missing records read as absent).
                data.set_len(full_len).map_err(|e| format!("disk: size buckets.dat: {e}"))?;
            }
        }
        let wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(|e| format!("disk: open {}: {e}", wal_path.display()))?;
        let mut store = DiskStore {
            dir: dir.to_path_buf(),
            data,
            wal,
            z,
            bucket_count,
            wal_records: 0,
            recovered: Vec::new(),
            scratch: Vec::with_capacity(Self::record_bytes(z)),
        };
        store.recover()?;
        Ok(store)
    }

    /// Replays complete, checksum-valid WAL records over `buckets.dat`,
    /// discards the torn tail (if any), then truncates the WAL.
    fn recover(&mut self) -> Result<(), String> {
        let mut log = Vec::new();
        self.wal.seek(SeekFrom::Start(0)).map_err(|e| format!("disk: seek wal: {e}"))?;
        self.wal.read_to_end(&mut log).map_err(|e| format!("disk: read wal: {e}"))?;
        let rec = Self::record_bytes(self.z);
        for chunk in log.chunks_exact(rec) {
            let body = &chunk[..rec - 8];
            let stored = u64::from_le_bytes(chunk[rec - 8..].try_into().unwrap());
            if fnv1a(body) != stored {
                break; // torn tail: this record never committed
            }
            let bucket = u64::from_le_bytes(chunk[..8].try_into().unwrap());
            if bucket >= self.bucket_count {
                break; // corrupt id: treat like a torn record
            }
            let mut slots = Vec::with_capacity(self.z);
            for s in 0..self.z {
                slots.push(decode_block(&chunk[8 + s * BLOCK_BYTES..])?);
            }
            let off = self.record_offset(bucket);
            self.data.seek(SeekFrom::Start(off)).map_err(|e| format!("disk: seek: {e}"))?;
            self.data.write_all(chunk).map_err(|e| format!("disk: replay: {e}"))?;
            self.recovered.push(RecoveredBucket { bucket, slots });
        }
        self.data.flush().map_err(|e| format!("disk: flush: {e}"))?;
        self.truncate_wal()
    }

    fn truncate_wal(&mut self) -> Result<(), String> {
        self.wal.set_len(0).map_err(|e| format!("disk: truncate wal: {e}"))?;
        self.wal.seek(SeekFrom::Start(0)).map_err(|e| format!("disk: seek wal: {e}"))?;
        self.wal_records = 0;
        Ok(())
    }

    /// Buckets restored from the WAL by the last [`DiskStore::open`].
    pub fn recovered(&self) -> &[RecoveredBucket] {
        &self.recovered
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bucket arity the store was opened with.
    pub fn z(&self) -> usize {
        self.z
    }

    /// Durably writes one bucket: WAL append (flushed) first, then the
    /// in-place record, with an automatic checkpoint every
    /// [`CHECKPOINT_EVERY`] writes.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if `slots.len() != z` / `bucket` out of
    /// range.
    pub fn write_bucket(&mut self, bucket: u64, slots: &[Block]) -> Result<(), String> {
        if bucket >= self.bucket_count {
            return Err(format!("disk: bucket {bucket} out of range"));
        }
        if slots.len() != self.z {
            return Err(format!("disk: got {} slots, store has z={}", slots.len(), self.z));
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(&bucket.to_le_bytes());
        for b in slots {
            encode_block(b, &mut self.scratch);
        }
        let sum = fnv1a(&self.scratch);
        self.scratch.extend_from_slice(&sum.to_le_bytes());
        self.wal.write_all(&self.scratch).map_err(|e| format!("disk: wal append: {e}"))?;
        self.wal.flush().map_err(|e| format!("disk: wal flush: {e}"))?;
        let off = self.record_offset(bucket);
        self.data.seek(SeekFrom::Start(off)).map_err(|e| format!("disk: seek: {e}"))?;
        self.data.write_all(&self.scratch).map_err(|e| format!("disk: write: {e}"))?;
        self.wal_records += 1;
        if self.wal_records >= CHECKPOINT_EVERY {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Forces the in-place file down and truncates the WAL. Called
    /// automatically every [`CHECKPOINT_EVERY`] writes.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn checkpoint(&mut self) -> Result<(), String> {
        self.data.flush().map_err(|e| format!("disk: flush: {e}"))?;
        self.truncate_wal()
    }

    /// Reads one bucket; `Ok(None)` if it was never written.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, an out-of-range index, or a checksum
    /// mismatch (a torn record — impossible after a clean
    /// [`DiskStore::open`]).
    pub fn read_bucket(&mut self, bucket: u64) -> Result<Option<Vec<Block>>, String> {
        if bucket >= self.bucket_count {
            return Err(format!("disk: bucket {bucket} out of range"));
        }
        let rec = Self::record_bytes(self.z);
        self.scratch.clear();
        self.scratch.resize(rec, 0);
        let off = self.record_offset(bucket);
        self.data.seek(SeekFrom::Start(off)).map_err(|e| format!("disk: seek: {e}"))?;
        self.data.read_exact(&mut self.scratch).map_err(|e| format!("disk: read: {e}"))?;
        if self.scratch.iter().all(|&b| b == 0) {
            return Ok(None); // never written
        }
        let body = &self.scratch[..rec - 8];
        let stored = u64::from_le_bytes(self.scratch[rec - 8..].try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(format!("disk: torn record for bucket {bucket}"));
        }
        let id = u64::from_le_bytes(self.scratch[..8].try_into().unwrap());
        if id != bucket {
            return Err(format!("disk: record id {id} does not match bucket {bucket}"));
        }
        let mut slots = Vec::with_capacity(self.z);
        for s in 0..self.z {
            slots.push(decode_block(&self.scratch[8 + s * BLOCK_BYTES..])?);
        }
        Ok(Some(slots))
    }
}

/// Configuration for [`DiskBackend`]: where the store lives, its
/// geometry, and the latency model.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Directory holding `buckets.dat` and `wal.log`.
    pub dir: PathBuf,
    /// Bucket arity (slots per bucket), matching the ORAM tree.
    pub z: usize,
    /// Number of buckets in the tree.
    pub bucket_count: u64,
    /// Positioning cost (seek/settle) charged once per batch, in
    /// backend cycles. Attributed to the `row` component.
    pub per_op_cycles: u64,
    /// Media transfer cost per block, in backend cycles.
    pub per_block_cycles: u64,
}

impl DiskConfig {
    /// A config with SSD-class default timing (~50 µs positioning,
    /// fast streaming) for the given store location and geometry.
    pub fn new(dir: PathBuf, z: usize, bucket_count: u64) -> Self {
        DiskConfig { dir, z, bucket_count, per_op_cycles: 40_000, per_block_cycles: 24 }
    }
}

/// [`DiskStore`] behind [`StorageBackend`]: deterministic
/// positioning + transfer timing for the engine, durable bucket
/// payloads on the side.
///
/// The persistent copy is a write-behind mirror of the in-memory tree
/// (the engine pushes post-eviction bucket contents via
/// [`StorageBackend::persist_bucket`]); reads are served from memory,
/// so the timing model charges positioning plus serialized block
/// transfers without consulting the files on the hot path.
#[derive(Debug)]
pub struct DiskBackend {
    cfg: DiskConfig,
    store: DiskStore,
    observer: Option<SharedObserver>,
    stats: ChannelStats,
    last: Option<BatchBreakdown>,
    io_error: Option<String>,
}

impl DiskBackend {
    /// Opens the store (running crash recovery) and builds the backend.
    ///
    /// # Errors
    ///
    /// Propagates [`DiskStore::open`] failures and rejects a
    /// zero-cycle transfer model.
    pub fn new(cfg: DiskConfig) -> Result<Self, String> {
        if cfg.per_block_cycles == 0 {
            return Err("disk: per_block_cycles must be positive".into());
        }
        let store = DiskStore::open(&cfg.dir, cfg.z, cfg.bucket_count)?;
        Ok(DiskBackend { cfg, store, observer: None, stats: ChannelStats::default(), last: None, io_error: None })
    }

    /// The underlying persistent store.
    pub fn store(&mut self) -> &mut DiskStore {
        &mut self.store
    }

    /// First persistence I/O error since the last call, if any. The
    /// trait's persistence hook cannot return errors, so failures are
    /// latched here for the caller to surface at run boundaries.
    pub fn take_io_error(&mut self) -> Option<String> {
        self.io_error.take()
    }
}

impl StorageBackend for DiskBackend {
    fn service_batch_into(
        &mut self,
        now: i64,
        reqs: &[BlockRequest],
        occupy_bus: bool,
        finishes: &mut Vec<i64>,
    ) {
        if let Some(obs) = &self.observer {
            let mut obs = obs.lock().expect("bus observer poisoned");
            for r in reqs {
                obs.on_event(BusEvent::DramBlock { addr: r.addr, write: r.is_write });
            }
        }
        finishes.clear();
        finishes.resize(reqs.len(), 0);
        if reqs.is_empty() {
            self.last = None;
            return;
        }
        let per_op = self.cfg.per_op_cycles as i64;
        let per_block = self.cfg.per_block_cycles as i64;
        for (i, r) in reqs.iter().enumerate() {
            if r.is_write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            // One positioning op, then blocks stream off the device in
            // submission order. XOR compression happens at the hub, so
            // the device-side transfer cost is the same either way.
            let _ = occupy_bus;
            finishes[i] = now + per_op + (i as i64 + 1) * per_block;
        }
        let n = reqs.len() as i64;
        self.last = Some(BatchBreakdown {
            queue: 0,
            row: per_op as u64,
            network: 0,
            transfer: (n * per_block) as u64,
            finish: now + per_op + n * per_block,
        });
    }

    fn last_batch_breakdown(&self) -> Option<BatchBreakdown> {
        self.last
    }

    fn set_observer(&mut self, observer: Option<SharedObserver>) {
        self.observer = observer;
    }

    fn set_telemetry(&mut self, _telemetry: Option<SharedTelemetry>) {}

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn energy(&self) -> EnergyCounters {
        EnergyCounters::default()
    }

    fn wants_payloads(&self) -> bool {
        true
    }

    fn persist_bucket(&mut self, bucket: u64, slots: &[Block]) {
        if let Err(e) = self.store.write_bucket(bucket, slots) {
            self.io_error.get_or_insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::fs::OpenOptions;

    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("oram-storage-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn bucket(seed: u64, z: usize) -> Vec<Block> {
        (0..z as u64)
            .map(|s| {
                let v = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(s);
                match v % 3 {
                    0 => Block::DUMMY,
                    1 => Block::real(
                        BlockAddr::new(v % 512),
                        LeafLabel::new(v % 64),
                        v,
                        seed,
                    ),
                    _ => Block::real(
                        BlockAddr::new(v % 512),
                        LeafLabel::new(v % 64),
                        v,
                        seed,
                    )
                    .to_shadow(),
                }
            })
            .collect()
    }

    #[test]
    fn round_trips_buckets_across_reopen() {
        let tmp = TempDir::new("roundtrip");
        let (z, n) = (4, 31u64);
        {
            let mut store = DiskStore::open(&tmp.0, z, n).unwrap();
            for b in [0u64, 7, 30] {
                store.write_bucket(b, &bucket(b + 1, z)).unwrap();
            }
            assert_eq!(store.read_bucket(7).unwrap().unwrap(), bucket(8, z));
            assert_eq!(store.read_bucket(5).unwrap(), None);
        }
        let mut store = DiskStore::open(&tmp.0, z, n).unwrap();
        for b in [0u64, 7, 30] {
            assert_eq!(store.read_bucket(b).unwrap().unwrap(), bucket(b + 1, z));
        }
        assert_eq!(store.read_bucket(12).unwrap(), None);
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let tmp = TempDir::new("geometry");
        drop(DiskStore::open(&tmp.0, 4, 31).unwrap());
        assert!(DiskStore::open(&tmp.0, 5, 31).is_err());
        assert!(DiskStore::open(&tmp.0, 4, 63).is_err());
    }

    #[test]
    fn torn_wal_tail_is_discarded() {
        let tmp = TempDir::new("torntail");
        let (z, n) = (3, 15u64);
        {
            let mut store = DiskStore::open(&tmp.0, z, n).unwrap();
            store.write_bucket(2, &bucket(100, z)).unwrap();
        }
        // Simulate a crash mid-append: a partial record at the WAL tail.
        let mut wal =
            OpenOptions::new().append(true).open(tmp.0.join("wal.log")).unwrap();
        wal.write_all(&[0xAB; 17]).unwrap();
        drop(wal);
        let mut store = DiskStore::open(&tmp.0, z, n).unwrap();
        assert_eq!(store.read_bucket(2).unwrap().unwrap(), bucket(100, z));
        // Only the complete record is replayed; the 17 garbage bytes
        // never form a committed write.
        assert_eq!(
            store.recovered(),
            &[RecoveredBucket { bucket: 2, slots: bucket(100, z) }]
        );
    }

    #[test]
    fn torn_inplace_write_is_repaired_from_wal() {
        let tmp = TempDir::new("tornplace");
        let (z, n) = (3, 15u64);
        let rec = DiskStore::record_bytes(z) as u64;
        {
            let mut store = DiskStore::open(&tmp.0, z, n).unwrap();
            store.write_bucket(6, &bucket(42, z)).unwrap();
        }
        // Simulate a crash mid in-place write: scribble over half the
        // record in buckets.dat while the WAL still holds it complete.
        let mut data =
            OpenOptions::new().write(true).open(tmp.0.join("buckets.dat")).unwrap();
        data.seek(SeekFrom::Start(HEADER_BYTES + 6 * rec)).unwrap();
        data.write_all(&vec![0xEE; rec as usize / 2]).unwrap();
        drop(data);
        let mut store = DiskStore::open(&tmp.0, z, n).unwrap();
        assert_eq!(
            store.recovered(),
            &[RecoveredBucket { bucket: 6, slots: bucket(42, z) }]
        );
        assert_eq!(store.read_bucket(6).unwrap().unwrap(), bucket(42, z));
    }

    /// The crash-consistency property: across randomized write
    /// sequences interrupted at arbitrary byte positions (torn WAL
    /// tail, torn in-place record, or both), reopening the store never
    /// observes a torn bucket — every bucket reads back as one of the
    /// values actually committed for it, in full.
    #[test]
    fn kill_and_reopen_never_observes_a_torn_bucket() {
        let tmp = TempDir::new("killreopen");
        let (z, n) = (4, 15u64);
        let rec = DiskStore::record_bytes(z) as u64;
        let mut rng = 0x5eed_cafe_f00d_1234u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        // history[b] = every value ever committed for bucket b.
        let mut history: Vec<Vec<Vec<Block>>> = vec![Vec::new(); n as usize];
        let mut seed = 0u64;
        for _case in 0..40 {
            let mut wrote = Vec::new();
            {
                let mut store = DiskStore::open(&tmp.0, z, n).unwrap();
                for _ in 0..(next() % 6 + 1) {
                    let b = next() % n;
                    seed += 1;
                    let slots = bucket(seed, z);
                    store.write_bucket(b, &slots).unwrap();
                    history[b as usize].push(slots);
                    wrote.push(b);
                }
                // Crash: drop without checkpoint.
            }
            match next() % 3 {
                0 => {
                    // Tear the WAL tail at a random byte boundary.
                    let wal = tmp.0.join("wal.log");
                    let len = std::fs::metadata(&wal).unwrap().len();
                    if len > 0 {
                        let keep = next() % len;
                        OpenOptions::new()
                            .write(true)
                            .open(&wal)
                            .unwrap()
                            .set_len(keep)
                            .unwrap();
                    }
                }
                1 => {
                    // Tear the in-place record of a bucket written this
                    // session (a crash only tears the record being
                    // written, which the WAL still shadows complete).
                    let b = wrote[(next() % wrote.len() as u64) as usize];
                    let cut = next() % rec;
                    let mut data = OpenOptions::new()
                        .write(true)
                        .open(tmp.0.join("buckets.dat"))
                        .unwrap();
                    data.seek(SeekFrom::Start(HEADER_BYTES + b * rec + cut)).unwrap();
                    data.write_all(&vec![0xDD; (rec - cut) as usize]).unwrap();
                }
                _ => {} // clean crash: both files intact
            }
            let mut store = DiskStore::open(&tmp.0, z, n).unwrap();
            for b in 0..n {
                match store.read_bucket(b).unwrap() {
                    Some(slots) => assert!(
                        history[b as usize].contains(&slots),
                        "bucket {b} holds a value never committed"
                    ),
                    None => assert!(
                        history[b as usize].is_empty(),
                        "bucket {b} lost committed data"
                    ),
                }
            }
        }
    }

    #[test]
    fn backend_timing_partitions_and_persists() {
        let tmp = TempDir::new("backend");
        let cfg = DiskConfig {
            dir: tmp.0.clone(),
            z: 4,
            bucket_count: 31,
            per_op_cycles: 1000,
            per_block_cycles: 10,
        };
        let mut be = DiskBackend::new(cfg).unwrap();
        assert!(be.wants_payloads());
        let reqs: Vec<BlockRequest> = (0..6).map(BlockRequest::read).collect();
        let mut f = Vec::new();
        be.service_batch_into(500, &reqs, true, &mut f);
        assert_eq!(f[0], 500 + 1000 + 10);
        assert_eq!(f[5], 500 + 1000 + 60);
        let bd = be.last_batch_breakdown().unwrap();
        assert_eq!(bd.queue + bd.row + bd.network + bd.transfer, (bd.finish - 500) as u64);
        assert_eq!(bd.row, 1000);
        assert_eq!(bd.network, 0);
        be.persist_bucket(3, &bucket(9, 4));
        assert!(be.take_io_error().is_none());
        assert_eq!(be.store().read_bucket(3).unwrap().unwrap(), bucket(9, 4));
    }
}

//! # oram-bench
//!
//! Experiment harness for the Shadow Block reproduction: one function per
//! table and figure of the paper's evaluation section, shared between the
//! `repro` binary and the micro-benchmarks in `benches/`.
//!
//! ```no_run
//! use oram_bench::{experiments, ExpOptions};
//!
//! let table = experiments::fig11_15(&ExpOptions::quick(), false);
//! println!("{}", table.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod incident;
pub mod microbench;
pub mod profile;
pub mod progress;
pub mod serve;
pub mod soak;
pub mod table;
pub mod trace;

pub use experiments::ExpOptions;
pub use incident::{run_incident, write_incident_bundle, IncidentSummary};
pub use microbench::{bench, BenchReport, CountingAlloc};
pub use profile::run_profile;
pub use progress::Heartbeat;
pub use serve::{
    run_posmap_sweep, run_serve, run_serve_live, run_serve_sweep, run_serve_sweep_live,
    run_shard_sweep, run_wan_sweep, BackendKind, LiveRun, PosmapKind, PosmapSweepReport,
    ServeArtifacts, ServeOptions, ShardSweepReport, SweepReport, TopTicker, WanSweepReport,
    POSMAP_SWEEP_LEVELS, POSMAP_SWEEP_PLB, SHARD_SWEEP, SHARD_SWEEP_LOADS, WAN_SWEEP_BATCHES,
    WAN_SWEEP_RTTS_US,
};
pub use soak::{compare_soak_reports, run_soak, SoakOptions, SoakReport};
pub use table::Table;
pub use trace::{
    run_trace, run_trace_with_progress, write_artifacts, TraceArtifacts, TraceOptions,
    TRACE_POLICIES,
};

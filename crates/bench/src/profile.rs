//! The `repro profile` subcommand's engine: runs the standard policy
//! set with telemetry attached and the DRAM backend's utilization
//! counters snapshotted around the measured portion, and assembles a
//! [`ProfileReport`] — cycle attribution, backend utilization, the
//! per-level bucket-touch heatmap, and energy.
//!
//! Unlike `repro trace` (which goes through the one-call runner), this
//! module drives the [`Engine`] directly so it can read the controller's
//! level-touch counters and the DRAM channels' utilization state before
//! and after the measured misses — the deltas are exactly the measured
//! portion, warmup excluded.

use oram_cpu::ReplayMisses;
use oram_sim::{build_miss_stream, scale_profile, Engine, RunOptions, SystemConfig};
use oram_telemetry::{
    validate_attribution, ChannelProfile, PolicyProfile, ProfileMeta, ProfileReport,
    TelemetryConfig, TelemetryRecorder,
};
use oram_util::MetricId;
use oram_workloads::spec;

use crate::experiments::TIMING_RATE;
use crate::progress::Heartbeat;
use crate::trace::{TraceOptions, TRACE_POLICIES};

/// Runs the standard policy set and assembles the profile.
///
/// # Errors
///
/// Returns a message on an unknown workload, an invalid configuration,
/// or an attribution invariant violation (the latter would be a
/// simulator bug, not a user error).
pub fn run_profile(
    opts: &TraceOptions,
    progress: Option<&Heartbeat>,
) -> Result<ProfileReport, String> {
    if !spec::WORKLOAD_NAMES.contains(&opts.workload.as_str()) {
        return Err(format!(
            "unknown workload {:?} (expected one of {:?})",
            opts.workload,
            spec::WORKLOAD_NAMES
        ));
    }
    let profile = spec::profile(&opts.workload);
    let ro = RunOptions {
        misses: opts.misses,
        warmup_misses: opts.warmup,
        seed: opts.seed,
        fill_target: 0.35,
        o3: None,
    };

    let mut policies = Vec::new();
    for (done, (name, policy)) in TRACE_POLICIES.into_iter().enumerate() {
        let mut cfg = SystemConfig::scaled_default();
        cfg.oram.levels = opts.levels;
        cfg.oram.dup_policy = policy;
        cfg.timing_protection = Some(TIMING_RATE);
        cfg.validate().map_err(|e| format!("{name}: invalid configuration: {e}"))?;

        let scaled = scale_profile(&profile, &cfg, ro.fill_target);
        let records = build_miss_stream(&scaled, cfg.hierarchy, &ro);
        let split = (ro.warmup_misses as usize).min(records.len());
        let (warm, measured) = records.split_at(split);

        let mut engine = Engine::new(cfg.clone()).expect("validated config");
        engine.prefill_working_set(scaled.working_set_blocks);
        if !warm.is_empty() {
            engine.run(&mut ReplayMisses::new(warm.to_vec()));
        }

        // Snapshot the monotone backend counters after warmup: the
        // post-run deltas cover exactly the measured misses.
        let util_base = engine.dram().utilization();
        let (lr, lw) = engine.controller().level_touches();
        let (level_reads_base, level_writes_base) = (lr.to_vec(), lw.to_vec());

        let rec = TelemetryRecorder::shared(TelemetryConfig { span_capacity: opts.span_capacity });
        engine.attach_telemetry(TelemetryRecorder::as_sink(&rec), opts.window_cycles);
        let before = engine.stats();
        let after = engine.run(&mut ReplayMisses::new(measured.to_vec()));
        engine.detach_telemetry();

        let total_cycles = after.total_cycles - before.total_cycles;
        let data_cycles = after.data_cycles - before.data_cycles;
        // Energy by measured share of time, as the experiment runner does.
        let energy_mj = if after.total_cycles > 0 {
            after.energy_mj * (total_cycles as f64 / after.total_cycles as f64)
        } else {
            0.0
        };

        let rec = rec.lock().expect("recorder poisoned");
        validate_attribution(rec.spans()).map_err(|e| format!("{name}: attribution: {e}"))?;
        let m = rec.metrics();
        let sum = |id: MetricId| m.histogram(id).sum();
        let attr_queue = sum(MetricId::AttrQueueWait);
        let attr_row = sum(MetricId::AttrRowOps);
        let attr_network = sum(MetricId::AttrNetwork);
        let attr_bus = sum(MetricId::AttrBusTransfer);
        let attr_eviction = sum(MetricId::AttrEvictionOverhead);
        let attr_posmap = sum(MetricId::AttrPosmap);
        let busy = attr_queue + attr_row + attr_network + attr_bus + attr_eviction + attr_posmap;
        if busy > total_cycles {
            return Err(format!(
                "{name}: attributed {busy} cycles exceed the measured {total_cycles}"
            ));
        }

        let channels = engine
            .dram()
            .utilization()
            .iter()
            .zip(&util_base)
            .map(|(now, base)| {
                let d = now.delta(base);
                ChannelProfile {
                    busy_cycles: d.busy_cycles,
                    row_hit_rate: d.row_hit_rate(),
                    reads: d.stats.reads,
                    writes: d.stats.writes,
                    queue_p50: d.queue_depth_quantile(0.5) as u64,
                    queue_max: d.queue_depth_max() as u64,
                }
            })
            .collect();
        let (lr, lw) = engine.controller().level_touches();
        let diff = |now: &[u64], base: &[u64]| -> Vec<u64> {
            now.iter().zip(base).map(|(n, b)| n - b).collect()
        };

        policies.push(PolicyProfile {
            policy: name.to_string(),
            total_cycles,
            data_cycles,
            dri_cycles: total_cycles - data_cycles,
            attr_queue,
            attr_row,
            attr_network,
            attr_bus,
            attr_eviction,
            attr_posmap,
            plb_hits: m.counter(MetricId::PlbHit),
            plb_misses: m.counter(MetricId::PlbMiss),
            plb_evictions: m.counter(MetricId::PlbEvict),
            forward_saved: sum(MetricId::ForwardSavedCycles),
            stash_pull_credit: sum(MetricId::StashPullCreditCycles),
            energy_mj,
            channels,
            level_reads: diff(lr, &level_reads_base),
            level_writes: diff(lw, &level_writes_base),
        });
        if let Some(hb) = progress {
            hb.tick(done + 1, TRACE_POLICIES.len());
        }
    }

    Ok(ProfileReport {
        meta: ProfileMeta {
            workload: opts.workload.clone(),
            misses: opts.misses,
            levels: opts.levels,
            seed: opts.seed,
        },
        policies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> TraceOptions {
        TraceOptions {
            misses: 400,
            warmup: 100,
            levels: 12,
            ..TraceOptions::quick()
        }
    }

    #[test]
    fn unknown_workload_is_rejected() {
        let mut o = tiny_opts();
        o.workload = "nonesuch".to_string();
        assert!(run_profile(&o, None).unwrap_err().contains("unknown workload"));
    }

    #[test]
    fn profile_attributes_every_cycle_and_credits_duplication() {
        let report = run_profile(&tiny_opts(), None).expect("profile runs");
        assert_eq!(report.policies.len(), TRACE_POLICIES.len());
        for p in &report.policies {
            // total = queue + row + net + bus + eviction + posmap + idle, exactly.
            assert_eq!(
                p.attr_queue + p.attr_row + p.attr_network + p.attr_bus + p.attr_eviction
                    + p.attr_posmap
                    + p.idle_cycles(),
                p.total_cycles,
                "{}: unattributed cycles",
                p.policy
            );
            assert_eq!(p.attr_network, 0, "{}: DRAM backend has no network", p.policy);
            assert_eq!(p.attr_posmap, 0, "{}: flat posmap walks no chain", p.policy);
            assert!(p.plb_hits + p.plb_misses > 0, "{}: PLB counters surface", p.policy);
            assert!(p.attr_bus > 0, "{}: a run always moves data", p.policy);
            assert!(p.attr_eviction > 0, "{}: evictions always fire", p.policy);
            assert!(!p.channels.is_empty());
            assert!(p.channels.iter().any(|c| c.busy_cycles > 0));
            assert!(p.level_reads.iter().sum::<u64>() > 0);
        }
        let tiny = &report.policies[0];
        assert_eq!(tiny.policy, "tiny");
        assert_eq!(tiny.forward_saved, 0, "baseline earns no duplication credit");
        assert_eq!(tiny.stash_pull_credit, 0);
        let rd = report.policies.iter().find(|p| p.policy == "rd_dup").unwrap();
        assert!(rd.forward_saved > 0, "RD-Dup must show early-forward savings");
        // The deterministic simulator must profile identically on reruns
        // (this is what lets `repro compare` diff against a baseline).
        let again = run_profile(&tiny_opts(), None).expect("profile reruns");
        assert_eq!(again, report);
    }
}

//! Rate-limited progress heartbeats for long experiment sweeps.
//!
//! A sweep of a few hundred cells can run for minutes with no output;
//! the heartbeat prints `[label: done/total cells, elapsed]` lines to
//! stderr so the terminal shows life without drowning CI logs. Output
//! is suppressed entirely when disabled (non-TTY stderr or `--quiet`),
//! and rate-limited otherwise, so workers never contend on I/O.

use std::io::IsTerminal;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum spacing between heartbeat lines.
const MIN_INTERVAL: Duration = Duration::from_millis(500);

/// A thread-safe progress reporter fed from
/// [`parallel_map_notify`](oram_sim::parallel_map_notify) completion
/// callbacks.
#[derive(Debug)]
pub struct Heartbeat {
    label: String,
    enabled: bool,
    start: Instant,
    last: Mutex<Option<Instant>>,
}

impl Heartbeat {
    /// A heartbeat labeled `label`; when `enabled` is false every
    /// [`Heartbeat::tick`] is a no-op.
    pub fn new(label: impl Into<String>, enabled: bool) -> Self {
        Heartbeat { label: label.into(), enabled, start: Instant::now(), last: Mutex::new(None) }
    }

    /// The default enablement policy: heartbeats only make sense on an
    /// interactive terminal, so report whether stderr is one.
    pub fn stderr_is_tty() -> bool {
        std::io::stderr().is_terminal()
    }

    /// Reports `done` of `total` items complete. Prints at most one line
    /// per rate-limit interval, except that the final item always prints
    /// so the last line shows the true total.
    pub fn tick(&self, done: usize, total: usize) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        {
            let mut last = self.last.lock().expect("heartbeat poisoned");
            let due = done == total
                || last.is_none_or(|t| now.duration_since(t) >= MIN_INTERVAL);
            if !due {
                return;
            }
            *last = Some(now);
        }
        eprintln!(
            "[{}: {done}/{total} cells, {:.1}s]",
            self.label,
            self.start.elapsed().as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_heartbeat_never_updates_state() {
        let hb = Heartbeat::new("test", false);
        hb.tick(1, 10);
        hb.tick(10, 10);
        assert!(hb.last.lock().unwrap().is_none(), "disabled ticks must not record");
    }

    #[test]
    fn enabled_heartbeat_rate_limits_middle_ticks() {
        let hb = Heartbeat::new("test", true);
        hb.tick(1, 1000);
        let first = hb.last.lock().unwrap().expect("first tick prints");
        // Immediately after, a middle tick is inside the interval: no-op.
        hb.tick(2, 1000);
        assert_eq!(*hb.last.lock().unwrap(), Some(first), "second tick was rate-limited");
        // The final tick always fires.
        hb.tick(1000, 1000);
        assert_ne!(*hb.last.lock().unwrap(), Some(first), "final tick must print");
    }
}

//! `repro` — regenerates every table and figure of the Shadow Block
//! paper's evaluation section on the scaled simulator.
//!
//! ```text
//! repro <experiment> [--full] [--csv <dir>] [--threads <n>]
//!   experiments: table1 fig6a fig6b fig8 fig9 fig10 fig11 fig12 fig13
//!                fig14 fig15 fig16 fig17 fig18 fig19 ablation all
//! ```
//!
//! Sweeps run their independent (workload, config) cells on a worker
//! pool. The thread count defaults to the machine's available
//! parallelism; override with `--threads <n>` or the
//! `SHADOW_ORAM_THREADS` environment variable (the flag wins). Results
//! are bit-identical for every thread count.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use oram_bench::experiments as exp;
use oram_bench::{ExpOptions, Table};

fn usage() -> &'static str {
    "usage: repro <experiment> [--full] [--csv <dir>] [--threads <n>]\n\
     experiments: table1 fig6a fig6b fig8 fig9 fig10 fig11 fig12 fig13 \
     fig14 fig15 fig16 fig17 fig18 fig19 ablation all\n\
     --threads <n>  sweep worker threads (default: available cores,\n\
                    or the SHADOW_ORAM_THREADS environment variable)"
}

fn run_one(name: &str, opts: &ExpOptions) -> Option<Vec<Table>> {
    let t = match name {
        "table1" => vec![exp::table1(opts)],
        "fig6a" => vec![exp::fig6a(opts)],
        "fig6b" => vec![exp::fig6b(opts)],
        "fig8" => vec![exp::fig8_13(opts, false)],
        "fig9" => vec![exp::fig9_14(opts, false)],
        "fig10" => vec![exp::fig10(opts, false)],
        "fig11" => vec![exp::fig11_15(opts, false)],
        "fig12" => vec![exp::fig12(opts)],
        "fig13" => vec![exp::fig8_13(opts, true)],
        "fig14" => vec![exp::fig9_14(opts, true)],
        "fig15" => vec![exp::fig11_15(opts, true)],
        "fig16" => vec![exp::fig16(opts)],
        "fig17" => vec![exp::fig17(opts)],
        "fig18" => vec![exp::fig18(opts)],
        "fig19" => vec![exp::fig19(opts)],
        "ablation" => vec![exp::ablation(opts)],
        "all" => {
            let mut v = Vec::new();
            for n in [
                "table1", "fig6a", "fig6b", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ablation",
            ] {
                v.extend(run_one(n, opts).expect("known name"));
            }
            v
        }
        _ => return None,
    };
    Some(t)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name = None;
    let mut opts = ExpOptions::quick();
    let mut threads: Option<usize> = None;
    let mut csv_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => opts = ExpOptions::full(),
            "--csv" => match it.next() {
                Some(d) => csv_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--csv needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if name.is_none() => name = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(name) = name else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    if let Some(n) = threads {
        opts = opts.with_threads(n);
    }

    let started = Instant::now();
    match run_one(&name, &opts) {
        Some(tables) => {
            for t in &tables {
                println!("{}", t.render());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = t.write_csv(dir) {
                        eprintln!("failed to write CSV: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            eprintln!("[{} in {:.1}s]", name, started.elapsed().as_secs_f64());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown experiment {name:?}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

//! `repro` — regenerates every table and figure of the Shadow Block
//! paper's evaluation section on the scaled simulator, and runs the
//! obliviousness audit.
//!
//! ```text
//! repro <experiment> [--full] [--csv <dir>] [--threads <n>] [--levels <L>]
//!                    [--telemetry <dir>] [--quiet]
//!   experiments: table1 fig6a fig6b fig8 fig9 fig10 fig11 fig12 fig13
//!                fig14 fig15 fig16 fig17 fig18 fig19 ablation all
//! repro audit [--quick] [--seed <n>] [--trace-out <path>]
//! repro trace [--quick] [--out <dir>] [--workload <w>] [--misses <n>]
//!             [--levels <L>] [--seed <n>] [--window <cycles>]
//! repro serve [--quick] [--clients <n>] [--load <r>] [--scheduler <s>]
//!             [--shards <M>] [--threads <n>] [--json <path>] [--sweep]
//!             [--shard-sweep] [--backend <dram|disk|wan>] [--rtt-us <N>]
//!             [--batch <B>] [--disk-dir <dir>] [--wan-sweep] [--csv <dir>]
//!             [--posmap <flat|recursive>] [--plb-entries <n>] [--domain <n>]
//!             [--posmap-onchip-kb <K>] [--posmap-budget-mb <M>] [--posmap-sweep]
//!             [--slo-spec <file>] [--incident-dir <dir>] [--force-incident]
//! repro soak [--quick] [--tenants <n>] [--requests-total <n>] [--phases <n>]
//!            [--backend <b>] [--switch-backend <b>] [--json <path>]
//!            [--incident-dir <dir>]
//! repro incident <dir>
//! ```
//!
//! Sweeps run their independent (workload, config) cells on a worker
//! pool. The thread count defaults to the machine's available
//! parallelism; override with `--threads <n>` or the
//! `SHADOW_ORAM_THREADS` environment variable (the flag wins). Results
//! are bit-identical for every thread count.
//!
//! Exit codes: 0 success, 1 a run or audit failed, 2 usage or
//! configuration error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use oram_audit::{run_audit, AuditOptions};
use oram_bench::experiments as exp;
use oram_bench::{
    compare_soak_reports, run_incident, run_posmap_sweep, run_profile, run_serve_live,
    run_serve_sweep_live, run_shard_sweep, run_soak, run_trace, run_trace_with_progress,
    run_wan_sweep, write_artifacts, write_incident_bundle, BackendKind, ExpOptions, Heartbeat,
    LiveRun, PosmapKind, ServeOptions, SoakOptions, SoakReport, Table, TraceOptions,
};
use oram_obsv::{parse_slo_spec, FlightConfig, IncidentMeta, LiveConfig, LivePlane, MetricsServer};
use oram_service::{compare_service_reports, SchedPolicy, ServiceReport};
use oram_sim::SystemConfig;
use oram_telemetry::{compare_reports, ProfileReport, DEFAULT_TOLERANCE};

/// Usage and configuration errors (the audit uses 1 for "checks failed").
const USAGE_ERROR: u8 = 2;

fn usage() -> &'static str {
    "usage: repro <experiment> [--full] [--csv <dir>] [--threads <n>] [--levels <L>]\n\
     \x20                        [--telemetry <dir>] [--quiet]\n\
     experiments: table1 fig6a fig6b fig8 fig9 fig10 fig11 fig12 fig13 \
     fig14 fig15 fig16 fig17 fig18 fig19 ablation all\n\
     \x20      repro audit [--quick] [--seed <n>] [--trace-out <path>]\n\
     \x20      repro trace [--quick] [--out <dir>] ... (repro trace --help)\n\
     \x20      repro profile [--quick] [--json <path>] ... (repro profile --help)\n\
     \x20      repro serve [--quick] [--clients <n>] [--load <r>] ... (repro serve --help)\n\
     \x20      repro soak [--quick] [--tenants <n>] ... (repro soak --help)\n\
     \x20      repro incident <dir>\n\
     \x20      repro compare <baseline.json> <candidate.json> [--tolerance <pct>]\n\
     --threads <n>    sweep worker threads (default: available cores,\n\
                      or the SHADOW_ORAM_THREADS environment variable)\n\
     --levels <L>     tree depth for the scaled system (default 14, 16 with --full)\n\
     --telemetry <dir> after the experiment, run the four-policy traced\n\
                      companion run at the same scale and write telemetry\n\
                      artifacts (spans, Chrome trace, time series) to <dir>\n\
     --quiet          suppress progress heartbeats"
}

fn trace_usage() -> &'static str {
    "usage: repro trace [--quick] [--out <dir>] [--workload <w>] [--misses <n>]\n\
     \x20                  [--levels <L>] [--seed <n>] [--window <cycles>] [--quiet]\n\
     Runs tiny/rd_dup/hd_dup/dynamic3 with the telemetry recorder attached,\n\
     validates every export, writes spans_<policy>.jsonl, trace_<policy>.json,\n\
     timeseries_<policy>.csv, metrics_<policy>.csv and report.txt to <dir>\n\
     (default telemetry_out), and prints the end-of-run report.\n\
     --quick            CI smoke scale (1000 misses, L=12) instead of the full run\n\
     --workload <w>     workload to trace (default mcf)\n\
     --window <cycles>  time-series window length in CPU cycles (default 50000)\n\
     --quiet            suppress progress heartbeats and timing lines"
}

fn profile_usage() -> &'static str {
    "usage: repro profile [--quick] [--json <path>] [--workload <w>] [--misses <n>]\n\
     \x20                    [--levels <L>] [--seed <n>] [--quiet]\n\
     Runs tiny/rd_dup/hd_dup/dynamic3 with cycle attribution enabled and prints\n\
     where every cycle went (DRAM queue wait, row ops, bus transfer, eviction\n\
     overhead, idle), backend utilization per channel, the per-level bucket\n\
     heatmap, and energy. Attribution is validated span by span: the components\n\
     must sum exactly to each access's latency.\n\
     --quick            CI smoke scale (1000 misses, L=12) instead of the full run\n\
     --json <path>      also write the machine-readable profile (the format\n\
                        `repro compare` consumes) to <path>\n\
     --quiet            suppress progress heartbeats and timing lines"
}

fn compare_usage() -> &'static str {
    "usage: repro compare <baseline.json> <candidate.json> [--tolerance <pct>]\n\
     Diffs two `repro profile --json`, two `repro serve --json`, or two\n\
     `repro soak --json` files per policy and per metric (the file kind is\n\
     detected from its schema; the two files must be the same kind). Gated\n\
     metrics (profile: total/data/DRI cycles, energy; serve: run length and\n\
     latency percentiles; soak: tenant tails, throughput, rejection fraction,\n\
     self-checks) that worsen by more than the tolerance fail the comparison\n\
     (exit 1); the rest are reported as informational deltas.\n\
     --tolerance <pct>  allowed worsening on gated metrics, percent (default 2)"
}

fn serve_usage() -> &'static str {
    "usage: repro serve [--quick] [--clients <n>] [--requests <n>] [--load <r>]\n\
     \x20                 [--scheduler <s>] [--levels <L>] [--seed <n>]\n\
     \x20                 [--shards <M>] [--threads <n>] [--json <path>]\n\
     \x20                 [--backend <dram|disk|wan>] [--rtt-us <N>] [--batch <B>]\n\
     \x20                 [--disk-dir <dir>] [--wan-sweep] [--csv <dir>]\n\
     \x20                 [--posmap <flat|recursive>] [--plb-entries <n>] [--domain <n>]\n\
     \x20                 [--posmap-onchip-kb <K>] [--posmap-budget-mb <M>] [--posmap-sweep]\n\
     \x20                 [--sweep] [--shard-sweep] [--quiet]\n\
     \x20                 [--metrics-addr <host:port>] [--metrics-linger <secs>] [--top]\n\
     \x20                 [--slo-spec <file>] [--incident-dir <dir>] [--force-incident]\n\
     Drives the multi-client service front-end (bounded queues, admission\n\
     control, MSHR coalescing, batch scheduling) into the ORAM engine and\n\
     reports p50/p99/p99.9 latency and throughput per scheduler policy. Every\n\
     run self-validates: service conservation laws, span attribution\n\
     (queue_wait = start - arrival), and the obliviousness audit of the\n\
     service-issued bus trace (per shard when sharded).\n\
     --quick            CI smoke scale (250 requests/client, L=12)\n\
     --clients <n>      client streams (default 4)\n\
     --requests <n>     requests per client (default 1000, 250 with --quick)\n\
     --load <r>         offered-rate multiplier over the base rate (default 1.0)\n\
     --scheduler <s>    run one policy (fcfs, round_robin, oldest_first)\n\
     --shards <M>       partition the address space across M concurrent ORAM\n\
                        shards with intra-shard pipelining (default 1 = the\n\
                        single-engine path, byte-identical output)\n\
     --threads <n>      worker threads serving shards (default 1; results are\n\
                        bit-identical at any thread count)\n\
     --json <path>      write the machine-readable report (the format\n\
                        `repro compare` consumes) to <path>\n\
     --backend <b>      storage backend serving bucket I/O: dram (default, the\n\
                        cycle-accurate reference path), disk (persistent WAL'd\n\
                        bucket store), or wan (deterministic RTT/bandwidth\n\
                        model with request batching)\n\
     --rtt-us <N>       WAN round-trip time in microseconds (wan only,\n\
                        default 200)\n\
     --batch <B>        WAN requests amortized per round trip (wan only,\n\
                        default 4)\n\
     --disk-dir <dir>   disk backend directory (disk only; default: a fresh\n\
                        temporary directory, removed after the run)\n\
     --posmap <m>       position map backend: flat (default, O(N) on-chip\n\
                        array, byte-identical to the pre-recursion output) or\n\
                        recursive (posmap blocks stored in a chain of smaller\n\
                        ORAMs behind a PLB; every PLB miss issues real costed\n\
                        accesses, attributed to the posmap component)\n\
     --plb-entries <n>  override the PLB capacity in page entries\n\
     --domain <n>       address domain in blocks (default 1024, 256 with\n\
                        --quick); must fit the L-level tree\n\
     --posmap-onchip-kb <K>\n\
                        on-chip budget the recursive chain terminates under\n\
                        (default 64; recursive only)\n\
     --posmap-budget-mb <M>\n\
                        reject flat-posmap configurations whose map would\n\
                        exceed this host-memory budget (default 64)\n\
     --posmap-sweep     sweep tree depth x PLB capacity over an identical\n\
                        request stream, reporting recursion overhead vs the\n\
                        flat baseline and the PLB hit rate, up to a\n\
                        2^30-address tree (incompatible with the other\n\
                        sweeps, --json, --load, --shards, --posmap,\n\
                        --plb-entries, --levels and --domain)\n\
     --wan-sweep        sweep RTT x batch over an identical replayed miss\n\
                        stream and verify the amortization law: per-request\n\
                        cycles monotone non-increasing in the batch size\n\
                        (incompatible with the other sweeps, --json, --load,\n\
                        --shards, --rtt-us and --batch)\n\
     --csv <dir>        with --wan-sweep, --shard-sweep or --posmap-sweep,\n\
                        also write the figure/knee table as CSV\n\
     --sweep            sweep load factors instead and locate the saturation\n\
                        knee (incompatible with --json and --load)\n\
     --shard-sweep      sweep loads at each of 1/2/4 shards and compare the\n\
                        knees (incompatible with --json, --load and --shards)\n\
     --metrics-addr <a> serve live Prometheus metrics at http://<a>/metrics\n\
                        (plus /healthz and /slo) while the run executes; the\n\
                        run's stdout stays byte-identical (incompatible with\n\
                        --shard-sweep and --wan-sweep)\n\
     --metrics-linger <secs>\n\
                        keep the endpoint up this long after a successful run\n\
                        so a scraper can collect the final state\n\
     --top              live terminal view of throughput, tail latency, SLO\n\
                        burn and alerts (TTY only; silenced by --quiet)\n\
     --slo-spec <file>  load SLO objectives from a JSON spec instead of the\n\
                        built-in defaults (see DESIGN.md for the format); a\n\
                        malformed spec is a one-line error, exit 2\n\
     --incident-dir <d> attach the flight recorder and, if a trigger alert\n\
                        (SLO burn, stash pressure, Eq. 1 residual) freezes\n\
                        it, dump the incident bundle into <d> after the run\n\
                        (validate offline with `repro incident <d>`)\n\
     --force-incident   freeze the recorder at end of run regardless of\n\
                        alerts, so the bundle always lands (requires\n\
                        --incident-dir; the bundle bytes are identical at\n\
                        any --threads count)\n\
     --quiet            suppress progress heartbeats, timing lines and --top"
}

fn soak_usage() -> &'static str {
    "usage: repro soak [--quick] [--tenants <n>] [--requests-total <n>] [--phases <n>]\n\
     \x20                [--levels <L>] [--seed <n>] [--backend <dram|disk|wan>]\n\
     \x20                [--switch-backend <b>] [--incident-dir <dir>] [--json <path>]\n\
     \x20                [--quiet]\n\
     Long-horizon multi-tenant soak: chains phases over one persistent ORAM\n\
     engine, rotating the Zipf hot set and ramping the offered load along a\n\
     symmetric diurnal profile each phase (optionally switching the storage\n\
     backend at the midpoint). Validation is streaming: per-phase conservation\n\
     laws, live-plane window conservation, Eq. 1 residual bounds, and\n\
     deterministic latency/stash drift estimators that must stay flat. The\n\
     report (per-tenant tails, SLO burn table, trends) prints on stdout; the\n\
     JSON lands behind the `repro compare` gate.\n\
     --quick               CI smoke scale (4000 requests, L=12) instead of 1M\n\
     --tenants <n>         tenant streams (default 4)\n\
     --requests-total <n>  total requests across tenants and phases\n\
     --phases <n>          scheduled phases (default 4)\n\
     --levels <L>          tree depth (default 14, 12 with --quick)\n\
     --seed <n>            master seed (each phase derives its own)\n\
     --backend <b>         starting storage backend (default dram)\n\
     --switch-backend <b>  switch to this backend at the midpoint phase\n\
     --incident-dir <dir>  if a trigger alert freezes the flight recorder\n\
                           during the soak, dump the incident bundle here\n\
     --json <path>         write the machine-readable report (the format\n\
                           `repro compare` consumes) to <path>\n\
     --quiet               suppress progress heartbeats and timing lines"
}

fn incident_usage() -> &'static str {
    "usage: repro incident <dir>\n\
     Offline validation of an incident bundle dumped by `repro serve\n\
     --incident-dir` or `repro soak --incident-dir`: checks the schema of all\n\
     seven files, parses the captured spans back and re-renders both exports\n\
     (demanding byte identity with the files on disk), and cross-checks the\n\
     ring counts meta.json recorded at freeze time. Exit 0 with a summary when\n\
     the bundle is internally consistent, 1 with a one-line reason otherwise."
}

fn audit_usage() -> &'static str {
    "usage: repro audit [--quick] [--seed <n>] [--trace-out <path>]\n\
     --quick            the fast CI-gate sweep instead of the full one\n\
     --seed <n>         master seed for configs and workloads\n\
     --trace-out <path> write the full report (with failing trace windows) here"
}

fn run_one(name: &str, opts: &ExpOptions) -> Option<Vec<Table>> {
    let t = match name {
        "table1" => vec![exp::table1(opts)],
        "fig6a" => vec![exp::fig6a(opts)],
        "fig6b" => vec![exp::fig6b(opts)],
        "fig8" => vec![exp::fig8_13(opts, false)],
        "fig9" => vec![exp::fig9_14(opts, false)],
        "fig10" => vec![exp::fig10(opts, false)],
        "fig11" => vec![exp::fig11_15(opts, false)],
        "fig12" => vec![exp::fig12(opts)],
        "fig13" => vec![exp::fig8_13(opts, true)],
        "fig14" => vec![exp::fig9_14(opts, true)],
        "fig15" => vec![exp::fig11_15(opts, true)],
        "fig16" => vec![exp::fig16(opts)],
        "fig17" => vec![exp::fig17(opts)],
        "fig18" => vec![exp::fig18(opts)],
        "fig19" => vec![exp::fig19(opts)],
        "ablation" => vec![exp::ablation(opts)],
        "all" => {
            let mut v = Vec::new();
            for n in [
                "table1", "fig6a", "fig6b", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ablation",
            ] {
                v.extend(run_one(n, opts).expect("known name"));
            }
            v
        }
        _ => return None,
    };
    Some(t)
}

/// The `repro audit` subcommand: runs the obliviousness audit and
/// reports per-check lines; on failure the report (including the
/// offending trace windows) also goes to `--trace-out` for CI to
/// archive.
fn audit_main(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut seed: Option<u64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => seed = Some(n),
                None => {
                    eprintln!("--seed needs an unsigned integer\n{}", audit_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--trace-out needs a path\n{}", audit_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "-h" | "--help" => {
                println!("{}", audit_usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument {other:?}\n{}", audit_usage());
                return ExitCode::from(USAGE_ERROR);
            }
        }
    }

    let mut opts = if quick { AuditOptions::quick() } else { AuditOptions::full() };
    if let Some(s) = seed {
        opts = opts.with_seed(s);
    }

    let started = Instant::now();
    let report = run_audit(&opts);
    print!("{}", report.render());
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, report.render()) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!("[audit in {:.1}s]", started.elapsed().as_secs_f64());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `repro trace` subcommand: a traced run of the standard policy
/// set, self-validated exports, artifacts on disk, report on stdout.
fn trace_main(args: &[String]) -> ExitCode {
    let mut opts = TraceOptions::full();
    let mut out = PathBuf::from("telemetry_out");
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts = TraceOptions::quick(),
            "--quiet" => quiet = true,
            "--out" => match it.next() {
                Some(d) => out = PathBuf::from(d),
                None => {
                    eprintln!("--out needs a directory\n{}", trace_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--workload" => match it.next() {
                Some(w) => opts.workload = w.clone(),
                None => {
                    eprintln!("--workload needs a name\n{}", trace_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--misses" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => opts.misses = n,
                _ => {
                    eprintln!("--misses needs a positive integer\n{}", trace_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--levels" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => opts.levels = n,
                None => {
                    eprintln!("--levels needs an unsigned integer\n{}", trace_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => opts.seed = n,
                None => {
                    eprintln!("--seed needs an unsigned integer\n{}", trace_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--window" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => opts.window_cycles = n,
                _ => {
                    eprintln!("--window needs a positive cycle count\n{}", trace_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "-h" | "--help" => {
                println!("{}", trace_usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument {other:?}\n{}", trace_usage());
                return ExitCode::from(USAGE_ERROR);
            }
        }
    }
    {
        // Validate the depth up front, as the experiment path does.
        let mut probe = SystemConfig::scaled_default();
        probe.oram.levels = opts.levels;
        if let Err(e) = probe.validate() {
            eprintln!("repro: invalid configuration: {e}");
            return ExitCode::from(USAGE_ERROR);
        }
    }

    let started = Instant::now();
    // Heartbeats only where someone is watching: an interactive stderr
    // and no --quiet (--quiet wins even on a TTY).
    let hb = Heartbeat::new("trace", !quiet && Heartbeat::stderr_is_tty());
    match run_trace_with_progress(&opts, Some(&hb)) {
        Ok(artifacts) => {
            if let Err(e) = write_artifacts(&out, &artifacts) {
                eprintln!("failed to write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            print!("{}", artifacts.report.render());
            if !quiet {
                eprintln!(
                    "[trace of {} ({} policies) to {} in {:.1}s]",
                    opts.workload,
                    artifacts.per_policy.len(),
                    out.display(),
                    started.elapsed().as_secs_f64()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro trace: validation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `repro profile` subcommand: cycle attribution, backend
/// utilization and the level heatmap on stdout, optional JSON to disk.
fn profile_main(args: &[String]) -> ExitCode {
    let mut opts = TraceOptions::full();
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts = TraceOptions::quick(),
            "--quiet" => quiet = true,
            "--json" => match it.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path\n{}", profile_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--workload" => match it.next() {
                Some(w) => opts.workload = w.clone(),
                None => {
                    eprintln!("--workload needs a name\n{}", profile_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--misses" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => opts.misses = n,
                _ => {
                    eprintln!("--misses needs a positive integer\n{}", profile_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--levels" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => opts.levels = n,
                None => {
                    eprintln!("--levels needs an unsigned integer\n{}", profile_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => opts.seed = n,
                None => {
                    eprintln!("--seed needs an unsigned integer\n{}", profile_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "-h" | "--help" => {
                println!("{}", profile_usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument {other:?}\n{}", profile_usage());
                return ExitCode::from(USAGE_ERROR);
            }
        }
    }
    {
        let mut probe = SystemConfig::scaled_default();
        probe.oram.levels = opts.levels;
        if let Err(e) = probe.validate() {
            eprintln!("repro: invalid configuration: {e}");
            return ExitCode::from(USAGE_ERROR);
        }
    }

    let started = Instant::now();
    let hb = Heartbeat::new("profile", !quiet && Heartbeat::stderr_is_tty());
    match run_profile(&opts, Some(&hb)) {
        Ok(report) => {
            print!("{}", report.render());
            if let Some(path) = &json_out {
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("failed to write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if !quiet {
                eprintln!(
                    "[profile of {} ({} policies) in {:.1}s]",
                    opts.workload,
                    report.policies.len(),
                    started.elapsed().as_secs_f64()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro profile: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `repro serve` subcommand: the service front-end under every
/// scheduler policy (or a load sweep), self-validated, report on
/// stdout, optional JSON to disk.
fn serve_main(args: &[String]) -> ExitCode {
    let mut opts = ServeOptions::full();
    let mut json_out: Option<PathBuf> = None;
    let mut csv_dir: Option<PathBuf> = None;
    let mut sweep = false;
    let mut shard_sweep = false;
    let mut wan_sweep = false;
    let mut posmap_sweep = false;
    let mut load_set = false;
    let mut shards_set = false;
    let mut backend_set = false;
    let mut rtt_set = false;
    let mut batch_set = false;
    let mut posmap_set = false;
    let mut plb_set = false;
    let mut onchip_set = false;
    let mut levels_set = false;
    let mut domain_set = false;
    let mut posmap_budget_mb: u64 = 64;
    let mut quiet = false;
    let mut metrics_addr: Option<String> = None;
    let mut metrics_linger: u64 = 0;
    let mut linger_set = false;
    let mut top = false;
    let mut slo_spec: Option<PathBuf> = None;
    let mut incident_dir: Option<PathBuf> = None;
    let mut force_incident = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => top = true,
            "--force-incident" => force_incident = true,
            "--slo-spec" => match it.next() {
                Some(p) => slo_spec = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--slo-spec needs a file\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--incident-dir" => match it.next() {
                Some(d) => incident_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--incident-dir needs a directory\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--metrics-addr" => match it.next() {
                Some(addr) => metrics_addr = Some(addr.clone()),
                None => {
                    eprintln!("--metrics-addr needs HOST:PORT\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--metrics-linger" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => {
                    metrics_linger = n;
                    linger_set = true;
                }
                None => {
                    eprintln!("--metrics-linger needs seconds\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--quick" => {
                opts = ServeOptions {
                    scheduler: opts.scheduler,
                    shards: opts.shards,
                    threads: opts.threads,
                    backend: opts.backend,
                    rtt_us: opts.rtt_us,
                    wan_batch: opts.wan_batch,
                    disk_dir: opts.disk_dir.take(),
                    posmap: opts.posmap,
                    plb_entries: opts.plb_entries,
                    posmap_onchip_kb: opts.posmap_onchip_kb,
                    ..ServeOptions::quick()
                }
            }
            "--quiet" => quiet = true,
            "--sweep" => sweep = true,
            "--shard-sweep" => shard_sweep = true,
            "--wan-sweep" => wan_sweep = true,
            "--posmap-sweep" => posmap_sweep = true,
            "--posmap" => match it.next().map(|s| PosmapKind::parse(s)) {
                Some(Ok(p)) => {
                    opts.posmap = p;
                    posmap_set = true;
                }
                Some(Err(e)) => {
                    eprintln!("{e}\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
                None => {
                    eprintln!("--posmap needs a mode (flat or recursive)\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--plb-entries" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => {
                    opts.plb_entries = Some(n);
                    plb_set = true;
                }
                _ => {
                    eprintln!("--plb-entries needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--posmap-onchip-kb" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n >= 1 => {
                    opts.posmap_onchip_kb = n;
                    onchip_set = true;
                }
                _ => {
                    eprintln!("--posmap-onchip-kb needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--posmap-budget-mb" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => posmap_budget_mb = n,
                _ => {
                    eprintln!("--posmap-budget-mb needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--domain" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => {
                    opts.domain = n;
                    domain_set = true;
                }
                _ => {
                    eprintln!("--domain needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--backend" => match it.next().map(|s| BackendKind::parse(s)) {
                Some(Ok(b)) => {
                    opts.backend = b;
                    backend_set = true;
                }
                Some(Err(e)) => {
                    eprintln!("{e}\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
                None => {
                    eprintln!("--backend needs a name (dram, disk or wan)\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--rtt-us" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(r) if r.is_finite() && r > 0.0 => {
                    opts.rtt_us = r;
                    rtt_set = true;
                }
                _ => {
                    eprintln!("--rtt-us needs a positive number\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--batch" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => {
                    opts.wan_batch = n;
                    batch_set = true;
                }
                _ => {
                    eprintln!("--batch needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--disk-dir" => match it.next() {
                Some(d) => opts.disk_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--disk-dir needs a directory\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--csv" => match it.next() {
                Some(d) => csv_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--csv needs a directory\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--shards" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => {
                    opts.shards = n;
                    shards_set = true;
                }
                _ => {
                    eprintln!("--shards needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--clients" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.clients = n,
                _ => {
                    eprintln!("--clients needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--requests" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => opts.requests = n,
                _ => {
                    eprintln!("--requests needs a positive integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--load" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(r) if r.is_finite() && r > 0.0 => {
                    opts.load = r;
                    load_set = true;
                }
                _ => {
                    eprintln!("--load needs a positive number\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--scheduler" => match it.next().map(|s| SchedPolicy::parse(s)) {
                Some(Ok(p)) => opts.scheduler = Some(p),
                Some(Err(e)) => {
                    eprintln!("{e}\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
                None => {
                    eprintln!("--scheduler needs a policy name\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--levels" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => {
                    opts.levels = n;
                    levels_set = true;
                }
                None => {
                    eprintln!("--levels needs an unsigned integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => opts.seed = n,
                None => {
                    eprintln!("--seed needs an unsigned integer\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path\n{}", serve_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "-h" | "--help" => {
                println!("{}", serve_usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument {other:?}\n{}", serve_usage());
                return ExitCode::from(USAGE_ERROR);
            }
        }
    }
    if sweep && (json_out.is_some() || load_set) {
        eprintln!("--sweep is incompatible with --json and --load\n{}", serve_usage());
        return ExitCode::from(USAGE_ERROR);
    }
    if shard_sweep && (sweep || json_out.is_some() || load_set || shards_set) {
        eprintln!(
            "--shard-sweep is incompatible with --sweep, --json, --load and --shards\n{}",
            serve_usage()
        );
        return ExitCode::from(USAGE_ERROR);
    }
    if wan_sweep {
        if sweep || shard_sweep || json_out.is_some() || load_set || shards_set || rtt_set
            || batch_set
        {
            eprintln!(
                "--wan-sweep is incompatible with --sweep, --shard-sweep, --json, --load, \
                 --shards, --rtt-us and --batch (the sweep sets its own RTT x batch grid)\n{}",
                serve_usage()
            );
            return ExitCode::from(USAGE_ERROR);
        }
        if backend_set && opts.backend != BackendKind::Wan {
            eprintln!("--wan-sweep requires --backend wan\n{}", serve_usage());
            return ExitCode::from(USAGE_ERROR);
        }
        opts.backend = BackendKind::Wan;
    }
    if posmap_sweep {
        if sweep || shard_sweep || wan_sweep || json_out.is_some() || load_set || shards_set
            || posmap_set || plb_set || levels_set || domain_set
        {
            eprintln!(
                "--posmap-sweep is incompatible with --sweep, --shard-sweep, --wan-sweep, \
                 --json, --load, --shards, --posmap, --plb-entries, --levels and --domain \
                 (the sweep sets its own depth x PLB grid)\n{}",
                serve_usage()
            );
            return ExitCode::from(USAGE_ERROR);
        }
        if opts.backend != BackendKind::Dram {
            eprintln!("--posmap-sweep runs on the DRAM reference backend\n{}", serve_usage());
            return ExitCode::from(USAGE_ERROR);
        }
    }
    if opts.posmap != PosmapKind::Recursive && !posmap_sweep && (plb_set || onchip_set) {
        eprintln!(
            "--plb-entries and --posmap-onchip-kb apply only to --posmap recursive\n{}",
            serve_usage()
        );
        return ExitCode::from(USAGE_ERROR);
    }
    if opts.backend != BackendKind::Wan && (rtt_set || batch_set) {
        eprintln!("--rtt-us and --batch apply only to --backend wan\n{}", serve_usage());
        return ExitCode::from(USAGE_ERROR);
    }
    if opts.backend != BackendKind::Disk && opts.disk_dir.is_some() {
        eprintln!("--disk-dir applies only to --backend disk\n{}", serve_usage());
        return ExitCode::from(USAGE_ERROR);
    }
    if csv_dir.is_some() && !wan_sweep && !shard_sweep && !posmap_sweep {
        eprintln!(
            "--csv applies only to --wan-sweep, --shard-sweep and --posmap-sweep\n{}",
            serve_usage()
        );
        return ExitCode::from(USAGE_ERROR);
    }
    if (metrics_addr.is_some() || top) && (shard_sweep || wan_sweep || posmap_sweep) {
        eprintln!(
            "--metrics-addr and --top are incompatible with --shard-sweep, --wan-sweep and \
             --posmap-sweep (those sweeps re-run many configurations; attach the live plane \
             to a plain run or --sweep)\n{}",
            serve_usage()
        );
        return ExitCode::from(USAGE_ERROR);
    }
    if linger_set && metrics_addr.is_none() {
        eprintln!("--metrics-linger applies only with --metrics-addr\n{}", serve_usage());
        return ExitCode::from(USAGE_ERROR);
    }
    if force_incident && incident_dir.is_none() {
        eprintln!("--force-incident requires --incident-dir\n{}", serve_usage());
        return ExitCode::from(USAGE_ERROR);
    }
    if (incident_dir.is_some() || slo_spec.is_some())
        && (sweep || shard_sweep || wan_sweep || posmap_sweep)
    {
        eprintln!(
            "--slo-spec and --incident-dir are incompatible with the sweeps (the flight \
             recorder and SLO overrides attach to a single plain run)\n{}",
            serve_usage()
        );
        return ExitCode::from(USAGE_ERROR);
    }
    // A custom SLO spec is validated before anything runs: a malformed
    // file is a one-line message and exit 2, never a mid-run surprise.
    let slos_override = match &slo_spec {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match parse_slo_spec(&text) {
                Ok(slos) => Some(slos),
                Err(e) => {
                    eprintln!("repro serve: {}: {e}", path.display());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            Err(e) => {
                eprintln!("repro serve: failed to read {}: {e}", path.display());
                return ExitCode::from(USAGE_ERROR);
            }
        },
        None => None,
    };
    if opts.backend != BackendKind::Dram && (opts.shards > 1 || shard_sweep) {
        eprintln!(
            "--backend {} does not support sharding (the sharded path is DRAM-only)\n{}",
            opts.backend.name(),
            serve_usage()
        );
        return ExitCode::from(USAGE_ERROR);
    }
    let stash_bound = {
        let mut probe = SystemConfig::scaled_default();
        probe.oram.levels = opts.levels;
        if let Err(e) = probe.validate() {
            eprintln!("repro: invalid configuration: {e}");
            return ExitCode::from(USAGE_ERROR);
        }
        // The flat position map is sized by the tree's block slots, at
        // ~24 modeled bytes per entry (leaf label, version, residency).
        // Depths whose map would blow the host-memory budget are a
        // usage error, not an OOM kill ten minutes in.
        let slots = probe.oram.z as u64 * ((1u64 << (opts.levels + 1)) - 1);
        if !posmap_sweep && opts.domain > slots {
            eprintln!(
                "repro serve: --domain {} exceeds the L={} tree's {slots} block slots; \
                 raise --levels",
                opts.domain, opts.levels
            );
            return ExitCode::from(USAGE_ERROR);
        }
        let flat_mib = slots.saturating_mul(24) >> 20;
        if opts.posmap == PosmapKind::Flat && !posmap_sweep && flat_mib > posmap_budget_mb {
            eprintln!(
                "repro serve: a flat position map at L={} needs ~{flat_mib} MiB \
                 (over the {posmap_budget_mb} MiB budget); use --posmap recursive, \
                 or raise --posmap-budget-mb",
                opts.levels
            );
            return ExitCode::from(USAGE_ERROR);
        }
        probe.oram.stash_capacity as u32
    };

    let started = Instant::now();
    let hb = Heartbeat::new("serve", !quiet && Heartbeat::stderr_is_tty());
    // The live observability plane: built whenever the metrics endpoint
    // or the terminal view is requested. The `repro top` ticker is
    // TTY-gated and silenced by --quiet; the endpoint serves snapshots
    // from a side thread and never perturbs the run (stdout stays
    // byte-identical — a CLI test holds that line).
    let live = if metrics_addr.is_some() || top || slos_override.is_some() || incident_dir.is_some()
    {
        let mut cfg = LiveConfig::for_serve(
            opts.clients,
            opts.shards,
            opts.base_gap_cycles as u64,
            stash_bound,
        );
        if let Some(slos) = slos_override {
            cfg.slos = slos;
        }
        let draw_top = top && !quiet && Heartbeat::stderr_is_tty();
        let lr = LiveRun::new(LivePlane::shared(cfg), draw_top);
        if incident_dir.is_some() {
            lr.plane.lock().expect("plane lock").attach_flight(FlightConfig::default());
        }
        Some(lr)
    } else {
        None
    };
    let server = match (&metrics_addr, &live) {
        (Some(addr), Some(lr)) => match MetricsServer::start(addr, lr.plane.clone()) {
            Ok(s) => {
                eprintln!("[metrics endpoint on http://{}/metrics]", s.local_addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("repro serve: failed to bind metrics endpoint {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => None,
    };
    if wan_sweep {
        return match run_wan_sweep(&opts, Some(&hb)) {
            Ok(report) => {
                print!("{}", report.render());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = report.table().write_csv(dir) {
                        eprintln!("failed to write CSV: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if !quiet {
                    eprintln!("[serve wan sweep in {:.1}s]", started.elapsed().as_secs_f64());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("repro serve: validation failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if posmap_sweep {
        return match run_posmap_sweep(&opts, Some(&hb)) {
            Ok(report) => {
                print!("{}", report.render());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = report.table().write_csv(dir) {
                        eprintln!("failed to write CSV: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if !quiet {
                    eprintln!("[serve posmap sweep in {:.1}s]", started.elapsed().as_secs_f64());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("repro serve: validation failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if shard_sweep {
        return match run_shard_sweep(&opts, Some(&hb)) {
            Ok(report) => {
                print!("{}", report.render());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = report.knee_table().write_csv(dir) {
                        eprintln!("failed to write CSV: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if !quiet {
                    eprintln!("[serve shard sweep in {:.1}s]", started.elapsed().as_secs_f64());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("repro serve: validation failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if sweep {
        let (ok, code) = match run_serve_sweep_live(&opts, Some(&hb), live.as_ref()) {
            Ok(report) => {
                print!("{}", report.render());
                if !quiet {
                    eprintln!("[serve sweep in {:.1}s]", started.elapsed().as_secs_f64());
                }
                (true, ExitCode::SUCCESS)
            }
            Err(e) => {
                eprintln!("repro serve: validation failed: {e}");
                (false, ExitCode::FAILURE)
            }
        };
        finish_metrics(server, metrics_linger, ok, quiet);
        return code;
    }
    let (ok, code) = match run_serve_live(&opts, Some(&hb), live.as_ref()) {
        Ok(arts) => {
            print!("{}", arts.report.render());
            print!("{}", arts.posmap_section);
            print!("{}", arts.client_section);
            let mut ok = true;
            if let Some(path) = &json_out {
                if let Err(e) = std::fs::write(path, arts.report.to_json()) {
                    eprintln!("failed to write {}: {e}", path.display());
                    ok = false;
                }
            }
            // Incident forensics: dump the frozen flight recorder's
            // bundle. A forced freeze always lands one; otherwise the
            // bundle appears only when a trigger alert fired mid-run.
            if let (Some(dir), Some(lr)) = (&incident_dir, &live) {
                let mut p = lr.plane.lock().expect("plane lock");
                if force_incident {
                    p.force_incident();
                }
                if p.flight().is_some_and(|f| f.is_frozen()) {
                    let meta = IncidentMeta {
                        seed: opts.seed,
                        levels: opts.levels,
                        clients: opts.clients,
                        shards: opts.shards,
                        requests: opts.requests,
                        load: opts.load,
                        scheduler: opts
                            .scheduler
                            .map_or_else(|| "all".to_string(), |s| s.name().to_string()),
                        backend: opts.backend.name().to_string(),
                    };
                    match p.render_incident(&meta).and_then(|b| write_incident_bundle(dir, &b)) {
                        Ok(()) => {
                            if !quiet {
                                eprintln!("[incident bundle in {}]", dir.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("repro serve: incident bundle: {e}");
                            ok = false;
                        }
                    }
                } else if !quiet {
                    eprintln!("[no incident: no trigger alert fired]");
                }
            }
            if ok && !quiet {
                eprintln!(
                    "[serve ({} policies) in {:.1}s]",
                    arts.report.schedulers.len(),
                    started.elapsed().as_secs_f64()
                );
            }
            (ok, if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        Err(e) => {
            eprintln!("repro serve: validation failed: {e}");
            (false, ExitCode::FAILURE)
        }
    };
    finish_metrics(server, metrics_linger, ok, quiet);
    code
}

/// The `repro soak` subcommand: the long-horizon multi-tenant soak with
/// streaming validation, report on stdout, optional JSON to disk.
fn soak_main(args: &[String]) -> ExitCode {
    let mut opts = SoakOptions::full();
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                opts = SoakOptions {
                    backend: opts.backend,
                    switch_backend: opts.switch_backend,
                    incident_dir: opts.incident_dir.take(),
                    ..SoakOptions::quick()
                }
            }
            "--quiet" => quiet = true,
            "--tenants" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.tenants = n,
                _ => {
                    eprintln!("--tenants needs a positive integer\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--requests-total" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => opts.requests_total = n,
                _ => {
                    eprintln!("--requests-total needs a positive integer\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--phases" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.phases = n,
                _ => {
                    eprintln!("--phases needs a positive integer\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--levels" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => opts.levels = n,
                None => {
                    eprintln!("--levels needs an unsigned integer\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => opts.seed = n,
                None => {
                    eprintln!("--seed needs an unsigned integer\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--backend" => match it.next().map(|s| BackendKind::parse(s)) {
                Some(Ok(b)) => opts.backend = b,
                Some(Err(e)) => {
                    eprintln!("{e}\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
                None => {
                    eprintln!("--backend needs a name (dram, disk or wan)\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--switch-backend" => match it.next().map(|s| BackendKind::parse(s)) {
                Some(Ok(b)) => opts.switch_backend = Some(b),
                Some(Err(e)) => {
                    eprintln!("{e}\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
                None => {
                    eprintln!(
                        "--switch-backend needs a name (dram, disk or wan)\n{}",
                        soak_usage()
                    );
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--incident-dir" => match it.next() {
                Some(d) => opts.incident_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--incident-dir needs a directory\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path\n{}", soak_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "-h" | "--help" => {
                println!("{}", soak_usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument {other:?}\n{}", soak_usage());
                return ExitCode::from(USAGE_ERROR);
            }
        }
    }
    if let Err(e) = opts.validate() {
        eprintln!("repro soak: {e}\n{}", soak_usage());
        return ExitCode::from(USAGE_ERROR);
    }

    let started = Instant::now();
    let hb = Heartbeat::new("soak", !quiet && Heartbeat::stderr_is_tty());
    match run_soak(&opts, Some(&hb)) {
        Ok(report) => {
            print!("{}", report.render());
            if let Some(path) = &json_out {
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("failed to write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if !quiet {
                eprintln!(
                    "[soak of {} requests ({} phases) in {:.1}s]",
                    report.requests_total,
                    report.phases_n,
                    started.elapsed().as_secs_f64()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro soak: validation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `repro incident` subcommand: offline re-validation of a dumped
/// incident bundle.
fn incident_main(args: &[String]) -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    for a in args {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{}", incident_usage());
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() && !other.starts_with('-') => dir = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", incident_usage());
                return ExitCode::from(USAGE_ERROR);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{}", incident_usage());
        return ExitCode::from(USAGE_ERROR);
    };
    match run_incident(&dir) {
        Ok(summary) => {
            print!("{}", summary.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro incident: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Holds the metrics endpoint open for `linger_secs` after a successful
/// serve (so a scraper can collect the final state), then shuts it down
/// and joins its thread. No-op without an endpoint.
fn finish_metrics(server: Option<MetricsServer>, linger_secs: u64, ok: bool, quiet: bool) {
    if let Some(server) = server {
        if ok && linger_secs > 0 {
            if !quiet {
                eprintln!(
                    "[metrics endpoint lingering {linger_secs}s at http://{}/metrics]",
                    server.local_addr()
                );
            }
            std::thread::sleep(std::time::Duration::from_secs(linger_secs));
        }
        server.shutdown();
    }
}

/// The `repro compare` subcommand: the regression guard over two
/// `repro profile --json` files.
fn compare_main(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(p) if p >= 0.0 => tolerance = p / 100.0,
                _ => {
                    eprintln!("--tolerance needs a non-negative percentage\n{}", compare_usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "-h" | "--help" => {
                println!("{}", compare_usage());
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", compare_usage());
                return ExitCode::from(USAGE_ERROR);
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("expected exactly two profile files\n{}", compare_usage());
        return ExitCode::from(USAGE_ERROR);
    }

    let read = |path: &PathBuf| -> Result<String, String> {
        std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))
    };
    let (base_text, cand_text) = match (read(&paths[0]), read(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("repro compare: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Detect the report kind from its schema: a soak report leads with
    // a "soak" key, a serve report carries a "schedulers" array, a
    // profile carries per-policy attribution. Both files must be the
    // same kind.
    let is_soak = |t: &str| t.contains("\"soak\"");
    if is_soak(&base_text) || is_soak(&cand_text) {
        if !(is_soak(&base_text) && is_soak(&cand_text)) {
            eprintln!("repro compare: cannot compare a soak report against another kind");
            return ExitCode::FAILURE;
        }
        let parse = |text: &str, path: &PathBuf| {
            SoakReport::parse(text).map_err(|e| format!("{}: {e}", path.display()))
        };
        return match (parse(&base_text, &paths[0]), parse(&cand_text, &paths[1])) {
            (Ok(b), Ok(c)) => match compare_soak_reports(&b, &c, tolerance) {
                Ok(outcome) => {
                    print!("{}", outcome.render());
                    if outcome.passed() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    ExitCode::FAILURE
                }
            },
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("repro compare: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let is_service = |t: &str| t.contains("\"schedulers\"");
    let compared = if is_service(&base_text) || is_service(&cand_text) {
        if !(is_service(&base_text) && is_service(&cand_text)) {
            eprintln!("repro compare: cannot compare a service report against a profile");
            return ExitCode::FAILURE;
        }
        let parse = |text: &str, path: &PathBuf| {
            ServiceReport::parse(text).map_err(|e| format!("{}: {e}", path.display()))
        };
        match (parse(&base_text, &paths[0]), parse(&cand_text, &paths[1])) {
            (Ok(b), Ok(c)) => compare_service_reports(&b, &c, tolerance),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("repro compare: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let parse = |text: &str, path: &PathBuf| {
            ProfileReport::parse(text).map_err(|e| format!("{}: {e}", path.display()))
        };
        match (parse(&base_text, &paths[0]), parse(&cand_text, &paths[1])) {
            (Ok(b), Ok(c)) => compare_reports(&b, &c, tolerance),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("repro compare: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match compared {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("repro compare: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("audit") {
        return audit_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return trace_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("profile") {
        return profile_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("soak") {
        return soak_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("incident") {
        return incident_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("compare") {
        return compare_main(&args[1..]);
    }

    let mut name = None;
    let mut opts = ExpOptions::quick();
    let mut threads: Option<usize> = None;
    let mut levels: Option<u32> = None;
    let mut csv_dir: Option<PathBuf> = None;
    let mut telemetry_dir: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => opts = ExpOptions::full(),
            "--quiet" => quiet = true,
            "--csv" => match it.next() {
                Some(d) => csv_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--csv needs a directory\n{}", usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--telemetry" => match it.next() {
                Some(d) => telemetry_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--telemetry needs a directory\n{}", usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer\n{}", usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "--levels" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => levels = Some(n),
                None => {
                    eprintln!("--levels needs an unsigned integer\n{}", usage());
                    return ExitCode::from(USAGE_ERROR);
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", usage());
                return ExitCode::from(USAGE_ERROR);
            }
        }
    }
    let Some(name) = name else {
        eprintln!("{}", usage());
        return ExitCode::from(USAGE_ERROR);
    };
    if let Some(n) = threads {
        opts = opts.with_threads(n);
    }
    // Heartbeats only where someone is watching: an interactive stderr
    // and no --quiet.
    opts = opts.with_progress(!quiet && Heartbeat::stderr_is_tty());
    if let Some(l) = levels {
        // Validate through the real system-config checks so a bad depth is
        // a one-line message, not an unwrap backtrace mid-sweep.
        let mut probe = SystemConfig::scaled_default();
        probe.oram.levels = l;
        if let Err(e) = probe.validate() {
            eprintln!("repro: invalid configuration: {e}");
            return ExitCode::from(USAGE_ERROR);
        }
        opts.levels = l;
    }

    let started = Instant::now();
    match run_one(&name, &opts) {
        Some(tables) => {
            for t in &tables {
                println!("{}", t.render());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = t.write_csv(dir) {
                        eprintln!("failed to write CSV: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            eprintln!("[{} in {:.1}s]", name, started.elapsed().as_secs_f64());
            if let Some(dir) = &telemetry_dir {
                // Companion traced run at the experiment's scale, so the
                // artifacts describe the same configuration the tables do.
                let topts = TraceOptions {
                    misses: opts.misses,
                    warmup: opts.warmup,
                    levels: opts.levels,
                    seed: opts.seed,
                    ..TraceOptions::full()
                };
                match run_trace(&topts) {
                    Ok(artifacts) => {
                        if let Err(e) = write_artifacts(dir, &artifacts) {
                            eprintln!("failed to write {}: {e}", dir.display());
                            return ExitCode::FAILURE;
                        }
                        print!("{}", artifacts.report.render());
                        eprintln!("[telemetry artifacts in {}]", dir.display());
                    }
                    Err(e) => {
                        eprintln!("repro: telemetry validation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown experiment {name:?}\n{}", usage());
            ExitCode::from(USAGE_ERROR)
        }
    }
}

//! The `repro trace` subcommand's engine: runs the standard policy set
//! with the full telemetry recorder attached, renders every export
//! format, and self-validates the artifacts before anything is written.
//!
//! The validation here is the subcommand's contract: a zero exit code
//! means the JSONL span log parsed against its schema, the Chrome trace
//! had balanced begin/end events with monotone timestamps, the
//! time-series CSV was contiguous, and the end-of-run report reproduced
//! Eq. 1 (`total = data + DRI`) exactly from the telemetry stream.

use std::path::Path;

use oram_protocol::DupPolicy;
use oram_sim::{run_workload_traced, RunOptions, SystemConfig};
use oram_telemetry::export::{
    spans_to_chrome_trace, spans_to_jsonl, validate_chrome_trace, validate_jsonl,
};
use oram_telemetry::{
    validate_attribution, validate_timeseries_csv, PolicyReport, RunReport, TelemetryConfig,
    TelemetryRecorder,
};
use oram_util::MetricId;
use oram_workloads::spec;

use crate::experiments::TIMING_RATE;
use crate::progress::Heartbeat;

/// The policy set a trace run covers, in report order: the Tiny
/// baseline, both pure duplication modes, and dynamic partitioning.
pub const TRACE_POLICIES: [(&str, DupPolicy); 4] = [
    ("tiny", DupPolicy::Off),
    ("rd_dup", DupPolicy::RdOnly),
    ("hd_dup", DupPolicy::HdOnly),
    ("dynamic3", DupPolicy::Dynamic { counter_bits: 3 }),
];

/// Options for one `repro trace` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOptions {
    /// Workload to trace (one of [`spec::WORKLOAD_NAMES`]).
    pub workload: String,
    /// Measured LLC misses per policy.
    pub misses: u64,
    /// Warmup misses (run dark, before the recorder attaches).
    pub warmup: u64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Trace seed.
    pub seed: u64,
    /// Time-series window length in CPU cycles.
    pub window_cycles: u64,
    /// Span ring capacity per policy.
    pub span_capacity: usize,
}

impl TraceOptions {
    /// Fast settings for CI smoke runs: seconds, not minutes.
    pub fn quick() -> Self {
        TraceOptions {
            workload: "mcf".to_string(),
            misses: 1000,
            warmup: 250,
            levels: 12,
            seed: 7,
            window_cycles: 50_000,
            span_capacity: 1 << 16,
        }
    }

    /// Full-fidelity settings matching the default experiment scale.
    pub fn full() -> Self {
        TraceOptions { misses: 6000, warmup: 1500, levels: 14, ..TraceOptions::quick() }
    }
}

/// Every artifact produced for one policy, rendered and validated.
#[derive(Debug, Clone)]
pub struct PolicyArtifacts {
    /// Policy label, also the file-name stem ("tiny", "rd_dup", ...).
    pub policy: String,
    /// Per-access spans, one JSON object per line.
    pub spans_jsonl: String,
    /// The same spans in Chrome `trace_event` format (open in
    /// `chrome://tracing` or Perfetto).
    pub chrome_trace: String,
    /// Periodic window samples as CSV.
    pub timeseries_csv: String,
    /// Final counter/histogram values as CSV.
    pub metrics_csv: String,
}

/// A complete, validated trace run: per-policy artifacts plus the
/// end-of-run report.
#[derive(Debug)]
pub struct TraceArtifacts {
    /// One artifact set per entry of [`TRACE_POLICIES`].
    pub per_policy: Vec<PolicyArtifacts>,
    /// The per-policy cycle breakdown (Eq. 1).
    pub report: RunReport,
}

/// Runs the full policy set under the telemetry recorder and validates
/// every export.
///
/// # Errors
///
/// Returns a message describing the first artifact that failed schema or
/// consistency validation — including any disagreement between the
/// telemetry stream and the simulator's own statistics.
pub fn run_trace(opts: &TraceOptions) -> Result<TraceArtifacts, String> {
    run_trace_with_progress(opts, None)
}

/// [`run_trace`] with an optional per-policy progress heartbeat (one
/// tick per completed policy; pass `None` for silent runs, e.g. under
/// `--quiet` or a non-interactive stderr).
pub fn run_trace_with_progress(
    opts: &TraceOptions,
    progress: Option<&Heartbeat>,
) -> Result<TraceArtifacts, String> {
    if !spec::WORKLOAD_NAMES.contains(&opts.workload.as_str()) {
        return Err(format!(
            "unknown workload {:?} (expected one of {:?})",
            opts.workload,
            spec::WORKLOAD_NAMES
        ));
    }
    let profile = spec::profile(&opts.workload);
    let ro = RunOptions {
        misses: opts.misses,
        warmup_misses: opts.warmup,
        seed: opts.seed,
        fill_target: 0.35,
        o3: None,
    };

    let mut per_policy = Vec::new();
    let mut report = RunReport::new();
    for (done, (name, policy)) in TRACE_POLICIES.into_iter().enumerate() {
        let mut cfg = SystemConfig::scaled_default();
        cfg.oram.levels = opts.levels;
        cfg.oram.dup_policy = policy;
        cfg.timing_protection = Some(TIMING_RATE);
        cfg.validate().map_err(|e| format!("{name}: invalid configuration: {e}"))?;

        let rec = TelemetryRecorder::shared(TelemetryConfig { span_capacity: opts.span_capacity });
        let r = run_workload_traced(
            &profile,
            &cfg,
            &ro,
            TelemetryRecorder::as_sink(&rec),
            opts.window_cycles,
        );
        let s = r.oram;
        let rec = rec.lock().expect("recorder poisoned");

        // The telemetry stream must agree with the simulator's stats
        // before we bless the artifacts.
        let expected_spans = s.data_requests + s.onchip_served + s.dummy_requests;
        if rec.spans().total_pushed() != expected_spans {
            return Err(format!(
                "{name}: span count {} != accesses measured {}",
                rec.spans().total_pushed(),
                expected_spans
            ));
        }
        let windows = rec.series().windows();
        let window_cycles: u64 = windows.iter().map(|w| w.end_cycle - w.start_cycle).sum();
        if window_cycles != s.total_cycles {
            return Err(format!(
                "{name}: window spans cover {window_cycles} cycles, run took {}",
                s.total_cycles
            ));
        }
        if rec.series().total(|w| w.data_cycles) != s.data_cycles {
            return Err(format!("{name}: window data-cycle sum disagrees with the run"));
        }
        // Every span's cycle attribution must partition its duration
        // exactly, with duplication credits only on eligible serves.
        validate_attribution(rec.spans()).map_err(|e| format!("{name}: attribution: {e}"))?;

        let spans_jsonl = spans_to_jsonl(rec.spans());
        let held = validate_jsonl(&spans_jsonl).map_err(|e| format!("{name}: JSONL: {e}"))?;
        if held != rec.spans().len() {
            return Err(format!("{name}: JSONL holds {held} spans, ring {}", rec.spans().len()));
        }
        let chrome_trace = spans_to_chrome_trace(rec.spans());
        validate_chrome_trace(&chrome_trace).map_err(|e| format!("{name}: Chrome trace: {e}"))?;
        let timeseries_csv = rec.series().to_csv();
        let got = validate_timeseries_csv(&timeseries_csv)
            .map_err(|e| format!("{name}: time series: {e}"))?;
        if got != windows.len() {
            return Err(format!("{name}: CSV holds {got} windows, series {}", windows.len()));
        }

        let m = rec.metrics();
        let adv = m.histogram(MetricId::AdvanceDepth);
        report.push(PolicyReport {
            policy: name.to_string(),
            total_cycles: s.total_cycles,
            data_cycles: s.data_cycles,
            dri_cycles: s.dri_cycles,
            data_requests: s.data_requests,
            onchip_served: s.onchip_served,
            dummy_requests: s.dummy_requests,
            shadow_served: m.counter(MetricId::DramServedShadow),
            mean_advance: adv.mean(),
            energy_mj: s.energy_mj,
            spans_held: rec.spans().len() as u64,
            spans_dropped: rec.spans().dropped(),
        });
        per_policy.push(PolicyArtifacts {
            policy: name.to_string(),
            spans_jsonl,
            chrome_trace,
            timeseries_csv,
            metrics_csv: m.to_csv(),
        });
        if let Some(hb) = progress {
            hb.tick(done + 1, TRACE_POLICIES.len());
        }
    }
    report.check_eq1()?;
    Ok(TraceArtifacts { per_policy, report })
}

/// Writes a validated trace run into `dir` (created if missing):
/// `spans_<policy>.jsonl`, `trace_<policy>.json`,
/// `timeseries_<policy>.csv`, `metrics_<policy>.csv`, and `report.txt`.
///
/// # Errors
///
/// Propagates the first filesystem error.
pub fn write_artifacts(dir: &Path, artifacts: &TraceArtifacts) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for p in &artifacts.per_policy {
        std::fs::write(dir.join(format!("spans_{}.jsonl", p.policy)), &p.spans_jsonl)?;
        std::fs::write(dir.join(format!("trace_{}.json", p.policy)), &p.chrome_trace)?;
        std::fs::write(dir.join(format!("timeseries_{}.csv", p.policy)), &p.timeseries_csv)?;
        std::fs::write(dir.join(format!("metrics_{}.csv", p.policy)), &p.metrics_csv)?;
    }
    std::fs::write(dir.join("report.txt"), artifacts.report.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_is_rejected() {
        let mut o = TraceOptions::quick();
        o.workload = "nonesuch".to_string();
        let err = run_trace(&o).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }
}

//! The `repro incident` subcommand's engine: writing a rendered
//! [`IncidentBundle`] to a directory, and re-validating such a directory
//! offline — long after the run that produced it is gone.
//!
//! An incident bundle is self-contained: `spans.jsonl` carries every
//! field of every captured access span, so the Chrome trace can be
//! reconstructed from it byte-for-byte. The offline validator exploits
//! that: it parses the spans back, re-renders both exports, and demands
//! byte identity with the files on disk, in addition to running the
//! schema validators and cross-checking the ring counts `meta.json`
//! recorded at freeze time. A bundle that passes is internally
//! consistent evidence, not just well-formed text.

use std::fs;
use std::path::Path;

use oram_obsv::{IncidentBundle, BUNDLE_FILES};
use oram_telemetry::json::{self, Value};
use oram_telemetry::{
    spans_to_chrome_trace, spans_to_jsonl, validate_chrome_trace, validate_jsonl, SpanRing,
};
use oram_util::observe::BusPhase;
use oram_util::telemetry::SPAN_MAX_PHASES;
use oram_util::{AccessAttribution, AccessSpan, PhaseSpan, ServeClass};

/// Writes a rendered bundle's seven files into `dir`, creating it.
///
/// # Errors
///
/// Returns a message naming the file that failed to write.
pub fn write_incident_bundle(dir: &Path, bundle: &IncidentBundle) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    for (name, contents) in bundle.files() {
        let path = dir.join(name);
        fs::write(&path, contents).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// What the offline validator established about a bundle, for the
/// one-screen report `repro incident` prints.
#[derive(Debug, Clone)]
pub struct IncidentSummary {
    /// Trigger family (`slo_burn`, `stash_pressure`, `eq1_residual`, or
    /// `forced`).
    pub trigger_kind: String,
    /// Sim cycle the trigger fired at.
    pub trigger_cycle: u64,
    /// Objective name for SLO-burn triggers.
    pub trigger_slo: Option<String>,
    /// Access spans held at freeze time.
    pub spans: usize,
    /// Service admit/reject/coalesce events held.
    pub service_events: usize,
    /// Structured SLO events held.
    pub slo_events: usize,
    /// Engine Eq. 1 window samples held.
    pub windows: usize,
    /// Master seed stamped into `meta.json`.
    pub seed: u64,
    /// Backend name stamped into `meta.json`.
    pub backend: String,
}

impl IncidentSummary {
    /// The validation report `repro incident` prints on success.
    pub fn render(&self) -> String {
        let slo = match &self.trigger_slo {
            Some(s) => format!(" (objective {s})"),
            None => String::new(),
        };
        format!(
            "incident bundle OK\n\
             trigger: {} at cycle {}{}\n\
             captured: {} spans, {} service events, {} slo events, {} windows\n\
             run: seed {} backend {}\n\
             checks: schema, chrome trace, span round-trip (byte-identical), ring counts\n",
            self.trigger_kind,
            self.trigger_cycle,
            slo,
            self.spans,
            self.service_events,
            self.slo_events,
            self.windows,
            self.seed,
            self.backend,
        )
    }
}

/// Reads one bundle file, with the file name in any error.
fn read_file(dir: &Path, name: &str) -> Result<String, String> {
    fs::read_to_string(dir.join(name))
        .map_err(|e| format!("{name}: {e} (is {} an incident bundle?)", dir.display()))
}

fn get_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("{ctx}: missing {key}"))
}

fn serve_class(name: &str) -> Result<ServeClass, String> {
    Ok(match name {
        "stash" => ServeClass::Stash,
        "treetop" => ServeClass::Treetop,
        "dram_real" => ServeClass::DramReal,
        "dram_shadow" => ServeClass::DramShadow,
        "fresh" => ServeClass::Fresh,
        "dummy" => ServeClass::Dummy,
        other => return Err(format!("unknown serve class {other:?}")),
    })
}

fn bus_phase(name: &str) -> Result<BusPhase, String> {
    Ok(match name {
        "read_only" => BusPhase::ReadOnly,
        "eviction_read" => BusPhase::EvictionRead,
        "eviction_write" => BusPhase::EvictionWrite,
        other => return Err(format!("unknown phase kind {other:?}")),
    })
}

/// Reconstructs one [`AccessSpan`] from its JSONL object — the inverse
/// of the exporter, field for field.
fn span_from_json(v: &Value, ctx: &str) -> Result<AccessSpan, String> {
    let real = match v.get("real") {
        Some(Value::Bool(b)) => *b,
        _ => return Err(format!("{ctx}: missing real")),
    };
    let served = serve_class(
        v.get("served").and_then(Value::as_str).ok_or_else(|| format!("{ctx}: missing served"))?,
    )
    .map_err(|e| format!("{ctx}: {e}"))?;
    let forward_index = match v.get("forward_index") {
        Some(Value::Null) => u32::MAX,
        Some(n) => n.as_u64().ok_or_else(|| format!("{ctx}: bad forward_index"))? as u32,
        None => return Err(format!("{ctx}: missing forward_index")),
    };
    let attr_v = v.get("attr").ok_or_else(|| format!("{ctx}: missing attr"))?;
    let attr = AccessAttribution {
        queue_wait: get_u64(attr_v, "queue_wait", ctx)?,
        dram_queue: get_u64(attr_v, "dram_queue", ctx)?,
        dram_row: get_u64(attr_v, "dram_row", ctx)?,
        network: get_u64(attr_v, "network", ctx)?,
        dram_bus: get_u64(attr_v, "dram_bus", ctx)?,
        eviction: get_u64(attr_v, "eviction", ctx)?,
        // Lenient: bundles written before the posmap component existed
        // simply omit the field.
        posmap: attr_v.get("posmap").and_then(Value::as_u64).unwrap_or(0),
        forward_saved: get_u64(attr_v, "forward_saved", ctx)?,
        stash_pull_credit: get_u64(attr_v, "stash_pull_credit", ctx)?,
    };
    let mut span = AccessSpan {
        seq: get_u64(v, "seq", ctx)?,
        real,
        arrival: get_u64(v, "arrival", ctx)?,
        start: get_u64(v, "start", ctx)?,
        data_ready: get_u64(v, "data_ready", ctx)?,
        end: get_u64(v, "end", ctx)?,
        served,
        forward_index,
        blocks_in_path: get_u64(v, "blocks_in_path", ctx)? as u32,
        stash_live: get_u64(v, "stash_live", ctx)? as u32,
        attr,
        phases: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
        phase_len: 0,
    };
    let phases =
        v.get("phases").and_then(Value::as_array).ok_or_else(|| format!("{ctx}: missing phases"))?;
    if phases.len() > SPAN_MAX_PHASES {
        return Err(format!("{ctx}: {} phases exceeds {SPAN_MAX_PHASES}", phases.len()));
    }
    for p in phases {
        let kind = bus_phase(
            p.get("kind").and_then(Value::as_str).ok_or_else(|| format!("{ctx}: phase kind"))?,
        )
        .map_err(|e| format!("{ctx}: {e}"))?;
        span.push_phase(PhaseSpan {
            kind,
            start: get_u64(p, "start", ctx)?,
            end: get_u64(p, "end", ctx)?,
        });
    }
    Ok(span)
}

/// Parses every line of `spans.jsonl` back into [`AccessSpan`]s.
fn parse_spans(text: &str) -> Result<Vec<AccessSpan>, String> {
    let mut spans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let ctx = format!("spans.jsonl line {}", lineno + 1);
        let v = json::parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        spans.push(span_from_json(&v, &ctx)?);
    }
    Ok(spans)
}

/// Checks one JSONL sidecar stream: every line parses as an object
/// carrying the expected keys. Returns the line count.
fn check_jsonl_stream(name: &str, text: &str, keys: &[&str]) -> Result<usize, String> {
    let mut n = 0;
    for (lineno, line) in text.lines().enumerate() {
        let ctx = format!("{name} line {}", lineno + 1);
        let v = json::parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        if v.as_object().is_none() {
            return Err(format!("{ctx}: not an object"));
        }
        for k in keys {
            if v.get(k).is_none() {
                return Err(format!("{ctx}: missing {k}"));
            }
        }
        n += 1;
    }
    Ok(n)
}

/// Cross-checks one `meta.json` ring count against the stream on disk.
fn check_count(counts: &Value, stream: &str, held_on_disk: usize) -> Result<(), String> {
    let entry = counts
        .get(stream)
        .ok_or_else(|| format!("meta.json: counts missing {stream}"))?;
    let held = get_u64(entry, "held", "meta.json counts")?;
    get_u64(entry, "dropped", "meta.json counts")?;
    if held != held_on_disk as u64 {
        return Err(format!(
            "meta.json says {held} {stream} held but the bundle carries {held_on_disk}"
        ));
    }
    Ok(())
}

/// The offline bundle validator behind `repro incident <dir>`.
///
/// Reads all seven [`BUNDLE_FILES`], runs the span-schema and Chrome
/// trace validators, reconstructs the spans from `spans.jsonl` and
/// re-renders both exports demanding byte identity, validates the
/// sidecar streams, and cross-checks every ring count `meta.json`
/// recorded.
///
/// # Errors
///
/// Returns a one-line description of the first inconsistency.
pub fn run_incident(dir: &Path) -> Result<IncidentSummary, String> {
    let mut contents = Vec::with_capacity(BUNDLE_FILES.len());
    for name in BUNDLE_FILES {
        contents.push(read_file(dir, name)?);
    }
    let [meta_text, spans_text, trace_text, prom_text, alerts_text, windows_text, events_text]: [String;
        7] = contents.try_into().expect("seven bundle files");

    // meta.json: schema version, trigger, config, ring counts.
    let meta = json::parse(&meta_text).map_err(|e| format!("meta.json: {e}"))?;
    let schema = get_u64(&meta, "schema", "meta.json")?;
    if schema != 1 {
        return Err(format!("meta.json: unsupported schema {schema} (expected 1)"));
    }
    let trigger = meta.get("trigger").ok_or("meta.json: missing trigger")?;
    let trigger_kind = trigger
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("meta.json: trigger missing kind")?
        .to_string();
    let trigger_cycle = get_u64(trigger, "cycle", "meta.json trigger")?;
    get_u64(trigger, "window", "meta.json trigger")?;
    let trigger_slo = trigger.get("slo").and_then(Value::as_str).map(str::to_string);
    let config = meta.get("config").ok_or("meta.json: missing config")?;
    let seed = get_u64(config, "seed", "meta.json config")?;
    let backend = config
        .get("backend")
        .and_then(Value::as_str)
        .ok_or("meta.json: config missing backend")?
        .to_string();
    let counts = meta.get("counts").ok_or("meta.json: missing counts")?;

    // The span exports: schema-validate, then round-trip. Byte identity
    // of the re-render proves the JSONL alone fully determines the
    // trace — the bundle needs no out-of-band state to reproduce.
    let n_spans = validate_jsonl(&spans_text).map_err(|e| format!("spans.jsonl: {e}"))?;
    validate_chrome_trace(&trace_text).map_err(|e| format!("trace.json: {e}"))?;
    let spans = parse_spans(&spans_text)?;
    let mut ring = SpanRing::new(spans.len().max(1));
    for s in &spans {
        ring.push(s);
    }
    if spans_to_jsonl(&ring) != spans_text {
        return Err("spans.jsonl is not a fixed point of the exporter".into());
    }
    if spans_to_chrome_trace(&ring) != trace_text {
        return Err("trace.json does not re-render byte-identically from spans.jsonl".into());
    }

    // Sidecar streams: well-formed lines with the expected keys.
    let n_alerts =
        check_jsonl_stream("alerts.jsonl", &alerts_text, &["cycle", "kind", "window"])?;
    let n_windows = check_jsonl_stream(
        "windows.jsonl",
        &windows_text,
        &["index", "start_cycle", "end_cycle", "data_cycles", "dri_cycles", "stash_live"],
    )?;
    let n_events = check_jsonl_stream("events.jsonl", &events_text, &["cycle", "tenant", "kind"])?;
    for (lineno, line) in events_text.lines().enumerate() {
        let v = json::parse(line).expect("validated above");
        let kind = v.get("kind").and_then(Value::as_str).expect("validated above");
        if !matches!(kind, "admit" | "reject" | "coalesce") {
            return Err(format!("events.jsonl line {}: unknown kind {kind:?}", lineno + 1));
        }
    }
    if prom_text.trim().is_empty() {
        return Err("metrics.prom is empty".into());
    }

    // Ring counts: the bundle carries exactly what the recorder held.
    check_count(counts, "spans", n_spans)?;
    check_count(counts, "service_events", n_events)?;
    check_count(counts, "slo_events", n_alerts)?;
    check_count(counts, "windows", n_windows)?;

    Ok(IncidentSummary {
        trigger_kind,
        trigger_cycle,
        trigger_slo,
        spans: n_spans,
        service_events: n_events,
        slo_events: n_alerts,
        windows: n_windows,
        seed,
        backend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_obsv::{FlightConfig, IncidentMeta, LiveConfig, LivePlane};
    use oram_util::{LiveObserver, TelemetrySink, WindowSample};

    fn test_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("oram_incident_{}_{tag}", std::process::id()))
    }

    /// A plane with a recorder, some traffic, and a forced freeze.
    fn frozen_plane() -> LivePlane {
        let mut p = LivePlane::new(LiveConfig::for_serve(2, 1, 400, 100));
        p.attach_flight(FlightConfig::default());
        for i in 0..40u64 {
            let cycle = i * 500;
            p.request_admitted(cycle, (i % 2) as u32);
            // Latency 300 stays under every default objective (p99
            // threshold is 2 x gap = 800), so the only freeze is the
            // forced one below.
            p.request_complete(cycle + 300, (i % 2) as u32, 0, ServeClass::Stash, 300, false);
        }
        p.window(&WindowSample {
            index: 0,
            start_cycle: 0,
            end_cycle: 50_000,
            data_cycles: 30_000,
            dri_cycles: 20_000,
            ..Default::default()
        });
        p.flush();
        p.force_incident();
        p
    }

    #[test]
    fn written_bundle_round_trips_through_the_validator() {
        let p = frozen_plane();
        let bundle = p.render_incident(&IncidentMeta {
            seed: 7,
            levels: 12,
            clients: 2,
            shards: 1,
            requests: 40,
            load: 1.0,
            scheduler: "fcfs".into(),
            backend: "dram".into(),
        })
        .expect("render");
        let dir = test_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        write_incident_bundle(&dir, &bundle).expect("write");
        let summary = run_incident(&dir).expect("validate");
        assert_eq!(summary.trigger_kind, "forced");
        assert_eq!(summary.seed, 7);
        assert_eq!(summary.backend, "dram");
        assert_eq!(summary.windows, 1);
        assert!(summary.render().contains("incident bundle OK"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_bundle_is_rejected() {
        let p = frozen_plane();
        let bundle = p.render_incident(&IncidentMeta::default()).expect("render");
        let dir = test_dir("tamper");
        let _ = std::fs::remove_dir_all(&dir);
        write_incident_bundle(&dir, &bundle).expect("write");
        // Losing a window sample breaks the meta.json count cross-check.
        std::fs::write(dir.join("windows.jsonl"), "").expect("truncate");
        let err = run_incident(&dir).expect_err("must reject");
        assert!(err.contains("windows"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_one_line_error() {
        let dir = test_dir("missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let err = run_incident(&dir).expect_err("must fail");
        assert!(err.contains("meta.json"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn span_round_trip_covers_every_field() {
        use oram_telemetry::{TelemetryConfig, TelemetryRecorder};
        // Real engine spans: run a tiny simulation and export its ring.
        let sys = oram_sim::SystemConfig::small_test();
        let telem = TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 12 });
        let mut engine = oram_sim::Engine::new(sys).expect("engine");
        engine.attach_telemetry(TelemetryRecorder::as_sink(&telem), 50_000);
        let mut rng = oram_util::Rng64::seed_from_u64(3);
        let mut now = 0u64;
        for i in 0..200u64 {
            let addr = rng.below(64) + 1;
            let out = engine.serve_request(addr, i % 5 == 0, now);
            now = out.end + 40 + rng.below(2000);
        }
        engine.finish();
        engine.detach_telemetry();
        let t = telem.lock().expect("recorder");
        let jsonl = spans_to_jsonl(t.spans());
        let trace = spans_to_chrome_trace(t.spans());
        let spans = parse_spans(&jsonl).expect("parse back");
        assert_eq!(spans.len(), t.spans().len());
        let mut ring = SpanRing::new(spans.len().max(1));
        for s in &spans {
            ring.push(s);
        }
        assert_eq!(spans_to_jsonl(&ring), jsonl, "jsonl fixed point");
        assert_eq!(spans_to_chrome_trace(&ring), trace, "trace re-render");
    }
}

//! The `repro serve` subcommand's engine: drives the multi-client
//! service front-end over every scheduler policy on the identical
//! offered workload, self-validates each run, and summarizes tail
//! latency and throughput. A load-sweep mode scales the offered rate
//! and locates the saturation knee.
//!
//! The validation is the subcommand's contract: a zero exit code means
//! the service conservation laws held (every generated request was
//! admitted or rejected exactly once and every admitted request
//! completed), every telemetry span's cycle attribution partitioned its
//! latency with `queue_wait = start − arrival`, and the service-issued
//! bus trace passed the obliviousness audit (protocol grammar plus leaf
//! uniformity) — coalescing and batch scheduling must be invisible on
//! the memory bus.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use oram_audit::{check_posmap_trace, check_service_trace, Recorder};
use oram_cpu::{MissRecord, ReplayMisses};
use oram_obsv::{render_top, LivePlane};
use oram_protocol::PosMapSelect;
use oram_service::{
    LatencySummary, SchedPolicy, SchedulerSummary, ServiceConfig, ServiceMeta, ServiceReport,
    ServiceResult, ServiceSim, ShardedServiceSim, SERVE_CLASS_NAMES,
};
use oram_sim::{
    build_miss_stream, scale_profile, DiskBackend, DiskConfig, Engine, RunOptions, ShardedOram,
    StorageBackend, SystemConfig, WanBackend, WanConfig,
};
use oram_telemetry::{validate_attribution, TeeSink, TelemetryConfig, TelemetryRecorder};
use oram_util::MetricId;
use oram_workloads::spec;

use crate::progress::Heartbeat;
use crate::table::Table;

/// Which storage backend serves the engine's bucket I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The cycle-accurate DDR3 timing model (the reference path;
    /// byte-identical to the pre-backend output).
    #[default]
    Dram,
    /// The persistent on-disk bucket store (WAL + crash recovery).
    Disk,
    /// The deterministic simulated-WAN model (RTT + bandwidth, batched).
    Wan,
}

impl BackendKind {
    /// The CLI / report name of this backend.
    pub const fn name(self) -> &'static str {
        match self {
            BackendKind::Dram => "dram",
            BackendKind::Disk => "disk",
            BackendKind::Wan => "wan",
        }
    }

    /// Parses a CLI backend name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(s: &str) -> Result<BackendKind, String> {
        match s {
            "dram" => Ok(BackendKind::Dram),
            "disk" => Ok(BackendKind::Disk),
            "wan" => Ok(BackendKind::Wan),
            other => Err(format!("unknown backend {other:?} (expected dram, disk or wan)")),
        }
    }
}

/// Which position map backend the engine's controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PosmapKind {
    /// The O(N)-memory flat array (the reference path; byte-identical
    /// to the pre-recursion output).
    #[default]
    Flat,
    /// The recursive position map: posmap entries packed into blocks
    /// stored in a chain of smaller ORAMs, fronted by a PLB. Costed
    /// posmap walks land in the `posmap` attribution component.
    Recursive,
}

impl PosmapKind {
    /// The CLI / report name of this posmap mode.
    pub const fn name(self) -> &'static str {
        match self {
            PosmapKind::Flat => "flat",
            PosmapKind::Recursive => "recursive",
        }
    }

    /// Parses a CLI posmap mode name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(s: &str) -> Result<PosmapKind, String> {
        match s {
            "flat" => Ok(PosmapKind::Flat),
            "recursive" => Ok(PosmapKind::Recursive),
            other => Err(format!("unknown posmap {other:?} (expected flat or recursive)")),
        }
    }
}

/// A live observability attachment for a serve run: the shared
/// [`LivePlane`] every policy feeds (service-side completions and
/// rejections always; engine-side spans, Eq. 1 windows, and stash
/// samples on single-engine runs, where the engine executes on the
/// service thread) plus an optional rate-limited terminal ticker.
///
/// Sharded runs attach the plane service-side only: engine sinks fire
/// on worker threads there, and the plane deliberately stays off those
/// threads so the run's output and schedule are untouched.
#[derive(Debug)]
pub struct LiveRun {
    /// The plane every run in this serve feeds; the metrics endpoint
    /// and `repro top` snapshot it.
    pub plane: Arc<Mutex<LivePlane>>,
    /// The `repro top` terminal ticker, when enabled.
    pub top: Option<TopTicker>,
}

impl LiveRun {
    /// Wraps a shared plane, with the terminal ticker on or off.
    pub fn new(plane: Arc<Mutex<LivePlane>>, top: bool) -> Self {
        LiveRun { plane, top: top.then(TopTicker::new) }
    }
}

/// The `repro top` live terminal view: renders the plane snapshot to
/// stderr at most once per [`TopTicker::PERIOD`], so stepping the
/// simulation stays cheap between redraws.
#[derive(Debug)]
pub struct TopTicker {
    last: Cell<Option<Instant>>,
}

impl TopTicker {
    /// Minimum wall-clock gap between redraws.
    pub const PERIOD: Duration = Duration::from_millis(500);

    /// A ticker that draws on its first call, then rate-limits.
    pub fn new() -> Self {
        TopTicker { last: Cell::new(None) }
    }

    /// Redraws if at least [`TopTicker::PERIOD`] elapsed since the last
    /// draw (always draws on the first call).
    pub fn maybe_draw(&self, plane: &Arc<Mutex<LivePlane>>) {
        let now = Instant::now();
        if let Some(last) = self.last.get() {
            if now.duration_since(last) < TopTicker::PERIOD {
                return;
            }
        }
        self.last.set(Some(now));
        let text = {
            let p = plane.lock().expect("plane lock");
            render_top(&p)
        };
        eprint!("{text}");
    }
}

impl Default for TopTicker {
    fn default() -> Self {
        TopTicker::new()
    }
}

/// Options for one `repro serve` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Number of client streams.
    pub clients: usize,
    /// Requests each stream generates.
    pub requests: u64,
    /// Mean per-client interarrival gap in cycles at load 1.0.
    pub base_gap_cycles: f64,
    /// Offered-rate multiplier (the gap is `base_gap_cycles / load`).
    pub load: f64,
    /// Run only this policy; `None` runs all of [`SchedPolicy::ALL`].
    pub scheduler: Option<SchedPolicy>,
    /// Address domain (blocks), also the prefilled working set.
    pub domain: u64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Master seed.
    pub seed: u64,
    /// ORAM backend shards (1 = the single-engine reference path,
    /// byte-identical to the pre-sharding output; > 1 partitions the
    /// address space and enables intra-shard pipelining).
    pub shards: usize,
    /// Worker threads serving shards concurrently (results are
    /// bit-identical at any thread count).
    pub threads: usize,
    /// Storage backend serving the engine's bucket I/O.
    pub backend: BackendKind,
    /// WAN round-trip time in microseconds ([`BackendKind::Wan`] only).
    pub rtt_us: f64,
    /// WAN request batch size: block requests amortized per round trip
    /// ([`BackendKind::Wan`] only).
    pub wan_batch: usize,
    /// Disk backend directory ([`BackendKind::Disk`] only); `None` uses
    /// a fresh temporary directory, removed after the run.
    pub disk_dir: Option<PathBuf>,
    /// Position map backend the controller runs.
    pub posmap: PosmapKind,
    /// Overrides the configured PLB capacity (entries) when set.
    pub plb_entries: Option<usize>,
    /// On-chip budget (KiB) the recursive posmap chain terminates under
    /// ([`PosmapKind::Recursive`] only).
    pub posmap_onchip_kb: u32,
}

impl ServeOptions {
    /// Fast settings for CI smoke runs: seconds, not minutes.
    pub fn quick() -> Self {
        ServeOptions {
            clients: 4,
            requests: 250,
            base_gap_cycles: 25_000.0,
            load: 1.0,
            scheduler: None,
            domain: 256,
            levels: 12,
            seed: 7,
            shards: 1,
            threads: 1,
            backend: BackendKind::Dram,
            rtt_us: 200.0,
            wan_batch: 4,
            disk_dir: None,
            posmap: PosmapKind::Flat,
            plb_entries: None,
            posmap_onchip_kb: 64,
        }
    }

    /// Full-fidelity settings matching the default experiment scale.
    pub fn full() -> Self {
        ServeOptions { requests: 1000, domain: 1024, levels: 14, ..ServeOptions::quick() }
    }

    /// The service configuration at a given load factor (scheduler is
    /// set per run).
    fn service_config(&self, load: f64) -> ServiceConfig {
        ServiceConfig::symmetric_open(
            self.clients,
            self.requests,
            self.base_gap_cycles / load,
            self.domain,
            self.seed,
        )
    }
}

/// A validated serve run: the per-scheduler report plus the per-client
/// accounting section of the text output.
#[derive(Debug, Clone)]
pub struct ServeArtifacts {
    /// Per-scheduler latency/throughput summaries (renders, serializes,
    /// and compares against a baseline).
    pub report: ServiceReport,
    /// Per-client serve-class breakdown, one section per policy.
    pub client_section: String,
    /// The recursive-posmap status line (chain depth, modeled on-chip
    /// state, PLB capacity); empty under a flat posmap so flat output
    /// stays byte-identical to the pre-recursion format.
    pub posmap_section: String,
}

/// Folds a validated run into its scheduler summary line.
fn summarize(name: &str, res: &ServiceResult) -> SchedulerSummary {
    let mut lat: Vec<u64> =
        res.clients.iter().flat_map(|c| c.latencies.iter().copied()).collect();
    let latency = LatencySummary::from_samples(&mut lat);
    let completed = res.completed();
    let total_cycles = res.stats.total_cycles;
    let throughput_rpmc =
        if total_cycles == 0 { 0.0 } else { completed as f64 * 1e6 / total_cycles as f64 };
    let onchip = res
        .clients
        .iter()
        .map(|c| c.served[0] + c.served[1]) // stash + treetop
        .sum();
    SchedulerSummary {
        policy: name.to_string(),
        completed,
        issued: res.issued(),
        coalesced: res.coalesced(),
        rejected: res.rejected(),
        onchip,
        total_cycles,
        throughput_rpmc,
        latency,
    }
}

/// Blocks prefilled into the working set are capped here: prefill cost
/// is O(blocks) on the host, and a billion-address domain would spend
/// longer installing its working set than serving it. Requests past the
/// prefilled span are first touches, exactly as a cold block would be.
const PREFILL_CAP: u64 = 8192;

/// The system configuration `repro serve` runs under: depth `L` plus
/// the posmap mode and PLB overrides from the options.
fn serve_system(opts: &ServeOptions) -> Result<SystemConfig, String> {
    let mut sys = SystemConfig::scaled_default();
    sys.oram.levels = opts.levels;
    if opts.posmap == PosmapKind::Recursive {
        sys.oram.posmap = PosMapSelect::Recursive { onchip_kb: opts.posmap_onchip_kb };
    }
    if let Some(entries) = opts.plb_entries {
        sys.oram.plb_entries = entries;
    }
    sys.validate().map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(sys)
}

/// Builds the WAN backend for `sys` from the serve options.
fn wan_backend(opts: &ServeOptions, sys: &SystemConfig) -> Result<WanBackend, String> {
    let per_block = WanConfig::default_wan().per_block_cycles;
    let cfg = WanConfig::from_rtt_us(opts.rtt_us, sys.dram.tck_ns, per_block, opts.wan_batch);
    WanBackend::new(cfg)
}

/// Builds the disk backend for `sys`, returning the backend plus the
/// directory to remove after the run (`None` when the caller owns it).
fn disk_backend(
    opts: &ServeOptions,
    sys: &SystemConfig,
    tag: &str,
) -> Result<(DiskBackend, Option<PathBuf>), String> {
    let (dir, ephemeral) = match &opts.disk_dir {
        Some(d) => (d.join(tag), None),
        None => {
            let d = std::env::temp_dir()
                .join(format!("oram_serve_disk_{}_{tag}", std::process::id()));
            (d.clone(), Some(d))
        }
    };
    let bucket_count = (1u64 << (sys.oram.levels + 1)) - 1;
    let backend = DiskBackend::new(DiskConfig::new(dir, sys.oram.z, bucket_count))?;
    Ok((backend, ephemeral))
}

/// Runs one policy at one load factor through the full validation
/// stack and returns the summary plus the raw result.
fn run_policy(
    opts: &ServeOptions,
    policy: SchedPolicy,
    load: f64,
    live: Option<&LiveRun>,
) -> Result<(SchedulerSummary, ServiceResult), String> {
    if opts.shards > 1 {
        if opts.backend != BackendKind::Dram {
            return Err(format!(
                "backend {:?} does not support --shards > 1 (the sharded path is DRAM-only)",
                opts.backend.name()
            ));
        }
        return run_policy_sharded(opts, policy, load, live);
    }
    let name = policy.name();
    let sys = serve_system(opts).map_err(|e| format!("{name}: {e}"))?;
    match opts.backend {
        BackendKind::Dram => {
            let engine = Engine::new(sys).map_err(|e| format!("{name}: engine: {e}"))?;
            run_policy_on(opts, policy, load, engine, live)
        }
        BackendKind::Wan => {
            let backend = wan_backend(opts, &sys).map_err(|e| format!("{name}: wan: {e}"))?;
            let engine =
                Engine::with_backend(sys, backend).map_err(|e| format!("{name}: engine: {e}"))?;
            run_policy_on(opts, policy, load, engine, live)
        }
        BackendKind::Disk => {
            let tag = format!("{name}_{load:.2}").replace('.', "p");
            let (backend, cleanup) =
                disk_backend(opts, &sys, &tag).map_err(|e| format!("{name}: disk: {e}"))?;
            let engine =
                Engine::with_backend(sys, backend).map_err(|e| format!("{name}: engine: {e}"))?;
            let result = run_policy_on(opts, policy, load, engine, live);
            if let Some(dir) = cleanup {
                let _ = std::fs::remove_dir_all(dir);
            }
            result
        }
    }
}

/// The backend-generic core of [`run_policy`]: drives the service
/// front-end over a ready engine and applies the full validation stack.
fn run_policy_on<B: StorageBackend>(
    opts: &ServeOptions,
    policy: SchedPolicy,
    load: f64,
    mut engine: Engine<B>,
    live: Option<&LiveRun>,
) -> Result<(SchedulerSummary, ServiceResult), String> {
    let name = policy.name();
    let mut cfg = opts.service_config(load);
    cfg.scheduler = policy;

    let trace = Recorder::unbounded();
    let telem = TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 16 });
    engine.prefill_working_set(cfg.address_span().min(PREFILL_CAP));
    engine.attach_bus_observer(trace.observer());
    // With a live plane attached the engine's telemetry stream is teed:
    // the post-hoc recorder stays primary (validation reads it), and the
    // plane sees the same spans, Eq. 1 windows, and stash samples as
    // they happen.
    let engine_sink = match live {
        Some(lr) => {
            TeeSink::shared(TelemetryRecorder::as_sink(&telem), LivePlane::as_sink(&lr.plane))
        }
        None => TelemetryRecorder::as_sink(&telem),
    };
    engine.attach_telemetry(engine_sink, 50_000);

    let mut sim = ServiceSim::new(cfg, engine).map_err(|e| format!("{name}: {e}"))?;
    sim.attach_telemetry(TelemetryRecorder::as_sink(&telem));
    if let Some(lr) = live {
        sim.attach_live(LivePlane::as_live(&lr.plane));
    }
    match live.and_then(|lr| lr.top.as_ref()) {
        Some(top) => {
            while sim.step() {
                top.maybe_draw(&live.expect("top implies live").plane);
            }
        }
        None => sim.run(),
    }
    let (res, mut engine) = sim.finish();
    engine.detach_telemetry();
    engine.detach_bus_observer();

    // 1. Service conservation laws against the engine's own counters.
    res.validate().map_err(|e| format!("{name}: {e}"))?;
    // 2. Every span's attribution partitions its latency exactly, with
    //    queue_wait = start − arrival.
    {
        let t = telem.lock().expect("recorder poisoned");
        validate_attribution(t.spans()).map_err(|e| format!("{name}: attribution: {e}"))?;
    }
    // 3. The service-issued bus trace passes the obliviousness audit:
    //    the data-path grammar (which skips posmap events) plus the
    //    recursive posmap's own structural grammar (vacuous under a
    //    flat posmap, which emits no posmap events).
    let snapshot = trace.snapshot();
    check_service_trace(&engine.config().oram, &snapshot)
        .map_err(|e| format!("{name}: service trace audit: {e}"))?;
    check_posmap_trace(&snapshot).map_err(|e| format!("{name}: posmap trace audit: {e}"))?;
    // 4. The live plane (when attached) conserved every count: folded +
    //    ring + open window totals equal the cumulative registry.
    finish_live(name, live)?;

    let summary = summarize(name, &res);
    Ok((summary, res))
}

/// Closes the live plane's open window after a policy run and checks
/// the window conservation law.
fn finish_live(name: &str, live: Option<&LiveRun>) -> Result<(), String> {
    if let Some(lr) = live {
        let mut p = lr.plane.lock().expect("plane lock");
        p.flush();
        p.validate_conservation()
            .map_err(|e| format!("{name}: observability conservation: {e}"))?;
    }
    Ok(())
}

/// The sharded counterpart of [`run_policy`]: partitions the address
/// space across `opts.shards` engines (each with intra-shard pipelining
/// enabled) and validates every shard independently — each shard's bus
/// trace must pass the obliviousness audit on its own, and each shard's
/// telemetry spans must partition their latencies exactly.
fn run_policy_sharded(
    opts: &ServeOptions,
    policy: SchedPolicy,
    load: f64,
    live: Option<&LiveRun>,
) -> Result<(SchedulerSummary, ServiceResult), String> {
    let name = policy.name();
    let mut sys = serve_system(opts).map_err(|e| format!("{name}: {e}"))?;
    // Shards overlap access k+1's path read with access k's eviction
    // tail; the hazard check stalls same-path and stash-pressure cases.
    sys.pipeline = true;

    let mut cfg = opts.service_config(load);
    cfg.scheduler = policy;

    let mut backend = ShardedOram::new(sys, opts.shards, opts.threads)
        .map_err(|e| format!("{name}: backend: {e}"))?;
    backend.prefill_working_set(cfg.address_span().min(PREFILL_CAP));
    let traces: Vec<Recorder> = (0..opts.shards).map(|_| Recorder::unbounded()).collect();
    let telems: Vec<_> = (0..opts.shards)
        .map(|_| TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 16 }))
        .collect();
    for i in 0..opts.shards {
        backend.engine_mut(i).attach_bus_observer(traces[i].observer());
        backend.engine_mut(i).attach_telemetry(TelemetryRecorder::as_sink(&telems[i]), 50_000);
    }

    let mut sim = ShardedServiceSim::new(cfg, backend).map_err(|e| format!("{name}: {e}"))?;
    sim.attach_telemetry(TelemetryRecorder::as_sink(&telems[0]));
    // The plane attaches service-side only here: engine sinks fire on
    // worker threads in the sharded path, and the plane stays off those
    // threads so the deterministic schedule is untouched. Completions
    // still carry their shard id, so the per-shard breakdown is live.
    if let Some(lr) = live {
        sim.attach_live(LivePlane::as_live(&lr.plane));
    }
    match live.and_then(|lr| lr.top.as_ref()) {
        Some(top) => {
            while sim.step() {
                top.maybe_draw(&live.expect("top implies live").plane);
            }
        }
        None => sim.run(),
    }
    let (res, mut backend) = sim.finish();
    for i in 0..opts.shards {
        backend.engine_mut(i).detach_telemetry();
        backend.engine_mut(i).detach_bus_observer();
    }

    // 1. Service conservation laws against the merged engine counters.
    res.validate().map_err(|e| format!("{name}: {e}"))?;
    // 2. Per-shard attribution: every span partitions its latency.
    for (i, telem) in telems.iter().enumerate() {
        let t = telem.lock().expect("recorder poisoned");
        validate_attribution(t.spans())
            .map_err(|e| format!("{name}: shard {i} attribution: {e}"))?;
    }
    // 3. Per-shard obliviousness: each shard's bus trace must be a valid
    //    ORAM trace on its own (a shard that saw no traffic has nothing
    //    to check).
    for (i, trace) in traces.iter().enumerate() {
        let snapshot = trace.snapshot();
        if snapshot.is_empty() {
            continue;
        }
        check_service_trace(&backend.engine_mut(i).config().oram, &snapshot)
            .map_err(|e| format!("{name}: shard {i} service trace audit: {e}"))?;
        check_posmap_trace(&snapshot)
            .map_err(|e| format!("{name}: shard {i} posmap trace audit: {e}"))?;
    }
    // 4. Live-plane window conservation, as in the single-engine path.
    finish_live(name, live)?;

    let summary = summarize(name, &res);
    Ok((summary, res))
}

/// Renders one policy's per-client accounting lines.
fn render_clients(policy: SchedPolicy, res: &ServiceResult) -> String {
    let mut out = format!("per-client ({}):\n", policy.name());
    for (i, c) in res.clients.iter().enumerate() {
        let classes: Vec<String> = SERVE_CLASS_NAMES
            .iter()
            .zip(c.served)
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name} {n}"))
            .collect();
        let mean_wait = c.wait_sum.checked_div(c.completed).unwrap_or(0);
        out.push_str(&format!(
            "  client {i}: completed {} rejected {} coalesced {} | {} | wait mean {} max {}\n",
            c.completed,
            c.rejected,
            c.coalesced,
            classes.join(", "),
            mean_wait,
            c.wait_max,
        ));
    }
    out
}

/// Runs the configured policy set through the full validation stack.
///
/// # Errors
///
/// Returns a message naming the first policy whose run failed
/// validation (conservation, attribution, or the trace audit).
pub fn run_serve(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<ServeArtifacts, String> {
    run_serve_live(opts, progress, None)
}

/// [`run_serve`] with an optional live observability plane attached:
/// every policy run feeds the same plane, whose conservation law is
/// checked after each run. The returned artifacts are byte-identical
/// with the plane attached or absent (a CLI test holds this line).
///
/// # Errors
///
/// As [`run_serve`], plus a plane conservation failure.
pub fn run_serve_live(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
    live: Option<&LiveRun>,
) -> Result<ServeArtifacts, String> {
    let policies: Vec<SchedPolicy> = match opts.scheduler {
        Some(p) => vec![p],
        None => SchedPolicy::ALL.to_vec(),
    };
    let mut schedulers = Vec::new();
    let mut client_section = String::new();
    for (done, &policy) in policies.iter().enumerate() {
        let (summary, res) = run_policy(opts, policy, opts.load, live)?;
        schedulers.push(summary);
        client_section.push_str(&render_clients(policy, &res));
        if let Some(hb) = progress {
            hb.tick(done + 1, policies.len());
        }
    }
    let report = ServiceReport {
        meta: ServiceMeta {
            clients: opts.clients as u64,
            requests_per_client: opts.requests,
            queue_capacity: 16,
            batch_size: 4,
            levels: opts.levels,
            seed: opts.seed,
            load: opts.load,
            shards: opts.shards as u64,
            backend: opts.backend.name().to_string(),
            posmap: opts.posmap.name().to_string(),
        },
        schedulers,
    };
    let posmap_section = posmap_status(opts)?;
    Ok(ServeArtifacts { report, client_section, posmap_section })
}

/// The recursive-posmap status line of a serve run: chain depth,
/// modeled on-chip state against the terminal-map budget, and PLB
/// capacity. The geometry is fixed by the configuration, so a probe
/// engine (never run) answers without touching the measured output.
/// Empty in flat mode.
///
/// # Errors
///
/// Returns a configuration rejection.
pub fn posmap_status(opts: &ServeOptions) -> Result<String, String> {
    if opts.posmap != PosmapKind::Recursive {
        return Ok(String::new());
    }
    let sys = serve_system(opts)?;
    let plb_entries = sys.oram.plb_entries;
    let engine = Engine::new(sys).map_err(|e| format!("posmap probe: engine: {e}"))?;
    let ctl = engine.controller();
    Ok(format!(
        "posmap: recursive, {} chain levels, on-chip state {:.1} KiB \
         (terminal-map budget {} KiB), plb {} entries\n",
        ctl.posmap_chain_levels(),
        ctl.posmap_onchip_bytes() as f64 / 1024.0,
        opts.posmap_onchip_kb,
        plb_entries,
    ))
}

/// Load factors the sweep visits, spanning well under to well past
/// saturation.
pub const SWEEP_LOADS: [f64; 8] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0];

/// Load factors the *shard* sweep visits: the sharded backend pushes the
/// saturation knee far past the single-backend range, so the sweep must
/// reach much heavier loads for every shard count to show its knee.
pub const SHARD_SWEEP_LOADS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// One measured operating point of the load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered-rate multiplier.
    pub load: f64,
    /// Offered requests per million cycles (generated, pre-admission).
    pub offered_rpmc: f64,
    /// Completed requests per million cycles.
    pub achieved_rpmc: f64,
    /// Fraction of generated requests bounced by admission control.
    pub rejected_frac: f64,
    /// Latency summary at this point.
    pub latency: LatencySummary,
}

/// A full load sweep: every operating point plus the detected knee.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Policy the sweep ran under.
    pub policy: SchedPolicy,
    /// Measured points, in swept-load order ([`SWEEP_LOADS`] for the
    /// plain sweep, [`SHARD_SWEEP_LOADS`] under the shard sweep).
    pub points: Vec<SweepPoint>,
    /// First load factor where admission control rejected more than 5%
    /// of offered requests — the saturation knee. `None` if the sweep
    /// never saturated.
    pub knee: Option<f64>,
}

impl SweepReport {
    /// Renders the sweep table plus the knee verdict.
    pub fn render(&self) -> String {
        let mut out = format!("load sweep ({}):\n", self.policy.name());
        out.push_str(&format!(
            "  {:>6} {:>12} {:>13} {:>9} {:>10} {:>10} {:>10}\n",
            "load", "offered/Mc", "achieved/Mc", "rej%", "p50", "p99", "p99.9"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:>6.2} {:>12.2} {:>13.2} {:>8.1}% {:>10} {:>10} {:>10}\n",
                p.load,
                p.offered_rpmc,
                p.achieved_rpmc,
                p.rejected_frac * 100.0,
                p.latency.p50,
                p.latency.p99,
                p.latency.p999,
            ));
        }
        match self.knee {
            Some(k) => out.push_str(&format!(
                "saturation knee at load {k:.2} (first point rejecting > 5% of offered requests)\n"
            )),
            None => out.push_str("no saturation knee within the swept range\n"),
        }
        out
    }
}

/// Sweeps [`SWEEP_LOADS`] under one policy (the configured one, or
/// FCFS) and locates the saturation knee. Every point runs the same
/// validation stack as [`run_serve`].
///
/// # Errors
///
/// Returns the first point's validation failure.
pub fn run_serve_sweep(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<SweepReport, String> {
    sweep_loads(opts, &SWEEP_LOADS, progress, None)
}

/// [`run_serve_sweep`] with an optional live observability plane: the
/// plane accumulates across every swept load point.
///
/// # Errors
///
/// As [`run_serve_sweep`], plus a plane conservation failure.
pub fn run_serve_sweep_live(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
    live: Option<&LiveRun>,
) -> Result<SweepReport, String> {
    sweep_loads(opts, &SWEEP_LOADS, progress, live)
}

/// The sweep engine behind [`run_serve_sweep`] and [`run_shard_sweep`]:
/// one validated run per load factor, knee detection at the 5% rejection
/// threshold.
fn sweep_loads(
    opts: &ServeOptions,
    loads: &[f64],
    progress: Option<&Heartbeat>,
    live: Option<&LiveRun>,
) -> Result<SweepReport, String> {
    let policy = opts.scheduler.unwrap_or(SchedPolicy::Fcfs);
    let mut points = Vec::new();
    let mut knee = None;
    for (done, &load) in loads.iter().enumerate() {
        let (summary, res) = run_policy(opts, policy, load, live)?;
        let generated: u64 = res.clients.iter().map(|c| c.generated).sum();
        let cycles = summary.total_cycles.max(1);
        let rejected_frac =
            if generated == 0 { 0.0 } else { summary.rejected as f64 / generated as f64 };
        points.push(SweepPoint {
            load,
            offered_rpmc: generated as f64 * 1e6 / cycles as f64,
            achieved_rpmc: summary.throughput_rpmc,
            rejected_frac,
            latency: summary.latency,
        });
        if knee.is_none() && rejected_frac > 0.05 {
            knee = Some(load);
        }
        if let Some(hb) = progress {
            hb.tick(done + 1, loads.len());
        }
    }
    Ok(SweepReport { policy, points, knee })
}

/// Shard counts the shard sweep visits.
pub const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// A load sweep per shard count: how the saturation knee moves as the
/// address space is partitioned across more concurrent shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSweepReport {
    /// Policy every sweep ran under.
    pub policy: SchedPolicy,
    /// `(shard count, sweep)` pairs in [`SHARD_SWEEP`] order.
    pub entries: Vec<(usize, SweepReport)>,
}

impl ShardSweepReport {
    /// The achieved throughput at the saturation knee (or at the heaviest
    /// swept load if the sweep never saturated) for one entry.
    pub fn knee_throughput(sweep: &SweepReport) -> f64 {
        let point = match sweep.knee {
            Some(k) => sweep.points.iter().find(|p| p.load == k),
            None => sweep.points.last(),
        };
        point.map_or(0.0, |p| p.achieved_rpmc)
    }

    /// The latency summary at load 1.0 for one entry (zeros if the
    /// sweep skipped that load).
    fn at_load_one(sweep: &SweepReport) -> (u64, u64) {
        sweep
            .points
            .iter()
            .find(|p| p.load == 1.0)
            .map_or((0, 0), |p| (p.latency.p99, p.latency.p999))
    }

    /// Renders the cross-shard summary table followed by each per-shard
    /// sweep.
    pub fn render(&self) -> String {
        let mut out = format!("shard sweep ({}):\n", self.policy.name());
        out.push_str(&format!(
            "  {:>6} {:>8} {:>13} {:>10} {:>10}\n",
            "shards", "knee", "knee req/Mcyc", "p99@1.0", "p99.9@1.0"
        ));
        for (m, sweep) in &self.entries {
            let knee = sweep
                .knee
                .map_or_else(|| "none".to_string(), |k| format!("{k:.2}"));
            let (p99, p999) = Self::at_load_one(sweep);
            out.push_str(&format!(
                "  {:>6} {:>8} {:>13.2} {:>10} {:>10}\n",
                m,
                knee,
                Self::knee_throughput(sweep),
                p99,
                p999
            ));
        }
        for (m, sweep) in &self.entries {
            out.push_str(&format!("-- shards {m} --\n"));
            out.push_str(&sweep.render());
        }
        out
    }

    /// The knee table for CSV export: one row per shard count with the
    /// knee load, knee throughput, and the load-1.0 tail (p99 and
    /// p99.9). A sweep that never saturated writes knee 0.
    pub fn knee_table(&self) -> Table {
        let mut t = Table::new(
            "Fig C1: shard sweep saturation knee",
            &["knee_load", "knee_req_per_mcyc", "p99_at_load1", "p99_9_at_load1"],
        );
        for (m, sweep) in &self.entries {
            let (p99, p999) = Self::at_load_one(sweep);
            t.push(
                format!("shards_{m}"),
                vec![
                    sweep.knee.unwrap_or(0.0),
                    Self::knee_throughput(sweep),
                    p99 as f64,
                    p999 as f64,
                ],
            );
        }
        t
    }
}

/// Runs one [`SHARD_SWEEP_LOADS`] sweep per [`SHARD_SWEEP`] shard count
/// on the identical offered workload, so the knees are directly
/// comparable.
///
/// # Errors
///
/// Returns the first sweep's validation failure.
pub fn run_shard_sweep(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<ShardSweepReport, String> {
    let policy = opts.scheduler.unwrap_or(SchedPolicy::Fcfs);
    let mut entries = Vec::new();
    for (done, &m) in SHARD_SWEEP.iter().enumerate() {
        let o = ServeOptions { shards: m, ..opts.clone() };
        entries.push((m, sweep_loads(&o, &SHARD_SWEEP_LOADS, None, None)?));
        if let Some(hb) = progress {
            hb.tick(done + 1, SHARD_SWEEP.len());
        }
    }
    Ok(ShardSweepReport { policy, entries })
}

/// Round-trip times (µs) the WAN sweep visits: same-metro, regional,
/// and cross-region regimes.
pub const WAN_SWEEP_RTTS_US: [f64; 3] = [50.0, 200.0, 800.0];

/// Request batch sizes the WAN sweep visits at each RTT.
pub const WAN_SWEEP_BATCHES: [usize; 5] = [1, 2, 4, 8, 16];

/// One measured operating point of the WAN sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WanSweepPoint {
    /// Configured round-trip time in microseconds.
    pub rtt_us: f64,
    /// Requests amortized per network round trip.
    pub batch: usize,
    /// Cycles over the measured misses.
    pub total_cycles: u64,
    /// `total_cycles / measured misses` — the figure's y-axis.
    pub per_request_cycles: f64,
    /// Cycles attributed to network round trips.
    pub network_cycles: u64,
    /// 99th-percentile end-to-end access latency (cycles), from the
    /// telemetry spans of the measured misses.
    pub p99_cycles: u64,
    /// 99.9th-percentile end-to-end access latency (cycles).
    pub p999_cycles: u64,
}

/// The RTT-vs-batch WAN sweep: per-request cost as batching amortizes
/// round trips, at several latency regimes.
#[derive(Debug, Clone, PartialEq)]
pub struct WanSweepReport {
    /// Workload driving the miss stream.
    pub workload: String,
    /// Measured misses per point (identical stream at every point).
    pub misses: u64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Master seed.
    pub seed: u64,
    /// Points in `(RTT, batch)` lexicographic sweep order.
    pub points: Vec<WanSweepPoint>,
}

impl WanSweepReport {
    /// Renders the per-point table plus the amortization verdict.
    pub fn render(&self) -> String {
        let mut out = format!(
            "wan sweep ({} misses of {}, levels {}):\n",
            self.misses, self.workload, self.levels
        );
        out.push_str(&format!(
            "  {:>8} {:>6} {:>14} {:>12} {:>6} {:>10} {:>10}\n",
            "rtt_us", "batch", "cycles/req", "network", "net%", "p99", "p99.9"
        ));
        for p in &self.points {
            let netpct = if p.total_cycles == 0 {
                0.0
            } else {
                100.0 * p.network_cycles as f64 / p.total_cycles as f64
            };
            out.push_str(&format!(
                "  {:>8.0} {:>6} {:>14.1} {:>12} {:>5.1}% {:>10} {:>10}\n",
                p.rtt_us,
                p.batch,
                p.per_request_cycles,
                p.network_cycles,
                netpct,
                p.p99_cycles,
                p.p999_cycles
            ));
        }
        out.push_str(
            "per-request cycles are monotone non-increasing in the batch size at every RTT\n",
        );
        out
    }

    /// The figure table: one row per RTT, one column per batch size,
    /// cell = per-request cycles; followed by `p99_rtt_*` and
    /// `p99_9_rtt_*` rows carrying the tail latency at the same points.
    pub fn table(&self) -> Table {
        let cols: Vec<String> =
            WAN_SWEEP_BATCHES.iter().map(|b| format!("batch_{b}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig B1: WAN per-request cycles vs request batch",
            &col_refs,
        );
        for &rtt in &WAN_SWEEP_RTTS_US {
            let row: Vec<f64> = self
                .points
                .iter()
                .filter(|p| p.rtt_us == rtt)
                .map(|p| p.per_request_cycles)
                .collect();
            t.push(format!("rtt_{rtt:.0}us"), row);
        }
        for (tag, pick) in [
            ("p99", (|p: &WanSweepPoint| p.p99_cycles) as fn(&WanSweepPoint) -> u64),
            ("p99_9", |p: &WanSweepPoint| p.p999_cycles),
        ] {
            for &rtt in &WAN_SWEEP_RTTS_US {
                let row: Vec<f64> = self
                    .points
                    .iter()
                    .filter(|p| p.rtt_us == rtt)
                    .map(|p| pick(p) as f64)
                    .collect();
                t.push(format!("{tag}_rtt_{rtt:.0}us"), row);
            }
        }
        t
    }
}

/// Sweeps [`WAN_SWEEP_RTTS_US`] × [`WAN_SWEEP_BATCHES`] over the
/// identical replayed miss stream and self-checks the amortization law:
/// at fixed RTT, per-request cycles must be monotone non-increasing in
/// the batch size. The stream is replayed through [`Engine::run`]
/// directly (no admission control), so the per-request figure divides by
/// a fixed miss count and the law is exact.
///
/// # Errors
///
/// Returns the first configuration or monotonicity failure.
pub fn run_wan_sweep(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<WanSweepReport, String> {
    let workload = "mcf";
    let sys = serve_system(opts)?;
    let ro = RunOptions {
        misses: opts.requests,
        warmup_misses: opts.requests / 4,
        seed: opts.seed,
        fill_target: 0.35,
        o3: None,
    };
    let scaled = scale_profile(&spec::profile(workload), &sys, ro.fill_target);
    let records = build_miss_stream(&scaled, sys.hierarchy, &ro);
    let split = (ro.warmup_misses as usize).min(records.len());
    let (warm, measured) = records.split_at(split);
    if measured.is_empty() {
        return Err("wan sweep: no measured misses".to_string());
    }

    let total_points = WAN_SWEEP_RTTS_US.len() * WAN_SWEEP_BATCHES.len();
    let mut points = Vec::with_capacity(total_points);
    for &rtt_us in &WAN_SWEEP_RTTS_US {
        let mut prev: Option<f64> = None;
        for &batch in &WAN_SWEEP_BATCHES {
            let o = ServeOptions { rtt_us, wan_batch: batch, ..opts.clone() };
            let backend = wan_backend(&o, &sys).map_err(|e| format!("wan sweep: {e}"))?;
            let mut engine = Engine::with_backend(sys.clone(), backend)
                .map_err(|e| format!("wan sweep: engine: {e}"))?;
            engine.prefill_working_set(scaled.working_set_blocks);
            if !warm.is_empty() {
                engine.run(&mut ReplayMisses::new(warm.to_vec()));
            }
            let rec = TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 16 });
            engine.attach_telemetry(TelemetryRecorder::as_sink(&rec), 50_000);
            let before = engine.stats();
            let after = engine.run(&mut ReplayMisses::new(measured.to_vec()));
            engine.detach_telemetry();

            let total_cycles = after.total_cycles - before.total_cycles;
            let per_request_cycles = total_cycles as f64 / measured.len() as f64;
            let (network_cycles, p99_cycles, p999_cycles) = {
                let rec = rec.lock().expect("recorder poisoned");
                validate_attribution(rec.spans())
                    .map_err(|e| format!("wan sweep rtt {rtt_us} batch {batch}: {e}"))?;
                let mut lat: Vec<u64> =
                    rec.spans().iter().map(|s| s.end - s.arrival).collect();
                let summary = LatencySummary::from_samples(&mut lat);
                (
                    rec.metrics().histogram(MetricId::AttrNetwork).sum(),
                    summary.p99,
                    summary.p999,
                )
            };
            if let Some(prev) = prev {
                if per_request_cycles > prev {
                    return Err(format!(
                        "wan sweep: batching slowed the run at rtt {rtt_us}us: batch {batch} \
                         costs {per_request_cycles:.1} cycles/request, smaller batch cost \
                         {prev:.1}"
                    ));
                }
            }
            prev = Some(per_request_cycles);
            points.push(WanSweepPoint {
                rtt_us,
                batch,
                total_cycles,
                per_request_cycles,
                network_cycles,
                p99_cycles,
                p999_cycles,
            });
            if let Some(hb) = progress {
                hb.tick(points.len(), total_points);
            }
        }
    }
    Ok(WanSweepReport {
        workload: workload.to_string(),
        misses: measured.len() as u64,
        levels: opts.levels,
        seed: opts.seed,
        points,
    })
}

/// Tree depths the posmap sweep visits. The deepest point covers a
/// billion-block address space (2^30 addresses), where a flat map's
/// footprint is unbuildable and recursion is mandatory.
pub const POSMAP_SWEEP_LEVELS: [u32; 4] = [14, 18, 24, 30];

/// PLB capacities (entries) the posmap sweep visits at each depth.
pub const POSMAP_SWEEP_PLB: [usize; 3] = [64, 256, 1024];

/// One measured operating point of the posmap sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PosmapSweepPoint {
    /// Tree depth `L`.
    pub levels: u32,
    /// PLB capacity in entries; 0 marks the depth's flat baseline.
    pub plb_entries: usize,
    /// Cycles over the measured requests.
    pub total_cycles: u64,
    /// `total_cycles / measured requests` — the figure's y-axis.
    pub per_request_cycles: f64,
    /// Cycles attributed to costed posmap walks.
    pub posmap_cycles: u64,
    /// This point's per-request cycles over the depth's flat baseline
    /// (1.0 for the baseline itself).
    pub slowdown_vs_flat: f64,
    /// PLB hits over lookups in the measured window (0 when the chain
    /// fits on chip and the PLB is never consulted).
    pub plb_hit_rate: f64,
    /// Off-chip posmap recursion levels at this geometry.
    pub chain_levels: u16,
    /// Modeled on-chip posmap state (terminal map + PLB tags + level
    /// stashes) in bytes.
    pub onchip_bytes: u64,
}

/// The depth-vs-PLB posmap sweep: recursion overhead over the flat
/// baseline as the tree deepens to 2^30 addresses, at several PLB
/// capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct PosmapSweepReport {
    /// Measured requests per point (identical generator at every point).
    pub requests: u64,
    /// On-chip budget (KiB) the recursive chains terminate under.
    pub onchip_kb: u32,
    /// Master seed.
    pub seed: u64,
    /// Points in `(depth; flat, then PLB sizes)` sweep order.
    pub points: Vec<PosmapSweepPoint>,
}

impl PosmapSweepReport {
    /// Renders the per-point table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "posmap sweep ({} requests/point, on-chip budget {} KiB):\n",
            self.requests, self.onchip_kb
        );
        out.push_str(&format!(
            "  {:>6} {:>10} {:>6} {:>12} {:>9} {:>8} {:>8} {:>6} {:>10}\n",
            "levels", "posmap", "plb", "cycles/req", "slowdown", "posmap%", "plb_hit%", "chain",
            "onchip_kb"
        ));
        for p in &self.points {
            let posmap_pct = if p.total_cycles == 0 {
                0.0
            } else {
                100.0 * p.posmap_cycles as f64 / p.total_cycles as f64
            };
            let (mode, plb) = if p.plb_entries == 0 {
                ("flat", "-".to_string())
            } else {
                ("recursive", p.plb_entries.to_string())
            };
            out.push_str(&format!(
                "  {:>6} {:>10} {:>6} {:>12.1} {:>8.3}x {:>7.1}% {:>7.1}% {:>6} {:>10.1}\n",
                p.levels,
                mode,
                plb,
                p.per_request_cycles,
                p.slowdown_vs_flat,
                posmap_pct,
                p.plb_hit_rate * 100.0,
                p.chain_levels,
                p.onchip_bytes as f64 / 1024.0,
            ));
        }
        out.push_str("recursion costs nothing where the terminal map fits on chip\n");
        out
    }

    /// The figure table: one row per `(depth, posmap mode)` point with
    /// the per-request cycles, overhead over flat, posmap share, and
    /// PLB hit rate.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig D1: recursive posmap overhead vs tree depth and PLB size",
            &["cycles_per_req", "slowdown_vs_flat", "posmap_pct", "plb_hit_pct"],
        );
        for p in &self.points {
            let posmap_pct = if p.total_cycles == 0 {
                0.0
            } else {
                100.0 * p.posmap_cycles as f64 / p.total_cycles as f64
            };
            let label = if p.plb_entries == 0 {
                format!("L{}_flat", p.levels)
            } else {
                format!("L{}_plb{}", p.levels, p.plb_entries)
            };
            t.push(
                label,
                vec![
                    p.per_request_cycles,
                    p.slowdown_vs_flat,
                    posmap_pct,
                    p.plb_hit_rate * 100.0,
                ],
            );
        }
        t
    }
}

/// A deterministic xorshift64 step (the sweep's address generator; the
/// stream must be identical at every operating point).
fn posmap_sweep_rng(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// The sweep's request stream: 7/8 of the traffic inside a fixed hot
/// span (a posmap page working set the larger PLBs can hold), the rest
/// uniform over the whole domain, so the hit rate responds to the PLB
/// capacity while deep trees still see cold pages.
fn posmap_sweep_stream(n: usize, domain: u64, hot_span: u64, seed: u64) -> Vec<MissRecord> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            let r = posmap_sweep_rng(&mut s);
            let span = if r.is_multiple_of(8) { domain } else { hot_span };
            MissRecord {
                block_addr: (r >> 8) % span.max(1),
                is_write: r.is_multiple_of(3),
                gap_cycles: 0,
                blocking: true,
            }
        })
        .collect()
}

/// Measures one `(depth, posmap mode)` point over the replayed stream.
/// The flat baseline runs the sparse functional map — cost-identical to
/// the flat array (no costed walk, zero posmap attribution) without its
/// O(N) footprint, so billion-block depths have a baseline at all.
fn posmap_sweep_point(
    opts: &ServeOptions,
    levels: u32,
    plb: Option<usize>,
) -> Result<PosmapSweepPoint, String> {
    let tag = format!("posmap sweep L{levels}");
    let mut sys = SystemConfig::scaled_default();
    sys.oram.levels = levels;
    sys.oram.posmap = match plb {
        Some(_) => PosMapSelect::Recursive { onchip_kb: opts.posmap_onchip_kb },
        None => PosMapSelect::Sparse,
    };
    if let Some(entries) = plb {
        sys.oram.plb_entries = entries;
    }
    sys.validate().map_err(|e| format!("{tag}: invalid configuration: {e}"))?;

    let domain = (1u64 << levels).min(1 << 30);
    let hot_span = (sys.oram.plb_page_addrs * 256).min(domain);
    let mut engine = Engine::new(sys).map_err(|e| format!("{tag}: engine: {e}"))?;
    engine.prefill_working_set(domain.min(4096));

    let n = (opts.requests as usize).max(1);
    let warm = posmap_sweep_stream(n / 4, domain, hot_span, opts.seed ^ 0xD15C);
    let measured = posmap_sweep_stream(n, domain, hot_span, opts.seed);
    engine.run(&mut ReplayMisses::new(warm));

    let rec = TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 16 });
    engine.attach_telemetry(TelemetryRecorder::as_sink(&rec), 50_000);
    let plb_before = engine.controller().plb_stats();
    let before = engine.stats();
    let after = engine.run(&mut ReplayMisses::new(measured));
    engine.detach_telemetry();
    let plb_after = engine.controller().plb_stats();

    let total_cycles = after.total_cycles - before.total_cycles;
    let posmap_cycles = {
        let rec = rec.lock().expect("recorder poisoned");
        validate_attribution(rec.spans()).map_err(|e| format!("{tag}: {e}"))?;
        rec.metrics().histogram(MetricId::AttrPosmap).sum()
    };
    let hits = plb_after.hits - plb_before.hits;
    let lookups = hits + (plb_after.misses - plb_before.misses);
    Ok(PosmapSweepPoint {
        levels,
        plb_entries: plb.unwrap_or(0),
        total_cycles,
        per_request_cycles: total_cycles as f64 / n as f64,
        posmap_cycles,
        slowdown_vs_flat: 1.0, // the caller rescales against the baseline
        plb_hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
        chain_levels: engine.controller().posmap_chain_levels(),
        onchip_bytes: engine.controller().posmap_onchip_bytes(),
    })
}

/// The sweep engine behind [`run_posmap_sweep`], parameterized on the
/// depth list. Per depth: the flat-cost baseline first, then one
/// recursive point per [`POSMAP_SWEEP_PLB`] capacity, all over the
/// identical request stream. Self-checks the cost model's additivity:
/// recursion never undercuts its own flat baseline.
fn posmap_sweep_at(
    opts: &ServeOptions,
    depths: &[u32],
    progress: Option<&Heartbeat>,
) -> Result<PosmapSweepReport, String> {
    let total_points = depths.len() * (1 + POSMAP_SWEEP_PLB.len());
    let mut points = Vec::with_capacity(total_points);
    for &levels in depths {
        let flat = posmap_sweep_point(opts, levels, None)?;
        let flat_per_req = flat.per_request_cycles;
        points.push(flat);
        if let Some(hb) = progress {
            hb.tick(points.len(), total_points);
        }
        for &plb in &POSMAP_SWEEP_PLB {
            let mut p = posmap_sweep_point(opts, levels, Some(plb))?;
            p.slowdown_vs_flat =
                if flat_per_req == 0.0 { 1.0 } else { p.per_request_cycles / flat_per_req };
            if p.slowdown_vs_flat < 1.0 {
                return Err(format!(
                    "posmap sweep: recursion undercut the flat baseline at L{levels} \
                     plb {plb}: {:.1} vs {flat_per_req:.1} cycles/request",
                    p.per_request_cycles
                ));
            }
            points.push(p);
            if let Some(hb) = progress {
                hb.tick(points.len(), total_points);
            }
        }
    }
    Ok(PosmapSweepReport {
        requests: opts.requests.max(1),
        onchip_kb: opts.posmap_onchip_kb,
        seed: opts.seed,
        points,
    })
}

/// Sweeps [`POSMAP_SWEEP_LEVELS`] × (flat, [`POSMAP_SWEEP_PLB`]) over
/// the identical deterministic request stream: the recursion-overhead
/// figure family, up to a 2^30-address tree.
///
/// # Errors
///
/// Returns the first configuration or additivity failure.
pub fn run_posmap_sweep(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<PosmapSweepReport, String> {
    posmap_sweep_at(opts, &POSMAP_SWEEP_LEVELS, progress)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeOptions {
        // Small enough for debug-mode unit tests.
        ServeOptions { requests: 60, ..ServeOptions::quick() }
    }

    #[test]
    fn serve_run_validates_and_reports_every_policy() {
        let arts = run_serve(&tiny(), None).expect("validated run");
        assert_eq!(arts.report.schedulers.len(), SchedPolicy::ALL.len());
        for s in &arts.report.schedulers {
            assert!(s.completed > 0, "{}", s.policy);
            assert!(s.latency.p50 <= s.latency.p99 && s.latency.p99 <= s.latency.p999);
            assert!(s.throughput_rpmc > 0.0);
        }
        for p in SchedPolicy::ALL {
            assert!(arts.client_section.contains(p.name()));
        }
    }

    #[test]
    fn serve_is_deterministic() {
        let a = run_serve(&tiny(), None).expect("run a");
        let b = run_serve(&tiny(), None).expect("run b");
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }

    #[test]
    fn single_scheduler_option_restricts_the_report() {
        let mut o = tiny();
        o.scheduler = Some(SchedPolicy::RoundRobin);
        let arts = run_serve(&o, None).expect("validated run");
        assert_eq!(arts.report.schedulers.len(), 1);
        assert_eq!(arts.report.schedulers[0].policy, "round_robin");
    }

    #[test]
    fn sharded_serve_validates_every_shard() {
        let mut o = tiny();
        o.shards = 2;
        o.threads = 2;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let arts = run_serve(&o, None).expect("validated sharded run");
        assert_eq!(arts.report.meta.shards, 2);
        assert!(arts.report.schedulers[0].completed > 0);
        // The shard count is part of the serialized metadata.
        assert!(arts.report.to_json().contains("\"shards\":2"));
    }

    #[test]
    fn sharded_serve_is_thread_count_invariant() {
        let run = |threads| {
            let mut o = tiny();
            o.shards = 4;
            o.threads = threads;
            o.scheduler = Some(SchedPolicy::Fcfs);
            run_serve(&o, None).expect("validated sharded run").report.to_json()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn wan_backend_serves_and_tags_the_report() {
        let mut o = tiny();
        o.backend = BackendKind::Wan;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let a = run_serve(&o, None).expect("validated wan run");
        assert_eq!(a.report.meta.backend, "wan");
        assert!(a.report.to_json().contains("\"backend\":\"wan\""));
        assert!(a.report.schedulers[0].completed > 0);
        // The jitter-free model is deterministic across runs.
        let b = run_serve(&o, None).expect("rerun");
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn disk_backend_serves_and_tags_the_report() {
        let mut o = tiny();
        o.backend = BackendKind::Disk;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let a = run_serve(&o, None).expect("validated disk run");
        assert_eq!(a.report.meta.backend, "disk");
        assert!(a.report.schedulers[0].completed > 0);
        let b = run_serve(&o, None).expect("rerun");
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn non_dram_backends_reject_sharding() {
        let mut o = tiny();
        o.backend = BackendKind::Wan;
        o.shards = 2;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let err = run_serve(&o, None).unwrap_err();
        assert!(err.contains("DRAM-only"), "{err}");
    }

    #[test]
    fn dram_report_is_backend_field_free() {
        // The DRAM-behind-trait path must serialize byte-identically to
        // the pre-backend output: no "backend" key in its JSON.
        let mut o = tiny();
        o.scheduler = Some(SchedPolicy::Fcfs);
        let arts = run_serve(&o, None).expect("validated run");
        assert_eq!(arts.report.meta.backend, "dram");
        assert!(!arts.report.to_json().contains("backend"));
        // Likewise the flat posmap: no "posmap" key, no status section.
        assert!(!arts.report.to_json().contains("posmap"));
        assert!(arts.posmap_section.is_empty());
    }

    /// A tiny recursive-posmap serve configuration: a 1 KiB terminal
    /// budget forces one off-chip recursion level even at quick depth.
    fn tiny_recursive() -> ServeOptions {
        let mut o = tiny();
        o.posmap = PosmapKind::Recursive;
        o.posmap_onchip_kb = 1;
        o.scheduler = Some(SchedPolicy::Fcfs);
        o
    }

    #[test]
    fn recursive_posmap_serve_validates_and_tags_the_report() {
        let o = tiny_recursive();
        let a = run_serve(&o, None).expect("validated recursive run");
        assert_eq!(a.report.meta.posmap, "recursive");
        assert!(a.report.to_json().contains("\"posmap\":\"recursive\""));
        assert!(a.report.schedulers[0].completed > 0);
        // The status line reports the probe geometry.
        assert!(a.posmap_section.starts_with("posmap: recursive, "), "{}", a.posmap_section);
        assert!(a.posmap_section.contains("budget 1 KiB"));
        // Bit-deterministic across runs.
        let b = run_serve(&o, None).expect("rerun");
        assert_eq!(a.report, b.report);
        assert_eq!(a.posmap_section, b.posmap_section);
    }

    #[test]
    fn recursive_posmap_walks_slow_the_serve_down() {
        // With a PLB too small for the domain's page set, most accesses
        // walk the chain, and the identical offered workload must see
        // strictly worse latency (the open-loop run *length* is
        // arrival-dominated, so cycles alone would not move).
        let mut flat = tiny();
        flat.scheduler = Some(SchedPolicy::Fcfs);
        let mut rec = tiny_recursive();
        rec.plb_entries = Some(4);
        let f = run_serve(&flat, None).expect("flat run");
        let r = run_serve(&rec, None).expect("recursive run");
        assert!(
            r.report.schedulers[0].latency.mean > f.report.schedulers[0].latency.mean,
            "recursive mean {} <= flat mean {}",
            r.report.schedulers[0].latency.mean,
            f.report.schedulers[0].latency.mean
        );
    }

    #[test]
    fn sharded_recursive_posmap_serve_validates_every_shard() {
        let mut o = tiny_recursive();
        o.shards = 2;
        o.threads = 2;
        let arts = run_serve(&o, None).expect("validated sharded recursive run");
        assert_eq!(arts.report.meta.posmap, "recursive");
        assert!(arts.report.schedulers[0].completed > 0);
        // Thread-count invariance holds with costed posmap walks too.
        let mut o4 = o.clone();
        o4.threads = 4;
        let again = run_serve(&o4, None).expect("4-thread rerun");
        assert_eq!(arts.report.to_json(), again.report.to_json());
    }

    #[test]
    fn posmap_sweep_reports_overhead_and_hit_rate() {
        let mut o = tiny();
        o.requests = 120;
        o.posmap_onchip_kb = 1; // force off-chip levels at shallow test depths
        let sweep = posmap_sweep_at(&o, &[12, 14], None).expect("posmap sweep");
        let per_depth = 1 + POSMAP_SWEEP_PLB.len();
        assert_eq!(sweep.points.len(), 2 * per_depth);
        for chunk in sweep.points.chunks(per_depth) {
            let flat = &chunk[0];
            assert_eq!(flat.plb_entries, 0);
            assert_eq!(flat.posmap_cycles, 0);
            assert_eq!(flat.chain_levels, 0);
            assert_eq!(flat.slowdown_vs_flat, 1.0);
            for p in &chunk[1..] {
                assert!(p.chain_levels >= 1, "L{} plb {}", p.levels, p.plb_entries);
                assert!(p.slowdown_vs_flat >= 1.0);
                assert!(p.onchip_bytes > 0);
            }
            // The smallest PLB cannot hold the domain's page set, so
            // misses must walk; a PLB covering every page may serve the
            // whole measured window on chip (that is the figure's point).
            assert!(
                chunk[1].posmap_cycles > 0,
                "L{} plb {} never walked",
                flat.levels,
                chunk[1].plb_entries
            );
            // More PLB entries never hit less on the fixed hot span.
            assert!(
                chunk[per_depth - 1].plb_hit_rate >= chunk[1].plb_hit_rate,
                "L{}: plb {} hit {:.3} < plb {} hit {:.3}",
                flat.levels,
                chunk[per_depth - 1].plb_entries,
                chunk[per_depth - 1].plb_hit_rate,
                chunk[1].plb_entries,
                chunk[1].plb_hit_rate,
            );
        }
        // One figure row per point, and the sweep is deterministic.
        assert_eq!(sweep.table().rows.len(), sweep.points.len());
        assert!(sweep.render().contains("plb_hit%"));
        assert_eq!(posmap_sweep_at(&o, &[12, 14], None).expect("rerun"), sweep);
    }

    #[test]
    fn wan_sweep_amortizes_round_trips() {
        let mut o = tiny();
        o.requests = 120;
        let sweep = run_wan_sweep(&o, None).expect("wan sweep");
        assert_eq!(
            sweep.points.len(),
            WAN_SWEEP_RTTS_US.len() * WAN_SWEEP_BATCHES.len()
        );
        // Monotone non-increasing per RTT is validated inside the sweep;
        // spot-check the strict end-to-end win where RTTs dominate.
        for &rtt in &WAN_SWEEP_RTTS_US {
            let row: Vec<&WanSweepPoint> =
                sweep.points.iter().filter(|p| p.rtt_us == rtt).collect();
            assert!(
                row.last().unwrap().per_request_cycles
                    < row.first().unwrap().per_request_cycles,
                "batching must win at rtt {rtt}"
            );
            assert!(row.iter().all(|p| p.network_cycles > 0));
            assert!(row.iter().all(|p| p.p99_cycles > 0 && p.p99_cycles <= p.p999_cycles));
        }
        // Higher RTT costs more at fixed batch.
        let at_batch_1: Vec<f64> = sweep
            .points
            .iter()
            .filter(|p| p.batch == 1)
            .map(|p| p.per_request_cycles)
            .collect();
        assert!(at_batch_1.windows(2).all(|w| w[0] < w[1]));
        // One cycles/req row per RTT plus p99 and p99.9 rows per RTT.
        let t = sweep.table();
        assert_eq!(t.rows.len(), 3 * WAN_SWEEP_RTTS_US.len());
        assert!(sweep.render().contains("monotone non-increasing"));
        assert!(sweep.render().contains("p99.9"));
        // Deterministic for the compare gate.
        assert_eq!(run_wan_sweep(&o, None).expect("rerun"), sweep);
    }

    #[test]
    fn live_plane_attachment_leaves_the_report_identical() {
        use oram_obsv::LiveConfig;

        let mut o = tiny();
        o.scheduler = Some(SchedPolicy::Fcfs);
        let plain = run_serve(&o, None).expect("plain run");

        let cfg = LiveConfig::for_serve(o.clients, o.shards, o.base_gap_cycles as u64, 200);
        let lr = LiveRun::new(LivePlane::shared(cfg), false);
        let live = run_serve_live(&o, None, Some(&lr)).expect("live run");

        // The tentpole invariant: the observed run is byte-identical to
        // the unobserved one.
        assert_eq!(plain.report, live.report);
        assert_eq!(plain.report.to_json(), live.report.to_json());
        assert_eq!(plain.client_section, live.client_section);

        // And the plane actually saw the traffic, conserving counts.
        let p = lr.plane.lock().unwrap();
        let completed = live.report.schedulers[0].completed;
        assert_eq!(p.total().completed, completed);
        assert!(p.total().latency.count() == completed);
        assert!(p.engine_windows() > 0, "engine-side tee must feed Eq. 1 windows");
        assert!(p.stash_peak() > 0, "engine-side tee must feed stash samples");
        p.validate_conservation().expect("conserved");
    }

    #[test]
    fn sharded_live_plane_sees_per_shard_completions() {
        use oram_obsv::LiveConfig;

        let mut o = tiny();
        o.shards = 2;
        o.threads = 2;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let plain = run_serve(&o, None).expect("plain run");

        let cfg = LiveConfig::for_serve(o.clients, o.shards, o.base_gap_cycles as u64, 200);
        let lr = LiveRun::new(LivePlane::shared(cfg), false);
        let live = run_serve_live(&o, None, Some(&lr)).expect("live sharded run");
        assert_eq!(plain.report, live.report);

        let p = lr.plane.lock().unwrap();
        assert_eq!(p.total().completed, live.report.schedulers[0].completed);
        // Both shards served traffic and the plane kept them apart.
        assert!(p.total().shard_completed.iter().all(|&c| c > 0));
        p.validate_conservation().expect("conserved");
    }

    #[test]
    fn shard_sweep_knee_table_has_tail_columns() {
        let report = ShardSweepReport {
            policy: SchedPolicy::Fcfs,
            entries: vec![],
        };
        let t = report.knee_table();
        assert_eq!(
            t.columns,
            ["knee_load", "knee_req_per_mcyc", "p99_at_load1", "p99_9_at_load1"]
        );
        assert!(report.render().contains("p99.9@1.0"));
    }

    #[test]
    fn overload_finds_a_knee() {
        // A gap short enough that the top sweep loads must overflow the
        // queues on a multi-thousand-cycle ORAM access time.
        let mut o = tiny();
        o.base_gap_cycles = 4_000.0;
        let sweep = run_serve_sweep(&o, None).expect("sweep");
        assert_eq!(sweep.points.len(), SWEEP_LOADS.len());
        let knee = sweep.knee.expect("overloaded sweep must saturate");
        assert!(knee > 0.25, "knee at the lightest load suggests a broken base rate");
        assert!(sweep.render().contains("saturation knee"));
        // Rejections are monotone-ish: the heaviest load rejects more
        // than the lightest.
        assert!(
            sweep.points.last().unwrap().rejected_frac
                > sweep.points.first().unwrap().rejected_frac
        );
    }
}

//! The `repro serve` subcommand's engine: drives the multi-client
//! service front-end over every scheduler policy on the identical
//! offered workload, self-validates each run, and summarizes tail
//! latency and throughput. A load-sweep mode scales the offered rate
//! and locates the saturation knee.
//!
//! The validation is the subcommand's contract: a zero exit code means
//! the service conservation laws held (every generated request was
//! admitted or rejected exactly once and every admitted request
//! completed), every telemetry span's cycle attribution partitioned its
//! latency with `queue_wait = start − arrival`, and the service-issued
//! bus trace passed the obliviousness audit (protocol grammar plus leaf
//! uniformity) — coalescing and batch scheduling must be invisible on
//! the memory bus.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use oram_audit::{check_service_trace, Recorder};
use oram_cpu::ReplayMisses;
use oram_obsv::{render_top, LivePlane};
use oram_service::{
    LatencySummary, SchedPolicy, SchedulerSummary, ServiceConfig, ServiceMeta, ServiceReport,
    ServiceResult, ServiceSim, ShardedServiceSim, SERVE_CLASS_NAMES,
};
use oram_sim::{
    build_miss_stream, scale_profile, DiskBackend, DiskConfig, Engine, RunOptions, ShardedOram,
    StorageBackend, SystemConfig, WanBackend, WanConfig,
};
use oram_telemetry::{validate_attribution, TeeSink, TelemetryConfig, TelemetryRecorder};
use oram_util::MetricId;
use oram_workloads::spec;

use crate::progress::Heartbeat;
use crate::table::Table;

/// Which storage backend serves the engine's bucket I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The cycle-accurate DDR3 timing model (the reference path;
    /// byte-identical to the pre-backend output).
    #[default]
    Dram,
    /// The persistent on-disk bucket store (WAL + crash recovery).
    Disk,
    /// The deterministic simulated-WAN model (RTT + bandwidth, batched).
    Wan,
}

impl BackendKind {
    /// The CLI / report name of this backend.
    pub const fn name(self) -> &'static str {
        match self {
            BackendKind::Dram => "dram",
            BackendKind::Disk => "disk",
            BackendKind::Wan => "wan",
        }
    }

    /// Parses a CLI backend name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(s: &str) -> Result<BackendKind, String> {
        match s {
            "dram" => Ok(BackendKind::Dram),
            "disk" => Ok(BackendKind::Disk),
            "wan" => Ok(BackendKind::Wan),
            other => Err(format!("unknown backend {other:?} (expected dram, disk or wan)")),
        }
    }
}

/// A live observability attachment for a serve run: the shared
/// [`LivePlane`] every policy feeds (service-side completions and
/// rejections always; engine-side spans, Eq. 1 windows, and stash
/// samples on single-engine runs, where the engine executes on the
/// service thread) plus an optional rate-limited terminal ticker.
///
/// Sharded runs attach the plane service-side only: engine sinks fire
/// on worker threads there, and the plane deliberately stays off those
/// threads so the run's output and schedule are untouched.
#[derive(Debug)]
pub struct LiveRun {
    /// The plane every run in this serve feeds; the metrics endpoint
    /// and `repro top` snapshot it.
    pub plane: Arc<Mutex<LivePlane>>,
    /// The `repro top` terminal ticker, when enabled.
    pub top: Option<TopTicker>,
}

impl LiveRun {
    /// Wraps a shared plane, with the terminal ticker on or off.
    pub fn new(plane: Arc<Mutex<LivePlane>>, top: bool) -> Self {
        LiveRun { plane, top: top.then(TopTicker::new) }
    }
}

/// The `repro top` live terminal view: renders the plane snapshot to
/// stderr at most once per [`TopTicker::PERIOD`], so stepping the
/// simulation stays cheap between redraws.
#[derive(Debug)]
pub struct TopTicker {
    last: Cell<Option<Instant>>,
}

impl TopTicker {
    /// Minimum wall-clock gap between redraws.
    pub const PERIOD: Duration = Duration::from_millis(500);

    /// A ticker that draws on its first call, then rate-limits.
    pub fn new() -> Self {
        TopTicker { last: Cell::new(None) }
    }

    /// Redraws if at least [`TopTicker::PERIOD`] elapsed since the last
    /// draw (always draws on the first call).
    pub fn maybe_draw(&self, plane: &Arc<Mutex<LivePlane>>) {
        let now = Instant::now();
        if let Some(last) = self.last.get() {
            if now.duration_since(last) < TopTicker::PERIOD {
                return;
            }
        }
        self.last.set(Some(now));
        let text = {
            let p = plane.lock().expect("plane lock");
            render_top(&p)
        };
        eprint!("{text}");
    }
}

impl Default for TopTicker {
    fn default() -> Self {
        TopTicker::new()
    }
}

/// Options for one `repro serve` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Number of client streams.
    pub clients: usize,
    /// Requests each stream generates.
    pub requests: u64,
    /// Mean per-client interarrival gap in cycles at load 1.0.
    pub base_gap_cycles: f64,
    /// Offered-rate multiplier (the gap is `base_gap_cycles / load`).
    pub load: f64,
    /// Run only this policy; `None` runs all of [`SchedPolicy::ALL`].
    pub scheduler: Option<SchedPolicy>,
    /// Address domain (blocks), also the prefilled working set.
    pub domain: u64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Master seed.
    pub seed: u64,
    /// ORAM backend shards (1 = the single-engine reference path,
    /// byte-identical to the pre-sharding output; > 1 partitions the
    /// address space and enables intra-shard pipelining).
    pub shards: usize,
    /// Worker threads serving shards concurrently (results are
    /// bit-identical at any thread count).
    pub threads: usize,
    /// Storage backend serving the engine's bucket I/O.
    pub backend: BackendKind,
    /// WAN round-trip time in microseconds ([`BackendKind::Wan`] only).
    pub rtt_us: f64,
    /// WAN request batch size: block requests amortized per round trip
    /// ([`BackendKind::Wan`] only).
    pub wan_batch: usize,
    /// Disk backend directory ([`BackendKind::Disk`] only); `None` uses
    /// a fresh temporary directory, removed after the run.
    pub disk_dir: Option<PathBuf>,
}

impl ServeOptions {
    /// Fast settings for CI smoke runs: seconds, not minutes.
    pub fn quick() -> Self {
        ServeOptions {
            clients: 4,
            requests: 250,
            base_gap_cycles: 25_000.0,
            load: 1.0,
            scheduler: None,
            domain: 256,
            levels: 12,
            seed: 7,
            shards: 1,
            threads: 1,
            backend: BackendKind::Dram,
            rtt_us: 200.0,
            wan_batch: 4,
            disk_dir: None,
        }
    }

    /// Full-fidelity settings matching the default experiment scale.
    pub fn full() -> Self {
        ServeOptions { requests: 1000, domain: 1024, levels: 14, ..ServeOptions::quick() }
    }

    /// The service configuration at a given load factor (scheduler is
    /// set per run).
    fn service_config(&self, load: f64) -> ServiceConfig {
        ServiceConfig::symmetric_open(
            self.clients,
            self.requests,
            self.base_gap_cycles / load,
            self.domain,
            self.seed,
        )
    }
}

/// A validated serve run: the per-scheduler report plus the per-client
/// accounting section of the text output.
#[derive(Debug, Clone)]
pub struct ServeArtifacts {
    /// Per-scheduler latency/throughput summaries (renders, serializes,
    /// and compares against a baseline).
    pub report: ServiceReport,
    /// Per-client serve-class breakdown, one section per policy.
    pub client_section: String,
}

/// Folds a validated run into its scheduler summary line.
fn summarize(name: &str, res: &ServiceResult) -> SchedulerSummary {
    let mut lat: Vec<u64> =
        res.clients.iter().flat_map(|c| c.latencies.iter().copied()).collect();
    let latency = LatencySummary::from_samples(&mut lat);
    let completed = res.completed();
    let total_cycles = res.stats.total_cycles;
    let throughput_rpmc =
        if total_cycles == 0 { 0.0 } else { completed as f64 * 1e6 / total_cycles as f64 };
    let onchip = res
        .clients
        .iter()
        .map(|c| c.served[0] + c.served[1]) // stash + treetop
        .sum();
    SchedulerSummary {
        policy: name.to_string(),
        completed,
        issued: res.issued(),
        coalesced: res.coalesced(),
        rejected: res.rejected(),
        onchip,
        total_cycles,
        throughput_rpmc,
        latency,
    }
}

/// The system configuration `repro serve` runs under at depth `L`.
fn serve_system(levels: u32) -> Result<SystemConfig, String> {
    let mut sys = SystemConfig::scaled_default();
    sys.oram.levels = levels;
    sys.validate().map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(sys)
}

/// Builds the WAN backend for `sys` from the serve options.
fn wan_backend(opts: &ServeOptions, sys: &SystemConfig) -> Result<WanBackend, String> {
    let per_block = WanConfig::default_wan().per_block_cycles;
    let cfg = WanConfig::from_rtt_us(opts.rtt_us, sys.dram.tck_ns, per_block, opts.wan_batch);
    WanBackend::new(cfg)
}

/// Builds the disk backend for `sys`, returning the backend plus the
/// directory to remove after the run (`None` when the caller owns it).
fn disk_backend(
    opts: &ServeOptions,
    sys: &SystemConfig,
    tag: &str,
) -> Result<(DiskBackend, Option<PathBuf>), String> {
    let (dir, ephemeral) = match &opts.disk_dir {
        Some(d) => (d.join(tag), None),
        None => {
            let d = std::env::temp_dir()
                .join(format!("oram_serve_disk_{}_{tag}", std::process::id()));
            (d.clone(), Some(d))
        }
    };
    let bucket_count = (1u64 << (sys.oram.levels + 1)) - 1;
    let backend = DiskBackend::new(DiskConfig::new(dir, sys.oram.z, bucket_count))?;
    Ok((backend, ephemeral))
}

/// Runs one policy at one load factor through the full validation
/// stack and returns the summary plus the raw result.
fn run_policy(
    opts: &ServeOptions,
    policy: SchedPolicy,
    load: f64,
    live: Option<&LiveRun>,
) -> Result<(SchedulerSummary, ServiceResult), String> {
    if opts.shards > 1 {
        if opts.backend != BackendKind::Dram {
            return Err(format!(
                "backend {:?} does not support --shards > 1 (the sharded path is DRAM-only)",
                opts.backend.name()
            ));
        }
        return run_policy_sharded(opts, policy, load, live);
    }
    let name = policy.name();
    let sys = serve_system(opts.levels).map_err(|e| format!("{name}: {e}"))?;
    match opts.backend {
        BackendKind::Dram => {
            let engine = Engine::new(sys).map_err(|e| format!("{name}: engine: {e}"))?;
            run_policy_on(opts, policy, load, engine, live)
        }
        BackendKind::Wan => {
            let backend = wan_backend(opts, &sys).map_err(|e| format!("{name}: wan: {e}"))?;
            let engine =
                Engine::with_backend(sys, backend).map_err(|e| format!("{name}: engine: {e}"))?;
            run_policy_on(opts, policy, load, engine, live)
        }
        BackendKind::Disk => {
            let tag = format!("{name}_{load:.2}").replace('.', "p");
            let (backend, cleanup) =
                disk_backend(opts, &sys, &tag).map_err(|e| format!("{name}: disk: {e}"))?;
            let engine =
                Engine::with_backend(sys, backend).map_err(|e| format!("{name}: engine: {e}"))?;
            let result = run_policy_on(opts, policy, load, engine, live);
            if let Some(dir) = cleanup {
                let _ = std::fs::remove_dir_all(dir);
            }
            result
        }
    }
}

/// The backend-generic core of [`run_policy`]: drives the service
/// front-end over a ready engine and applies the full validation stack.
fn run_policy_on<B: StorageBackend>(
    opts: &ServeOptions,
    policy: SchedPolicy,
    load: f64,
    mut engine: Engine<B>,
    live: Option<&LiveRun>,
) -> Result<(SchedulerSummary, ServiceResult), String> {
    let name = policy.name();
    let mut cfg = opts.service_config(load);
    cfg.scheduler = policy;

    let trace = Recorder::unbounded();
    let telem = TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 16 });
    engine.prefill_working_set(cfg.address_span());
    engine.attach_bus_observer(trace.observer());
    // With a live plane attached the engine's telemetry stream is teed:
    // the post-hoc recorder stays primary (validation reads it), and the
    // plane sees the same spans, Eq. 1 windows, and stash samples as
    // they happen.
    let engine_sink = match live {
        Some(lr) => {
            TeeSink::shared(TelemetryRecorder::as_sink(&telem), LivePlane::as_sink(&lr.plane))
        }
        None => TelemetryRecorder::as_sink(&telem),
    };
    engine.attach_telemetry(engine_sink, 50_000);

    let mut sim = ServiceSim::new(cfg, engine).map_err(|e| format!("{name}: {e}"))?;
    sim.attach_telemetry(TelemetryRecorder::as_sink(&telem));
    if let Some(lr) = live {
        sim.attach_live(LivePlane::as_live(&lr.plane));
    }
    match live.and_then(|lr| lr.top.as_ref()) {
        Some(top) => {
            while sim.step() {
                top.maybe_draw(&live.expect("top implies live").plane);
            }
        }
        None => sim.run(),
    }
    let (res, mut engine) = sim.finish();
    engine.detach_telemetry();
    engine.detach_bus_observer();

    // 1. Service conservation laws against the engine's own counters.
    res.validate().map_err(|e| format!("{name}: {e}"))?;
    // 2. Every span's attribution partitions its latency exactly, with
    //    queue_wait = start − arrival.
    {
        let t = telem.lock().expect("recorder poisoned");
        validate_attribution(t.spans()).map_err(|e| format!("{name}: attribution: {e}"))?;
    }
    // 3. The service-issued bus trace passes the obliviousness audit.
    check_service_trace(&engine.config().oram, &trace.snapshot())
        .map_err(|e| format!("{name}: service trace audit: {e}"))?;
    // 4. The live plane (when attached) conserved every count: folded +
    //    ring + open window totals equal the cumulative registry.
    finish_live(name, live)?;

    let summary = summarize(name, &res);
    Ok((summary, res))
}

/// Closes the live plane's open window after a policy run and checks
/// the window conservation law.
fn finish_live(name: &str, live: Option<&LiveRun>) -> Result<(), String> {
    if let Some(lr) = live {
        let mut p = lr.plane.lock().expect("plane lock");
        p.flush();
        p.validate_conservation()
            .map_err(|e| format!("{name}: observability conservation: {e}"))?;
    }
    Ok(())
}

/// The sharded counterpart of [`run_policy`]: partitions the address
/// space across `opts.shards` engines (each with intra-shard pipelining
/// enabled) and validates every shard independently — each shard's bus
/// trace must pass the obliviousness audit on its own, and each shard's
/// telemetry spans must partition their latencies exactly.
fn run_policy_sharded(
    opts: &ServeOptions,
    policy: SchedPolicy,
    load: f64,
    live: Option<&LiveRun>,
) -> Result<(SchedulerSummary, ServiceResult), String> {
    let name = policy.name();
    let mut sys = SystemConfig::scaled_default();
    sys.oram.levels = opts.levels;
    // Shards overlap access k+1's path read with access k's eviction
    // tail; the hazard check stalls same-path and stash-pressure cases.
    sys.pipeline = true;
    sys.validate().map_err(|e| format!("{name}: invalid configuration: {e}"))?;

    let mut cfg = opts.service_config(load);
    cfg.scheduler = policy;

    let mut backend = ShardedOram::new(sys, opts.shards, opts.threads)
        .map_err(|e| format!("{name}: backend: {e}"))?;
    backend.prefill_working_set(cfg.address_span());
    let traces: Vec<Recorder> = (0..opts.shards).map(|_| Recorder::unbounded()).collect();
    let telems: Vec<_> = (0..opts.shards)
        .map(|_| TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 16 }))
        .collect();
    for i in 0..opts.shards {
        backend.engine_mut(i).attach_bus_observer(traces[i].observer());
        backend.engine_mut(i).attach_telemetry(TelemetryRecorder::as_sink(&telems[i]), 50_000);
    }

    let mut sim = ShardedServiceSim::new(cfg, backend).map_err(|e| format!("{name}: {e}"))?;
    sim.attach_telemetry(TelemetryRecorder::as_sink(&telems[0]));
    // The plane attaches service-side only here: engine sinks fire on
    // worker threads in the sharded path, and the plane stays off those
    // threads so the deterministic schedule is untouched. Completions
    // still carry their shard id, so the per-shard breakdown is live.
    if let Some(lr) = live {
        sim.attach_live(LivePlane::as_live(&lr.plane));
    }
    match live.and_then(|lr| lr.top.as_ref()) {
        Some(top) => {
            while sim.step() {
                top.maybe_draw(&live.expect("top implies live").plane);
            }
        }
        None => sim.run(),
    }
    let (res, mut backend) = sim.finish();
    for i in 0..opts.shards {
        backend.engine_mut(i).detach_telemetry();
        backend.engine_mut(i).detach_bus_observer();
    }

    // 1. Service conservation laws against the merged engine counters.
    res.validate().map_err(|e| format!("{name}: {e}"))?;
    // 2. Per-shard attribution: every span partitions its latency.
    for (i, telem) in telems.iter().enumerate() {
        let t = telem.lock().expect("recorder poisoned");
        validate_attribution(t.spans())
            .map_err(|e| format!("{name}: shard {i} attribution: {e}"))?;
    }
    // 3. Per-shard obliviousness: each shard's bus trace must be a valid
    //    ORAM trace on its own (a shard that saw no traffic has nothing
    //    to check).
    for (i, trace) in traces.iter().enumerate() {
        let snapshot = trace.snapshot();
        if snapshot.is_empty() {
            continue;
        }
        check_service_trace(&backend.engine_mut(i).config().oram, &snapshot)
            .map_err(|e| format!("{name}: shard {i} service trace audit: {e}"))?;
    }
    // 4. Live-plane window conservation, as in the single-engine path.
    finish_live(name, live)?;

    let summary = summarize(name, &res);
    Ok((summary, res))
}

/// Renders one policy's per-client accounting lines.
fn render_clients(policy: SchedPolicy, res: &ServiceResult) -> String {
    let mut out = format!("per-client ({}):\n", policy.name());
    for (i, c) in res.clients.iter().enumerate() {
        let classes: Vec<String> = SERVE_CLASS_NAMES
            .iter()
            .zip(c.served)
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name} {n}"))
            .collect();
        let mean_wait = c.wait_sum.checked_div(c.completed).unwrap_or(0);
        out.push_str(&format!(
            "  client {i}: completed {} rejected {} coalesced {} | {} | wait mean {} max {}\n",
            c.completed,
            c.rejected,
            c.coalesced,
            classes.join(", "),
            mean_wait,
            c.wait_max,
        ));
    }
    out
}

/// Runs the configured policy set through the full validation stack.
///
/// # Errors
///
/// Returns a message naming the first policy whose run failed
/// validation (conservation, attribution, or the trace audit).
pub fn run_serve(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<ServeArtifacts, String> {
    run_serve_live(opts, progress, None)
}

/// [`run_serve`] with an optional live observability plane attached:
/// every policy run feeds the same plane, whose conservation law is
/// checked after each run. The returned artifacts are byte-identical
/// with the plane attached or absent (a CLI test holds this line).
///
/// # Errors
///
/// As [`run_serve`], plus a plane conservation failure.
pub fn run_serve_live(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
    live: Option<&LiveRun>,
) -> Result<ServeArtifacts, String> {
    let policies: Vec<SchedPolicy> = match opts.scheduler {
        Some(p) => vec![p],
        None => SchedPolicy::ALL.to_vec(),
    };
    let mut schedulers = Vec::new();
    let mut client_section = String::new();
    for (done, &policy) in policies.iter().enumerate() {
        let (summary, res) = run_policy(opts, policy, opts.load, live)?;
        schedulers.push(summary);
        client_section.push_str(&render_clients(policy, &res));
        if let Some(hb) = progress {
            hb.tick(done + 1, policies.len());
        }
    }
    let report = ServiceReport {
        meta: ServiceMeta {
            clients: opts.clients as u64,
            requests_per_client: opts.requests,
            queue_capacity: 16,
            batch_size: 4,
            levels: opts.levels,
            seed: opts.seed,
            load: opts.load,
            shards: opts.shards as u64,
            backend: opts.backend.name().to_string(),
        },
        schedulers,
    };
    Ok(ServeArtifacts { report, client_section })
}

/// Load factors the sweep visits, spanning well under to well past
/// saturation.
pub const SWEEP_LOADS: [f64; 8] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0];

/// Load factors the *shard* sweep visits: the sharded backend pushes the
/// saturation knee far past the single-backend range, so the sweep must
/// reach much heavier loads for every shard count to show its knee.
pub const SHARD_SWEEP_LOADS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// One measured operating point of the load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered-rate multiplier.
    pub load: f64,
    /// Offered requests per million cycles (generated, pre-admission).
    pub offered_rpmc: f64,
    /// Completed requests per million cycles.
    pub achieved_rpmc: f64,
    /// Fraction of generated requests bounced by admission control.
    pub rejected_frac: f64,
    /// Latency summary at this point.
    pub latency: LatencySummary,
}

/// A full load sweep: every operating point plus the detected knee.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Policy the sweep ran under.
    pub policy: SchedPolicy,
    /// Measured points, in swept-load order ([`SWEEP_LOADS`] for the
    /// plain sweep, [`SHARD_SWEEP_LOADS`] under the shard sweep).
    pub points: Vec<SweepPoint>,
    /// First load factor where admission control rejected more than 5%
    /// of offered requests — the saturation knee. `None` if the sweep
    /// never saturated.
    pub knee: Option<f64>,
}

impl SweepReport {
    /// Renders the sweep table plus the knee verdict.
    pub fn render(&self) -> String {
        let mut out = format!("load sweep ({}):\n", self.policy.name());
        out.push_str(&format!(
            "  {:>6} {:>12} {:>13} {:>9} {:>10} {:>10} {:>10}\n",
            "load", "offered/Mc", "achieved/Mc", "rej%", "p50", "p99", "p99.9"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:>6.2} {:>12.2} {:>13.2} {:>8.1}% {:>10} {:>10} {:>10}\n",
                p.load,
                p.offered_rpmc,
                p.achieved_rpmc,
                p.rejected_frac * 100.0,
                p.latency.p50,
                p.latency.p99,
                p.latency.p999,
            ));
        }
        match self.knee {
            Some(k) => out.push_str(&format!(
                "saturation knee at load {k:.2} (first point rejecting > 5% of offered requests)\n"
            )),
            None => out.push_str("no saturation knee within the swept range\n"),
        }
        out
    }
}

/// Sweeps [`SWEEP_LOADS`] under one policy (the configured one, or
/// FCFS) and locates the saturation knee. Every point runs the same
/// validation stack as [`run_serve`].
///
/// # Errors
///
/// Returns the first point's validation failure.
pub fn run_serve_sweep(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<SweepReport, String> {
    sweep_loads(opts, &SWEEP_LOADS, progress, None)
}

/// [`run_serve_sweep`] with an optional live observability plane: the
/// plane accumulates across every swept load point.
///
/// # Errors
///
/// As [`run_serve_sweep`], plus a plane conservation failure.
pub fn run_serve_sweep_live(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
    live: Option<&LiveRun>,
) -> Result<SweepReport, String> {
    sweep_loads(opts, &SWEEP_LOADS, progress, live)
}

/// The sweep engine behind [`run_serve_sweep`] and [`run_shard_sweep`]:
/// one validated run per load factor, knee detection at the 5% rejection
/// threshold.
fn sweep_loads(
    opts: &ServeOptions,
    loads: &[f64],
    progress: Option<&Heartbeat>,
    live: Option<&LiveRun>,
) -> Result<SweepReport, String> {
    let policy = opts.scheduler.unwrap_or(SchedPolicy::Fcfs);
    let mut points = Vec::new();
    let mut knee = None;
    for (done, &load) in loads.iter().enumerate() {
        let (summary, res) = run_policy(opts, policy, load, live)?;
        let generated: u64 = res.clients.iter().map(|c| c.generated).sum();
        let cycles = summary.total_cycles.max(1);
        let rejected_frac =
            if generated == 0 { 0.0 } else { summary.rejected as f64 / generated as f64 };
        points.push(SweepPoint {
            load,
            offered_rpmc: generated as f64 * 1e6 / cycles as f64,
            achieved_rpmc: summary.throughput_rpmc,
            rejected_frac,
            latency: summary.latency,
        });
        if knee.is_none() && rejected_frac > 0.05 {
            knee = Some(load);
        }
        if let Some(hb) = progress {
            hb.tick(done + 1, loads.len());
        }
    }
    Ok(SweepReport { policy, points, knee })
}

/// Shard counts the shard sweep visits.
pub const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// A load sweep per shard count: how the saturation knee moves as the
/// address space is partitioned across more concurrent shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSweepReport {
    /// Policy every sweep ran under.
    pub policy: SchedPolicy,
    /// `(shard count, sweep)` pairs in [`SHARD_SWEEP`] order.
    pub entries: Vec<(usize, SweepReport)>,
}

impl ShardSweepReport {
    /// The achieved throughput at the saturation knee (or at the heaviest
    /// swept load if the sweep never saturated) for one entry.
    pub fn knee_throughput(sweep: &SweepReport) -> f64 {
        let point = match sweep.knee {
            Some(k) => sweep.points.iter().find(|p| p.load == k),
            None => sweep.points.last(),
        };
        point.map_or(0.0, |p| p.achieved_rpmc)
    }

    /// The latency summary at load 1.0 for one entry (zeros if the
    /// sweep skipped that load).
    fn at_load_one(sweep: &SweepReport) -> (u64, u64) {
        sweep
            .points
            .iter()
            .find(|p| p.load == 1.0)
            .map_or((0, 0), |p| (p.latency.p99, p.latency.p999))
    }

    /// Renders the cross-shard summary table followed by each per-shard
    /// sweep.
    pub fn render(&self) -> String {
        let mut out = format!("shard sweep ({}):\n", self.policy.name());
        out.push_str(&format!(
            "  {:>6} {:>8} {:>13} {:>10} {:>10}\n",
            "shards", "knee", "knee req/Mcyc", "p99@1.0", "p99.9@1.0"
        ));
        for (m, sweep) in &self.entries {
            let knee = sweep
                .knee
                .map_or_else(|| "none".to_string(), |k| format!("{k:.2}"));
            let (p99, p999) = Self::at_load_one(sweep);
            out.push_str(&format!(
                "  {:>6} {:>8} {:>13.2} {:>10} {:>10}\n",
                m,
                knee,
                Self::knee_throughput(sweep),
                p99,
                p999
            ));
        }
        for (m, sweep) in &self.entries {
            out.push_str(&format!("-- shards {m} --\n"));
            out.push_str(&sweep.render());
        }
        out
    }

    /// The knee table for CSV export: one row per shard count with the
    /// knee load, knee throughput, and the load-1.0 tail (p99 and
    /// p99.9). A sweep that never saturated writes knee 0.
    pub fn knee_table(&self) -> Table {
        let mut t = Table::new(
            "Fig C1: shard sweep saturation knee",
            &["knee_load", "knee_req_per_mcyc", "p99_at_load1", "p99_9_at_load1"],
        );
        for (m, sweep) in &self.entries {
            let (p99, p999) = Self::at_load_one(sweep);
            t.push(
                format!("shards_{m}"),
                vec![
                    sweep.knee.unwrap_or(0.0),
                    Self::knee_throughput(sweep),
                    p99 as f64,
                    p999 as f64,
                ],
            );
        }
        t
    }
}

/// Runs one [`SHARD_SWEEP_LOADS`] sweep per [`SHARD_SWEEP`] shard count
/// on the identical offered workload, so the knees are directly
/// comparable.
///
/// # Errors
///
/// Returns the first sweep's validation failure.
pub fn run_shard_sweep(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<ShardSweepReport, String> {
    let policy = opts.scheduler.unwrap_or(SchedPolicy::Fcfs);
    let mut entries = Vec::new();
    for (done, &m) in SHARD_SWEEP.iter().enumerate() {
        let o = ServeOptions { shards: m, ..opts.clone() };
        entries.push((m, sweep_loads(&o, &SHARD_SWEEP_LOADS, None, None)?));
        if let Some(hb) = progress {
            hb.tick(done + 1, SHARD_SWEEP.len());
        }
    }
    Ok(ShardSweepReport { policy, entries })
}

/// Round-trip times (µs) the WAN sweep visits: same-metro, regional,
/// and cross-region regimes.
pub const WAN_SWEEP_RTTS_US: [f64; 3] = [50.0, 200.0, 800.0];

/// Request batch sizes the WAN sweep visits at each RTT.
pub const WAN_SWEEP_BATCHES: [usize; 5] = [1, 2, 4, 8, 16];

/// One measured operating point of the WAN sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WanSweepPoint {
    /// Configured round-trip time in microseconds.
    pub rtt_us: f64,
    /// Requests amortized per network round trip.
    pub batch: usize,
    /// Cycles over the measured misses.
    pub total_cycles: u64,
    /// `total_cycles / measured misses` — the figure's y-axis.
    pub per_request_cycles: f64,
    /// Cycles attributed to network round trips.
    pub network_cycles: u64,
    /// 99th-percentile end-to-end access latency (cycles), from the
    /// telemetry spans of the measured misses.
    pub p99_cycles: u64,
    /// 99.9th-percentile end-to-end access latency (cycles).
    pub p999_cycles: u64,
}

/// The RTT-vs-batch WAN sweep: per-request cost as batching amortizes
/// round trips, at several latency regimes.
#[derive(Debug, Clone, PartialEq)]
pub struct WanSweepReport {
    /// Workload driving the miss stream.
    pub workload: String,
    /// Measured misses per point (identical stream at every point).
    pub misses: u64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Master seed.
    pub seed: u64,
    /// Points in `(RTT, batch)` lexicographic sweep order.
    pub points: Vec<WanSweepPoint>,
}

impl WanSweepReport {
    /// Renders the per-point table plus the amortization verdict.
    pub fn render(&self) -> String {
        let mut out = format!(
            "wan sweep ({} misses of {}, levels {}):\n",
            self.misses, self.workload, self.levels
        );
        out.push_str(&format!(
            "  {:>8} {:>6} {:>14} {:>12} {:>6} {:>10} {:>10}\n",
            "rtt_us", "batch", "cycles/req", "network", "net%", "p99", "p99.9"
        ));
        for p in &self.points {
            let netpct = if p.total_cycles == 0 {
                0.0
            } else {
                100.0 * p.network_cycles as f64 / p.total_cycles as f64
            };
            out.push_str(&format!(
                "  {:>8.0} {:>6} {:>14.1} {:>12} {:>5.1}% {:>10} {:>10}\n",
                p.rtt_us,
                p.batch,
                p.per_request_cycles,
                p.network_cycles,
                netpct,
                p.p99_cycles,
                p.p999_cycles
            ));
        }
        out.push_str(
            "per-request cycles are monotone non-increasing in the batch size at every RTT\n",
        );
        out
    }

    /// The figure table: one row per RTT, one column per batch size,
    /// cell = per-request cycles; followed by `p99_rtt_*` and
    /// `p99_9_rtt_*` rows carrying the tail latency at the same points.
    pub fn table(&self) -> Table {
        let cols: Vec<String> =
            WAN_SWEEP_BATCHES.iter().map(|b| format!("batch_{b}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig B1: WAN per-request cycles vs request batch",
            &col_refs,
        );
        for &rtt in &WAN_SWEEP_RTTS_US {
            let row: Vec<f64> = self
                .points
                .iter()
                .filter(|p| p.rtt_us == rtt)
                .map(|p| p.per_request_cycles)
                .collect();
            t.push(format!("rtt_{rtt:.0}us"), row);
        }
        for (tag, pick) in [
            ("p99", (|p: &WanSweepPoint| p.p99_cycles) as fn(&WanSweepPoint) -> u64),
            ("p99_9", |p: &WanSweepPoint| p.p999_cycles),
        ] {
            for &rtt in &WAN_SWEEP_RTTS_US {
                let row: Vec<f64> = self
                    .points
                    .iter()
                    .filter(|p| p.rtt_us == rtt)
                    .map(|p| pick(p) as f64)
                    .collect();
                t.push(format!("{tag}_rtt_{rtt:.0}us"), row);
            }
        }
        t
    }
}

/// Sweeps [`WAN_SWEEP_RTTS_US`] × [`WAN_SWEEP_BATCHES`] over the
/// identical replayed miss stream and self-checks the amortization law:
/// at fixed RTT, per-request cycles must be monotone non-increasing in
/// the batch size. The stream is replayed through [`Engine::run`]
/// directly (no admission control), so the per-request figure divides by
/// a fixed miss count and the law is exact.
///
/// # Errors
///
/// Returns the first configuration or monotonicity failure.
pub fn run_wan_sweep(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<WanSweepReport, String> {
    let workload = "mcf";
    let sys = serve_system(opts.levels)?;
    let ro = RunOptions {
        misses: opts.requests,
        warmup_misses: opts.requests / 4,
        seed: opts.seed,
        fill_target: 0.35,
        o3: None,
    };
    let scaled = scale_profile(&spec::profile(workload), &sys, ro.fill_target);
    let records = build_miss_stream(&scaled, sys.hierarchy, &ro);
    let split = (ro.warmup_misses as usize).min(records.len());
    let (warm, measured) = records.split_at(split);
    if measured.is_empty() {
        return Err("wan sweep: no measured misses".to_string());
    }

    let total_points = WAN_SWEEP_RTTS_US.len() * WAN_SWEEP_BATCHES.len();
    let mut points = Vec::with_capacity(total_points);
    for &rtt_us in &WAN_SWEEP_RTTS_US {
        let mut prev: Option<f64> = None;
        for &batch in &WAN_SWEEP_BATCHES {
            let o = ServeOptions { rtt_us, wan_batch: batch, ..opts.clone() };
            let backend = wan_backend(&o, &sys).map_err(|e| format!("wan sweep: {e}"))?;
            let mut engine = Engine::with_backend(sys.clone(), backend)
                .map_err(|e| format!("wan sweep: engine: {e}"))?;
            engine.prefill_working_set(scaled.working_set_blocks);
            if !warm.is_empty() {
                engine.run(&mut ReplayMisses::new(warm.to_vec()));
            }
            let rec = TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 16 });
            engine.attach_telemetry(TelemetryRecorder::as_sink(&rec), 50_000);
            let before = engine.stats();
            let after = engine.run(&mut ReplayMisses::new(measured.to_vec()));
            engine.detach_telemetry();

            let total_cycles = after.total_cycles - before.total_cycles;
            let per_request_cycles = total_cycles as f64 / measured.len() as f64;
            let (network_cycles, p99_cycles, p999_cycles) = {
                let rec = rec.lock().expect("recorder poisoned");
                validate_attribution(rec.spans())
                    .map_err(|e| format!("wan sweep rtt {rtt_us} batch {batch}: {e}"))?;
                let mut lat: Vec<u64> =
                    rec.spans().iter().map(|s| s.end - s.arrival).collect();
                let summary = LatencySummary::from_samples(&mut lat);
                (
                    rec.metrics().histogram(MetricId::AttrNetwork).sum(),
                    summary.p99,
                    summary.p999,
                )
            };
            if let Some(prev) = prev {
                if per_request_cycles > prev {
                    return Err(format!(
                        "wan sweep: batching slowed the run at rtt {rtt_us}us: batch {batch} \
                         costs {per_request_cycles:.1} cycles/request, smaller batch cost \
                         {prev:.1}"
                    ));
                }
            }
            prev = Some(per_request_cycles);
            points.push(WanSweepPoint {
                rtt_us,
                batch,
                total_cycles,
                per_request_cycles,
                network_cycles,
                p99_cycles,
                p999_cycles,
            });
            if let Some(hb) = progress {
                hb.tick(points.len(), total_points);
            }
        }
    }
    Ok(WanSweepReport {
        workload: workload.to_string(),
        misses: measured.len() as u64,
        levels: opts.levels,
        seed: opts.seed,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeOptions {
        // Small enough for debug-mode unit tests.
        ServeOptions { requests: 60, ..ServeOptions::quick() }
    }

    #[test]
    fn serve_run_validates_and_reports_every_policy() {
        let arts = run_serve(&tiny(), None).expect("validated run");
        assert_eq!(arts.report.schedulers.len(), SchedPolicy::ALL.len());
        for s in &arts.report.schedulers {
            assert!(s.completed > 0, "{}", s.policy);
            assert!(s.latency.p50 <= s.latency.p99 && s.latency.p99 <= s.latency.p999);
            assert!(s.throughput_rpmc > 0.0);
        }
        for p in SchedPolicy::ALL {
            assert!(arts.client_section.contains(p.name()));
        }
    }

    #[test]
    fn serve_is_deterministic() {
        let a = run_serve(&tiny(), None).expect("run a");
        let b = run_serve(&tiny(), None).expect("run b");
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }

    #[test]
    fn single_scheduler_option_restricts_the_report() {
        let mut o = tiny();
        o.scheduler = Some(SchedPolicy::RoundRobin);
        let arts = run_serve(&o, None).expect("validated run");
        assert_eq!(arts.report.schedulers.len(), 1);
        assert_eq!(arts.report.schedulers[0].policy, "round_robin");
    }

    #[test]
    fn sharded_serve_validates_every_shard() {
        let mut o = tiny();
        o.shards = 2;
        o.threads = 2;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let arts = run_serve(&o, None).expect("validated sharded run");
        assert_eq!(arts.report.meta.shards, 2);
        assert!(arts.report.schedulers[0].completed > 0);
        // The shard count is part of the serialized metadata.
        assert!(arts.report.to_json().contains("\"shards\":2"));
    }

    #[test]
    fn sharded_serve_is_thread_count_invariant() {
        let run = |threads| {
            let mut o = tiny();
            o.shards = 4;
            o.threads = threads;
            o.scheduler = Some(SchedPolicy::Fcfs);
            run_serve(&o, None).expect("validated sharded run").report.to_json()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn wan_backend_serves_and_tags_the_report() {
        let mut o = tiny();
        o.backend = BackendKind::Wan;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let a = run_serve(&o, None).expect("validated wan run");
        assert_eq!(a.report.meta.backend, "wan");
        assert!(a.report.to_json().contains("\"backend\":\"wan\""));
        assert!(a.report.schedulers[0].completed > 0);
        // The jitter-free model is deterministic across runs.
        let b = run_serve(&o, None).expect("rerun");
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn disk_backend_serves_and_tags_the_report() {
        let mut o = tiny();
        o.backend = BackendKind::Disk;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let a = run_serve(&o, None).expect("validated disk run");
        assert_eq!(a.report.meta.backend, "disk");
        assert!(a.report.schedulers[0].completed > 0);
        let b = run_serve(&o, None).expect("rerun");
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn non_dram_backends_reject_sharding() {
        let mut o = tiny();
        o.backend = BackendKind::Wan;
        o.shards = 2;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let err = run_serve(&o, None).unwrap_err();
        assert!(err.contains("DRAM-only"), "{err}");
    }

    #[test]
    fn dram_report_is_backend_field_free() {
        // The DRAM-behind-trait path must serialize byte-identically to
        // the pre-backend output: no "backend" key in its JSON.
        let mut o = tiny();
        o.scheduler = Some(SchedPolicy::Fcfs);
        let arts = run_serve(&o, None).expect("validated run");
        assert_eq!(arts.report.meta.backend, "dram");
        assert!(!arts.report.to_json().contains("backend"));
    }

    #[test]
    fn wan_sweep_amortizes_round_trips() {
        let mut o = tiny();
        o.requests = 120;
        let sweep = run_wan_sweep(&o, None).expect("wan sweep");
        assert_eq!(
            sweep.points.len(),
            WAN_SWEEP_RTTS_US.len() * WAN_SWEEP_BATCHES.len()
        );
        // Monotone non-increasing per RTT is validated inside the sweep;
        // spot-check the strict end-to-end win where RTTs dominate.
        for &rtt in &WAN_SWEEP_RTTS_US {
            let row: Vec<&WanSweepPoint> =
                sweep.points.iter().filter(|p| p.rtt_us == rtt).collect();
            assert!(
                row.last().unwrap().per_request_cycles
                    < row.first().unwrap().per_request_cycles,
                "batching must win at rtt {rtt}"
            );
            assert!(row.iter().all(|p| p.network_cycles > 0));
            assert!(row.iter().all(|p| p.p99_cycles > 0 && p.p99_cycles <= p.p999_cycles));
        }
        // Higher RTT costs more at fixed batch.
        let at_batch_1: Vec<f64> = sweep
            .points
            .iter()
            .filter(|p| p.batch == 1)
            .map(|p| p.per_request_cycles)
            .collect();
        assert!(at_batch_1.windows(2).all(|w| w[0] < w[1]));
        // One cycles/req row per RTT plus p99 and p99.9 rows per RTT.
        let t = sweep.table();
        assert_eq!(t.rows.len(), 3 * WAN_SWEEP_RTTS_US.len());
        assert!(sweep.render().contains("monotone non-increasing"));
        assert!(sweep.render().contains("p99.9"));
        // Deterministic for the compare gate.
        assert_eq!(run_wan_sweep(&o, None).expect("rerun"), sweep);
    }

    #[test]
    fn live_plane_attachment_leaves_the_report_identical() {
        use oram_obsv::LiveConfig;

        let mut o = tiny();
        o.scheduler = Some(SchedPolicy::Fcfs);
        let plain = run_serve(&o, None).expect("plain run");

        let cfg = LiveConfig::for_serve(o.clients, o.shards, o.base_gap_cycles as u64, 200);
        let lr = LiveRun::new(LivePlane::shared(cfg), false);
        let live = run_serve_live(&o, None, Some(&lr)).expect("live run");

        // The tentpole invariant: the observed run is byte-identical to
        // the unobserved one.
        assert_eq!(plain.report, live.report);
        assert_eq!(plain.report.to_json(), live.report.to_json());
        assert_eq!(plain.client_section, live.client_section);

        // And the plane actually saw the traffic, conserving counts.
        let p = lr.plane.lock().unwrap();
        let completed = live.report.schedulers[0].completed;
        assert_eq!(p.total().completed, completed);
        assert!(p.total().latency.count() == completed);
        assert!(p.engine_windows() > 0, "engine-side tee must feed Eq. 1 windows");
        assert!(p.stash_peak() > 0, "engine-side tee must feed stash samples");
        p.validate_conservation().expect("conserved");
    }

    #[test]
    fn sharded_live_plane_sees_per_shard_completions() {
        use oram_obsv::LiveConfig;

        let mut o = tiny();
        o.shards = 2;
        o.threads = 2;
        o.scheduler = Some(SchedPolicy::Fcfs);
        let plain = run_serve(&o, None).expect("plain run");

        let cfg = LiveConfig::for_serve(o.clients, o.shards, o.base_gap_cycles as u64, 200);
        let lr = LiveRun::new(LivePlane::shared(cfg), false);
        let live = run_serve_live(&o, None, Some(&lr)).expect("live sharded run");
        assert_eq!(plain.report, live.report);

        let p = lr.plane.lock().unwrap();
        assert_eq!(p.total().completed, live.report.schedulers[0].completed);
        // Both shards served traffic and the plane kept them apart.
        assert!(p.total().shard_completed.iter().all(|&c| c > 0));
        p.validate_conservation().expect("conserved");
    }

    #[test]
    fn shard_sweep_knee_table_has_tail_columns() {
        let report = ShardSweepReport {
            policy: SchedPolicy::Fcfs,
            entries: vec![],
        };
        let t = report.knee_table();
        assert_eq!(
            t.columns,
            ["knee_load", "knee_req_per_mcyc", "p99_at_load1", "p99_9_at_load1"]
        );
        assert!(report.render().contains("p99.9@1.0"));
    }

    #[test]
    fn overload_finds_a_knee() {
        // A gap short enough that the top sweep loads must overflow the
        // queues on a multi-thousand-cycle ORAM access time.
        let mut o = tiny();
        o.base_gap_cycles = 4_000.0;
        let sweep = run_serve_sweep(&o, None).expect("sweep");
        assert_eq!(sweep.points.len(), SWEEP_LOADS.len());
        let knee = sweep.knee.expect("overloaded sweep must saturate");
        assert!(knee > 0.25, "knee at the lightest load suggests a broken base rate");
        assert!(sweep.render().contains("saturation knee"));
        // Rejections are monotone-ish: the heaviest load rejects more
        // than the lightest.
        assert!(
            sweep.points.last().unwrap().rejected_frac
                > sweep.points.first().unwrap().rejected_frac
        );
    }
}

//! The `repro serve` subcommand's engine: drives the multi-client
//! service front-end over every scheduler policy on the identical
//! offered workload, self-validates each run, and summarizes tail
//! latency and throughput. A load-sweep mode scales the offered rate
//! and locates the saturation knee.
//!
//! The validation is the subcommand's contract: a zero exit code means
//! the service conservation laws held (every generated request was
//! admitted or rejected exactly once and every admitted request
//! completed), every telemetry span's cycle attribution partitioned its
//! latency with `queue_wait = start − arrival`, and the service-issued
//! bus trace passed the obliviousness audit (protocol grammar plus leaf
//! uniformity) — coalescing and batch scheduling must be invisible on
//! the memory bus.

use oram_audit::{check_service_trace, Recorder};
use oram_service::{
    LatencySummary, SchedPolicy, SchedulerSummary, ServiceConfig, ServiceMeta, ServiceReport,
    ServiceResult, ServiceSim, SERVE_CLASS_NAMES,
};
use oram_sim::{Engine, SystemConfig};
use oram_telemetry::{validate_attribution, TelemetryConfig, TelemetryRecorder};

use crate::progress::Heartbeat;

/// Options for one `repro serve` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Number of client streams.
    pub clients: usize,
    /// Requests each stream generates.
    pub requests: u64,
    /// Mean per-client interarrival gap in cycles at load 1.0.
    pub base_gap_cycles: f64,
    /// Offered-rate multiplier (the gap is `base_gap_cycles / load`).
    pub load: f64,
    /// Run only this policy; `None` runs all of [`SchedPolicy::ALL`].
    pub scheduler: Option<SchedPolicy>,
    /// Address domain (blocks), also the prefilled working set.
    pub domain: u64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Master seed.
    pub seed: u64,
}

impl ServeOptions {
    /// Fast settings for CI smoke runs: seconds, not minutes.
    pub fn quick() -> Self {
        ServeOptions {
            clients: 4,
            requests: 250,
            base_gap_cycles: 25_000.0,
            load: 1.0,
            scheduler: None,
            domain: 256,
            levels: 12,
            seed: 7,
        }
    }

    /// Full-fidelity settings matching the default experiment scale.
    pub fn full() -> Self {
        ServeOptions { requests: 1000, domain: 1024, levels: 14, ..ServeOptions::quick() }
    }

    /// The service configuration at a given load factor (scheduler is
    /// set per run).
    fn service_config(&self, load: f64) -> ServiceConfig {
        ServiceConfig::symmetric_open(
            self.clients,
            self.requests,
            self.base_gap_cycles / load,
            self.domain,
            self.seed,
        )
    }
}

/// A validated serve run: the per-scheduler report plus the per-client
/// accounting section of the text output.
#[derive(Debug, Clone)]
pub struct ServeArtifacts {
    /// Per-scheduler latency/throughput summaries (renders, serializes,
    /// and compares against a baseline).
    pub report: ServiceReport,
    /// Per-client serve-class breakdown, one section per policy.
    pub client_section: String,
}

/// Runs one policy at one load factor through the full validation
/// stack and returns the summary plus the raw result.
fn run_policy(
    opts: &ServeOptions,
    policy: SchedPolicy,
    load: f64,
) -> Result<(SchedulerSummary, ServiceResult), String> {
    let name = policy.name();
    let mut sys = SystemConfig::scaled_default();
    sys.oram.levels = opts.levels;
    sys.validate().map_err(|e| format!("{name}: invalid configuration: {e}"))?;

    let mut cfg = opts.service_config(load);
    cfg.scheduler = policy;

    let trace = Recorder::unbounded();
    let telem = TelemetryRecorder::shared(TelemetryConfig { span_capacity: 1 << 16 });
    let mut engine = Engine::new(sys).map_err(|e| format!("{name}: engine: {e}"))?;
    engine.prefill_working_set(cfg.address_span());
    engine.attach_bus_observer(trace.observer());
    engine.attach_telemetry(TelemetryRecorder::as_sink(&telem), 50_000);

    let mut sim = ServiceSim::new(cfg, engine).map_err(|e| format!("{name}: {e}"))?;
    sim.attach_telemetry(TelemetryRecorder::as_sink(&telem));
    sim.run();
    let (res, mut engine) = sim.finish();
    engine.detach_telemetry();
    engine.detach_bus_observer();

    // 1. Service conservation laws against the engine's own counters.
    res.validate().map_err(|e| format!("{name}: {e}"))?;
    // 2. Every span's attribution partitions its latency exactly, with
    //    queue_wait = start − arrival.
    {
        let t = telem.lock().expect("recorder poisoned");
        validate_attribution(t.spans()).map_err(|e| format!("{name}: attribution: {e}"))?;
    }
    // 3. The service-issued bus trace passes the obliviousness audit.
    check_service_trace(&engine.config().oram, &trace.snapshot())
        .map_err(|e| format!("{name}: service trace audit: {e}"))?;

    let mut lat: Vec<u64> =
        res.clients.iter().flat_map(|c| c.latencies.iter().copied()).collect();
    let latency = LatencySummary::from_samples(&mut lat);
    let completed = res.completed();
    let total_cycles = res.stats.total_cycles;
    let throughput_rpmc =
        if total_cycles == 0 { 0.0 } else { completed as f64 * 1e6 / total_cycles as f64 };
    let onchip = res
        .clients
        .iter()
        .map(|c| c.served[0] + c.served[1]) // stash + treetop
        .sum();
    let summary = SchedulerSummary {
        policy: name.to_string(),
        completed,
        issued: res.issued(),
        coalesced: res.coalesced(),
        rejected: res.rejected(),
        onchip,
        total_cycles,
        throughput_rpmc,
        latency,
    };
    Ok((summary, res))
}

/// Renders one policy's per-client accounting lines.
fn render_clients(policy: SchedPolicy, res: &ServiceResult) -> String {
    let mut out = format!("per-client ({}):\n", policy.name());
    for (i, c) in res.clients.iter().enumerate() {
        let classes: Vec<String> = SERVE_CLASS_NAMES
            .iter()
            .zip(c.served)
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name} {n}"))
            .collect();
        let mean_wait = c.wait_sum.checked_div(c.completed).unwrap_or(0);
        out.push_str(&format!(
            "  client {i}: completed {} rejected {} coalesced {} | {} | wait mean {} max {}\n",
            c.completed,
            c.rejected,
            c.coalesced,
            classes.join(", "),
            mean_wait,
            c.wait_max,
        ));
    }
    out
}

/// Runs the configured policy set through the full validation stack.
///
/// # Errors
///
/// Returns a message naming the first policy whose run failed
/// validation (conservation, attribution, or the trace audit).
pub fn run_serve(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<ServeArtifacts, String> {
    let policies: Vec<SchedPolicy> = match opts.scheduler {
        Some(p) => vec![p],
        None => SchedPolicy::ALL.to_vec(),
    };
    let mut schedulers = Vec::new();
    let mut client_section = String::new();
    for (done, &policy) in policies.iter().enumerate() {
        let (summary, res) = run_policy(opts, policy, opts.load)?;
        schedulers.push(summary);
        client_section.push_str(&render_clients(policy, &res));
        if let Some(hb) = progress {
            hb.tick(done + 1, policies.len());
        }
    }
    let report = ServiceReport {
        meta: ServiceMeta {
            clients: opts.clients as u64,
            requests_per_client: opts.requests,
            queue_capacity: 16,
            batch_size: 4,
            levels: opts.levels,
            seed: opts.seed,
            load: opts.load,
        },
        schedulers,
    };
    Ok(ServeArtifacts { report, client_section })
}

/// Load factors the sweep visits, spanning well under to well past
/// saturation.
pub const SWEEP_LOADS: [f64; 8] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0];

/// One measured operating point of the load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered-rate multiplier.
    pub load: f64,
    /// Offered requests per million cycles (generated, pre-admission).
    pub offered_rpmc: f64,
    /// Completed requests per million cycles.
    pub achieved_rpmc: f64,
    /// Fraction of generated requests bounced by admission control.
    pub rejected_frac: f64,
    /// Latency summary at this point.
    pub latency: LatencySummary,
}

/// A full load sweep: every operating point plus the detected knee.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Policy the sweep ran under.
    pub policy: SchedPolicy,
    /// Measured points, in [`SWEEP_LOADS`] order.
    pub points: Vec<SweepPoint>,
    /// First load factor where admission control rejected more than 5%
    /// of offered requests — the saturation knee. `None` if the sweep
    /// never saturated.
    pub knee: Option<f64>,
}

impl SweepReport {
    /// Renders the sweep table plus the knee verdict.
    pub fn render(&self) -> String {
        let mut out = format!("load sweep ({}):\n", self.policy.name());
        out.push_str(&format!(
            "  {:>6} {:>12} {:>13} {:>9} {:>10} {:>10} {:>10}\n",
            "load", "offered/Mc", "achieved/Mc", "rej%", "p50", "p99", "p99.9"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:>6.2} {:>12.2} {:>13.2} {:>8.1}% {:>10} {:>10} {:>10}\n",
                p.load,
                p.offered_rpmc,
                p.achieved_rpmc,
                p.rejected_frac * 100.0,
                p.latency.p50,
                p.latency.p99,
                p.latency.p999,
            ));
        }
        match self.knee {
            Some(k) => out.push_str(&format!(
                "saturation knee at load {k:.2} (first point rejecting > 5% of offered requests)\n"
            )),
            None => out.push_str("no saturation knee within the swept range\n"),
        }
        out
    }
}

/// Sweeps [`SWEEP_LOADS`] under one policy (the configured one, or
/// FCFS) and locates the saturation knee. Every point runs the same
/// validation stack as [`run_serve`].
///
/// # Errors
///
/// Returns the first point's validation failure.
pub fn run_serve_sweep(
    opts: &ServeOptions,
    progress: Option<&Heartbeat>,
) -> Result<SweepReport, String> {
    let policy = opts.scheduler.unwrap_or(SchedPolicy::Fcfs);
    let mut points = Vec::new();
    let mut knee = None;
    for (done, &load) in SWEEP_LOADS.iter().enumerate() {
        let (summary, res) = run_policy(opts, policy, load)?;
        let generated: u64 = res.clients.iter().map(|c| c.generated).sum();
        let cycles = summary.total_cycles.max(1);
        let rejected_frac =
            if generated == 0 { 0.0 } else { summary.rejected as f64 / generated as f64 };
        points.push(SweepPoint {
            load,
            offered_rpmc: generated as f64 * 1e6 / cycles as f64,
            achieved_rpmc: summary.throughput_rpmc,
            rejected_frac,
            latency: summary.latency,
        });
        if knee.is_none() && rejected_frac > 0.05 {
            knee = Some(load);
        }
        if let Some(hb) = progress {
            hb.tick(done + 1, SWEEP_LOADS.len());
        }
    }
    Ok(SweepReport { policy, points, knee })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeOptions {
        // Small enough for debug-mode unit tests.
        ServeOptions { requests: 60, ..ServeOptions::quick() }
    }

    #[test]
    fn serve_run_validates_and_reports_every_policy() {
        let arts = run_serve(&tiny(), None).expect("validated run");
        assert_eq!(arts.report.schedulers.len(), SchedPolicy::ALL.len());
        for s in &arts.report.schedulers {
            assert!(s.completed > 0, "{}", s.policy);
            assert!(s.latency.p50 <= s.latency.p99 && s.latency.p99 <= s.latency.p999);
            assert!(s.throughput_rpmc > 0.0);
        }
        for p in SchedPolicy::ALL {
            assert!(arts.client_section.contains(p.name()));
        }
    }

    #[test]
    fn serve_is_deterministic() {
        let a = run_serve(&tiny(), None).expect("run a");
        let b = run_serve(&tiny(), None).expect("run b");
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }

    #[test]
    fn single_scheduler_option_restricts_the_report() {
        let mut o = tiny();
        o.scheduler = Some(SchedPolicy::RoundRobin);
        let arts = run_serve(&o, None).expect("validated run");
        assert_eq!(arts.report.schedulers.len(), 1);
        assert_eq!(arts.report.schedulers[0].policy, "round_robin");
    }

    #[test]
    fn overload_finds_a_knee() {
        // A gap short enough that the top sweep loads must overflow the
        // queues on a multi-thousand-cycle ORAM access time.
        let mut o = tiny();
        o.base_gap_cycles = 4_000.0;
        let sweep = run_serve_sweep(&o, None).expect("sweep");
        assert_eq!(sweep.points.len(), SWEEP_LOADS.len());
        let knee = sweep.knee.expect("overloaded sweep must saturate");
        assert!(knee > 0.25, "knee at the lightest load suggests a broken base rate");
        assert!(sweep.render().contains("saturation knee"));
        // Rejections are monotone-ish: the heaviest load rejects more
        // than the lightest.
        assert!(
            sweep.points.last().unwrap().rejected_frac
                > sweep.points.first().unwrap().rejected_frac
        );
    }
}

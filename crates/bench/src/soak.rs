//! The `repro soak` subcommand's engine: a long-horizon, multi-tenant,
//! phase-scheduled service run with streaming validation and trend
//! detection.
//!
//! Where `repro serve` measures one operating point per scheduler, the
//! soak harness chains **phases** over one persistent ORAM engine: each
//! phase shifts the Zipfian hot set ([`oram_service::AddressMix::ZipfianShifted`]
//! — same popularity shape, different blocks hot), ramps the offered
//! load along a symmetric diurnal profile, and optionally switches the
//! storage backend mid-run. The engine's clock, stash state, and
//! position map carry across phases (`ServiceSim::resume`), so the run
//! exercises the steady state the paper's duplication mechanisms live
//! in — not the cold start every short benchmark re-measures.
//!
//! Validation is streaming, not post-hoc: every phase's conservation
//! laws are checked as it finishes, the live plane's window conservation
//! and Eq. 1 residuals are checked at the end, and two deterministic
//! drift estimators (per-window p99 latency slope, per-window stash
//! occupancy slope) must stay under fixed thresholds — a latency or
//! stash trend that climbs across a load-symmetric run is a leak, not
//! noise. The report lands as JSON behind the `repro compare` gate.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use oram_obsv::{
    AlertKind, FlightConfig, IncidentMeta, LiveConfig, LivePlane, EQ1_RESIDUAL_PPM,
};
use oram_service::{AddressMix, ServiceConfig, ServiceSim};
use oram_sim::{
    DiskBackend, DiskConfig, Engine, StorageBackend, SystemConfig, WanBackend, WanConfig,
};
use oram_telemetry::json::{self, Value};

use crate::incident::write_incident_bundle;
use crate::progress::Heartbeat;
use crate::serve::BackendKind;

/// Seed-derivation constant shared with the service layer's per-client
/// split (the golden-ratio multiplier).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Maximum tolerated magnitude of the per-window p99 latency slope, in
/// ppm of the mean per window. The load profile is symmetric, so a
/// healthy run's linear fit is near flat (the quick DRAM baseline
/// measures about -340 ppm/window); a persistent climb means latency is
/// drifting with run length.
pub const LATENCY_TREND_MAX_PPM: i64 = 5_000;

/// Maximum tolerated per-window stash-occupancy slope, in ppm of the
/// mean per window (the quick DRAM baseline measures about -75). Only
/// growth is a leak; shrinking occupancy passes.
pub const STASH_TREND_MAX_PPM: i64 = 5_000;

/// Trend checks need at least this many fitted windows to be
/// meaningful — with few windows the per-window p99 is a handful of
/// samples and the fitted slope is noise. Below the floor the check
/// reports `skipped` (the quick CI scale fits ~540 windows).
pub const TREND_MIN_WINDOWS: u64 = 100;

/// Options for one `repro soak` run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakOptions {
    /// Tenant (client) streams.
    pub tenants: usize,
    /// Total requests across all tenants and phases (split evenly).
    pub requests_total: u64,
    /// Scheduled phases (hot-set shift + load ramp per phase).
    pub phases: usize,
    /// Mean per-client interarrival gap in cycles at load 1.0.
    pub base_gap_cycles: f64,
    /// Tree depth `L`.
    pub levels: u32,
    /// Address domain (blocks), also the prefilled working set.
    pub domain: u64,
    /// Master seed (each phase derives its own).
    pub seed: u64,
    /// Storage backend the run starts on.
    pub backend: BackendKind,
    /// Backend to switch to at the midpoint phase, if any.
    pub switch_backend: Option<BackendKind>,
    /// Directory to dump an incident bundle into if a trigger alert
    /// freezes the flight recorder during the soak.
    pub incident_dir: Option<PathBuf>,
}

impl SoakOptions {
    /// CI smoke scale: seconds, not minutes.
    pub fn quick() -> Self {
        SoakOptions {
            tenants: 4,
            requests_total: 4_000,
            phases: 4,
            base_gap_cycles: 25_000.0,
            levels: 12,
            domain: 256,
            seed: 7,
            backend: BackendKind::Dram,
            switch_backend: None,
            incident_dir: None,
        }
    }

    /// The long-horizon default: one million requests.
    pub fn full() -> Self {
        SoakOptions {
            requests_total: 1_000_000,
            levels: 14,
            domain: 1024,
            ..SoakOptions::quick()
        }
    }

    /// Requests each client generates per phase.
    fn per_client_per_phase(&self) -> u64 {
        self.requests_total / (self.tenants as u64 * self.phases as u64)
    }

    /// Checks every parameter range.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("soak needs at least one tenant".into());
        }
        if self.phases == 0 {
            return Err("soak needs at least one phase".into());
        }
        if self.per_client_per_phase() == 0 {
            return Err(format!(
                "requests_total {} splits to zero per tenant per phase ({} tenants x {} phases)",
                self.requests_total, self.tenants, self.phases
            ));
        }
        if let Some(b) = self.switch_backend {
            if b == self.backend {
                return Err(format!("switch backend {} equals the starting backend", b.name()));
            }
            if self.phases < 2 {
                return Err("a backend switch needs at least two phases".into());
            }
        }
        Ok(())
    }
}

/// The offered-load multiplier of phase `i` of `n`: a symmetric
/// triangular diurnal profile from 0.8 at the edges to 1.3 at midday.
/// Symmetry is what makes the latency-trend self-check meaningful — any
/// persistent slope is drift, not the schedule.
fn phase_load(i: usize, n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    let t = i as f64 / (n - 1) as f64;
    let tri = 1.0 - (2.0 * t - 1.0).abs();
    0.8 + 0.5 * tri
}

/// One phase of the schedule, resolved.
#[derive(Debug, Clone, Copy)]
struct PhasePlan {
    index: usize,
    load: f64,
    offset: u64,
    backend: BackendKind,
}

/// What one finished phase contributed.
#[derive(Debug, Clone)]
pub struct PhaseSoak {
    /// Phase index.
    pub index: u64,
    /// Offered-load multiplier this phase ran at.
    pub load: f64,
    /// Zipf hot-set rotation this phase used.
    pub offset: u64,
    /// Backend this phase ran on.
    pub backend: String,
    /// Requests completed in the phase.
    pub completed: u64,
    /// Requests rejected by admission control in the phase.
    pub rejected: u64,
    /// Completions that coalesced onto an MSHR leader.
    pub coalesced: u64,
    /// Engine cycle when the phase drained.
    pub end_cycle: u64,
}

/// Per-tenant rollup from the plane's cumulative sketches.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSoak {
    /// Requests completed for this tenant.
    pub completed: u64,
    /// Requests rejected for this tenant.
    pub rejected: u64,
    /// Median end-to-end latency in cycles.
    pub p50: u64,
    /// 99th percentile latency.
    pub p99: u64,
    /// 99.9th percentile latency.
    pub p99_9: u64,
    /// Worst latency observed.
    pub max: u64,
    /// Mean latency.
    pub mean: f64,
}

/// Per-objective burn rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSoak {
    /// Objective name.
    pub name: String,
    /// Budget-violating requests.
    pub bad: u64,
    /// Requests the objective evaluated.
    pub total: u64,
    /// Fast (1-window) burn rate at the end of the run.
    pub fast: f64,
    /// Slow (12-window) burn rate at the end of the run.
    pub slow: f64,
    /// Whether the objective ended the run in breach.
    pub breached: bool,
}

/// The full soak report: renders for humans, serializes for the
/// `repro compare` gate.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Tenant streams.
    pub tenants_n: u64,
    /// Phases scheduled.
    pub phases_n: u64,
    /// Total requests configured.
    pub requests_total: u64,
    /// Tree depth.
    pub levels: u32,
    /// Address domain.
    pub domain: u64,
    /// Master seed.
    pub seed: u64,
    /// Starting backend name.
    pub backend: String,
    /// Mid-run switch target, if any.
    pub switch_backend: Option<String>,
    /// Requests generated (admitted + rejected).
    pub generated: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Completions that coalesced.
    pub coalesced: u64,
    /// Final engine cycle.
    pub final_cycle: u64,
    /// Completed requests per million cycles.
    pub throughput_rpmc: f64,
    /// Per-tenant rollups (index = tenant id).
    pub tenants: Vec<TenantSoak>,
    /// Per-objective rollups.
    pub slos: Vec<SloSoak>,
    /// Alert firings: slo_burn, stash_pressure, rejection_knee,
    /// eq1_residual.
    pub alerts: [u64; 4],
    /// Per-phase results.
    pub phases: Vec<PhaseSoak>,
    /// Per-window p99 latency slope, ppm of the mean per window.
    pub latency_slope_ppm: i64,
    /// Windows the latency fit covers.
    pub latency_windows: u64,
    /// Per-window stash-occupancy slope, ppm of the mean per window.
    pub stash_slope_ppm: i64,
    /// Windows the stash fit covers.
    pub stash_windows: u64,
    /// Worst Eq. 1 residual seen, ppm of the window width.
    pub eq1_worst_ppm: u64,
    /// Mean Eq. 1 residual, ppm.
    pub eq1_mean_ppm: u64,
    /// Peak live stash occupancy.
    pub stash_peak: u32,
    /// Self-check verdicts: conservation, eq1, trend (`ok` or
    /// `skipped`).
    pub checks: [String; 3],
}

/// Builds the service configuration of one phase.
fn phase_config(opts: &SoakOptions, p: &PhasePlan) -> ServiceConfig {
    let mut cfg = ServiceConfig::symmetric_open(
        opts.tenants,
        opts.per_client_per_phase(),
        opts.base_gap_cycles / p.load,
        opts.domain,
        opts.seed ^ (p.index as u64 + 1).wrapping_mul(GOLDEN),
    );
    for c in &mut cfg.clients {
        c.addresses =
            AddressMix::ZipfianShifted { domain: opts.domain, theta: 0.99, offset: p.offset };
    }
    cfg
}

/// Chains the phases of one backend segment over a single engine,
/// resuming each phase at the previous phase's final cycle. Returns the
/// segment's final cycle.
fn run_segment<B: StorageBackend>(
    opts: &SoakOptions,
    engine: Engine<B>,
    plan: &[PhasePlan],
    start_cycle: u64,
    plane: &Arc<Mutex<LivePlane>>,
    hb: Option<&Heartbeat>,
    out: &mut Vec<PhaseSoak>,
) -> Result<u64, String> {
    let mut engine = engine;
    engine.prefill_working_set(opts.domain);
    engine.attach_telemetry(LivePlane::as_sink(plane), 50_000);
    let mut cycle = start_cycle;
    let mut slot = Some(engine);
    for p in plan {
        let cfg = phase_config(opts, p);
        let mut sim = ServiceSim::resume(cfg, slot.take().expect("engine slot"), cycle)
            .map_err(|e| format!("phase {}: {e}", p.index))?;
        sim.attach_live(LivePlane::as_live(plane));
        sim.run();
        let (res, engine) = sim.finish();
        // Streaming validation: this phase's conservation laws, checked
        // before the next phase starts.
        res.validate().map_err(|e| format!("phase {}: {e}", p.index))?;
        cycle = engine.cycle();
        out.push(PhaseSoak {
            index: p.index as u64,
            load: p.load,
            offset: p.offset,
            backend: p.backend.name().to_string(),
            completed: res.completed(),
            rejected: res.rejected(),
            coalesced: res.coalesced(),
            end_cycle: cycle,
        });
        slot = Some(engine);
        if let Some(hb) = hb {
            hb.tick(p.index + 1, opts.phases);
        }
    }
    let mut engine = slot.take().expect("engine slot");
    engine.detach_telemetry();
    Ok(cycle)
}

/// Builds the engine for a segment and runs it (the backend kinds have
/// different engine types, so the dispatch happens once per segment).
fn run_segment_kind(
    opts: &SoakOptions,
    kind: BackendKind,
    plan: &[PhasePlan],
    start_cycle: u64,
    plane: &Arc<Mutex<LivePlane>>,
    hb: Option<&Heartbeat>,
    out: &mut Vec<PhaseSoak>,
) -> Result<u64, String> {
    let mut sys = SystemConfig::scaled_default();
    sys.oram.levels = opts.levels;
    sys.validate().map_err(|e| format!("invalid configuration: {e}"))?;
    match kind {
        BackendKind::Dram => {
            let engine = Engine::new(sys).map_err(|e| format!("engine: {e}"))?;
            run_segment(opts, engine, plan, start_cycle, plane, hb, out)
        }
        BackendKind::Wan => {
            let per_block = WanConfig::default_wan().per_block_cycles;
            let cfg = WanConfig::from_rtt_us(200.0, sys.dram.tck_ns, per_block, 4);
            let backend = WanBackend::new(cfg).map_err(|e| format!("wan: {e}"))?;
            let engine = Engine::with_backend(sys, backend).map_err(|e| format!("engine: {e}"))?;
            run_segment(opts, engine, plan, start_cycle, plane, hb, out)
        }
        BackendKind::Disk => {
            let dir = std::env::temp_dir()
                .join(format!("oram_soak_disk_{}_{start_cycle}", std::process::id()));
            let bucket_count = (1u64 << (sys.oram.levels + 1)) - 1;
            let backend = DiskBackend::new(DiskConfig::new(dir.clone(), sys.oram.z, bucket_count))
                .map_err(|e| format!("disk: {e}"))?;
            let engine = Engine::with_backend(sys, backend).map_err(|e| format!("engine: {e}"))?;
            let result = run_segment(opts, engine, plan, start_cycle, plane, hb, out);
            let _ = std::fs::remove_dir_all(dir);
            result
        }
    }
}

/// Runs the full soak schedule and assembles the validated report.
///
/// # Errors
///
/// Returns the first failed self-check: a phase's conservation laws,
/// the plane's window conservation, the Eq. 1 residual bound, or a
/// drifting trend.
pub fn run_soak(opts: &SoakOptions, hb: Option<&Heartbeat>) -> Result<SoakReport, String> {
    opts.validate()?;
    let stash_bound = {
        let mut probe = SystemConfig::scaled_default();
        probe.oram.levels = opts.levels;
        probe.validate().map_err(|e| format!("invalid configuration: {e}"))?;
        probe.oram.stash_capacity as u32
    };
    let plane = LivePlane::shared(LiveConfig::for_serve(
        opts.tenants,
        1,
        opts.base_gap_cycles as u64,
        stash_bound,
    ));
    plane.lock().expect("plane lock").attach_flight(FlightConfig::default());

    // The schedule: one plan entry per phase; the hot set rotates by
    // domain/phases each phase, the load follows the diurnal profile,
    // and the backend flips at the midpoint when a switch is requested.
    let plans: Vec<PhasePlan> = (0..opts.phases)
        .map(|i| PhasePlan {
            index: i,
            load: phase_load(i, opts.phases),
            offset: (opts.domain / opts.phases as u64) * i as u64 % opts.domain.max(1),
            backend: match opts.switch_backend {
                Some(b) if i >= opts.phases / 2 => b,
                _ => opts.backend,
            },
        })
        .collect();

    let mut phases_out: Vec<PhaseSoak> = Vec::with_capacity(opts.phases);
    let switch_at = opts.switch_backend.map(|_| opts.phases / 2);
    match switch_at {
        None => {
            run_segment_kind(opts, opts.backend, &plans, 0, &plane, hb, &mut phases_out)?;
        }
        Some(k) => {
            let cycle =
                run_segment_kind(opts, opts.backend, &plans[..k], 0, &plane, hb, &mut phases_out)?;
            // The switch: a fresh engine of the new backend, with
            // arrivals continuing from the prior segment's final cycle
            // so tenant clocks never rewind.
            run_segment_kind(
                opts,
                opts.switch_backend.expect("switch"),
                &plans[k..],
                cycle,
                &plane,
                hb,
                &mut phases_out,
            )?;
        }
    }

    // End-of-run plane validation: close the open window, then check
    // the conservation law over folded + ring + open totals.
    {
        let mut p = plane.lock().expect("plane lock");
        p.flush();
        p.validate_conservation().map_err(|e| format!("observability conservation: {e}"))?;
    }
    let p = plane.lock().expect("plane lock");

    // Cross-layer conservation: the plane saw exactly what the phases
    // reported.
    let phase_completed: u64 = phases_out.iter().map(|f| f.completed).sum();
    let phase_rejected: u64 = phases_out.iter().map(|f| f.rejected).sum();
    if p.total().completed != phase_completed {
        return Err(format!(
            "plane saw {} completions but the phases reported {phase_completed}",
            p.total().completed
        ));
    }
    if p.total().rejected != phase_rejected {
        return Err(format!(
            "plane saw {} rejections but the phases reported {phase_rejected}",
            p.total().rejected
        ));
    }

    // Eq. 1 self-check: residuals must stay under the alert threshold.
    let eq1_worst = p.eq1_worst_residual_ppm();
    if eq1_worst > EQ1_RESIDUAL_PPM {
        return Err(format!(
            "Eq. 1 residual {eq1_worst} ppm exceeds the {EQ1_RESIDUAL_PPM} ppm bound"
        ));
    }

    // Trend self-check: deterministic slopes under fixed thresholds.
    let lat_windows = p.latency_trend().samples();
    let stash_windows = p.stash_trend().samples();
    let lat_slope = p.latency_trend().slope_ppm_of_mean();
    let stash_slope = p.stash_trend().slope_ppm_of_mean();
    // A mid-run backend switch is a deliberate regime change: the step
    // in latency dominates any linear fit, so the drift check only
    // applies to stationary-configuration runs.
    let trend_checked = lat_windows >= TREND_MIN_WINDOWS
        && stash_windows >= TREND_MIN_WINDOWS
        && opts.switch_backend.is_none();
    if trend_checked {
        if lat_slope.abs() > LATENCY_TREND_MAX_PPM {
            return Err(format!(
                "latency trend {lat_slope} ppm/window exceeds +-{LATENCY_TREND_MAX_PPM} \
                 over {lat_windows} windows"
            ));
        }
        if stash_slope > STASH_TREND_MAX_PPM {
            return Err(format!(
                "stash occupancy trend {stash_slope} ppm/window exceeds \
                 {STASH_TREND_MAX_PPM} over {stash_windows} windows"
            ));
        }
    }

    // Incident forensics: if a trigger froze the flight recorder during
    // the soak and a dump directory was given, write the bundle.
    if let (Some(dir), Some(f)) = (&opts.incident_dir, p.flight()) {
        if f.is_frozen() {
            let bundle = p.render_incident(&IncidentMeta {
                seed: opts.seed,
                levels: opts.levels,
                clients: opts.tenants,
                shards: 1,
                    requests: opts.requests_total,
                load: 1.0,
                scheduler: "fcfs".into(),
                backend: opts.backend.name().into(),
            })?;
            write_incident_bundle(dir, &bundle)?;
        }
    }

    let completed = p.total().completed;
    let rejected = p.total().rejected;
    let coalesced = p.total().coalesced;
    let final_cycle = phases_out.last().map_or(0, |f| f.end_cycle);
    let throughput_rpmc =
        if final_cycle == 0 { 0.0 } else { completed as f64 * 1e6 / final_cycle as f64 };
    let tenants = (0..opts.tenants)
        .map(|t| {
            let s = p.tenant_latency(t);
            TenantSoak {
                completed: p.total().tenant_completed[t],
                rejected: p.total().tenant_rejected[t],
                p50: s.quantile(0.5),
                p99: s.quantile(0.99),
                p99_9: s.quantile(0.999),
                max: s.max(),
                mean: s.mean(),
            }
        })
        .collect();
    let slos = p
        .config()
        .slos
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let b = p.burn(i);
            SloSoak {
                name: spec.name.clone(),
                bad: p.total().slo_bad[i],
                total: p.total().slo_total[i],
                fast: b.fast,
                slow: b.slow,
                breached: b.breached,
            }
        })
        .collect();
    let alerts = [
        p.alert_count(AlertKind::SloBurn),
        p.alert_count(AlertKind::StashPressure),
        p.alert_count(AlertKind::RejectionKnee),
        p.alert_count(AlertKind::Eq1Residual),
    ];

    Ok(SoakReport {
        tenants_n: opts.tenants as u64,
        phases_n: opts.phases as u64,
        requests_total: opts.requests_total,
        levels: opts.levels,
        domain: opts.domain,
        seed: opts.seed,
        backend: opts.backend.name().to_string(),
        switch_backend: opts.switch_backend.map(|b| b.name().to_string()),
        generated: completed + rejected,
        completed,
        rejected,
        coalesced,
        final_cycle,
        throughput_rpmc,
        tenants,
        slos,
        alerts,
        phases: phases_out,
        latency_slope_ppm: lat_slope,
        latency_windows: lat_windows,
        stash_slope_ppm: stash_slope,
        stash_windows,
        eq1_worst_ppm: eq1_worst,
        eq1_mean_ppm: p.eq1_mean_residual_ppm(),
        stash_peak: p.stash_peak(),
        checks: [
            "ok".to_string(),
            "ok".to_string(),
            if trend_checked { "ok".to_string() } else { "skipped".to_string() },
        ],
    })
}

const ALERT_NAMES: [&str; 4] = ["slo_burn", "stash_pressure", "rejection_knee", "eq1_residual"];

impl SoakReport {
    /// The human report `repro soak` prints.
    pub fn render(&self) -> String {
        let mut out = format!(
            "soak: {} requests, {} tenants, {} phases, backend {}{} (levels {}, seed {})\n",
            self.requests_total,
            self.tenants_n,
            self.phases_n,
            self.backend,
            match &self.switch_backend {
                Some(b) => format!(" -> {b} at midpoint"),
                None => String::new(),
            },
            self.levels,
            self.seed,
        );
        out.push_str("phase  load   offset  backend  completed  rejected  end_Mcyc\n");
        for f in &self.phases {
            out.push_str(&format!(
                "{:>5}  {:<5.2} {:>7}  {:<7}  {:>9}  {:>8}  {:>8.1}\n",
                f.index,
                f.load,
                f.offset,
                f.backend,
                f.completed,
                f.rejected,
                f.end_cycle as f64 / 1e6,
            ));
        }
        out.push_str("tenant  completed  rejected     p50     p99   p99.9     max\n");
        for (t, s) in self.tenants.iter().enumerate() {
            out.push_str(&format!(
                "{t:>6}  {:>9}  {:>8}  {:>6}  {:>6}  {:>6}  {:>6}\n",
                s.completed, s.rejected, s.p50, s.p99, s.p99_9, s.max
            ));
        }
        out.push_str("objective        bad     total  fast   slow   breached\n");
        for s in &self.slos {
            out.push_str(&format!(
                "{:<14} {:>5}  {:>8}  {:<5.2} {:<5.2}  {}\n",
                s.name, s.bad, s.total, s.fast, s.slow, s.breached
            ));
        }
        out.push_str(&format!(
            "throughput {:.2} req/Mcyc | trends: latency {:+} ppm/window ({} w), \
             stash {:+} ppm/window ({} w)\n\
             eq1 residual worst {} ppm mean {} ppm | stash peak {} | alerts {:?}\n\
             checks: conservation {} eq1 {} trend {}\n",
            self.throughput_rpmc,
            self.latency_slope_ppm,
            self.latency_windows,
            self.stash_slope_ppm,
            self.stash_windows,
            self.eq1_worst_ppm,
            self.eq1_mean_ppm,
            self.stash_peak,
            self.alerts,
            self.checks[0],
            self.checks[1],
            self.checks[2],
        ));
        out
    }

    /// The machine-readable report the `repro compare` gate consumes.
    /// The top-level `"soak"` key is the schema discriminator.
    pub fn to_json(&self) -> String {
        let tenants = self
            .tenants
            .iter()
            .map(|s| {
                format!(
                    "{{\"completed\":{},\"rejected\":{},\"p50\":{},\"p99\":{},\"p99_9\":{},\
                     \"max\":{},\"mean\":{:.6}}}",
                    s.completed, s.rejected, s.p50, s.p99, s.p99_9, s.max, s.mean
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let slos = self
            .slos
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"bad\":{},\"total\":{},\"fast\":{:.6},\"slow\":{:.6},\
                     \"breached\":{}}}",
                    json::escape(&s.name),
                    s.bad,
                    s.total,
                    s.fast,
                    s.slow,
                    s.breached
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let phases = self
            .phases
            .iter()
            .map(|f| {
                format!(
                    "{{\"index\":{},\"load\":{:.6},\"offset\":{},\"backend\":\"{}\",\
                     \"completed\":{},\"rejected\":{},\"coalesced\":{},\"end_cycle\":{}}}",
                    f.index,
                    f.load,
                    f.offset,
                    json::escape(&f.backend),
                    f.completed,
                    f.rejected,
                    f.coalesced,
                    f.end_cycle
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let alerts = ALERT_NAMES
            .iter()
            .zip(self.alerts)
            .map(|(n, c)| format!("\"{n}\":{c}"))
            .collect::<Vec<_>>()
            .join(",");
        let switch = match &self.switch_backend {
            Some(b) => format!("\"{}\"", json::escape(b)),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"soak\":1,\n",
                "\"meta\":{{\"tenants\":{},\"phases\":{},\"requests_total\":{},\"levels\":{},",
                "\"domain\":{},\"seed\":{},\"backend\":\"{}\",\"switch_backend\":{}}},\n",
                "\"totals\":{{\"generated\":{},\"completed\":{},\"rejected\":{},",
                "\"coalesced\":{},\"final_cycle\":{},\"throughput_rpmc\":{:.6}}},\n",
                "\"tenants\":[{}],\n",
                "\"slos\":[{}],\n",
                "\"alerts\":{{{}}},\n",
                "\"phases\":[{}],\n",
                "\"trends\":{{\"latency_slope_ppm\":{},\"latency_windows\":{},",
                "\"stash_slope_ppm\":{},\"stash_windows\":{}}},\n",
                "\"eq1\":{{\"worst_ppm\":{},\"mean_ppm\":{}}},\n",
                "\"stash_peak\":{},\n",
                "\"checks\":{{\"conservation\":\"{}\",\"eq1\":\"{}\",\"trend\":\"{}\"}}}}\n"
            ),
            self.tenants_n,
            self.phases_n,
            self.requests_total,
            self.levels,
            self.domain,
            self.seed,
            json::escape(&self.backend),
            switch,
            self.generated,
            self.completed,
            self.rejected,
            self.coalesced,
            self.final_cycle,
            self.throughput_rpmc,
            tenants,
            slos,
            alerts,
            phases,
            self.latency_slope_ppm,
            self.latency_windows,
            self.stash_slope_ppm,
            self.stash_windows,
            self.eq1_worst_ppm,
            self.eq1_mean_ppm,
            self.stash_peak,
            self.checks[0],
            self.checks[1],
            self.checks[2],
        )
    }

    /// Parses a report produced by [`SoakReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn parse(text: &str) -> Result<SoakReport, String> {
        let v = json::parse(text)?;
        if v.get("soak").is_none() {
            return Err("not a soak report (missing \"soak\" key)".into());
        }
        let u = |o: &Value, k: &str| -> Result<u64, String> {
            o.get(k).and_then(Value::as_u64).ok_or_else(|| format!("missing {k}"))
        };
        let f = |o: &Value, k: &str| -> Result<f64, String> {
            o.get(k).and_then(Value::as_f64).ok_or_else(|| format!("missing {k}"))
        };
        let i = |o: &Value, k: &str| -> Result<i64, String> {
            match o.get(k) {
                Some(Value::Number(n)) if n.fract() == 0.0 => Ok(*n as i64),
                _ => Err(format!("missing {k}")),
            }
        };
        let s = |o: &Value, k: &str| -> Result<String, String> {
            o.get(k).and_then(Value::as_str).map(str::to_string).ok_or_else(|| format!("missing {k}"))
        };
        let meta = v.get("meta").ok_or("missing meta")?;
        let totals = v.get("totals").ok_or("missing totals")?;
        let trends = v.get("trends").ok_or("missing trends")?;
        let eq1 = v.get("eq1").ok_or("missing eq1")?;
        let checks = v.get("checks").ok_or("missing checks")?;
        let tenants = v
            .get("tenants")
            .and_then(Value::as_array)
            .ok_or("missing tenants")?
            .iter()
            .map(|t| {
                Ok(TenantSoak {
                    completed: u(t, "completed")?,
                    rejected: u(t, "rejected")?,
                    p50: u(t, "p50")?,
                    p99: u(t, "p99")?,
                    p99_9: u(t, "p99_9")?,
                    max: u(t, "max")?,
                    mean: f(t, "mean")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let slos = v
            .get("slos")
            .and_then(Value::as_array)
            .ok_or("missing slos")?
            .iter()
            .map(|o| {
                Ok(SloSoak {
                    name: s(o, "name")?,
                    bad: u(o, "bad")?,
                    total: u(o, "total")?,
                    fast: f(o, "fast")?,
                    slow: f(o, "slow")?,
                    breached: matches!(o.get("breached"), Some(Value::Bool(true))),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let phases = v
            .get("phases")
            .and_then(Value::as_array)
            .ok_or("missing phases")?
            .iter()
            .map(|o| {
                Ok(PhaseSoak {
                    index: u(o, "index")?,
                    load: f(o, "load")?,
                    offset: u(o, "offset")?,
                    backend: s(o, "backend")?,
                    completed: u(o, "completed")?,
                    rejected: u(o, "rejected")?,
                    coalesced: u(o, "coalesced")?,
                    end_cycle: u(o, "end_cycle")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let alerts_v = v.get("alerts").ok_or("missing alerts")?;
        let mut alerts = [0u64; 4];
        for (slot, name) in alerts.iter_mut().zip(ALERT_NAMES) {
            *slot = u(alerts_v, name)?;
        }
        Ok(SoakReport {
            tenants_n: u(meta, "tenants")?,
            phases_n: u(meta, "phases")?,
            requests_total: u(meta, "requests_total")?,
            levels: u(meta, "levels")? as u32,
            domain: u(meta, "domain")?,
            seed: u(meta, "seed")?,
            backend: s(meta, "backend")?,
            switch_backend: match meta.get("switch_backend") {
                Some(Value::Null) | None => None,
                Some(b) => Some(b.as_str().ok_or("bad switch_backend")?.to_string()),
            },
            generated: u(totals, "generated")?,
            completed: u(totals, "completed")?,
            rejected: u(totals, "rejected")?,
            coalesced: u(totals, "coalesced")?,
            final_cycle: u(totals, "final_cycle")?,
            throughput_rpmc: f(totals, "throughput_rpmc")?,
            tenants,
            slos,
            alerts,
            phases,
            latency_slope_ppm: i(trends, "latency_slope_ppm")?,
            latency_windows: u(trends, "latency_windows")?,
            stash_slope_ppm: i(trends, "stash_slope_ppm")?,
            stash_windows: u(trends, "stash_windows")?,
            eq1_worst_ppm: u(eq1, "worst_ppm")?,
            eq1_mean_ppm: u(eq1, "mean_ppm")?,
            stash_peak: u(v.get("stash_peak").map_or(&Value::Null, |x| x), "stash_peak")
                .or_else(|_| u(&v, "stash_peak"))? as u32,
            checks: [s(checks, "conservation")?, s(checks, "eq1")?, s(checks, "trend")?],
        })
    }
}

/// The comparison verdict of [`compare_soak_reports`].
#[derive(Debug, Clone)]
pub struct SoakCompare {
    lines: Vec<String>,
    failures: usize,
}

impl SoakCompare {
    /// The per-metric diff listing, one line each, failures marked.
    pub fn render(&self) -> String {
        let mut out = String::from("soak comparison (gated: tenant p99/p99.9, throughput, \
                                    rejection fraction, self-checks)\n");
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(&format!(
            "{}\n",
            if self.failures == 0 {
                "PASS".to_string()
            } else {
                format!("FAIL ({} gated regressions)", self.failures)
            }
        ));
        out
    }

    /// True when no gated metric regressed past the tolerance.
    pub fn passed(&self) -> bool {
        self.failures == 0
    }
}

/// Diffs a candidate soak report against a baseline. Gated metrics —
/// per-tenant p99/p99.9, total throughput, the rejection fraction, and
/// the candidate's own self-check verdicts — fail the comparison when
/// they worsen past `tolerance` (a fraction, e.g. 0.02). Everything
/// else is informational.
///
/// # Errors
///
/// Returns a message when the two reports describe different runs
/// (tenant count, phase count, request volume, seed, or backend).
pub fn compare_soak_reports(
    base: &SoakReport,
    cand: &SoakReport,
    tolerance: f64,
) -> Result<SoakCompare, String> {
    if (base.tenants_n, base.phases_n, base.requests_total, base.seed, &base.backend)
        != (cand.tenants_n, cand.phases_n, cand.requests_total, cand.seed, &cand.backend)
    {
        return Err(format!(
            "incomparable soak runs: baseline {}x{} phases seed {} backend {} vs \
             candidate {}x{} phases seed {} backend {}",
            base.tenants_n,
            base.phases_n,
            base.seed,
            base.backend,
            cand.tenants_n,
            cand.phases_n,
            cand.seed,
            cand.backend,
        ));
    }
    let mut lines = Vec::new();
    let mut failures = 0usize;
    // Higher-is-worse gate on a u64 metric.
    let mut gate_hi = |name: String, b: u64, c: u64| {
        let worsened = c as f64 > b as f64 * (1.0 + tolerance);
        if worsened {
            failures += 1;
        }
        lines.push(format!(
            "{} {name}: {b} -> {c}",
            if worsened { "FAIL" } else { "  ok" }
        ));
    };
    for (t, (b, c)) in base.tenants.iter().zip(&cand.tenants).enumerate() {
        gate_hi(format!("tenant{t}.p99"), b.p99, c.p99);
        gate_hi(format!("tenant{t}.p99_9"), b.p99_9, c.p99_9);
    }
    // Lower-is-worse gate: throughput.
    {
        let worsened = cand.throughput_rpmc < base.throughput_rpmc * (1.0 - tolerance);
        if worsened {
            failures += 1;
        }
        lines.push(format!(
            "{} throughput_rpmc: {:.2} -> {:.2}",
            if worsened { "FAIL" } else { "  ok" },
            base.throughput_rpmc,
            cand.throughput_rpmc
        ));
    }
    // Rejection fraction (of generated), higher is worse.
    {
        let frac = |r: &SoakReport| {
            if r.generated == 0 { 0.0 } else { r.rejected as f64 / r.generated as f64 }
        };
        let (b, c) = (frac(base), frac(cand));
        let worsened = c > b + tolerance;
        if worsened {
            failures += 1;
        }
        lines.push(format!(
            "{} rejected_frac: {b:.4} -> {c:.4}",
            if worsened { "FAIL" } else { "  ok" }
        ));
    }
    // The candidate's own self-checks must have passed or been skipped.
    for (name, verdict) in ["conservation", "eq1", "trend"].iter().zip(&cand.checks) {
        let bad = verdict != "ok" && verdict != "skipped";
        if bad {
            failures += 1;
        }
        lines.push(format!(
            "{} check.{name}: {verdict}",
            if bad { "FAIL" } else { "  ok" }
        ));
    }
    // Informational deltas.
    lines.push(format!("  -- coalesced: {} -> {}", base.coalesced, cand.coalesced));
    lines.push(format!("  -- stash_peak: {} -> {}", base.stash_peak, cand.stash_peak));
    lines.push(format!("  -- eq1_worst_ppm: {} -> {}", base.eq1_worst_ppm, cand.eq1_worst_ppm));
    lines.push(format!(
        "  -- latency_slope_ppm: {} -> {}",
        base.latency_slope_ppm, cand.latency_slope_ppm
    ));
    Ok(SoakCompare { lines, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakOptions {
        SoakOptions {
            tenants: 2,
            requests_total: 240,
            phases: 3,
            base_gap_cycles: 20_000.0,
            levels: 10,
            domain: 128,
            seed: 11,
            backend: BackendKind::Dram,
            switch_backend: None,
            incident_dir: None,
        }
    }

    #[test]
    fn diurnal_profile_is_symmetric() {
        for n in [2usize, 4, 5, 8] {
            for i in 0..n {
                let a = phase_load(i, n);
                let b = phase_load(n - 1 - i, n);
                assert!((a - b).abs() < 1e-12, "n={n} i={i}");
                assert!((0.8..=1.3).contains(&a));
            }
        }
        assert_eq!(phase_load(0, 1), 1.0);
    }

    #[test]
    fn options_validation_catches_bad_parameters() {
        let mut o = tiny();
        o.requests_total = 3; // splits to zero per tenant per phase
        assert!(o.validate().is_err());
        let mut o = tiny();
        o.switch_backend = Some(BackendKind::Dram);
        assert!(o.validate().is_err());
        let mut o = tiny();
        o.phases = 1;
        o.switch_backend = Some(BackendKind::Wan);
        assert!(o.validate().is_err());
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn soak_runs_chain_phases_and_self_validate() {
        let report = run_soak(&tiny(), None).expect("soak");
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.completed + report.rejected, report.generated);
        assert_eq!(report.completed, 240 - report.rejected);
        // Phase end cycles are monotone: the engine never rewinds.
        for w in report.phases.windows(2) {
            assert!(w[0].end_cycle <= w[1].end_cycle);
        }
        assert_eq!(report.checks[0], "ok");
        assert_eq!(report.checks[1], "ok");
        let text = report.render();
        assert!(text.contains("checks: conservation ok"));
    }

    #[test]
    fn soak_is_deterministic() {
        let a = run_soak(&tiny(), None).expect("soak");
        let b = run_soak(&tiny(), None).expect("soak");
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn backend_switch_keeps_clocks_monotone() {
        let mut o = tiny();
        o.requests_total = 240;
        o.phases = 2;
        o.switch_backend = Some(BackendKind::Wan);
        let report = run_soak(&o, None).expect("soak with switch");
        assert_eq!(report.phases[0].backend, "dram");
        assert_eq!(report.phases[1].backend, "wan");
        assert!(report.phases[0].end_cycle <= report.phases[1].end_cycle);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_soak(&tiny(), None).expect("soak");
        let parsed = SoakReport::parse(&report.to_json()).expect("parse");
        assert_eq!(parsed.to_json(), report.to_json());
    }

    #[test]
    fn compare_gates_tail_regressions() {
        let base = run_soak(&tiny(), None).expect("soak");
        let same = compare_soak_reports(&base, &base, 0.02).expect("compare");
        assert!(same.passed(), "{}", same.render());
        let mut worse = base.clone();
        worse.tenants[0].p99 = (base.tenants[0].p99 as f64 * 1.5) as u64 + 10;
        let out = compare_soak_reports(&base, &worse, 0.02).expect("compare");
        assert!(!out.passed());
        assert!(out.render().contains("FAIL tenant0.p99"));
        let mut other_seed = base.clone();
        other_seed.seed ^= 1;
        assert!(compare_soak_reports(&base, &other_seed, 0.02).is_err());
    }
}

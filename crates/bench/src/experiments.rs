//! One function per table/figure of the paper's evaluation section.
//!
//! Every experiment returns a [`Table`] whose rows/columns mirror what the
//! paper plots, so `repro <figure>` regenerates the corresponding data
//! series. Absolute values differ from the paper (scaled tree, synthetic
//! workloads); EXPERIMENTS.md records the shape comparison.

use oram_cpu::{O3Config, ReplayMisses};
use oram_protocol::DupPolicy;
use oram_sim::{
    build_miss_stream, gmean, run_workload, scale_profile, Engine, RunOptions, RunResult,
    SystemConfig,
};
use oram_workloads::spec;

use crate::table::Table;

/// Shared experiment options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpOptions {
    /// Measured LLC misses per run.
    pub misses: u64,
    /// Warmup misses per run.
    pub warmup: u64,
    /// Tree depth `L` for the scaled system.
    pub levels: u32,
    /// Trace seed.
    pub seed: u64,
}

impl ExpOptions {
    /// Quick defaults: every figure regenerates in seconds.
    pub fn quick() -> Self {
        ExpOptions { misses: 3000, warmup: 800, levels: 14, seed: 7 }
    }

    /// Full-fidelity runs (tens of seconds per figure).
    pub fn full() -> Self {
        ExpOptions { misses: 10_000, warmup: 2_500, levels: 16, seed: 7 }
    }

    fn run_options(&self) -> RunOptions {
        RunOptions {
            misses: self.misses,
            warmup_misses: self.warmup,
            seed: self.seed,
            fill_target: 0.35,
            o3: None,
        }
    }

    fn base_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::scaled_default();
        cfg.oram.levels = self.levels;
        cfg
    }
}

/// The timing-protection slot period the paper uses (Sec. VI-C).
pub const TIMING_RATE: u64 = 800;

/// The ten workloads in figure order.
pub fn workload_names() -> &'static [&'static str] {
    &spec::WORKLOAD_NAMES
}

fn run_policy(
    opts: &ExpOptions,
    wl: &str,
    policy: DupPolicy,
    timing: bool,
    treetop: u32,
    xor: bool,
    o3: bool,
) -> RunResult {
    let mut cfg = opts.base_config();
    cfg.oram.dup_policy = policy;
    cfg.oram.treetop_levels = treetop;
    if timing {
        cfg.timing_protection = Some(TIMING_RATE);
    }
    if xor {
        cfg.xor_compression = true;
    }
    let mut ro = opts.run_options();
    if o3 {
        ro = ro.with_o3(O3Config::paper_o3());
    }
    run_workload(&spec::profile(wl), &cfg, &ro)
}

/// Table I: prints the modeled configuration (paper values and the scaled
/// values actually used).
pub fn table1(opts: &ExpOptions) -> Table {
    let paper = oram_protocol::OramConfig::paper_table1();
    let scaled = opts.base_config();
    let mut t = Table::new(
        "Table I: processor and memory configuration (paper vs scaled run)",
        &["paper", "scaled"],
    );
    t.push("tree levels L", vec![f64::from(paper.levels), f64::from(scaled.oram.levels)]);
    t.push("bucket slots Z", vec![paper.z as f64, scaled.oram.z as f64]);
    t.push("eviction rate A", vec![
        f64::from(paper.eviction_rate),
        f64::from(scaled.oram.eviction_rate),
    ]);
    t.push("stash blocks M", vec![paper.stash_capacity as f64, scaled.oram.stash_capacity as f64]);
    t.push("AES latency (cyc)", vec![32.0, f64::from(scaled.aes_latency_cycles)]);
    t.push("CPU GHz", vec![2.0, scaled.cpu_freq_ghz]);
    t.push("DRAM channels", vec![2.0, scaled.dram.channels as f64]);
    t.push("peak GB/s", vec![21.3, scaled.dram.peak_bandwidth_gbps()]);
    t.push("L2 KB", vec![1024.0, scaled.hierarchy.l2_bytes as f64 / 1024.0]);
    t
}

/// Fig. 6a: sampled LLC miss intervals for hmmer showing phase swings.
pub fn fig6a(opts: &ExpOptions) -> Table {
    let cfg = opts.base_config();
    let profile = scale_profile(&spec::profile("hmmer"), &cfg, 0.35);
    let recs = build_miss_stream(&profile, cfg.hierarchy, &opts.run_options());
    let mut t = Table::new(
        "Fig 6a: hmmer LLC miss intervals (cycles) vs miss index",
        &["interval"],
    );
    for (i, r) in recs.iter().enumerate().take(500) {
        t.push(format!("{i}"), vec![r.gap_cycles as f64]);
    }
    t
}

/// Fig. 6b: cumulative execution time vs miss index for RD-Dup, HD-Dup and
/// dynamic partitioning on hmmer.
pub fn fig6b(opts: &ExpOptions) -> Table {
    let chunk = (opts.misses / 20).max(1);
    let mut t = Table::new(
        "Fig 6b: hmmer cumulative execution time (cycles) vs misses",
        &["RD-Dup", "HD-Dup", "Dynamic"],
    );
    let policies = [
        DupPolicy::RdOnly,
        DupPolicy::HdOnly,
        DupPolicy::Dynamic { counter_bits: 3 },
    ];
    let cfg0 = opts.base_config();
    let profile = scale_profile(&spec::profile("hmmer"), &cfg0, 0.35);
    let recs = build_miss_stream(&profile, cfg0.hierarchy, &opts.run_options());
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for policy in policies {
        let mut cfg = opts.base_config();
        cfg.oram.dup_policy = policy;
        let mut engine = Engine::new(cfg).expect("valid config");
        engine.prefill_working_set(profile.working_set_blocks);
        let mut curve = Vec::new();
        for chunk_recs in recs.chunks(chunk as usize) {
            let s = engine.run(&mut ReplayMisses::new(chunk_recs.to_vec()));
            curve.push(s.total_cycles as f64);
        }
        curves.push(curve);
    }
    let points = curves.iter().map(Vec::len).min().unwrap_or(0);
    for i in 0..points {
        t.push(
            format!("{}", (i as u64 + 1) * chunk),
            curves.iter().map(|c| c[i]).collect(),
        );
    }
    t
}

/// Figs. 8 / 13: normalized data-access time and DRI for HD-Dup, RD-Dup
/// and the Tiny baseline, per workload (Fig. 8 without timing protection,
/// Fig. 13 with).
pub fn fig8_13(opts: &ExpOptions, timing: bool) -> Table {
    let id = if timing { "Fig 13 (timing prot.)" } else { "Fig 8" };
    let mut t = Table::new(
        format!("{id}: time normalized to Tiny total = data + interval"),
        &["HD-data", "HD-intv", "RD-data", "RD-intv", "Tiny-data", "Tiny-intv"],
    );
    for wl in workload_names() {
        let tiny = run_policy(opts, wl, DupPolicy::Off, timing, 0, false, false);
        let rd = run_policy(opts, wl, DupPolicy::RdOnly, timing, 0, false, false);
        let hd = run_policy(opts, wl, DupPolicy::HdOnly, timing, 0, false, false);
        let base = tiny.oram.total_cycles as f64;
        t.push(
            *wl,
            vec![
                hd.oram.data_cycles as f64 / base,
                hd.oram.dri_cycles as f64 / base,
                rd.oram.data_cycles as f64 / base,
                rd.oram.dri_cycles as f64 / base,
                tiny.oram.data_cycles as f64 / base,
                tiny.oram.dri_cycles as f64 / base,
            ],
        );
    }
    t
}

/// Figs. 9 / 14: static-partitioning sweep of the partition level.
pub fn fig9_14(opts: &ExpOptions, timing: bool) -> Table {
    let id = if timing { "Fig 14 (timing prot.)" } else { "Fig 9" };
    let mut t = Table::new(
        format!("{id}: normalized time vs static partitioning level"),
        &[
            "sjeng-intv", "sjeng-data", "sjeng-tot",
            "h264-intv", "h264-data", "h264-tot",
            "namd-intv", "namd-data", "namd-tot",
            "gmean-tot",
        ],
    );
    let detail = ["sjeng", "h264ref", "namd"];
    let step = (opts.levels / 7).max(1);
    let levels: Vec<u32> = (0..=opts.levels).step_by(step as usize).collect();
    // Baselines per workload.
    let mut base: std::collections::HashMap<&str, f64> = Default::default();
    for wl in workload_names() {
        let tiny = run_policy(opts, wl, DupPolicy::Off, timing, 0, false, false);
        base.insert(wl, tiny.oram.total_cycles as f64);
    }
    for p in levels {
        let policy = DupPolicy::Static { partition_level: p };
        let mut row = Vec::new();
        for wl in detail {
            let r = run_policy(opts, wl, policy, timing, 0, false, false);
            let b = base[wl];
            row.push(r.oram.dri_cycles as f64 / b);
            row.push(r.oram.data_cycles as f64 / b);
            row.push(r.oram.total_cycles as f64 / b);
        }
        let mut totals = Vec::new();
        for wl in workload_names() {
            let r = run_policy(opts, wl, policy, timing, 0, false, false);
            totals.push(r.oram.total_cycles as f64 / base[wl]);
        }
        row.push(gmean(&totals));
        t.push(format!("P={p}"), row);
    }
    t
}

/// Fig. 10: dynamic partitioning DRI-counter width sweep.
pub fn fig10(opts: &ExpOptions, timing: bool) -> Table {
    let mut t = Table::new(
        "Fig 10: normalized time vs DRI counter width (dynamic partitioning)",
        &["sjeng", "h264ref", "namd", "gmean"],
    );
    let mut base: std::collections::HashMap<&str, f64> = Default::default();
    for wl in workload_names() {
        let tiny = run_policy(opts, wl, DupPolicy::Off, timing, 0, false, false);
        base.insert(wl, tiny.oram.total_cycles as f64);
    }
    for bits in 1..=8u32 {
        let policy = DupPolicy::Dynamic { counter_bits: bits };
        let mut per_wl = Vec::new();
        for wl in workload_names() {
            let r = run_policy(opts, wl, policy, timing, 0, false, false);
            per_wl.push((*wl, r.oram.total_cycles as f64 / base[wl]));
        }
        let get = |n: &str| per_wl.iter().find(|(w, _)| *w == n).map(|(_, v)| *v).unwrap_or(1.0);
        let all: Vec<f64> = per_wl.iter().map(|(_, v)| *v).collect();
        t.push(
            format!("{bits}-bit"),
            vec![get("sjeng"), get("h264ref"), get("namd"), gmean(&all)],
        );
    }
    t
}

/// Figs. 11 / 15: slowdown over the insecure system for Tiny, the best
/// static partitioning and dynamic-3 (Fig. 11 without timing protection
/// with static-7; Fig. 15 with protection and static-4).
pub fn fig11_15(opts: &ExpOptions, timing: bool) -> Table {
    let (id, static_level) = if timing { ("Fig 15 (timing prot.)", 4) } else { ("Fig 11", 7) };
    let mut t = Table::new(
        format!("{id}: slowdown vs insecure system"),
        &["Tiny", &format!("static-{static_level}"), "dynamic-3", "insecure"],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for wl in workload_names() {
        let tiny = run_policy(opts, wl, DupPolicy::Off, timing, 0, false, false);
        let st = run_policy(
            opts, wl,
            DupPolicy::Static { partition_level: static_level },
            timing, 0, false, false,
        );
        let dy = run_policy(
            opts, wl,
            DupPolicy::Dynamic { counter_bits: 3 },
            timing, 0, false, false,
        );
        let row = vec![tiny.slowdown(), st.slowdown(), dy.slowdown(), 1.0];
        for (c, v) in cols.iter_mut().zip(&row) {
            c.push(*v);
        }
        t.push(*wl, row);
    }
    t.push(
        "gmean",
        vec![gmean(&cols[0]), gmean(&cols[1]), gmean(&cols[2]), 1.0],
    );
    t
}

/// Fig. 12: memory-system energy normalized to the insecure system.
pub fn fig12(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 12: energy normalized to insecure system",
        &["Tiny", "static-7", "dynamic-3"],
    );
    for wl in workload_names() {
        let tiny = run_policy(opts, wl, DupPolicy::Off, false, 0, false, false);
        let st =
            run_policy(opts, wl, DupPolicy::Static { partition_level: 7 }, false, 0, false, false);
        let dy =
            run_policy(opts, wl, DupPolicy::Dynamic { counter_bits: 3 }, false, 0, false, false);
        t.push(*wl, vec![tiny.energy_norm(), st.energy_norm(), dy.energy_norm()]);
    }
    t
}

/// Fig. 16: on-chip (stash + treetop) hit rate with treetop-3/treetop-7,
/// with and without shadow blocks (timing protection on, like the paper).
pub fn fig16(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 16: on-chip hit rate (stash + treetop)",
        &["Treetop-3", "SB+Treetop-3", "Treetop-7", "SB+Treetop-7"],
    );
    for wl in workload_names() {
        let t3 = run_policy(opts, wl, DupPolicy::Off, true, 3, false, false);
        let s3 = run_policy(opts, wl, DupPolicy::Dynamic { counter_bits: 3 }, true, 3, false, false);
        let t7 = run_policy(opts, wl, DupPolicy::Off, true, 7, false, false);
        let s7 = run_policy(opts, wl, DupPolicy::Dynamic { counter_bits: 3 }, true, 7, false, false);
        t.push(
            *wl,
            vec![
                t3.oram.oram.on_chip_hit_rate(),
                s3.oram.oram.on_chip_hit_rate(),
                t7.oram.oram.on_chip_hit_rate(),
                s7.oram.oram.on_chip_hit_rate(),
            ],
        );
    }
    t
}

/// Fig. 17: speedup over Tiny ORAM for XOR compression, Shadow Block, and
/// Shadow Block combined with treetop caching.
pub fn fig17(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 17: speedup over Tiny ORAM",
        &["XOR", "ShadowBlock", "SB+Treetop-3", "SB+Treetop-7"],
    );
    let dyn3 = DupPolicy::Dynamic { counter_bits: 3 };
    for wl in workload_names() {
        let tiny = run_policy(opts, wl, DupPolicy::Off, true, 0, false, false);
        let xor = run_policy(opts, wl, DupPolicy::Off, true, 0, true, false);
        let sb = run_policy(opts, wl, dyn3, true, 0, false, false);
        let sb3 = run_policy(opts, wl, dyn3, true, 3, false, false);
        let sb7 = run_policy(opts, wl, dyn3, true, 7, false, false);
        let base = tiny.oram.total_cycles as f64;
        t.push(
            *wl,
            vec![
                base / xor.oram.total_cycles as f64,
                base / sb.oram.total_cycles as f64,
                base / sb3.oram.total_cycles as f64,
                base / sb7.oram.total_cycles as f64,
            ],
        );
    }
    t
}

/// Fig. 18: speedup of dynamic-3 over Tiny for the in-order core and the
/// quad-core out-of-order front-end.
pub fn fig18(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 18: speedup over Tiny ORAM by CPU type",
        &["Out-of-Order", "In-order"],
    );
    let dyn3 = DupPolicy::Dynamic { counter_bits: 3 };
    for wl in workload_names() {
        let tiny_io = run_policy(opts, wl, DupPolicy::Off, true, 0, false, false);
        let dyn_io = run_policy(opts, wl, dyn3, true, 0, false, false);
        let tiny_o3 = run_policy(opts, wl, DupPolicy::Off, true, 0, false, true);
        let dyn_o3 = run_policy(opts, wl, dyn3, true, 0, false, true);
        t.push(
            *wl,
            vec![
                tiny_o3.oram.total_cycles as f64 / dyn_o3.oram.total_cycles as f64,
                tiny_io.oram.total_cycles as f64 / dyn_io.oram.total_cycles as f64,
            ],
        );
    }
    t
}

/// Fig. 19: gmean speedup of dynamic-3 over Tiny for different ORAM tree
/// sizes (scaled stand-ins for the paper's 1–16 GB sweep).
pub fn fig19(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 19: gmean speedup over Tiny vs ORAM size (tree depth)",
        &["speedup"],
    );
    let dyn3 = DupPolicy::Dynamic { counter_bits: 3 };
    for (label, levels) in [("1GB~L-2", -2i32), ("2GB~L-1", -1), ("4GB~L", 0), ("8GB~L+1", 1), ("16GB~L+2", 2)] {
        let l = (opts.levels as i32 + levels).clamp(12, 22) as u32;
        let mut sub = *opts;
        sub.levels = l;
        let mut speedups = Vec::new();
        for wl in workload_names() {
            let tiny = run_policy(&sub, wl, DupPolicy::Off, true, 0, false, false);
            let dy = run_policy(&sub, wl, dyn3, true, 0, false, false);
            // Workloads whose scaled working set collapses into the LLC
            // produce empty runs at the smallest trees; skip them rather
            // than poison the gmean.
            if tiny.oram.total_cycles > 0 && dy.oram.total_cycles > 0 {
                speedups.push(tiny.oram.total_cycles as f64 / dy.oram.total_cycles as f64);
            }
        }
        t.push(format!("{label} (L={l})"), vec![gmean(&speedups)]);
    }
    t
}

/// Ablation study of the design choices DESIGN.md calls out: shadow
/// recirculation through the stash, and chain duplication (Fig. 4's
/// level-lowering rule). Reports gmean speedup over Tiny for dynamic-3
/// with each mechanism toggled.
pub fn ablation(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Ablation: gmean speedup over Tiny (dynamic-3, timing protection)",
        &["speedup", "adv/1k-req", "onchip-rate"],
    );
    let variants: [(&str, bool, bool); 4] = [
        ("full design", true, true),
        ("no recirculation", false, true),
        ("no chains", true, false),
        ("neither", false, false),
    ];
    for (label, recirc, chain) in variants {
        let mut speedups = Vec::new();
        let mut adv = 0.0;
        let mut hits = 0.0;
        for wl in workload_names() {
            let tiny = run_policy(opts, wl, DupPolicy::Off, true, 0, false, false);
            let mut cfg = opts.base_config().with_timing_protection(TIMING_RATE);
            cfg.oram.dup_policy = DupPolicy::Dynamic { counter_bits: 3 };
            cfg.oram.recirculate_stash_shadows = recirc;
            cfg.oram.chain_duplication = chain;
            let r = run_workload(&spec::profile(wl), &cfg, &opts.run_options());
            speedups.push(tiny.oram.total_cycles as f64 / r.oram.total_cycles as f64);
            adv += r.oram.oram.shadow_advanced as f64
                / (r.oram.oram.real_requests.max(1) as f64 / 1000.0);
            hits += r.oram.oram.on_chip_hit_rate();
        }
        let n = workload_names().len() as f64;
        t.push(label, vec![gmean(&speedups), adv / n, hits / n]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions { misses: 250, warmup: 60, levels: 10, seed: 3 }
    }

    #[test]
    fn table1_lists_parameters() {
        let t = table1(&tiny_opts());
        assert!(t.rows.len() >= 8);
        assert!(t.render().contains("tree levels"));
    }

    #[test]
    fn fig6a_produces_series() {
        let t = fig6a(&tiny_opts());
        assert!(!t.rows.is_empty());
        assert!(t.rows.iter().all(|(_, v)| v[0] >= 0.0));
    }

    #[test]
    fn fig8_rows_partition_to_one_for_tiny() {
        let mut o = tiny_opts();
        o.misses = 150;
        let t = fig8_13(&o, false);
        assert_eq!(t.rows.len(), 10);
        for (wl, v) in &t.rows {
            let tiny_total = v[4] + v[5];
            assert!((tiny_total - 1.0).abs() < 1e-9, "{wl}: {tiny_total}");
        }
    }

    #[test]
    fn fig19_levels_are_clamped() {
        let mut o = tiny_opts();
        o.misses = 100;
        o.warmup = 20;
        let t = fig19(&o);
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows.iter().all(|(_, v)| v[0] > 0.0));
    }
}

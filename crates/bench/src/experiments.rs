//! One function per table/figure of the paper's evaluation section.
//!
//! Every experiment returns a [`Table`] whose rows/columns mirror what the
//! paper plots, so `repro <figure>` regenerates the corresponding data
//! series. Absolute values differ from the paper (scaled tree, synthetic
//! workloads); EXPERIMENTS.md records the shape comparison.
//!
//! ## Parallel sweeps
//!
//! Each figure decomposes into independent *cells* — one (workload,
//! configuration) simulation apiece. A [`Cell`] carries everything a run
//! needs and seeds all randomness from its own options, so cells execute
//! on the [`parallel_map`] worker pool in any order and the assembled
//! table is bit-identical to a sequential run (`threads = 1`). Figures
//! that used to recompute a cell (e.g. the detail workloads of Fig. 9,
//! or the shared Tiny baseline of the ablation) now run it once and reuse
//! the result.

use std::collections::HashMap;

use oram_cpu::{O3Config, ReplayMisses};
use oram_protocol::DupPolicy;
use oram_sim::{
    build_miss_stream, default_threads, gmean, parallel_map, parallel_map_notify, run_workload,
    scale_profile, Engine, RunOptions, RunResult, SystemConfig,
};
use oram_workloads::spec;

use crate::progress::Heartbeat;
use crate::table::Table;

/// Shared experiment options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpOptions {
    /// Measured LLC misses per run.
    pub misses: u64,
    /// Warmup misses per run.
    pub warmup: u64,
    /// Tree depth `L` for the scaled system.
    pub levels: u32,
    /// Trace seed.
    pub seed: u64,
    /// Worker threads for the experiment sweep (1 = sequential; results
    /// are identical either way).
    pub threads: usize,
    /// Emit progress heartbeats to stderr while a sweep runs. Off by
    /// default; the CLI turns it on for interactive terminals.
    pub progress: bool,
}

impl ExpOptions {
    /// Quick defaults: every figure regenerates in seconds.
    pub fn quick() -> Self {
        ExpOptions {
            misses: 3000,
            warmup: 800,
            levels: 14,
            seed: 7,
            threads: default_threads(),
            progress: false,
        }
    }

    /// Full-fidelity runs (tens of seconds per figure).
    pub fn full() -> Self {
        ExpOptions { misses: 10_000, warmup: 2_500, levels: 16, ..ExpOptions::quick() }
    }

    /// Builder-style: sets the sweep worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style: enables or disables progress heartbeats.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    fn run_options(&self) -> RunOptions {
        RunOptions {
            misses: self.misses,
            warmup_misses: self.warmup,
            seed: self.seed,
            fill_target: 0.35,
            o3: None,
        }
    }

    fn base_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::scaled_default();
        cfg.oram.levels = self.levels;
        cfg
    }
}

/// The timing-protection slot period the paper uses (Sec. VI-C).
pub const TIMING_RATE: u64 = 800;

/// The ten workloads in figure order.
pub fn workload_names() -> &'static [&'static str] {
    &spec::WORKLOAD_NAMES
}

/// One independent experiment cell: everything one simulation run needs.
/// Cells are `Copy`, self-seeding and order-independent — the unit of
/// work handed to the job pool.
#[derive(Debug, Clone, Copy)]
struct Cell {
    opts: ExpOptions,
    wl: &'static str,
    policy: DupPolicy,
    timing: bool,
    treetop: u32,
    xor: bool,
    o3: bool,
    recirculate: bool,
    chains: bool,
}

impl Cell {
    fn new(opts: &ExpOptions, wl: &'static str, policy: DupPolicy, timing: bool) -> Self {
        Cell {
            opts: *opts,
            wl,
            policy,
            timing,
            treetop: 0,
            xor: false,
            o3: false,
            recirculate: true,
            chains: true,
        }
    }

    fn treetop(mut self, levels: u32) -> Self {
        self.treetop = levels;
        self
    }

    fn xor(mut self) -> Self {
        self.xor = true;
        self
    }

    fn o3(mut self) -> Self {
        self.o3 = true;
        self
    }

    fn toggles(mut self, recirculate: bool, chains: bool) -> Self {
        self.recirculate = recirculate;
        self.chains = chains;
        self
    }

    fn run(&self) -> RunResult {
        let mut cfg = self.opts.base_config();
        cfg.oram.dup_policy = self.policy;
        cfg.oram.treetop_levels = self.treetop;
        cfg.oram.recirculate_stash_shadows = self.recirculate;
        cfg.oram.chain_duplication = self.chains;
        if self.timing {
            cfg.timing_protection = Some(TIMING_RATE);
        }
        if self.xor {
            cfg.xor_compression = true;
        }
        let mut ro = self.opts.run_options();
        if self.o3 {
            ro = ro.with_o3(O3Config::paper_o3());
        }
        run_workload(&spec::profile(self.wl), &cfg, &ro)
    }
}

/// Runs every cell on the sweep worker pool; results come back in cell
/// order, so index arithmetic below is the same as for a sequential loop.
/// With `opts.progress` set, completions drive a rate-limited heartbeat
/// on stderr (the results are unaffected either way).
fn run_cells(opts: &ExpOptions, cells: &[Cell]) -> Vec<RunResult> {
    let hb = Heartbeat::new("sweep", opts.progress);
    parallel_map_notify(opts.threads, cells, |c| c.run(), |done, total| hb.tick(done, total))
}

/// Table I: prints the modeled configuration (paper values and the scaled
/// values actually used).
pub fn table1(opts: &ExpOptions) -> Table {
    let paper = oram_protocol::OramConfig::paper_table1();
    let scaled = opts.base_config();
    let mut t = Table::new(
        "Table I: processor and memory configuration (paper vs scaled run)",
        &["paper", "scaled"],
    );
    t.push("tree levels L", vec![f64::from(paper.levels), f64::from(scaled.oram.levels)]);
    t.push("bucket slots Z", vec![paper.z as f64, scaled.oram.z as f64]);
    t.push("eviction rate A", vec![
        f64::from(paper.eviction_rate),
        f64::from(scaled.oram.eviction_rate),
    ]);
    t.push("stash blocks M", vec![paper.stash_capacity as f64, scaled.oram.stash_capacity as f64]);
    t.push("AES latency (cyc)", vec![32.0, f64::from(scaled.aes_latency_cycles)]);
    t.push("CPU GHz", vec![2.0, scaled.cpu_freq_ghz]);
    t.push("DRAM channels", vec![2.0, scaled.dram.channels as f64]);
    t.push("peak GB/s", vec![21.3, scaled.dram.peak_bandwidth_gbps()]);
    t.push("L2 KB", vec![1024.0, scaled.hierarchy.l2_bytes as f64 / 1024.0]);
    t
}

/// Fig. 6a: sampled LLC miss intervals for hmmer showing phase swings.
pub fn fig6a(opts: &ExpOptions) -> Table {
    let cfg = opts.base_config();
    let profile = scale_profile(&spec::profile("hmmer"), &cfg, 0.35);
    let recs = build_miss_stream(&profile, cfg.hierarchy, &opts.run_options());
    let mut t = Table::new(
        "Fig 6a: hmmer LLC miss intervals (cycles) vs miss index",
        &["interval"],
    );
    for (i, r) in recs.iter().enumerate().take(500) {
        t.push(format!("{i}"), vec![r.gap_cycles as f64]);
    }
    t
}

/// Fig. 6b: cumulative execution time vs miss index for RD-Dup, HD-Dup and
/// dynamic partitioning on hmmer.
pub fn fig6b(opts: &ExpOptions) -> Table {
    let chunk = (opts.misses / 20).max(1);
    let mut t = Table::new(
        "Fig 6b: hmmer cumulative execution time (cycles) vs misses",
        &["RD-Dup", "HD-Dup", "Dynamic"],
    );
    let policies = [
        DupPolicy::RdOnly,
        DupPolicy::HdOnly,
        DupPolicy::Dynamic { counter_bits: 3 },
    ];
    let cfg0 = opts.base_config();
    let profile = scale_profile(&spec::profile("hmmer"), &cfg0, 0.35);
    let recs = build_miss_stream(&profile, cfg0.hierarchy, &opts.run_options());
    // Each policy's chunked engine walk is stateful internally but
    // independent of the other policies — one worker per curve.
    let curves: Vec<Vec<f64>> = parallel_map(opts.threads, &policies, |policy| {
        let mut cfg = opts.base_config();
        cfg.oram.dup_policy = *policy;
        let mut engine = Engine::new(cfg).expect("valid config");
        engine.prefill_working_set(profile.working_set_blocks);
        let mut curve = Vec::new();
        for chunk_recs in recs.chunks(chunk as usize) {
            let s = engine.run(&mut ReplayMisses::new(chunk_recs.to_vec()));
            curve.push(s.total_cycles as f64);
        }
        curve
    });
    let points = curves.iter().map(Vec::len).min().unwrap_or(0);
    for i in 0..points {
        t.push(
            format!("{}", (i as u64 + 1) * chunk),
            curves.iter().map(|c| c[i]).collect(),
        );
    }
    t
}

/// Figs. 8 / 13: normalized data-access time and DRI for HD-Dup, RD-Dup
/// and the Tiny baseline, per workload (Fig. 8 without timing protection,
/// Fig. 13 with).
pub fn fig8_13(opts: &ExpOptions, timing: bool) -> Table {
    let id = if timing { "Fig 13 (timing prot.)" } else { "Fig 8" };
    let mut t = Table::new(
        format!("{id}: time normalized to Tiny total = data + interval"),
        &["HD-data", "HD-intv", "RD-data", "RD-intv", "Tiny-data", "Tiny-intv"],
    );
    let wls = workload_names();
    let cells: Vec<Cell> = wls
        .iter()
        .flat_map(|wl| {
            [
                Cell::new(opts, wl, DupPolicy::Off, timing),
                Cell::new(opts, wl, DupPolicy::RdOnly, timing),
                Cell::new(opts, wl, DupPolicy::HdOnly, timing),
            ]
        })
        .collect();
    let res = run_cells(opts, &cells);
    for (i, wl) in wls.iter().enumerate() {
        let (tiny, rd, hd) = (&res[3 * i], &res[3 * i + 1], &res[3 * i + 2]);
        let base = tiny.oram.total_cycles as f64;
        t.push(
            *wl,
            vec![
                hd.oram.data_cycles as f64 / base,
                hd.oram.dri_cycles as f64 / base,
                rd.oram.data_cycles as f64 / base,
                rd.oram.dri_cycles as f64 / base,
                tiny.oram.data_cycles as f64 / base,
                tiny.oram.dri_cycles as f64 / base,
            ],
        );
    }
    t
}

/// Figs. 9 / 14: static-partitioning sweep of the partition level.
pub fn fig9_14(opts: &ExpOptions, timing: bool) -> Table {
    let id = if timing { "Fig 14 (timing prot.)" } else { "Fig 9" };
    let mut t = Table::new(
        format!("{id}: normalized time vs static partitioning level"),
        &[
            "sjeng-intv", "sjeng-data", "sjeng-tot",
            "h264-intv", "h264-data", "h264-tot",
            "namd-intv", "namd-data", "namd-tot",
            "gmean-tot",
        ],
    );
    let detail = ["sjeng", "h264ref", "namd"];
    let step = (opts.levels / 7).max(1);
    let plevels: Vec<u32> = (0..=opts.levels).step_by(step as usize).collect();
    let wls = workload_names();
    // One flat cell list: per-workload Tiny baselines first, then one
    // full workload sweep per partition level. The detail columns reuse
    // the sweep results instead of re-running their cells.
    let mut cells: Vec<Cell> =
        wls.iter().map(|wl| Cell::new(opts, wl, DupPolicy::Off, timing)).collect();
    for &p in &plevels {
        let policy = DupPolicy::Static { partition_level: p };
        cells.extend(wls.iter().map(|wl| Cell::new(opts, wl, policy, timing)));
    }
    let res = run_cells(opts, &cells);
    let base: HashMap<&str, f64> = wls
        .iter()
        .zip(&res)
        .map(|(wl, r)| (*wl, r.oram.total_cycles as f64))
        .collect();
    for (pi, &p) in plevels.iter().enumerate() {
        let sweep = &res[wls.len() * (pi + 1)..wls.len() * (pi + 2)];
        let mut row = Vec::new();
        for name in detail {
            let ix = wls.iter().position(|w| *w == name).expect("detail workload exists");
            let r = &sweep[ix];
            let b = base[name];
            row.push(r.oram.dri_cycles as f64 / b);
            row.push(r.oram.data_cycles as f64 / b);
            row.push(r.oram.total_cycles as f64 / b);
        }
        let totals: Vec<f64> = wls
            .iter()
            .zip(sweep)
            .map(|(wl, r)| r.oram.total_cycles as f64 / base[wl])
            .collect();
        row.push(gmean(&totals));
        t.push(format!("P={p}"), row);
    }
    t
}

/// Fig. 10: dynamic partitioning DRI-counter width sweep.
pub fn fig10(opts: &ExpOptions, timing: bool) -> Table {
    let mut t = Table::new(
        "Fig 10: normalized time vs DRI counter width (dynamic partitioning)",
        &["sjeng", "h264ref", "namd", "gmean"],
    );
    let wls = workload_names();
    let widths: Vec<u32> = (1..=8).collect();
    let mut cells: Vec<Cell> =
        wls.iter().map(|wl| Cell::new(opts, wl, DupPolicy::Off, timing)).collect();
    for &bits in &widths {
        let policy = DupPolicy::Dynamic { counter_bits: bits };
        cells.extend(wls.iter().map(|wl| Cell::new(opts, wl, policy, timing)));
    }
    let res = run_cells(opts, &cells);
    let base: HashMap<&str, f64> = wls
        .iter()
        .zip(&res)
        .map(|(wl, r)| (*wl, r.oram.total_cycles as f64))
        .collect();
    for (bi, &bits) in widths.iter().enumerate() {
        let sweep = &res[wls.len() * (bi + 1)..wls.len() * (bi + 2)];
        let norm = |name: &str| {
            let ix = wls.iter().position(|w| *w == name).expect("workload exists");
            sweep[ix].oram.total_cycles as f64 / base[name]
        };
        let all: Vec<f64> = wls
            .iter()
            .zip(sweep)
            .map(|(wl, r)| r.oram.total_cycles as f64 / base[wl])
            .collect();
        t.push(
            format!("{bits}-bit"),
            vec![norm("sjeng"), norm("h264ref"), norm("namd"), gmean(&all)],
        );
    }
    t
}

/// Figs. 11 / 15: slowdown over the insecure system for Tiny, the best
/// static partitioning and dynamic-3 (Fig. 11 without timing protection
/// with static-7; Fig. 15 with protection and static-4).
pub fn fig11_15(opts: &ExpOptions, timing: bool) -> Table {
    let (id, static_level) = if timing { ("Fig 15 (timing prot.)", 4) } else { ("Fig 11", 7) };
    let mut t = Table::new(
        format!("{id}: slowdown vs insecure system"),
        &["Tiny", &format!("static-{static_level}"), "dynamic-3", "insecure"],
    );
    let wls = workload_names();
    let cells: Vec<Cell> = wls
        .iter()
        .flat_map(|wl| {
            [
                Cell::new(opts, wl, DupPolicy::Off, timing),
                Cell::new(opts, wl, DupPolicy::Static { partition_level: static_level }, timing),
                Cell::new(opts, wl, DupPolicy::Dynamic { counter_bits: 3 }, timing),
            ]
        })
        .collect();
    let res = run_cells(opts, &cells);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (i, wl) in wls.iter().enumerate() {
        let (tiny, st, dy) = (&res[3 * i], &res[3 * i + 1], &res[3 * i + 2]);
        let row = vec![tiny.slowdown(), st.slowdown(), dy.slowdown(), 1.0];
        for (c, v) in cols.iter_mut().zip(&row) {
            c.push(*v);
        }
        t.push(*wl, row);
    }
    t.push(
        "gmean",
        vec![gmean(&cols[0]), gmean(&cols[1]), gmean(&cols[2]), 1.0],
    );
    t
}

/// Fig. 12: memory-system energy normalized to the insecure system.
pub fn fig12(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 12: energy normalized to insecure system",
        &["Tiny", "static-7", "dynamic-3"],
    );
    let wls = workload_names();
    let cells: Vec<Cell> = wls
        .iter()
        .flat_map(|wl| {
            [
                Cell::new(opts, wl, DupPolicy::Off, false),
                Cell::new(opts, wl, DupPolicy::Static { partition_level: 7 }, false),
                Cell::new(opts, wl, DupPolicy::Dynamic { counter_bits: 3 }, false),
            ]
        })
        .collect();
    let res = run_cells(opts, &cells);
    for (i, wl) in wls.iter().enumerate() {
        let (tiny, st, dy) = (&res[3 * i], &res[3 * i + 1], &res[3 * i + 2]);
        t.push(*wl, vec![tiny.energy_norm(), st.energy_norm(), dy.energy_norm()]);
    }
    t
}

/// Fig. 16: on-chip (stash + treetop) hit rate with treetop-3/treetop-7,
/// with and without shadow blocks (timing protection on, like the paper).
pub fn fig16(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 16: on-chip hit rate (stash + treetop)",
        &["Treetop-3", "SB+Treetop-3", "Treetop-7", "SB+Treetop-7"],
    );
    let wls = workload_names();
    let dyn3 = DupPolicy::Dynamic { counter_bits: 3 };
    let cells: Vec<Cell> = wls
        .iter()
        .flat_map(|wl| {
            [
                Cell::new(opts, wl, DupPolicy::Off, true).treetop(3),
                Cell::new(opts, wl, dyn3, true).treetop(3),
                Cell::new(opts, wl, DupPolicy::Off, true).treetop(7),
                Cell::new(opts, wl, dyn3, true).treetop(7),
            ]
        })
        .collect();
    let res = run_cells(opts, &cells);
    for (i, wl) in wls.iter().enumerate() {
        t.push(
            *wl,
            (0..4).map(|k| res[4 * i + k].oram.oram.on_chip_hit_rate()).collect(),
        );
    }
    t
}

/// Fig. 17: speedup over Tiny ORAM for XOR compression, Shadow Block, and
/// Shadow Block combined with treetop caching.
pub fn fig17(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 17: speedup over Tiny ORAM",
        &["XOR", "ShadowBlock", "SB+Treetop-3", "SB+Treetop-7"],
    );
    let wls = workload_names();
    let dyn3 = DupPolicy::Dynamic { counter_bits: 3 };
    let cells: Vec<Cell> = wls
        .iter()
        .flat_map(|wl| {
            [
                Cell::new(opts, wl, DupPolicy::Off, true),
                Cell::new(opts, wl, DupPolicy::Off, true).xor(),
                Cell::new(opts, wl, dyn3, true),
                Cell::new(opts, wl, dyn3, true).treetop(3),
                Cell::new(opts, wl, dyn3, true).treetop(7),
            ]
        })
        .collect();
    let res = run_cells(opts, &cells);
    for (i, wl) in wls.iter().enumerate() {
        let base = res[5 * i].oram.total_cycles as f64;
        t.push(
            *wl,
            (1..5).map(|k| base / res[5 * i + k].oram.total_cycles as f64).collect(),
        );
    }
    t
}

/// Fig. 18: speedup of dynamic-3 over Tiny for the in-order core and the
/// quad-core out-of-order front-end.
pub fn fig18(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 18: speedup over Tiny ORAM by CPU type",
        &["Out-of-Order", "In-order"],
    );
    let wls = workload_names();
    let dyn3 = DupPolicy::Dynamic { counter_bits: 3 };
    let cells: Vec<Cell> = wls
        .iter()
        .flat_map(|wl| {
            [
                Cell::new(opts, wl, DupPolicy::Off, true),
                Cell::new(opts, wl, dyn3, true),
                Cell::new(opts, wl, DupPolicy::Off, true).o3(),
                Cell::new(opts, wl, dyn3, true).o3(),
            ]
        })
        .collect();
    let res = run_cells(opts, &cells);
    for (i, wl) in wls.iter().enumerate() {
        let (tiny_io, dyn_io, tiny_o3, dyn_o3) =
            (&res[4 * i], &res[4 * i + 1], &res[4 * i + 2], &res[4 * i + 3]);
        t.push(
            *wl,
            vec![
                tiny_o3.oram.total_cycles as f64 / dyn_o3.oram.total_cycles as f64,
                tiny_io.oram.total_cycles as f64 / dyn_io.oram.total_cycles as f64,
            ],
        );
    }
    t
}

/// Fig. 19: gmean speedup of dynamic-3 over Tiny for different ORAM tree
/// sizes (scaled stand-ins for the paper's 1–16 GB sweep).
pub fn fig19(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 19: gmean speedup over Tiny vs ORAM size (tree depth)",
        &["speedup"],
    );
    let dyn3 = DupPolicy::Dynamic { counter_bits: 3 };
    let sizes = [("1GB~L-2", -2i32), ("2GB~L-1", -1), ("4GB~L", 0), ("8GB~L+1", 1), ("16GB~L+2", 2)];
    let wls = workload_names();
    let mut cells = Vec::new();
    let mut depths = Vec::new();
    for (_, delta) in sizes {
        let l = (opts.levels as i32 + delta).clamp(12, 22) as u32;
        depths.push(l);
        let mut sub = *opts;
        sub.levels = l;
        for wl in wls {
            cells.push(Cell::new(&sub, wl, DupPolicy::Off, true));
            cells.push(Cell::new(&sub, wl, dyn3, true));
        }
    }
    let res = run_cells(opts, &cells);
    for (si, (label, _)) in sizes.iter().enumerate() {
        let chunk = &res[2 * wls.len() * si..2 * wls.len() * (si + 1)];
        let mut speedups = Vec::new();
        for i in 0..wls.len() {
            let (tiny, dy) = (&chunk[2 * i], &chunk[2 * i + 1]);
            // Workloads whose scaled working set collapses into the LLC
            // produce empty runs at the smallest trees; skip them rather
            // than poison the gmean.
            if tiny.oram.total_cycles > 0 && dy.oram.total_cycles > 0 {
                speedups.push(tiny.oram.total_cycles as f64 / dy.oram.total_cycles as f64);
            }
        }
        t.push(format!("{label} (L={})", depths[si]), vec![gmean(&speedups)]);
    }
    t
}

/// Ablation study of the design choices DESIGN.md calls out: shadow
/// recirculation through the stash, and chain duplication (Fig. 4's
/// level-lowering rule). Reports gmean speedup over Tiny for dynamic-3
/// with each mechanism toggled.
pub fn ablation(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Ablation: gmean speedup over Tiny (dynamic-3, timing protection)",
        &["speedup", "adv/1k-req", "onchip-rate"],
    );
    let variants: [(&str, bool, bool); 4] = [
        ("full design", true, true),
        ("no recirculation", false, true),
        ("no chains", true, false),
        ("neither", false, false),
    ];
    let wls = workload_names();
    // The Tiny baseline is shared by all four variants: run it once.
    let mut cells: Vec<Cell> =
        wls.iter().map(|wl| Cell::new(opts, wl, DupPolicy::Off, true)).collect();
    for &(_, recirc, chain) in &variants {
        cells.extend(wls.iter().map(|wl| {
            Cell::new(opts, wl, DupPolicy::Dynamic { counter_bits: 3 }, true)
                .toggles(recirc, chain)
        }));
    }
    let res = run_cells(opts, &cells);
    let base = &res[..wls.len()];
    for (vi, (label, _, _)) in variants.iter().enumerate() {
        let sweep = &res[wls.len() * (vi + 1)..wls.len() * (vi + 2)];
        let mut speedups = Vec::new();
        let mut adv = 0.0;
        let mut hits = 0.0;
        for (tiny, r) in base.iter().zip(sweep) {
            speedups.push(tiny.oram.total_cycles as f64 / r.oram.total_cycles as f64);
            adv += r.oram.oram.shadow_advanced as f64
                / (r.oram.oram.real_requests.max(1) as f64 / 1000.0);
            hits += r.oram.oram.on_chip_hit_rate();
        }
        let n = wls.len() as f64;
        t.push(*label, vec![gmean(&speedups), adv / n, hits / n]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions { misses: 250, warmup: 60, levels: 10, seed: 3, threads: 2, progress: false }
    }

    #[test]
    fn table1_lists_parameters() {
        let t = table1(&tiny_opts());
        assert!(t.rows.len() >= 8);
        assert!(t.render().contains("tree levels"));
    }

    #[test]
    fn fig6a_produces_series() {
        let t = fig6a(&tiny_opts());
        assert!(!t.rows.is_empty());
        assert!(t.rows.iter().all(|(_, v)| v[0] >= 0.0));
    }

    #[test]
    fn fig8_rows_partition_to_one_for_tiny() {
        let mut o = tiny_opts();
        o.misses = 150;
        let t = fig8_13(&o, false);
        assert_eq!(t.rows.len(), 10);
        for (wl, v) in &t.rows {
            let tiny_total = v[4] + v[5];
            assert!((tiny_total - 1.0).abs() < 1e-9, "{wl}: {tiny_total}");
        }
    }

    #[test]
    fn fig19_levels_are_clamped() {
        let mut o = tiny_opts();
        o.misses = 100;
        o.warmup = 20;
        let t = fig19(&o);
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows.iter().all(|(_, v)| v[0] > 0.0));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let mut o = tiny_opts();
        o.misses = 150;
        o.warmup = 40;
        let seq = fig8_13(&o.with_threads(1), false);
        let par = fig8_13(&o.with_threads(4), false);
        assert_eq!(seq, par, "parallel sweep must reproduce the sequential table exactly");
    }
}

//! Minimal self-contained micro-benchmark harness: wall-clock timing with
//! median-of-samples reporting, plus an allocation-counting global
//! allocator so benches can *prove* a hot loop stays off the heap.
//!
//! This replaces an external benchmarking framework: the repo builds
//! without network access, and the benches double as regression checks
//! (the protocol bench fails loudly if the steady-state ORAM access loop
//! ever allocates again).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A `#[global_allocator]` wrapper around the system allocator that
/// counts allocations and allocated bytes. Declare one `static` in a
/// bench binary and diff [`CountingAlloc::allocations`] around a hot
/// loop to assert it never touches the heap.
#[derive(Debug)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter (const, so it can initialize a `static`).
    pub const fn new() -> Self {
        CountingAlloc { allocs: AtomicU64::new(0), bytes: AtomicU64::new(0) }
    }

    /// Total allocation calls (`alloc` + growing `realloc`) so far.
    pub fn allocations(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Total bytes requested so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every operation to `System`; the counters are simple
// relaxed atomics with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed sample.
    pub iters: u64,
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<40} {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} iters/sample)",
            self.name, self.median_ns, self.min_ns, self.max_ns, self.iters
        )
    }
}

/// Times `f` over `samples` samples of `iters` iterations each (after one
/// untimed warmup sample) and returns the per-iteration summary. Wrap
/// results in [`black_box`] inside `f` to keep the optimizer honest.
pub fn bench<R>(name: &str, samples: usize, iters: u64, mut f: impl FnMut() -> R) -> BenchReport {
    for _ in 0..iters {
        black_box(f());
    }
    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    BenchReport {
        name: name.to_string(),
        iters,
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let r = bench("spin", 3, 100, || std::hint::black_box(17u64).wrapping_mul(3));
        assert!(r.median_ns >= 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert_eq!(r.iters, 100);
        assert!(format!("{r}").contains("spin"));
    }

    #[test]
    fn counting_alloc_counts() {
        // Not installed as the global allocator here; exercise the trait
        // impl directly.
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            a.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(a.allocations(), 2);
        assert_eq!(a.bytes(), 64 + 128);
    }
}

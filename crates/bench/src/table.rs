//! Lightweight result tables: named rows of named numeric columns, with
//! aligned console printing and CSV export.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One experiment output table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (figure/table id plus description).
    pub title: String,
    /// Column headers (not counting the leading row-label column).
    pub columns: Vec<String>,
    /// Rows: label plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((label.into(), values));
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(9))
            .max()
            .unwrap_or(9);
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(9)).collect();
        let _ = write!(out, "{:label_w$}", "");
        for (c, w) in self.columns.iter().zip(&col_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for (v, w) in vals.iter().zip(&col_w) {
                let _ = write!(out, "  {v:>w$.4}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the table as CSV to `dir/<slug>.csv`, creating `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let mut csv = String::new();
        let _ = write!(csv, "label");
        for c in &self.columns {
            let _ = write!(csv, ",{c}");
        }
        let _ = writeln!(csv);
        for (label, vals) in &self.rows {
            let _ = write!(csv, "{label}");
            for v in vals {
                let _ = write!(csv, ",{v}");
            }
            let _ = writeln!(csv);
        }
        fs::write(dir.join(format!("{slug}.csv")), csv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut t = Table::new("Fig X: demo", &["a", "b"]);
        t.push("row1", vec![1.0, 2.0]);
        let s = t.render();
        assert!(s.contains("Fig X: demo"));
        assert!(s.contains("row1"));
        assert!(s.contains("1.0000"));
        assert!(s.contains("2.0000"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", &["a"]);
        t.push("r", vec![1.0, 2.0]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("Fig 99 csv test", &["x"]);
        t.push("r", vec![3.5]);
        let dir = std::env::temp_dir().join("oram_bench_csv_test");
        t.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("fig_99_csv_test.csv")).unwrap();
        assert!(body.contains("label,x"));
        assert!(body.contains("r,3.5"));
    }
}

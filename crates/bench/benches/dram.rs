//! Criterion micro-benchmarks of the DDR3 timing model: path-shaped
//! batches (sequential within subtree rows) versus scattered traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use oram_dram::{BlockRequest, DramConfig, DramSystem, SubtreeLayout};
use std::hint::black_box;

fn bench_path_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_path_batch");
    g.sample_size(30);
    let cfg = DramConfig::ddr3_1333();
    let layout = SubtreeLayout::fit_to_row(&cfg, 5);

    // A realistic ORAM path at L = 16: buckets along one root-to-leaf walk.
    let mut path_reqs = Vec::new();
    let mut heap = 1u64 << 16;
    while heap >= 1 {
        for slot in 0..5 {
            path_reqs.push(BlockRequest::read(layout.block_addr(heap, slot)));
        }
        if heap == 1 {
            break;
        }
        heap >>= 1;
    }

    g.bench_function("oram_path_85_blocks", |b| {
        let mut dram = DramSystem::new(cfg).unwrap();
        let mut t = 0i64;
        b.iter(|| {
            let done = dram.service_batch(t, &path_reqs);
            t = *done.iter().max().unwrap();
            black_box(done)
        });
    });

    g.bench_function("scattered_85_blocks", |b| {
        let mut dram = DramSystem::new(cfg).unwrap();
        let reqs: Vec<BlockRequest> =
            (0..85u64).map(|i| BlockRequest::read(i * 104_729)).collect();
        let mut t = 0i64;
        b.iter(|| {
            let done = dram.service_batch(t, &reqs);
            t = *done.iter().max().unwrap();
            black_box(done)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_path_batch);
criterion_main!(benches);

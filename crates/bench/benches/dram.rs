//! Micro-benchmarks of the DDR3 timing model: path-shaped batches
//! (sequential within subtree rows) versus scattered traffic, and the
//! allocation-free `service_batch_into` entry point the simulator uses.

use oram_bench::bench;
use oram_dram::{BlockRequest, DramConfig, DramSystem, SubtreeLayout};
use std::hint::black_box;

fn path_requests(layout: &SubtreeLayout) -> Vec<BlockRequest> {
    // A realistic ORAM path at L = 16: buckets along one root-to-leaf walk.
    let mut path_reqs = Vec::new();
    let mut heap = 1u64 << 16;
    while heap >= 1 {
        for slot in 0..5 {
            path_reqs.push(BlockRequest::read(layout.block_addr(heap, slot)));
        }
        if heap == 1 {
            break;
        }
        heap >>= 1;
    }
    path_reqs
}

fn main() {
    let cfg = DramConfig::ddr3_1333();
    let layout = SubtreeLayout::fit_to_row(&cfg, 5);
    let path_reqs = path_requests(&layout);

    {
        let mut dram = DramSystem::new(cfg).unwrap();
        let mut t = 0i64;
        let r = bench("dram/oram_path_85_blocks", 30, 200, || {
            let done = dram.service_batch(t, &path_reqs);
            t = *done.iter().max().unwrap();
            black_box(done)
        });
        println!("{r}");
    }

    {
        let mut dram = DramSystem::new(cfg).unwrap();
        let reqs: Vec<BlockRequest> =
            (0..85u64).map(|i| BlockRequest::read(i * 104_729)).collect();
        let mut t = 0i64;
        let r = bench("dram/scattered_85_blocks", 30, 200, || {
            let done = dram.service_batch(t, &reqs);
            t = *done.iter().max().unwrap();
            black_box(done)
        });
        println!("{r}");
    }

    {
        // The reusable-buffer entry point the engine's hot loop uses:
        // identical schedule, no per-batch Vec.
        let mut dram = DramSystem::new(cfg).unwrap();
        let mut finishes = Vec::new();
        let mut t = 0i64;
        let r = bench("dram/oram_path_85_blocks_into", 30, 200, || {
            dram.service_batch_into(t, &path_reqs, true, &mut finishes);
            t = *finishes.iter().max().unwrap();
            black_box(finishes.len())
        });
        println!("{r}");
    }
}

//! Telemetry overhead micro-benchmark: the 10k-access protocol loop with
//! the hooks compiled in but **detached** versus a fully **attached**
//! recorder, per duplication policy.
//!
//! Run with `cargo bench --bench telemetry [-- --json <path>]`. Two
//! regression gates ride along:
//!
//! * the detached loop must stay at zero allocator calls per 10k
//!   accesses — the hooks' `Option` branch may not cost heap; and
//! * the attached loop must also stay allocation-free, since the
//!   recorder preallocates all storage reachable from the hot path.
//!
//! With `--json <path>` the results are also written as a small JSON
//! document (see `bench_results/BENCH_telemetry_overhead.json`).

use oram_bench::{bench, CountingAlloc};
use oram_protocol::{BlockAddr, DupPolicy, OramConfig, OramController, Request};
use oram_telemetry::{TelemetryConfig, TelemetryRecorder};
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const POLICIES: [(&str, DupPolicy); 4] = [
    ("tiny", DupPolicy::Off),
    ("rd_dup", DupPolicy::RdOnly),
    ("hd_dup", DupPolicy::HdOnly),
    ("dynamic3", DupPolicy::Dynamic { counter_bits: 3 }),
];

/// One policy's measurements.
struct Row {
    name: &'static str,
    detached_ns: f64,
    attached_ns: f64,
    detached_allocs: u64,
    attached_allocs: u64,
}

impl Row {
    fn overhead_pct(&self) -> f64 {
        if self.detached_ns <= 0.0 {
            0.0
        } else {
            100.0 * (self.attached_ns - self.detached_ns) / self.detached_ns
        }
    }
}

fn make_controller(policy: DupPolicy) -> OramController {
    let cfg = OramConfig::small_test().with_levels(10).with_dup_policy(policy);
    let mut ctl = OramController::new(cfg).unwrap();
    ctl.prefill((0..400u64).map(|i| (BlockAddr::new(i), i)));
    // Warmup: position map grown, dup queues at high water.
    let mut i = 0u64;
    for _ in 0..4000 {
        i = (i + 17) % 400;
        black_box(ctl.access(Request::read(BlockAddr::new(i))));
    }
    ctl
}

/// The steady-state mixed loop the zero-alloc gate has always used.
fn mixed_loop(ctl: &mut OramController, i: &mut u64, steps: u64) {
    for step in 0..steps {
        *i = (*i + 17) % 400;
        match step % 5 {
            0 => {
                black_box(ctl.access(Request::write(BlockAddr::new(*i), step)));
            }
            4 => {
                black_box(ctl.dummy_access());
            }
            _ => {
                black_box(ctl.access(Request::read(BlockAddr::new(*i))));
            }
        }
    }
}

fn measure(policy: DupPolicy, name: &'static str) -> Row {
    // Detached: hooks compiled in, sink absent.
    let mut ctl = make_controller(policy);
    let mut i = 0u64;
    let detached = bench(&format!("telemetry_detached/{name}"), 15, 2000, || {
        i = (i + 17) % 400;
        black_box(ctl.access(Request::read(BlockAddr::new(i))))
    });
    println!("{detached}");
    let before = ALLOC.allocations();
    mixed_loop(&mut ctl, &mut i, 10_000);
    let detached_allocs = ALLOC.allocations() - before;

    // Attached: the full recorder receives every counter and sample.
    let mut ctl = make_controller(policy);
    let rec = TelemetryRecorder::shared(TelemetryConfig::default());
    ctl.set_telemetry(Some(TelemetryRecorder::as_sink(&rec)));
    let mut i = 0u64;
    let attached = bench(&format!("telemetry_attached/{name}"), 15, 2000, || {
        i = (i + 17) % 400;
        black_box(ctl.access(Request::read(BlockAddr::new(i))))
    });
    println!("{attached}");
    let before = ALLOC.allocations();
    mixed_loop(&mut ctl, &mut i, 10_000);
    let attached_allocs = ALLOC.allocations() - before;

    Row {
        name,
        detached_ns: detached.median_ns,
        attached_ns: attached.median_ns,
        detached_allocs,
        attached_allocs,
    }
}

fn to_json(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"telemetry_overhead\",\n");
    out.push_str("  \"unit\": \"ns_per_access\",\n");
    out.push_str("  \"loop\": \"mixed 10k accesses (writes/reads/dummies), small_test L=10\",\n");
    out.push_str("  \"policies\": {\n");
    for (k, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"detached_ns\": {:.1}, \"attached_ns\": {:.1}, \
             \"overhead_pct\": {:.1}, \"detached_allocs_per_10k\": {}, \
             \"attached_allocs_per_10k\": {}}}{}\n",
            r.name,
            r.detached_ns,
            r.attached_ns,
            r.overhead_pct(),
            r.detached_allocs,
            r.attached_allocs,
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = it.next().cloned(),
            "--bench" => {} // passed by `cargo bench`
            other => {
                eprintln!("unexpected argument {other:?} (supported: --json <path>)");
                std::process::exit(2);
            }
        }
    }

    println!("-- telemetry overhead: detached vs attached --");
    let rows: Vec<Row> = POLICIES.iter().map(|&(name, policy)| measure(policy, name)).collect();
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "policy", "detached", "attached", "overhead", "allocs(det)", "allocs(att)"
    );
    let mut ok = true;
    for r in &rows {
        println!(
            "{:<10} {:>10.1}ns {:>10.1}ns {:>8.1}% {:>11}/10k {:>11}/10k",
            r.name,
            r.detached_ns,
            r.attached_ns,
            r.overhead_pct(),
            r.detached_allocs,
            r.attached_allocs
        );
        ok &= r.detached_allocs == 0 && r.attached_allocs == 0;
    }

    let json = to_json(&rows);
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("\n[json written to {path}]");
    } else {
        print!("\n{json}");
    }

    if !ok {
        eprintln!("telemetry hot path allocated — zero-allocation regression");
        std::process::exit(1);
    }
}

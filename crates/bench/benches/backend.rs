//! Micro-benchmarks of the storage-backend layer: miss-stream replay
//! throughput of the DRAM timing model behind the [`StorageBackend`]
//! trait and of the simulated-WAN model — and a hard zero-allocation
//! check that the trait indirection added no steady-state heap traffic.
//!
//! Run with `cargo bench --bench backend`. The allocation check exits
//! non-zero if the steady-state access loop ever touches the heap, so
//! CI can use this bench as a regression gate.

use std::hint::black_box;

use oram_bench::{bench, CountingAlloc};
use oram_cpu::ReplayMisses;
use oram_sim::{
    build_miss_stream, scale_profile, Engine, RunOptions, StorageBackend, SystemConfig,
    WanBackend, WanConfig,
};
use oram_workloads::spec;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn system() -> SystemConfig {
    let mut sys = SystemConfig::scaled_default();
    sys.oram.levels = 12;
    sys.validate().expect("valid bench configuration");
    sys
}

/// A warmed engine plus a prebuilt miss stream of `misses` records.
fn warmed<B: StorageBackend>(
    mut engine: Engine<B>,
    misses: u64,
) -> (Engine<B>, Vec<oram_cpu::MissRecord>) {
    let sys = system();
    let ro = RunOptions { misses, warmup_misses: 0, seed: 11, fill_target: 0.35, o3: None };
    let scaled = scale_profile(&spec::profile("mcf"), &sys, ro.fill_target);
    let records = build_miss_stream(&scaled, sys.hierarchy, &ro);
    engine.prefill_working_set(scaled.working_set_blocks);
    // Warmup: grow every reusable buffer (stash, queues, finish vectors)
    // to its steady-state high-water mark.
    engine.run(&mut ReplayMisses::new(records.clone()));
    (engine, records)
}

fn replay_throughput() {
    println!("-- miss-stream replay throughput (2k misses/iter) --");
    let (mut dram, records) = warmed(Engine::new(system()).expect("engine"), 2000);
    let r = bench("backend/dram_behind_trait", 10, 3, || {
        black_box(dram.run(&mut ReplayMisses::new(records.clone())))
    });
    println!("{r}");

    let wan = WanBackend::new(WanConfig::default_wan()).expect("wan backend");
    let (mut wan, records) =
        warmed(Engine::with_backend(system(), wan).expect("engine"), 2000);
    let r = bench("backend/wan_default", 10, 3, || {
        black_box(wan.run(&mut ReplayMisses::new(records.clone())))
    });
    println!("{r}");
}

/// The trait-refactor zero-allocation claim, checked: after warmup, a
/// sustained 10k-access replay through `Engine<DramBackend>` must
/// perform **zero** allocator calls — the trait boundary reuses the
/// same finish buffers the concrete engine did.
fn steady_state_allocation_check() -> bool {
    println!("-- steady-state allocation check (dram behind trait) --");
    let (mut engine, records) = warmed(Engine::new(system()).expect("engine"), 10_000);
    // Build the replay source outside the measured region: the stream
    // copy is the driver's allocation, not the engine's.
    let mut replay = ReplayMisses::new(records);
    let before = ALLOC.allocations();
    black_box(engine.run(&mut replay));
    let delta = ALLOC.allocations() - before;
    let verdict = if delta == 0 { "OK" } else { "FAIL" };
    println!("steady_state_allocs/dram_trait {delta:>6} allocs in 10k accesses  [{verdict}]");
    delta == 0
}

fn main() {
    replay_throughput();
    if !steady_state_allocation_check() {
        eprintln!("steady-state backend access loop allocated — zero-allocation regression");
        std::process::exit(1);
    }
}
